#!/usr/bin/env python3
"""Scaling QoS to many flows: the Section-4 hybrid architecture.

A backbone router cannot afford per-flow WFQ state for thousands of
flows.  The hybrid keeps a *fixed*, small number of WFQ-scheduled FIFO
queues and relies on buffer thresholds inside each queue.  This example

1. uses the analysis (Proposition 3 and eq. 17-19) to size the queues
   and quantify the buffer saving of good groupings, and
2. simulates the 30-flow Case-2 workload to show the hybrid matching
   per-flow WFQ on throughput, protection and excess sharing while
   sorting only 3 queues.

Run:  python examples/hybrid_scaling.py
"""

from repro import (
    QueueRequirement,
    Scheme,
    buffer_savings,
    hybrid_total_buffer,
    optimal_alphas,
    queue_rates,
    run_scenario,
    table2_flows,
)
from repro.analysis.buffer_sizing import fifo_min_buffer
from repro.experiments import (
    CASE2_GROUPS,
    TABLE2_AGGRESSIVE,
    TABLE2_CONFORMANT,
)
from repro.experiments.report import format_table
from repro.units import mbytes, to_kbytes, to_mbps

LINK = 6_000_000.0  # 48 Mbit/s in bytes/s


def analysis_part(flows) -> None:
    requirements = []
    for group in CASE2_GROUPS:
        requirements.append(QueueRequirement(
            sigma_hat=sum(flows[i].bucket for i in group),
            rho_hat=sum(flows[i].token_rate for i in group),
        ))
    alphas = optimal_alphas(requirements)
    rates = queue_rates(requirements, LINK)
    sigmas = [flow.bucket for flow in flows]
    rhos = [flow.token_rate for flow in flows]

    print("Analytical sizing (Proposition 3, eqs. 16-19):")
    rows = []
    for i, (req, alpha, rate) in enumerate(zip(requirements, alphas, rates)):
        rows.append([
            f"queue {i}",
            f"{to_kbytes(req.sigma_hat):.0f}",
            f"{to_mbps(req.rho_hat):.1f}",
            f"{alpha:.3f}",
            f"{to_mbps(rate):.1f}",
        ])
    print(format_table(
        ["", "sigma_hat (KB)", "rho_hat (Mb/s)", "alpha_i", "R_i (Mb/s)"], rows
    ))
    single = fifo_min_buffer(sigmas, rhos, LINK)
    hybrid = hybrid_total_buffer(requirements, LINK)
    saving = buffer_savings(requirements, LINK)
    print(f"\n  lossless buffer, single FIFO: {to_kbytes(single):.0f} KB")
    print(f"  lossless buffer, 3-queue hybrid: {to_kbytes(hybrid):.0f} KB "
          f"(saves {to_kbytes(saving):.0f} KB, eq. 17)\n")


def simulation_part(flows) -> None:
    print("Simulation (Case 2: 10 conformant, 10 moderate, 10 aggressive"
          " flows, B = 2 MB):")
    rows = []
    for label, scheme in (
        ("3-queue hybrid + sharing", Scheme.HYBRID_SHARING),
        ("per-flow WFQ + sharing", Scheme.WFQ_SHARING),
        ("single FIFO + sharing", Scheme.FIFO_SHARING),
    ):
        result = run_scenario(
            flows, scheme, mbytes(2.0), sim_time=8.0, seed=4,
            groups=CASE2_GROUPS if scheme.is_hybrid else None,
        )
        rows.append([
            label,
            f"{100 * result.utilization():.1f}",
            f"{100 * result.loss_fraction(TABLE2_CONFORMANT):.2f}",
            f"{to_mbps(result.throughput(TABLE2_AGGRESSIVE)):.1f}",
        ])
    print(format_table(
        ["architecture", "utilisation (%)", "conformant loss (%)",
         "aggressive class (Mb/s)"],
        rows,
    ))
    print(
        "\nThe hybrid needs a sorted structure of size 3 instead of 30 —"
        "\nthe paper's scalability argument — at nearly WFQ-level QoS."
    )


def main() -> None:
    flows = table2_flows()
    analysis_part(flows)
    simulation_part(flows)


if __name__ == "__main__":
    main()
