#!/usr/bin/env python3
"""Fair access to excess bandwidth via buffer sharing (Section 3.3).

Flows 6 and 8 of the Table-1 workload reserve 0.4 and 2.0 Mb/s but offer
4 and 16 Mb/s.  How the ~15 Mb/s of unreserved capacity is split between
them depends on the buffer policy:

* fixed partition: the split is at the mercy of FIFO order;
* headroom/holes sharing: FIFO mimics WFQ's proportional split;
* WFQ: splits in proportion to reservations by construction.

This example sweeps the headroom H at a fixed 3 MB buffer to show the
knob the paper highlights: H trades conformant-flow protection against
shared space for excess traffic.

Run:  python examples/excess_sharing.py
"""

from repro import Scheme, run_scenario, table1_flows
from repro.experiments import TABLE1_CONFORMANT
from repro.experiments.report import format_table
from repro.units import mbytes, to_mbps

BUFFER = mbytes(3.0)
SIM_TIME = 8.0


def main() -> None:
    flows = table1_flows()

    print("Excess-bandwidth split between flows 6 (0.4 Mb/s reserved) and "
          "8 (2.0 Mb/s reserved), B = 3 MB\n")

    rows = []
    for label, scheme, headroom in (
        ("FIFO fixed partition", Scheme.FIFO_THRESHOLD, 0.0),
        ("FIFO sharing H=0", Scheme.FIFO_SHARING, 0.0),
        ("FIFO sharing H=1MB", Scheme.FIFO_SHARING, mbytes(1.0)),
        ("FIFO sharing H=2MB", Scheme.FIFO_SHARING, mbytes(2.0)),
        ("WFQ sharing H=2MB", Scheme.WFQ_SHARING, mbytes(2.0)),
    ):
        result = run_scenario(
            flows, scheme, BUFFER, sim_time=SIM_TIME, seed=2, headroom=headroom
        )
        rate6 = to_mbps(result.throughput([6]))
        rate8 = to_mbps(result.throughput([8]))
        rows.append([
            label,
            f"{rate6:.2f}",
            f"{rate8:.2f}",
            f"{rate8 / max(rate6, 1e-9):.1f}",
            f"{100 * result.loss_fraction(TABLE1_CONFORMANT):.2f}",
        ])
    print(format_table(
        ["policy", "flow 6 (Mb/s)", "flow 8 (Mb/s)",
         "ratio 8/6", "conformant loss (%)"],
        rows,
    ))
    print(
        "\nReservation ratio is 5.0; WFQ realises roughly that split, and"
        "\nFIFO-with-sharing approaches it — while small headroom values"
        "\nshow the protection/sharing trade-off of Figure 7."
    )


if __name__ == "__main__":
    main()
