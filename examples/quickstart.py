#!/usr/bin/env python3
"""Quickstart: rate guarantees from buffer management alone.

Builds the paper's Table-1 scenario — nine on-off flows (six conformant,
three aggressive) sharing a 48 Mbit/s FIFO link — and compares plain tail
drop against the paper's threshold rule ``T_i = sigma_i + rho_i B / R``.

Run:  python examples/quickstart.py
"""

from repro import Scheme, run_scenario, table1_flows
from repro.experiments import TABLE1_CONFORMANT
from repro.experiments.report import format_table
from repro.units import mbytes, to_mbps


def main() -> None:
    flows = table1_flows()
    buffer_size = mbytes(1.0)

    print("Table-1 workload on a 48 Mbit/s FIFO link, B = 1 MB")
    print(f"  {len(flows)} flows; reserved total "
          f"{to_mbps(sum(f.token_rate for f in flows)):.1f} Mb/s; offered "
          f"{to_mbps(sum(f.avg_rate for f in flows)):.1f} Mb/s (overload)\n")

    rows = []
    for scheme in (Scheme.FIFO_NONE, Scheme.FIFO_THRESHOLD, Scheme.FIFO_SHARING):
        # A 0.25 MB headroom leaves most of the buffer shareable; the
        # paper's 2 MB default would disable sharing entirely at B = 1 MB.
        result = run_scenario(
            flows, scheme, buffer_size, sim_time=8.0, seed=1,
            headroom=mbytes(0.25),
        )
        rows.append([
            scheme.value,
            f"{100 * result.utilization():.1f}",
            f"{100 * result.loss_fraction(TABLE1_CONFORMANT):.2f}",
            f"{to_mbps(result.throughput([8])):.2f}",
        ])
    print(format_table(
        ["scheme", "utilisation (%)", "conformant loss (%)", "flow-8 rate (Mb/s)"],
        rows,
    ))
    print(
        "\nTake-away: with no management the aggressive flows fill the buffer"
        "\nand conformant flows lose packets; the constant-time threshold rule"
        "\neliminates that loss, and buffer sharing wins back the utilisation."
    )


if __name__ == "__main__":
    main()
