#!/usr/bin/env python3
"""Call admission: how many SLAs fit on a link? (Section 2.3)

The same flow population can be *bandwidth-limited* under WFQ but
*buffer-limited* under FIFO-with-thresholds, because eq. (9) inflates the
FIFO buffer requirement by 1/(1-u).  This example admits identical flows
one at a time under both admission controllers across several buffer
sizes, reporting how many fit and why the first rejection happened.

Run:  python examples/admission_control.py
"""

from repro import FIFOAdmission, WFQAdmission
from repro.experiments.report import format_table
from repro.units import kbytes, mbps, mbytes, to_mbytes

LINK = mbps(48.0)
FLOW = (kbytes(50.0), mbps(2.0))  # a Table-1-style (sigma, rho) reservation


def fill(control) -> tuple[int, str]:
    """Admit FLOW repeatedly; return (count, reason of first rejection)."""
    while True:
        decision = control.admit(*FLOW)
        if not decision:
            return control.admitted_count, decision.reason.value


def main() -> None:
    print("Admitting identical (50 KB, 2 Mb/s) reservations on a 48 Mb/s link\n")
    rows = []
    for buffer_mb in (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0):
        buffer_size = mbytes(buffer_mb)
        wfq_count, wfq_reason = fill(WFQAdmission(LINK, buffer_size))
        fifo_count, fifo_reason = fill(FIFOAdmission(LINK, buffer_size))
        rows.append([
            f"{to_mbytes(buffer_size):.2f}",
            f"{wfq_count} ({wfq_reason})",
            f"{fifo_count} ({fifo_reason})",
        ])
    print(format_table(
        ["buffer (MB)", "WFQ admits", "FIFO+thresholds admits"], rows
    ))
    print(
        "\nWith small buffers FIFO admission is buffer-limited well before"
        "\nthe link fills; with enough buffer both become bandwidth-limited"
        "\nat 24 flows (24 x 2 Mb/s = 48 Mb/s) — the cost of simplicity is"
        "\nmemory, exactly the trade-off of eq. (10)."
    )


if __name__ == "__main__":
    main()
