#!/usr/bin/env python3
"""End-to-end guarantees across a multi-hop backbone.

The paper provisions one output link; a real SLA spans a *path*.  This
example builds a 3-hop tandem where every hop is independently congested
by greedy cross-traffic, and shows that running the paper's threshold
rule at each hop — with the burst term inflated per hop by the
network-calculus bound sigma + rho * sum(D_upstream) — carries a
reserved flow across the backbone with zero loss, while tail-drop hops
starve it.

Run:  python examples/multihop_backbone.py
"""

import numpy as np

from repro import FixedThresholdManager, Simulator, StatsCollector, TailDropManager
from repro.core.thresholds import flow_threshold
from repro.experiments.report import format_table
from repro.net import build_tandem, per_hop_sigma
from repro.traffic import GreedySource, LeakyBucketShaper, OnOffSource
from repro.units import mbps, to_mbps

LINK = mbps(8.0)
HOP_BUFFER = 60_000.0
HOPS = 3
RHO = mbps(2.0)        # the SLA: 2 Mb/s end to end
SIGMA = 10_000.0
PKT = 500.0
SIM_TIME = 20.0


def run(with_thresholds: bool):
    sim = Simulator()
    hop_delay = HOP_BUFFER / LINK
    sigmas = per_hop_sigma(SIGMA, RHO, [hop_delay] * HOPS)
    collectors = [StatsCollector() for _ in range(HOPS)]

    def factory_for(hop):
        def factory():
            if not with_thresholds:
                return TailDropManager(HOP_BUFFER)
            threshold = flow_threshold(sigmas[hop], RHO, HOP_BUFFER, LINK) + PKT
            return FixedThresholdManager(
                HOP_BUFFER, {1: threshold, 100 + hop: HOP_BUFFER - threshold}
            )
        return factory

    net, names = build_tandem(
        sim, [LINK] * HOPS, [factory_for(h) for h in range(HOPS)],
        collectors=collectors,
    )
    net.set_route(1, names)
    for hop in range(HOPS):
        cross_id = 100 + hop
        net.set_route(cross_id, [names[hop], names[hop + 1]])
        GreedySource(sim, cross_id, LINK, net.entry(cross_id),
                     packet_size=PKT, until=SIM_TIME)
    shaper = LeakyBucketShaper(sim, SIGMA, RHO, net.entry(1))
    OnOffSource(
        sim, 1, peak_rate=mbps(6.0), avg_rate=RHO, mean_burst=SIGMA,
        sink=shaper, rng=np.random.default_rng(7), packet_size=PKT,
        until=SIM_TIME,
    )
    sim.run(until=SIM_TIME + 5.0)
    drops = sum(c.flows[1].dropped_packets for c in collectors if 1 in c.flows)
    delivered = to_mbps(net.sink.bytes.get(1, 0.0) / SIM_TIME)
    return drops, delivered, sigmas


def main() -> None:
    print(f"A {to_mbps(RHO):.0f} Mb/s SLA across {HOPS} congested "
          f"{to_mbps(LINK):.0f} Mb/s hops (greedy cross-traffic at each)\n")
    rows = []
    for label, flag in (("tail drop at each hop", False),
                        ("per-hop thresholds (paper)", True)):
        drops, delivered, sigmas = run(flag)
        rows.append([label, f"{delivered:.2f}", str(drops)])
    print(format_table(
        ["per-hop policy", "delivered (Mb/s)", "SLA-flow drops"], rows
    ))
    print("\nPer-hop burst budgets (network-calculus inflation):",
          ", ".join(f"hop {i}: {s / 1000:.1f} KB" for i, s in enumerate(sigmas)))
    print("One admission comparison per packet per hop — no per-flow "
          "scheduling state anywhere on the path.")


if __name__ == "__main__":
    main()
