#!/usr/bin/env python3
"""SLA protection: a premium flow survives a misbehaving neighbour.

The paper's motivating scenario as an ISP would see it: a customer buys a
2 Mb/s rate guarantee ("Service Level Agreement") on a shared 10 Mb/s
link; another tenant misbehaves and blasts as fast as it can.  We show
the guarantee being violated under plain FIFO/tail-drop, then restored by
a single per-flow occupancy threshold — Proposition 1's B * rho / R rule
— without touching the FIFO scheduler.

Run:  python examples/sla_protection.py
"""

from repro import (
    CBRSource,
    FixedThresholdManager,
    FIFOScheduler,
    GreedySource,
    OutputPort,
    Simulator,
    StatsCollector,
    TailDropManager,
    flow_threshold,
)
from repro.experiments.report import format_table
from repro.units import kbytes, mbps, to_mbps

LINK = mbps(10.0)
BUFFER = kbytes(100.0)
PREMIUM, ATTACKER = 1, 2
GUARANTEE = mbps(2.0)
SIM_TIME, WARMUP = 30.0, 5.0


def run(manager) -> tuple[float, int]:
    """Return (premium throughput Mb/s, premium drops) under a manager."""
    sim = Simulator()
    collector = StatsCollector(warmup=WARMUP)
    port = OutputPort(sim, LINK, FIFOScheduler(), manager, collector)
    # The attacker floods first; the premium flow sends exactly its SLA.
    GreedySource(sim, ATTACKER, LINK, port, until=SIM_TIME)
    CBRSource(sim, PREMIUM, GUARANTEE, port, start=0.5, until=SIM_TIME)
    sim.run(until=SIM_TIME)
    premium = collector.flows[PREMIUM]
    return (
        to_mbps(premium.departed_bytes / (SIM_TIME - WARMUP)),
        premium.dropped_packets,
    )


def main() -> None:
    # Scenario A: best-effort FIFO (the pre-QoS internet).
    best_effort = run(TailDropManager(BUFFER))

    # Scenario B: same FIFO, plus one occupancy threshold per flow.
    threshold = flow_threshold(0.0, GUARANTEE, BUFFER, LINK) + 500.0
    managed = run(FixedThresholdManager(
        BUFFER, {PREMIUM: threshold, ATTACKER: BUFFER - threshold}
    ))

    print("Premium flow: 2 Mb/s SLA on a 10 Mb/s link vs a flooding tenant\n")
    print(format_table(
        ["policy", "premium rate (Mb/s)", "premium drops"],
        [
            ["FIFO + tail drop", f"{best_effort[0]:.2f}", str(best_effort[1])],
            ["FIFO + threshold (paper)", f"{managed[0]:.2f}", str(managed[1])],
        ],
    ))
    print(f"\nThreshold used: B*rho/R = {threshold / 1000:.1f} KB of the "
          f"{BUFFER / 1000:.0f} KB buffer — one comparison per packet, no "
          "sorted scheduling state.")
    assert managed[1] == 0, "the threshold rule should eliminate premium loss"


if __name__ == "__main__":
    main()
