"""Output-port transmission and admission plumbing."""

import pytest

from repro.core.tail_drop import TailDropManager
from repro.errors import ConfigurationError
from repro.metrics.collector import StatsCollector
from repro.sched.fifo import FIFOScheduler
from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.sim.port import OutputPort


def make_port(rate=1000.0, capacity=10_000.0, warmup=0.0):
    sim = Simulator()
    collector = StatsCollector(warmup=warmup)
    port = OutputPort(sim, rate, FIFOScheduler(), TailDropManager(capacity), collector)
    return sim, port, collector


class TestTransmission:
    def test_single_packet_transmits_in_size_over_rate(self):
        sim, port, collector = make_port(rate=1000.0)
        port.receive(Packet(0, 500.0, 0.0))
        sim.run()
        assert sim.now == pytest.approx(0.5)
        assert collector.flows[0].departed_packets == 1

    def test_back_to_back_packets_serialise(self):
        sim, port, _ = make_port(rate=1000.0)
        port.receive(Packet(0, 500.0, 0.0))
        port.receive(Packet(0, 500.0, 0.0))
        sim.run()
        assert sim.now == pytest.approx(1.0)
        assert port.transmitted_packets == 2

    def test_port_is_work_conserving(self):
        # A packet arriving while the link is idle starts transmitting at
        # its arrival time, not at some later boundary.
        sim, port, collector = make_port(rate=1000.0)
        sim.schedule_at(3.0, port.receive, Packet(0, 100.0, 3.0))
        sim.run()
        assert sim.now == pytest.approx(3.1)

    def test_delay_measured_from_admission_to_departure(self):
        sim, port, collector = make_port(rate=1000.0)
        port.receive(Packet(0, 500.0, 0.0))
        port.receive(Packet(0, 500.0, 0.0))
        sim.run()
        stats = collector.flows[0]
        # First packet: 0.5s (transmission); second: 1.0s (wait + tx).
        assert stats.delay_sum == pytest.approx(1.5)
        assert stats.delay_max == pytest.approx(1.0)

    def test_buffer_freed_on_departure(self):
        sim, port, _ = make_port(rate=1000.0, capacity=600.0)
        assert port.receive(Packet(0, 500.0, 0.0))
        assert not port.receive(Packet(0, 500.0, 0.0))  # buffer full
        sim.run()
        # After the first packet departs there is room again.
        assert port.receive(Packet(0, 500.0, 0.0))

    def test_backlog_counts_in_service_packet(self):
        sim, port, _ = make_port()
        port.receive(Packet(0, 500.0, 0.0))
        port.receive(Packet(0, 500.0, 0.0))
        assert port.backlog_packets == 2  # one queued, one in service


class TestAdmission:
    def test_rejected_packet_counted_as_dropped(self):
        sim, port, collector = make_port(capacity=400.0)
        assert not port.receive(Packet(0, 500.0, 0.0))
        assert port.dropped_packets == 1
        assert collector.flows[0].dropped_packets == 1
        assert collector.flows[0].offered_packets == 1

    def test_admitted_packet_counted(self):
        sim, port, collector = make_port()
        assert port.receive(Packet(0, 500.0, 0.0))
        assert port.admitted_packets == 1
        assert collector.flows[0].offered_packets == 1
        assert collector.flows[0].dropped_packets == 0

    def test_drop_does_not_touch_scheduler(self):
        sim, port, _ = make_port(capacity=400.0)
        port.receive(Packet(0, 500.0, 0.0))
        assert len(port.scheduler) == 0
        assert not port.busy


class TestAccountingIntegrity:
    def test_unstamped_packet_raises_instead_of_zero_delay(self):
        # A packet reaching the link without an `enqueued` timestamp used
        # to be recorded silently with delay `now - None`-turned-zero
        # semantics; it must fail loudly instead.
        from repro.errors import SimulationError

        sim, port, _ = make_port()
        rogue = Packet(0, 500.0, 0.0)
        port.busy = True  # pretend the link grabbed it directly
        sim.schedule(0.5, port._finish_transmission, rogue)
        with pytest.raises(SimulationError, match="enqueue"):
            sim.run()

    def test_admitted_packets_are_always_stamped(self):
        sim, port, _ = make_port()
        packet = Packet(0, 500.0, 0.0)
        assert packet.enqueued is None
        port.receive(packet)
        assert packet.enqueued == pytest.approx(sim.now)
        sim.run()  # and servicing it does not raise


class TestValidation:
    def test_non_positive_rate_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            OutputPort(sim, 0.0, FIFOScheduler(), TailDropManager(1000.0))

    def test_collector_is_optional(self):
        sim = Simulator()
        port = OutputPort(sim, 1000.0, FIFOScheduler(), TailDropManager(1000.0))
        port.receive(Packet(0, 500.0, 0.0))
        sim.run()
        assert port.transmitted_packets == 1


class TestWarmupAccounting:
    def test_events_before_warmup_ignored(self):
        sim, port, collector = make_port(warmup=1.0)
        port.receive(Packet(0, 500.0, 0.0))  # offered at t=0 < warmup
        sim.run()
        # Offered/drop at t=0 ignored; departure at t=0.5 also ignored.
        assert 0 not in collector.flows or collector.flows[0].offered_packets == 0

    def test_departure_after_warmup_counted_even_if_offered_before(self):
        sim, port, collector = make_port(rate=100.0, warmup=1.0)
        port.receive(Packet(0, 500.0, 0.0))  # departs at t=5 > warmup
        sim.run()
        assert collector.flows[0].departed_packets == 1
        assert collector.flows[0].offered_packets == 0


class TestRecycleMode:
    """recycle=True returns port-owned packets to the freelist."""

    @staticmethod
    def _recycling_port(rate=1000.0, capacity=1_000.0):
        sim = Simulator()
        collector = StatsCollector(warmup=0.0)
        port = OutputPort(
            sim,
            rate,
            FIFOScheduler(),
            TailDropManager(capacity),
            collector,
            recycle=True,
        )
        return sim, port, collector

    def test_default_is_no_recycling(self):
        _, port, _ = make_port()
        assert port.recycle is False

    def test_transmitted_packet_returns_to_freelist(self):
        sim, port, _ = self._recycling_port()
        packet = Packet.acquire(0, 500.0, 0.0)
        port.receive(packet)
        sim.run()
        assert Packet.acquire(1, 500.0, 1.0) is packet

    def test_dropped_packet_returns_to_freelist(self):
        sim, port, _ = self._recycling_port(capacity=500.0)
        port.receive(Packet.acquire(0, 500.0, 0.0))  # fills the buffer
        overflow = Packet.acquire(1, 500.0, 0.0)
        assert not port.receive(overflow)
        assert Packet.acquire(2, 500.0, 0.0) is overflow

    def test_recycle_with_downstream_is_refused(self):
        # Recycling mid-path would release dropped packets of a flow while
        # transmitted packets of the same flow are still owned by the next
        # node; the port refuses the combination outright.
        sim = Simulator()

        class Hop:
            def receive(self, packet):
                pass

        with pytest.raises(ConfigurationError, match="recycle"):
            OutputPort(
                sim,
                1000.0,
                FIFOScheduler(),
                TailDropManager(10_000.0),
                downstream=Hop(),
                recycle=True,
            )

    def test_downstream_hop_keeps_ownership(self):
        # Without recycling, the packet is handed to the downstream as-is.
        sim = Simulator()
        received = []

        class Hop:
            def receive(self, packet):
                received.append(packet)

        port = OutputPort(
            sim,
            1000.0,
            FIFOScheduler(),
            TailDropManager(10_000.0),
            downstream=Hop(),
        )
        packet = Packet.acquire(0, 500.0, 0.0)
        port.receive(packet)
        sim.run()
        assert received == [packet]
        assert Packet.acquire(1, 500.0, 1.0) is not packet

    def test_accounting_identical_with_and_without_recycling(self):
        def drive(recycle):
            sim = Simulator()
            collector = StatsCollector(warmup=0.0)
            port = OutputPort(
                sim,
                1000.0,
                FIFOScheduler(),
                TailDropManager(1_000.0),
                collector,
                recycle=recycle,
            )
            for i in range(8):
                sim.schedule(
                    i * 0.1,
                    lambda i=i: port.receive(Packet.acquire(0, 500.0, sim.now)),
                )
            sim.run()
            stats = collector.flows[0]
            return (
                port.admitted_packets,
                port.dropped_packets,
                port.transmitted_packets,
                stats.offered_packets,
                stats.dropped_packets,
                stats.departed_packets,
            )

        assert drive(recycle=True) == drive(recycle=False)
