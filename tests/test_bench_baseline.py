"""Baseline files: schema tagging, integrity digest, atomic persistence."""

from __future__ import annotations

import json

import pytest

from repro.bench.baseline import (
    BENCH_SCHEMA,
    BenchBaseline,
    baseline_filename,
    default_host_tag,
)
from repro.bench.measure import CaseResult
from repro.errors import ConfigurationError


def _case(name="c", wall=(0.5, 0.6), digest="abc", events=100):
    return CaseResult(
        name=name,
        kind="micro",
        digest=digest,
        events=events,
        packets=None,
        wall_times=tuple(wall),
        peak_rss_bytes=1024,
    )


def _baseline(*cases, host_tag="test-host"):
    return BenchBaseline(
        host_tag=host_tag,
        python="3.11.0",
        platform="Linux-x86_64",
        cases=cases or (_case(),),
    )


class TestHostTag:
    def test_default_host_tag_is_os_arch_python(self):
        tag = default_host_tag()
        assert "-py" in tag
        # Only filename-safe characters survive sanitising.
        assert baseline_filename(tag) == f"BENCH_{tag}.json"

    def test_filename_sanitises_hostile_tags(self):
        assert baseline_filename("a/b c!") == "BENCH_a-b-c.json"

    def test_empty_tag_rejected(self):
        with pytest.raises(ConfigurationError):
            baseline_filename("///")


class TestBaselineIntegrity:
    def test_round_trips_through_disk(self, tmp_path):
        baseline = _baseline(_case("one"), _case("two", digest="def"))
        path = baseline.write(tmp_path)
        assert path.name == "BENCH_test-host.json"
        assert BenchBaseline.load(path) == baseline

    def test_schema_tag_is_stamped(self, tmp_path):
        path = _baseline().write(tmp_path)
        raw = json.loads(path.read_text())
        assert raw["schema"] == BENCH_SCHEMA
        assert raw["digest"] == _baseline().digest()

    def test_digest_covers_the_measurements(self):
        slow = _baseline(_case(wall=(1.0,)))
        fast = _baseline(_case(wall=(0.5,)))
        assert slow.digest() != fast.digest()

    def test_hand_edited_file_fails_integrity_check(self, tmp_path):
        path = _baseline().write(tmp_path)
        raw = json.loads(path.read_text())
        raw["cases"]["c"]["wall_times"] = [0.001]
        path.write_text(json.dumps(raw))
        with pytest.raises(ConfigurationError, match="integrity"):
            BenchBaseline.load(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = _baseline().write(tmp_path)
        raw = json.loads(path.read_text())
        raw["schema"] = "repro-bench-v0"
        path.write_text(json.dumps(raw))
        with pytest.raises(ConfigurationError, match="schema"):
            BenchBaseline.load(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not found"):
            BenchBaseline.load(tmp_path / "BENCH_nope.json")

    def test_garbage_json_rejected(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="unreadable"):
            BenchBaseline.load(path)

    def test_non_object_json_rejected(self, tmp_path):
        path = tmp_path / "BENCH_list.json"
        path.write_text("[]")
        with pytest.raises(ConfigurationError, match="not a JSON object"):
            BenchBaseline.load(path)

    def test_no_torn_tmp_files_left_behind(self, tmp_path):
        _baseline().write(tmp_path)
        assert [p.name for p in tmp_path.iterdir()] == ["BENCH_test-host.json"]

    def test_duplicate_case_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            _baseline(_case("same"), _case("same"))

    def test_case_lookup(self):
        baseline = _baseline(_case("one"), _case("two", digest="def"))
        assert baseline.case("two").digest == "def"
        assert baseline.case("absent") is None
