"""Suppression mechanism: noqa comments, reasons, RPR001 meta-findings."""

import textwrap

from repro.lint import lint_source, render_json, render_text, unsuppressed

LIB_PATH = "src/repro/analysis/snippet.py"

# Assembled so this test file itself never contains a live noqa comment.
NOQA = "# repro: " + "noqa"


def lint(source):
    return lint_source(textwrap.dedent(source), LIB_PATH)


class TestSuppression:
    def test_same_line_suppression_excluded_from_exit_findings(self):
        findings = lint(
            f"""
            def check(x):
                assert x >= 0  {NOQA} RPR103 — hypothesis shrinking helper
            """
        )
        assert unsuppressed(findings) == []
        assert len(findings) == 1
        assert findings[0].suppressed
        assert findings[0].suppress_reason == "hypothesis shrinking helper"

    def test_standalone_comment_covers_next_line(self):
        findings = lint(
            f"""
            {NOQA} RPR105 — shared scratch buffer, reset per call
            def collect(values=[]):
                return values
            """
        )
        assert len(findings) == 1
        assert findings[0].suppressed
        assert unsuppressed(findings) == []

    def test_suppression_is_rule_specific(self):
        findings = lint(
            f"""
            def check(x):
                assert x >= 0 and x * 1000 < 5  {NOQA} RPR103 — checked
            """
        )
        ids = {(finding.rule_id, finding.suppressed) for finding in findings}
        assert ("RPR103", True) in ids
        assert ("RPR102", False) in ids  # units finding not covered
        assert len(unsuppressed(findings)) == 1

    def test_multiple_rule_ids_in_one_comment(self):
        findings = lint(
            f"""
            def check(x):
                assert x * 1000 >= 0  {NOQA} RPR102, RPR103 — both deliberate
            """
        )
        assert unsuppressed(findings) == []
        assert {finding.rule_id for finding in findings} == {"RPR102", "RPR103"}

    def test_reason_defaults_to_empty(self):
        findings = lint(
            f"""
            def check(x):
                assert x >= 0  {NOQA} RPR103
            """
        )
        assert findings[0].suppressed
        assert findings[0].suppress_reason == ""


class TestMalformedNoqa:
    def test_blanket_noqa_is_rpr001(self):
        findings = lint(f"x = 1  {NOQA}\n")
        assert [finding.rule_id for finding in findings] == ["RPR001"]
        assert not findings[0].suppressed

    def test_typoed_rule_id_is_rpr001(self):
        findings = lint(f"x = 1  {NOQA} RPR10\n")
        assert [finding.rule_id for finding in findings] == ["RPR001"]

    def test_junk_in_id_section_is_rpr001(self):
        findings = lint(f"x = 1  {NOQA} RPR103 oops — reason\n")
        assert "RPR001" in [finding.rule_id for finding in findings]

    def test_rpr001_counts_toward_exit_code(self):
        findings = lint(f"x = 1  {NOQA}\n")
        assert unsuppressed(findings) != []

    def test_noqa_inside_string_literal_ignored(self):
        findings = lint(f'MESSAGE = "{NOQA} RPR10"\n')
        assert findings == []


class TestStalePragmaRPR002:
    def test_pragma_that_never_fires_is_stale(self):
        findings = lint(f"x = 1  {NOQA} RPR103 — obsolete\n")
        assert [finding.rule_id for finding in findings] == ["RPR002"]
        assert "RPR103" in findings[0].message
        assert not findings[0].suppressed

    def test_partially_stale_pragma_names_only_dead_ids(self):
        findings = lint(
            f"""
            def check(x):
                assert x >= 0  {NOQA} RPR102, RPR103 — both deliberate
            """
        )
        stale = [finding for finding in findings if finding.rule_id == "RPR002"]
        assert len(stale) == 1
        assert "RPR102" in stale[0].message
        assert "RPR103" not in stale[0].message

    def test_used_pragma_is_not_stale(self):
        findings = lint(
            f"""
            def check(x):
                assert x >= 0  {NOQA} RPR103 — deliberate
            """
        )
        assert [finding.rule_id for finding in findings] == ["RPR103"]

    def test_standalone_pragma_used_by_next_line_is_not_stale(self):
        findings = lint(
            f"""
            {NOQA} RPR105 — shared scratch buffer, reset per call
            def collect(values=[]):
                return values
            """
        )
        assert [finding.rule_id for finding in findings] == ["RPR105"]

    def test_stale_pragma_counts_toward_exit_code(self):
        findings = lint(f"x = 1  {NOQA} RPR103 — obsolete\n")
        assert unsuppressed(findings) != []

    def test_restricted_select_skips_staleness(self):
        findings = lint_source(
            f"x = 1  {NOQA} RPR103 — obsolete\n", LIB_PATH, select=["RPR101"]
        )
        assert findings == []


class TestReporters:
    def test_text_hides_suppressed_by_default(self):
        findings = lint(
            f"""
            def check(x):
                assert x >= 0  {NOQA} RPR103 — deliberate
            """
        )
        report = render_text(findings)
        assert "RPR103" not in report
        assert "clean: 0 findings; 1 suppressed" in report

    def test_text_show_suppressed_lists_them_with_reason(self):
        findings = lint(
            f"""
            def check(x):
                assert x >= 0  {NOQA} RPR103 — deliberate
            """
        )
        report = render_text(findings, show_suppressed=True)
        assert "suppressed (1):" in report
        assert "RPR103" in report
        assert "deliberate" in report

    def test_json_show_suppressed_adds_section(self):
        import json

        findings = lint(
            f"""
            def check(x):
                assert x >= 0  {NOQA} RPR103 — deliberate
            """
        )
        bare = json.loads(render_json(findings))
        assert bare["counts"]["total"] == 0
        assert bare["counts"]["suppressed"] == 1
        assert "suppressed_findings" not in bare
        full = json.loads(render_json(findings, show_suppressed=True))
        assert full["suppressed_findings"][0]["rule"] == "RPR103"
        assert full["suppressed_findings"][0]["suppress_reason"] == "deliberate"
