"""Adversarial sources: Example 1's greedy flow and the Prop-2 adversary."""

import pytest

from repro.analysis.fluid import fluid_limits
from repro.core.fixed_threshold import FixedThresholdManager
from repro.core.thresholds import flow_threshold
from repro.errors import ConfigurationError
from repro.metrics.collector import StatsCollector
from repro.metrics.trace import OccupancyProbe
from repro.sched.fifo import FIFOScheduler
from repro.sim.engine import Simulator
from repro.sim.port import OutputPort
from repro.traffic.adversarial import FillThenBurstSource, ThresholdFillingSource
from repro.traffic.shaper import TokenBucketMeter
from repro.traffic.sources import CBRSource

LINK = 1_000_000.0
PKT = 500.0


def build_port(manager, warmup=0.0):
    sim = Simulator()
    collector = StatsCollector(warmup=warmup)
    port = OutputPort(sim, LINK, FIFOScheduler(), manager, collector)
    return sim, port, collector


class TestThresholdFillingSource:
    def test_occupancy_pinned_near_target(self):
        buffer_size = 50_000.0
        target = 30_000.0
        manager = FixedThresholdManager(buffer_size, {2: target})
        sim, port, _ = build_port(manager)
        ThresholdFillingSource(sim, 2, port, target, packet_size=PKT, until=5.0)
        probe = OccupancyProbe(
            sim, 0.01, {"occ": lambda: manager.occupancy(2)}, until=5.0
        )
        sim.run(until=5.0)
        # After the initial fill the occupancy stays within one packet of
        # the target.
        steady = probe.series["occ"][10:]
        assert min(steady) >= target - 2 * PKT
        assert max(steady) <= target + 1e-9

    def test_example1_rates_reproduced(self):
        # Greedy flow pinned at B2, CBR flow at rho1 with threshold B1:
        # long-run rates must approach the fluid limits (rho1, R - rho1).
        buffer_size = 50_000.0
        rho1 = 250_000.0
        threshold1 = flow_threshold(0.0, rho1, buffer_size, LINK) + PKT
        b2 = buffer_size - threshold1
        manager = FixedThresholdManager(buffer_size, {1: threshold1, 2: b2})
        sim, port, collector = build_port(manager, warmup=10.0)
        CBRSource(sim, 1, rho1, port, packet_size=PKT, until=40.0)
        ThresholdFillingSource(sim, 2, port, b2, packet_size=PKT, until=40.0)
        sim.run(until=40.0)
        _l_inf, rate1_inf, rate2_inf = fluid_limits(rho1, buffer_size, LINK)
        measured1 = collector.flows[1].departed_bytes / 30.0
        measured2 = collector.flows[2].departed_bytes / 30.0
        assert measured1 == pytest.approx(rate1_inf, rel=0.03)
        assert measured2 == pytest.approx(rate2_inf, rel=0.03)
        assert collector.flows[1].dropped_packets == 0

    def test_validation(self):
        sim, port, _ = build_port(FixedThresholdManager(1000.0, {0: 500.0}))
        with pytest.raises(ConfigurationError):
            ThresholdFillingSource(sim, 0, port, 0.0)


class TestFillThenBurstSource:
    def test_emitted_stream_is_conformant(self):
        sigma, rho = 20_000.0, 200_000.0

        class MeterSink:
            def __init__(self, clock):
                self.clock = clock
                self.meter = TokenBucketMeter(sigma, rho)
                self.violations = 0

            def receive(self, packet):
                if not self.meter.observe(self.clock(), packet.size):
                    self.violations += 1

        sim = Simulator()
        sink = MeterSink(lambda: sim.now)
        FillThenBurstSource(sim, 1, sigma, rho, sink, burst_at=3.0, until=6.0)
        sim.run(until=6.0)
        assert sink.violations == 0

    def test_burst_fires_once(self):
        sim = Simulator()

        class Counter:
            def __init__(self):
                self.count = 0

            def receive(self, packet):
                self.count += 1

        sink = Counter()
        source = FillThenBurstSource(
            sim, 1, 10_000.0, 100_000.0, sink, burst_at=1.0, until=2.0
        )
        sim.run(until=2.0)
        assert source.burst_fired
        # CBR packets (200/s for 2 s) plus the 19-packet burst.
        burst_packets = int((10_000.0 - PKT) // PKT)
        assert sink.count >= burst_packets

    def test_attains_proposition2_threshold(self):
        # The adversary drives its occupancy to ~sigma + rho B / R, the
        # Prop-2 bound, without ever violating its envelope.
        buffer_size = 100_000.0
        sigma, rho = 20_000.0, 250_000.0
        threshold = flow_threshold(sigma, rho, buffer_size, LINK) + PKT
        manager = FixedThresholdManager(
            buffer_size, {1: threshold, 9: buffer_size - threshold}
        )
        sim, port, collector = build_port(manager)
        # Cross traffic keeps the queue drained slowly.
        ThresholdFillingSource(
            sim, 9, port, buffer_size - threshold, packet_size=PKT, until=20.0
        )
        FillThenBurstSource(sim, 1, sigma, rho, port, burst_at=15.0, until=20.0)
        peak = [0.0]

        def sample():
            peak[0] = max(peak[0], manager.occupancy(1))
            if sim.now < 20.0:
                sim.schedule(0.005, sample)

        sim.schedule_at(0.0, sample)
        sim.run(until=20.0)
        # The flow is conformant, so the Prop-2 threshold protects it.
        assert collector.flows[1].dropped_packets == 0
        # And the burst actually pushed it close to the bound (> sigma).
        assert peak[0] > sigma
