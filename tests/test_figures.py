"""Figure harness: structure and fast-mode execution.

Full qualitative checks live in the benchmarks; here we verify that every
figure function produces well-formed series.  To keep the suite quick we
monkeypatch the sweep sizing down to a couple of points.
"""

import pytest

import repro.experiments.figures as figures_module
from repro.experiments.config import SweepConfig, full_mode_enabled, sweep_config
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.report import format_figure
from repro.units import mbytes

TINY = SweepConfig(buffers=(mbytes(0.5), mbytes(2.0)), seeds=(1,), sim_time=0.6)


@pytest.fixture(autouse=True)
def tiny_sweeps(monkeypatch):
    monkeypatch.setattr(figures_module, "sweep_config", lambda fast=None: TINY)


class TestSweepConfig:
    def test_fast_mode_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert not full_mode_enabled()
        config = sweep_config()
        assert config.sim_time < 20.0

    def test_full_mode_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert full_mode_enabled()
        config = sweep_config()
        assert config.sim_time == 20.0
        assert len(config.seeds) == 5

    def test_explicit_fast_flag_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert sweep_config(fast=True).sim_time < 20.0

    def test_runs_per_scheme(self):
        assert TINY.n_runs_per_scheme == 2


class TestFigureRegistry:
    def test_all_thirteen_figures_registered(self):
        assert sorted(ALL_FIGURES) == sorted(f"figure{i}" for i in range(1, 14))


@pytest.mark.parametrize("name", ["figure1", "figure2", "figure4", "figure7"])
class TestFigureStructure:
    def test_series_aligned_with_x(self, name):
        result = ALL_FIGURES[name]()
        assert result.series
        for label, points in result.series.items():
            assert len(points) == len(result.x), label

    def test_report_renders(self, name):
        result = ALL_FIGURES[name]()
        text = format_figure(result)
        assert result.name in text
        assert result.ylabel in text


class TestFigureSemantics:
    def test_figure1_has_four_schemes(self):
        result = ALL_FIGURES["figure1"]()
        assert len(result.series) == 4

    def test_figure3_has_flow6_and_flow8_curves(self):
        result = ALL_FIGURES["figure3"]()
        assert any("flow 6" in label for label in result.series)
        assert any("flow 8" in label for label in result.series)

    def test_figure7_x_axis_is_headroom(self):
        result = ALL_FIGURES["figure7"]()
        assert "headroom" in result.xlabel

    def test_figure8_includes_hybrid(self):
        result = ALL_FIGURES["figure8"]()
        assert any("Hybrid" in label for label in result.series)

    def test_figure12_splits_conformant_and_moderate(self):
        result = ALL_FIGURES["figure12"]()
        assert any("conformant" in label for label in result.series)
        assert any("moderate" in label for label in result.series)

    def test_figure13_reports_aggressive_flows(self):
        result = ALL_FIGURES["figure13"]()
        assert any("aggressive" in label for label in result.series)
