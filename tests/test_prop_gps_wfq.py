"""Cross-validation: packetized schedulers against the fluid GPS reference.

The Parekh–Gallager result: an exact GPS-tracking packetized scheduler
(PGPS/WFQ) delivers every packet no later than its fluid GPS finish time
plus one maximum packet transmission time.  Our WFQ uses the standard
backlogged-set virtual-time approximation, so we assert the bound with a
small additional slack; SCFQ's bound is looser (it grows with the number
of flows), which the same harness demonstrates.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.gps import gps_finish_times
from repro.core.tail_drop import TailDropManager
from repro.metrics.collector import StatsCollector
from repro.sched.scfq import SCFQScheduler
from repro.sched.wfq import WFQScheduler
from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.sim.port import OutputPort

RATE = 100_000.0
WEIGHTS = {0: 1.0, 1: 2.0, 2: 4.0}
MAX_SIZE = 1_500.0

arrivals_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.01, allow_nan=False),  # gap
        st.integers(min_value=0, max_value=2),
        st.floats(min_value=100.0, max_value=MAX_SIZE, allow_nan=False),
    ),
    min_size=1,
    max_size=60,
)


def departures_under(scheduler_factory, arrivals):
    """Run arrivals through a port; return [(arrival, departure_time)]."""
    sim = Simulator()
    scheduler = scheduler_factory(sim)
    collector = StatsCollector()
    records = []

    # OutputPort is slotted, so tracing hooks go in a subclass rather
    # than instance monkeypatching.
    class TracedPort(OutputPort):
        def _finish_transmission(self, packet):
            super()._finish_transmission(packet)
            records.append((packet, sim.now))

    # Big buffer: no drops, this is purely about ordering/timing.
    port = TracedPort(sim, RATE, scheduler, TailDropManager(1e9), collector)
    time = 0.0
    normalized = []
    for gap, flow_id, size in arrivals:
        time += gap
        normalized.append((time, flow_id, size))
        packet = Packet(flow_id, size, time)
        sim.schedule_at(time, port.receive, packet)
    sim.run()
    records.sort(key=lambda record: record[0].seq)
    return normalized, [departure for _packet, departure in records]


class TestWFQTracksGPS:
    @given(arrivals=arrivals_strategy)
    @settings(max_examples=60, deadline=None)
    def test_departures_within_pgps_style_bound(self, arrivals):
        normalized, departures = departures_under(
            lambda sim: WFQScheduler(lambda: sim.now, RATE, WEIGHTS), arrivals
        )
        gps = gps_finish_times(normalized, WEIGHTS, RATE)
        # Exact PGPS bound is L_max / R; allow 2x for the standard
        # virtual-time approximation used by the implementation.
        slack = 2.0 * MAX_SIZE / RATE
        for entry, departure in zip(gps, departures):
            assert departure <= entry.finish + slack + 1e-9

    @given(arrivals=arrivals_strategy)
    @settings(max_examples=60, deadline=None)
    def test_departures_never_beat_ideal_service(self, arrivals):
        # No packet can depart before arrival + its own transmission time.
        normalized, departures = departures_under(
            lambda sim: WFQScheduler(lambda: sim.now, RATE, WEIGHTS), arrivals
        )
        for (time, _flow, size), departure in zip(normalized, departures):
            assert departure >= time + size / RATE - 1e-9


class TestSCFQTracksGPSLoosely:
    @given(arrivals=arrivals_strategy)
    @settings(max_examples=60, deadline=None)
    def test_departures_within_scfq_bound(self, arrivals):
        normalized, departures = departures_under(
            lambda sim: SCFQScheduler(WEIGHTS), arrivals
        )
        gps = gps_finish_times(normalized, WEIGHTS, RATE)
        # SCFQ's published bound adds one max packet per *other* flow.
        slack = (len(WEIGHTS) + 1) * MAX_SIZE / RATE
        for entry, departure in zip(gps, departures):
            assert departure <= entry.finish + slack + 1e-9
