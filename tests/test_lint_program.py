"""Whole-program lint: the project indexer and RPR107/108/109.

The cross-module rules run through ``lint_paths`` over miniature
multi-file projects materialised under ``tmp_path`` with a ``src/repro``
layout, so name resolution crosses real module boundaries the same way
it does over the repo.
"""

import ast
import textwrap

from repro.check.project import build_project, module_name_for
from repro.lint import lint_paths, lint_source
from repro.lint.registry import LintContext

SIM_PATH = "src/repro/sim/snippet.py"
LIB_PATH = "src/repro/analysis/snippet.py"


def write_project(tmp_path, files):
    """Materialise {relpath: source} and return the lint root."""
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    return str(tmp_path / "src")


def project_rule_ids(tmp_path, files, select):
    root = write_project(tmp_path, files)
    return [finding.rule_id for finding in lint_paths([root], select=select)]


class TestProjectIndexer:
    def test_module_name_strips_src_prefix(self):
        assert module_name_for("src/repro/sim/engine.py") == "repro.sim.engine"
        assert module_name_for("src/repro/obs/__init__.py") == "repro.obs"

    def test_module_name_without_src_anchor(self):
        assert module_name_for("repro/core/packet.py") == "repro.core.packet"

    def _project(self, sources):
        contexts = [
            LintContext(path, textwrap.dedent(src), ast.parse(textwrap.dedent(src)))
            for path, src in sources.items()
        ]
        return build_project(contexts)

    def test_canonical_name_follows_import_alias(self):
        project = self._project(
            {"src/repro/analysis/a.py": "import numpy as np\nx = np.random.default_rng(1)\n"}
        )
        mod = project.module("repro.analysis.a")
        assert (
            project.canonical_name(mod, "np.random.default_rng")
            == "numpy.random.default_rng"
        )

    def test_canonical_name_follows_from_import(self):
        project = self._project(
            {
                "src/repro/analysis/a.py": (
                    "from numpy.random import default_rng\nx = default_rng(1)\n"
                )
            }
        )
        mod = project.module("repro.analysis.a")
        assert project.canonical_name(mod, "default_rng") == "numpy.random.default_rng"

    def test_resolve_class_across_modules(self):
        project = self._project(
            {
                "src/repro/obs/ev.py": "class Drop:\n    kind = 'drop'\n",
                "src/repro/sim/use.py": "from repro.obs.ev import Drop\n",
            }
        )
        use = project.module("repro.sim.use")
        node = project.resolve_class(use, "Drop")
        assert node is not None and node.name == "Drop"

    def test_each_file_parsed_once_shares_ast(self):
        ctx = LintContext("src/repro/x.py", "a = 1\n", ast.parse("a = 1\n"))
        project = build_project([ctx])
        assert project.modules["src/repro/x.py"].ctx is ctx


class TestRngLineageRPR107:
    def test_unseeded_default_rng_flagged(self, tmp_path):
        ids = project_rule_ids(
            tmp_path,
            {
                "src/repro/analysis/a.py": """
                import numpy as np

                def make():
                    return np.random.default_rng()
                """
            },
            select=["RPR107"],
        )
        assert ids == ["RPR107"]

    def test_seeded_default_rng_clean(self, tmp_path):
        ids = project_rule_ids(
            tmp_path,
            {
                "src/repro/analysis/a.py": """
                import numpy as np

                def make(seed):
                    return np.random.default_rng(seed)
                """
            },
            select=["RPR107"],
        )
        assert ids == []

    def test_legacy_global_seed_flagged(self, tmp_path):
        ids = project_rule_ids(
            tmp_path,
            {
                "src/repro/analysis/a.py": """
                import numpy

                def setup(seed):
                    numpy.random.seed(seed)
                """
            },
            select=["RPR107"],
        )
        assert ids == ["RPR107"]

    def test_module_level_stream_flagged_even_when_seeded(self, tmp_path):
        ids = project_rule_ids(
            tmp_path,
            {
                "src/repro/analysis/a.py": """
                import numpy as np

                RNG = np.random.default_rng(7)
                """
            },
            select=["RPR107"],
        )
        assert ids == ["RPR107"]

    def test_stream_aliasing_across_components_flagged(self, tmp_path):
        ids = project_rule_ids(
            tmp_path,
            {
                "src/repro/analysis/a.py": """
                from numpy.random import Generator

                def build(rng: Generator):
                    first = SourceA(rng)
                    second = SourceB(rng)
                    return first, second
                """
            },
            select=["RPR107"],
        )
        # One finding, at the second consumer: the first hand-off is fine.
        assert ids == ["RPR107"]

    def test_spawned_children_not_aliasing(self, tmp_path):
        ids = project_rule_ids(
            tmp_path,
            {
                "src/repro/analysis/a.py": """
                import numpy as np

                def build(seed):
                    root = np.random.SeedSequence(seed)
                    a, b = root.spawn(2)
                    return SourceA(a), SourceB(b)
                """
            },
            select=["RPR107"],
        )
        assert ids == []

    def test_test_files_out_of_scope(self, tmp_path):
        ids = project_rule_ids(
            tmp_path,
            {
                "src/repro/analysis/a.py": "x = 1\n",
                "src/tests_mirror/test_a.py": (
                    "import numpy as np\nRNG = np.random.default_rng()\n"
                ),
            },
            select=["RPR107"],
        )
        assert ids == []


REGISTRY = """
class Enqueue:
    kind = "enqueue"

class Drop:
    kind = "drop"

EVENT_TYPES = {cls.kind: cls for cls in (Enqueue, Drop)}
"""


class TestTraceEventRegistryRPR108:
    def test_unregistered_kind_class_in_registry_module(self, tmp_path):
        ids = project_rule_ids(
            tmp_path,
            {
                "src/repro/obs/ev.py": REGISTRY
                + "\nclass Depart:\n    kind = 'depart'\n"
            },
            select=["RPR108"],
        )
        assert ids == ["RPR108"]

    def test_registered_classes_clean(self, tmp_path):
        ids = project_rule_ids(
            tmp_path, {"src/repro/obs/ev.py": REGISTRY}, select=["RPR108"]
        )
        assert ids == []

    def test_emit_of_unregistered_event_cross_module(self, tmp_path):
        ids = project_rule_ids(
            tmp_path,
            {
                "src/repro/obs/ev.py": REGISTRY
                + "\nclass Depart:\n    kind = 'depart'\n",
                "src/repro/sim/port.py": """
                from repro.obs.ev import Depart

                def drain(sink, t):
                    sink.emit(Depart(t))
                """,
            },
            select=["RPR108"],
        )
        # The stray class itself plus the emit site that ships it.
        assert ids == ["RPR108", "RPR108"]

    def test_emit_of_registered_event_clean(self, tmp_path):
        ids = project_rule_ids(
            tmp_path,
            {
                "src/repro/obs/ev.py": REGISTRY,
                "src/repro/sim/port.py": """
                from repro.obs.ev import Drop

                def drain(sink, t):
                    sink.emit(Drop(t))
                """,
            },
            select=["RPR108"],
        )
        assert ids == []

    def test_no_registry_in_pass_skips_silently(self, tmp_path):
        ids = project_rule_ids(
            tmp_path,
            {
                "src/repro/sim/port.py": """
                class Local:
                    kind = "local"
                """
            },
            select=["RPR108"],
        )
        assert ids == []


class TestTimeAccumulationRPR109:
    def rule_ids(self, source, path=SIM_PATH):
        return [
            finding.rule_id
            for finding in lint_source(
                textwrap.dedent(source), path, select=["RPR109"]
            )
        ]

    def test_loop_accumulated_time_flagged(self):
        assert self.rule_ids(
            """
            def schedule(self, step, n):
                while self.pending:
                    self._next_time += step
            """
        ) == ["RPR109"]

    def test_subtraction_also_flagged(self):
        assert self.rule_ids(
            """
            def rewind(deadline, step, items):
                for _ in items:
                    deadline -= step
            """
        ) == ["RPR109"]

    def test_non_time_counter_clean(self):
        assert self.rule_ids(
            """
            def count(items):
                total = 0
                for _ in items:
                    total += 1
                return total
            """
        ) == []

    def test_time_assignment_outside_loop_clean(self):
        assert self.rule_ids(
            """
            def advance(self, step):
                self._next_time += step
            """
        ) == []

    def test_derived_time_clean(self):
        assert self.rule_ids(
            """
            def schedule(base, step, n):
                return [base + k * step for k in range(n)]
            """
        ) == []

    def test_cold_packages_out_of_scope(self):
        source = """
            def schedule(self, step, items):
                for _ in items:
                    self._next_time += step
            """
        assert self.rule_ids(source, path=LIB_PATH) == []
        assert self.rule_ids(source, path="tests/test_snippet.py") == []
