"""Live buffer pools: accounting, transitions, rescale, observability."""

import pytest

from repro.core.pool import BufferPool
from repro.errors import ConfigurationError, SimulationError
from repro.obs import RingSink
from repro.obs.events import PoolEvent


def invariant(pool):
    return pool.reserved_total + pool.headroom + pool.holes


class TestConstruction:
    def test_starts_as_all_holes(self):
        pool = BufferPool(1000.0)
        assert pool.holes == 1000.0
        assert pool.headroom == 0.0
        assert pool.reserved_total == 0.0
        assert pool.available == 1000.0

    @pytest.mark.parametrize("capacity", [0.0, -1.0])
    def test_non_positive_capacity_rejected(self, capacity):
        with pytest.raises(ConfigurationError):
            BufferPool(capacity)


class TestReserve:
    def test_reserve_consumes_holes_first(self):
        pool = BufferPool(1000.0)
        pool.reserve(1, 300.0)
        pool.retire(1)  # headroom 300, holes 700
        pool.reserve(2, 800.0)
        assert pool.holes == 0.0
        assert pool.headroom == pytest.approx(200.0)
        assert invariant(pool) == pytest.approx(pool.capacity)

    def test_duplicate_reservation_rejected(self):
        pool = BufferPool(1000.0)
        pool.reserve(1, 100.0)
        with pytest.raises(ConfigurationError, match="already holds"):
            pool.reserve(1, 50.0)

    def test_overflow_rejected(self):
        pool = BufferPool(1000.0)
        pool.reserve(1, 900.0)
        assert not pool.can_reserve(200.0)
        with pytest.raises(ConfigurationError, match="exceeds"):
            pool.reserve(2, 200.0)
        assert invariant(pool) == pytest.approx(pool.capacity)

    def test_negative_amount_rejected(self):
        pool = BufferPool(1000.0)
        with pytest.raises(ConfigurationError):
            pool.can_reserve(-1.0)

    def test_exact_fit_admitted(self):
        # Equality is feasible in eq. 9; the pool must agree.
        pool = BufferPool(1000.0)
        pool.reserve(1, 600.0)
        assert pool.can_reserve(400.0)
        pool.reserve(2, 400.0)
        assert pool.available == pytest.approx(0.0)


class TestRetire:
    def test_retire_reclaims_into_headroom(self):
        pool = BufferPool(1000.0)
        pool.reserve(1, 250.0)
        assert pool.retire(1) == 250.0
        assert pool.headroom == 250.0
        assert pool.holes == 750.0
        assert pool.reservation(1) == 0.0
        assert invariant(pool) == pytest.approx(pool.capacity)

    def test_retire_unknown_flow_rejected(self):
        with pytest.raises(ConfigurationError, match="no reservation"):
            BufferPool(1000.0).retire(9)


class TestReprovision:
    def test_growth_served_holes_first(self):
        pool = BufferPool(1000.0)
        pool.reserve(1, 200.0)
        pool.reprovision(1, 500.0)
        assert pool.reservation(1) == 500.0
        assert pool.holes == 500.0
        assert invariant(pool) == pytest.approx(pool.capacity)

    def test_shrink_returns_to_headroom(self):
        pool = BufferPool(1000.0)
        pool.reserve(1, 500.0)
        pool.reprovision(1, 200.0)
        assert pool.headroom == pytest.approx(300.0)
        assert pool.holes == 500.0
        assert invariant(pool) == pytest.approx(pool.capacity)

    def test_growth_beyond_pool_rejected(self):
        pool = BufferPool(1000.0)
        pool.reserve(1, 400.0)
        pool.reserve(2, 500.0)
        with pytest.raises(ConfigurationError, match="exceeds"):
            pool.reprovision(1, 600.0)

    def test_unknown_flow_rejected(self):
        pool = BufferPool(1000.0)
        with pytest.raises(ConfigurationError, match="no reservation"):
            pool.reprovision(1, 100.0)

    def test_negative_amount_rejected(self):
        pool = BufferPool(1000.0)
        pool.reserve(1, 100.0)
        with pytest.raises(ConfigurationError):
            pool.reprovision(1, -1.0)


class TestEffectiveThresholds:
    def test_footnote5_rescale_fills_capacity(self):
        pool = BufferPool(1000.0)
        pool.reserve(1, 100.0)
        pool.reserve(2, 300.0)
        effective = pool.effective_thresholds()
        assert effective[1] == pytest.approx(250.0)
        assert effective[2] == pytest.approx(750.0)
        assert sum(effective.values()) == pytest.approx(1000.0)

    def test_full_pool_returned_unscaled(self):
        pool = BufferPool(1000.0)
        pool.reserve(1, 1000.0)
        assert pool.effective_thresholds() == {1: 1000.0}

    def test_departure_redistributes_survivor_shares(self):
        pool = BufferPool(1000.0)
        pool.reserve(1, 200.0)
        pool.reserve(2, 200.0)
        before = pool.effective_thresholds()[1]
        pool.retire(2)
        after = pool.effective_thresholds()[1]
        assert after == pytest.approx(1000.0)
        assert after > before


class TestConsistency:
    def test_check_catches_corruption(self):
        pool = BufferPool(1000.0)
        pool.reserve(1, 100.0)
        pool.holes += 50.0
        with pytest.raises(SimulationError, match="invariant"):
            pool.check()

    def test_check_catches_negative_counters(self):
        pool = BufferPool(1000.0)
        pool.headroom = -1.0
        pool.holes = 1001.0
        with pytest.raises(SimulationError, match="negative"):
            pool.check()


class TestObservability:
    def test_transitions_emit_pool_events(self):
        pool = BufferPool(1000.0, node="a->b")
        sink = RingSink()
        clock = iter(float(t) for t in range(10))
        pool.attach_trace(sink, lambda: next(clock))
        pool.reserve(1, 400.0)
        pool.reprovision(1, 300.0)
        pool.retire(1)
        events = sink.events()
        assert [type(e) for e in events] == [PoolEvent] * 3
        assert events[0].reserved == 400.0
        assert events[1].headroom == pytest.approx(100.0)
        assert events[2].flows == 0
        for event in events:
            assert event.node == "a->b"
            assert (
                event.reserved + event.headroom + event.holes
                == pytest.approx(event.capacity)
            )

    def test_sink_without_clock_rejected(self):
        with pytest.raises(ConfigurationError, match="clock"):
            BufferPool(1000.0).attach_trace(RingSink(), None)

    def test_metrics_track_the_live_split(self):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        pool = BufferPool(1000.0)
        pool.register_metrics(registry, node="a")
        pool.reserve(1, 400.0)
        pool.retire(1)
        snapshot = registry.snapshot()
        assert snapshot["pool.headroom{node=a}"] == 400.0
        assert snapshot["pool.holes{node=a}"] == 600.0
        assert snapshot["pool.flows{node=a}"] == 0
