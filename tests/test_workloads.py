"""Table 1 / Table 2 workload definitions match the paper."""

import pytest

from repro.experiments.workloads import (
    CASE1_GROUPS,
    CASE2_GROUPS,
    LINK_RATE,
    PACKET_SIZE,
    TABLE1_CONFORMANT,
    TABLE1_NONCONFORMANT,
    TABLE2_AGGRESSIVE,
    TABLE2_CONFORMANT,
    TABLE2_MODERATE,
    table1_flows,
    table2_flows,
)
from repro.units import kbytes, mbps, to_mbps


class TestLink:
    def test_link_rate_is_48_mbps(self):
        assert to_mbps(LINK_RATE) == pytest.approx(48.0)

    def test_packet_size_is_500_bytes(self):
        assert PACKET_SIZE == 500.0


class TestTable1:
    def test_nine_flows(self):
        assert len(table1_flows()) == 9

    def test_flow_ids_sequential(self):
        assert [flow.flow_id for flow in table1_flows()] == list(range(9))

    def test_small_conformant_flows(self):
        for flow in table1_flows()[:3]:
            assert flow.peak_rate == mbps(16.0)
            assert flow.avg_rate == mbps(2.0)
            assert flow.bucket == kbytes(50.0)
            assert flow.token_rate == mbps(2.0)
            assert flow.conformant

    def test_large_conformant_flows(self):
        for flow in table1_flows()[3:6]:
            assert flow.peak_rate == mbps(40.0)
            assert flow.token_rate == mbps(8.0)
            assert flow.bucket == kbytes(100.0)
            assert flow.conformant

    def test_nonconformant_flows_unregulated(self):
        flows = table1_flows()
        for flow_id in TABLE1_NONCONFORMANT:
            assert not flows[flow_id].conformant

    def test_nonconformant_burst_is_5x_bucket(self):
        # "their average burst size also exceeds their token bucket by a
        # factor of 5"
        flows = table1_flows()
        for flow_id in TABLE1_NONCONFORMANT:
            assert flows[flow_id].mean_burst == pytest.approx(5 * flows[flow_id].bucket)

    def test_aggregate_reserved_rate(self):
        # "the aggregate reserved rate is 32.8 Mb/s, or about 68% of the
        # link capacity"
        total = sum(flow.token_rate for flow in table1_flows())
        assert to_mbps(total) == pytest.approx(32.8)
        assert total / LINK_RATE == pytest.approx(0.6833, abs=1e-3)

    def test_mean_offered_load_slightly_above_capacity(self):
        # "the mean offered load is a little over 100% of the output
        # link's capacity"
        total = sum(flow.avg_rate for flow in table1_flows())
        assert 1.0 < total / LINK_RATE < 1.15

    def test_flow8_overloads_8x(self):
        assert table1_flows()[8].overload_factor == pytest.approx(8.0)

    def test_partition_constants(self):
        assert set(TABLE1_CONFORMANT) | set(TABLE1_NONCONFORMANT) == set(range(9))
        assert not set(TABLE1_CONFORMANT) & set(TABLE1_NONCONFORMANT)


class TestTable2:
    def test_thirty_flows(self):
        assert len(table2_flows()) == 30

    def test_conformant_class(self):
        for flow in table2_flows()[:10]:
            assert flow.peak_rate == mbps(8.0)
            assert flow.avg_rate == mbps(0.6)
            assert flow.bucket == kbytes(15.0)
            assert flow.token_rate == mbps(0.6)
            assert flow.conformant

    def test_moderate_class_unshaped_but_profiled(self):
        # Mean rate and burst match the reservation, but unregulated.
        for flow in table2_flows()[10:20]:
            assert not flow.conformant
            assert flow.avg_rate == flow.token_rate
            assert flow.mean_burst == flow.bucket

    def test_aggressive_class(self):
        # "actual arrival rates are over 8 times their requested
        # reservation rates ... average burst size is 500KBytes"
        for flow in table2_flows()[20:]:
            assert not flow.conformant
            assert flow.overload_factor == pytest.approx(8.0)
            assert flow.mean_burst == kbytes(500.0)

    def test_reserved_rate_below_link(self):
        total = sum(flow.token_rate for flow in table2_flows())
        assert to_mbps(total) == pytest.approx(33.0)
        assert total < LINK_RATE

    def test_offered_load_above_capacity(self):
        total = sum(flow.avg_rate for flow in table2_flows())
        assert total > LINK_RATE


class TestGroups:
    def test_case1_groups_partition_table1(self):
        flat = [f for group in CASE1_GROUPS for f in group]
        assert sorted(flat) == list(range(9))

    def test_case1_grouping_by_class(self):
        assert CASE1_GROUPS[0] == (0, 1, 2)
        assert CASE1_GROUPS[1] == (3, 4, 5)
        assert CASE1_GROUPS[2] == (6, 7, 8)

    def test_case2_groups_partition_table2(self):
        flat = [f for group in CASE2_GROUPS for f in group]
        assert sorted(flat) == list(range(30))

    def test_case2_groups_match_classes(self):
        assert CASE2_GROUPS == (TABLE2_CONFORMANT, TABLE2_MODERATE, TABLE2_AGGRESSIVE)
