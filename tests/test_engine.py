"""Discrete-event engine behaviour."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_schedule_fires_callback_with_args(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, "x")
        sim.run()
        assert seen == ["x"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        times = []
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.5]

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, 3)
        sim.schedule(1.0, order.append, 1)
        sim.schedule(2.0, order.append, 2)
        sim.run()
        assert order == [1, 2, 3]

    def test_same_time_events_fire_in_schedule_order(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.schedule(1.0, order.append, i)
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(4.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [4.0]

    def test_scheduling_in_the_past_raises(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_events_can_schedule_more_events(self):
        sim = Simulator()
        seen = []

        def chain(n):
            seen.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert seen == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestRunUntil:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(5.0, fired.append, "late")
        sim.run(until=2.0)
        assert fired == ["early"]

    def test_run_until_leaves_clock_at_until(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_until_keeps_pending_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "late")
        sim.run(until=2.0)
        assert sim.pending == 1
        sim.run(until=6.0)
        assert fired == ["late"]

    def test_event_exactly_at_until_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "boundary")
        sim.run(until=2.0)
        assert fired == ["boundary"]

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_cancelled_events_not_counted_as_processed(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None).cancel()
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.events_processed == 1


class TestHeapCompaction:
    """Cancel-heavy workloads must not grow the heap without bound."""

    def test_mass_cancellation_shrinks_heap(self):
        # Regression: before compaction, 10k cancelled events with far-off
        # deadlines would sit in the heap until their time was reached.
        sim = Simulator()
        keeper = sim.schedule(1e9, lambda: None)
        events = [sim.schedule(1e6 + i, lambda: None) for i in range(10_000)]
        for event in events:
            event.cancel()
        assert sim.pending < 100
        assert sim.compactions > 0
        assert not keeper.cancelled

    def test_compaction_preserves_firing_order(self):
        sim = Simulator()
        order = []
        doomed = []
        for i in range(150):
            sim.schedule(float(2 * i), order.append, i)
            doomed.append(sim.schedule(float(2 * i + 1), order.append, -i))
        # Two doomed cohorts so cancellations clearly exceed half the heap.
        doomed.extend(sim.schedule(1000.0 + i, order.append, -i) for i in range(150))
        for event in doomed:
            event.cancel()
        assert sim.compactions > 0
        sim.run()
        assert order == list(range(150))

    def test_small_heaps_skip_compaction(self):
        # Below COMPACT_MIN_HEAP lazy deletion is cheaper than a rebuild.
        sim = Simulator()
        for _ in range(10):
            sim.schedule(1.0, lambda: None).cancel()
        assert sim.compactions == 0
        assert sim.cancelled_pending == 10

    def test_pop_of_cancelled_event_rebalances_counter(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None).cancel()
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.cancelled_pending == 0

    def test_cancel_during_run_is_safe(self):
        # A callback cancelling enough events to trigger a compaction must
        # not desynchronise the loop's view of the heap.
        sim = Simulator()
        fired = []
        doomed = [sim.schedule(10.0 + i, fired.append, -i) for i in range(100)]

        def cancel_all():
            for event in doomed:
                event.cancel()

        sim.schedule(1.0, cancel_all)
        sim.schedule(2.0, fired.append, "survivor")
        sim.run()
        assert fired == ["survivor"]
        assert sim.compactions > 0


class TestStep:
    def test_step_fires_one_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        assert sim.step()
        assert fired == [1]

    def test_step_on_empty_heap_returns_false(self):
        assert not Simulator().step()

    def test_step_skips_cancelled(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a").cancel()
        sim.schedule(2.0, fired.append, "b")
        assert sim.step()
        assert fired == ["b"]


class TestScheduleFast:
    """The handle-free hot path: same ordering, no Event allocation."""

    def test_returns_no_handle(self):
        sim = Simulator()
        assert sim.schedule_fast(1.0, lambda: None) is None

    def test_fires_with_args(self):
        sim = Simulator()
        seen = []
        sim.schedule_fast(1.0, seen.append, "x")
        sim.run()
        assert seen == ["x"]
        assert sim.now == 1.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_fast(-0.1, lambda: None)

    def test_ties_break_in_scheduling_order_across_both_apis(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, "a")
        sim.schedule_fast(1.0, order.append, "b")
        sim.schedule(1.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_counts_toward_pending_and_processed(self):
        sim = Simulator()
        sim.schedule_fast(1.0, lambda: None)
        assert sim.pending == 1
        sim.run()
        assert sim.pending == 0
        assert sim.events_processed == 1

    def test_max_events_budget_still_enforced(self):
        sim = Simulator()

        def loop():
            sim.schedule_fast(0.1, loop)

        sim.schedule_fast(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)


class TestRunAccounting:
    """run() keeps the pending/cancelled books exactly like step() did."""

    def test_cancelled_pending_drained_by_run(self):
        sim = Simulator()
        fired = []
        events = [sim.schedule(i * 0.1, fired.append, i) for i in range(10)]
        for event in events[::2]:
            event.cancel()
        assert sim.cancelled_pending == 5
        assert sim.pending == 10
        sim.run()
        assert fired == [1, 3, 5, 7, 9]
        assert sim.cancelled_pending == 0
        assert sim.pending == 0

    def test_cancelled_event_beyond_until_still_drained(self):
        # Legacy semantics: the drain happens when the cancelled entry
        # reaches the top of the heap, even past the `until` horizon.
        sim = Simulator()
        live = []
        sim.schedule(5.0, live.append, "late").cancel()
        sim.run(until=1.0)
        assert sim.cancelled_pending == 0
        assert sim.pending == 0
        assert live == []

    def test_live_event_beyond_until_survives(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "late")
        sim.run(until=1.0)
        assert sim.now == 1.0
        assert fired == []
        assert sim.pending == 1
        sim.run()
        assert fired == ["late"]
        assert sim.now == 5.0

    def test_callbacks_see_live_event_counter(self):
        # Callbacks may read events_processed mid-run (the micro
        # benchmarks do); the fast loop must not batch the updates.
        sim = Simulator()
        seen = []
        for i in range(3):
            sim.schedule_fast(float(i), lambda: seen.append(sim.events_processed))
        sim.run()
        assert seen == [1, 2, 3]
