"""Tail-drop (no management) baseline."""

from repro.core.tail_drop import TailDropManager


class TestTailDrop:
    def test_admits_anything_that_fits(self):
        manager = TailDropManager(1000.0)
        assert manager.try_admit(0, 600.0)
        assert manager.try_admit(1, 400.0)

    def test_rejects_when_full(self):
        manager = TailDropManager(1000.0)
        manager.try_admit(0, 1000.0)
        assert not manager.try_admit(1, 1.0)

    def test_no_per_flow_differentiation(self):
        # The failure mode the paper fixes: one flow may take everything.
        manager = TailDropManager(1000.0)
        assert manager.try_admit(7, 1000.0)
        assert manager.occupancy(7) == 1000.0
        assert not manager.try_admit(0, 1.0)

    def test_exact_fit_admitted(self):
        manager = TailDropManager(1000.0)
        manager.try_admit(0, 400.0)
        assert manager.try_admit(1, 600.0)

    def test_departure_reopens(self):
        manager = TailDropManager(1000.0)
        manager.try_admit(0, 1000.0)
        manager.on_depart(0, 500.0)
        assert manager.try_admit(1, 500.0)
