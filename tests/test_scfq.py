"""Self-clocked fair queueing."""

import pytest

from repro.errors import ConfigurationError
from repro.sched.scfq import SCFQScheduler
from repro.sim.packet import Packet


def pkt(flow_id, size=100.0):
    return Packet(flow_id, size, 0.0)


class TestValidation:
    def test_empty_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            SCFQScheduler({})

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            SCFQScheduler({0: 0.0})

    def test_unknown_flow_rejected(self):
        scfq = SCFQScheduler({0: 1.0})
        with pytest.raises(ConfigurationError):
            scfq.enqueue(pkt(9))


class TestOrdering:
    def test_single_flow_is_fifo(self):
        scfq = SCFQScheduler({0: 1.0})
        packets = [pkt(0) for _ in range(4)]
        for packet in packets:
            scfq.enqueue(packet)
        assert [scfq.dequeue() for _ in range(4)] == packets

    def test_equal_weights_alternate(self):
        scfq = SCFQScheduler({0: 1.0, 1: 1.0})
        for _ in range(3):
            scfq.enqueue(pkt(0))
            scfq.enqueue(pkt(1))
        assert [scfq.dequeue().flow_id for _ in range(6)] == [0, 1, 0, 1, 0, 1]

    def test_weight_ratio_respected(self):
        scfq = SCFQScheduler({0: 3.0, 1: 1.0})
        for _ in range(12):
            scfq.enqueue(pkt(0))
        for _ in range(12):
            scfq.enqueue(pkt(1))
        first_eight = [scfq.dequeue().flow_id for _ in range(8)]
        assert first_eight.count(0) == 6

    def test_dequeue_empty_returns_none(self):
        assert SCFQScheduler({0: 1.0}).dequeue() is None


class TestSelfClocking:
    def test_virtual_time_is_serving_packets_tag(self):
        scfq = SCFQScheduler({0: 100.0})
        scfq.enqueue(pkt(0, size=100.0))
        scfq.enqueue(pkt(0, size=100.0))
        scfq.dequeue()
        # First packet's tag: 100/100 = 1.0
        assert scfq.virtual_time == pytest.approx(1.0)

    def test_late_flow_starts_from_current_virtual_time(self):
        # A flow arriving mid-busy-period is tagged from V, so it cannot
        # claim bandwidth for the time it was idle.
        scfq = SCFQScheduler({0: 1.0, 1: 1.0})
        for _ in range(10):
            scfq.enqueue(pkt(0))
        for _ in range(5):
            scfq.dequeue()
        scfq.enqueue(pkt(1))
        # Flow 1's tag = V + 100; flow 0's next tag is 600 > V + 100 = 600?
        # Equal weights: flow 0 is at tag 600, flow 1 at 500 + 100 = 600.
        # Tie broken by sequence -> flow 0's packet was enqueued first.
        flows = [scfq.dequeue().flow_id for _ in range(6)]
        assert 1 in flows  # the latecomer is served within the window
        assert flows.count(0) == 5

    def test_busy_period_reset(self):
        scfq = SCFQScheduler({0: 1.0})
        scfq.enqueue(pkt(0))
        scfq.dequeue()
        assert scfq.virtual_time == 0.0  # reset when the queue drained


class TestAccounting:
    def test_len_and_backlog(self):
        scfq = SCFQScheduler({0: 1.0, 1: 1.0})
        scfq.enqueue(pkt(0, size=300.0))
        scfq.enqueue(pkt(1, size=200.0))
        assert len(scfq) == 2
        assert scfq.backlog_bytes == 500.0

    def test_queue_length(self):
        scfq = SCFQScheduler({0: 1.0, 1: 1.0})
        scfq.enqueue(pkt(0))
        scfq.enqueue(pkt(0))
        assert scfq.queue_length(0) == 2
        assert scfq.queue_length(1) == 0

    def test_conservation(self):
        scfq = SCFQScheduler({0: 2.0, 1: 1.0})
        sent = [pkt(i % 2, 50.0 + i) for i in range(20)]
        for packet in sent:
            scfq.enqueue(packet)
        served = [scfq.dequeue() for _ in range(20)]
        assert sorted(p.seq for p in served) == sorted(p.seq for p in sent)
        assert scfq.dequeue() is None
