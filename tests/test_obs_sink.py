"""Trace sinks: bounded ring and streaming JSONL."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.events import TRACE_SCHEMA, EnqueueEvent
from repro.obs.reader import read_events
from repro.obs.sink import JsonlSink, RingSink, TraceSink


def make_event(i):
    return EnqueueEvent(time=float(i), flow_id=i, size=500.0, backlog=i)


class TestRingSink:
    def test_keeps_most_recent_events(self):
        sink = RingSink(capacity=3)
        for i in range(5):
            sink.emit(make_event(i))
        assert [e.flow_id for e in sink.events()] == [2, 3, 4]
        assert len(sink) == 3
        assert sink.emitted == 5  # drops are counted, not lost silently

    def test_clear(self):
        sink = RingSink(capacity=3)
        sink.emit(make_event(0))
        sink.clear()
        assert sink.events() == []
        assert sink.emitted == 1

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            RingSink(capacity=0)

    def test_satisfies_protocol(self):
        assert isinstance(RingSink(), TraceSink)


class TestJsonlSink:
    def test_header_then_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(make_event(1))
            sink.emit(make_event(2))
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header == {"kind": "header", "schema": TRACE_SCHEMA}
        assert len(lines) == 3
        assert sink.emitted == 2

    def test_round_trips_through_reader(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        events = [make_event(i) for i in range(4)]
        with JsonlSink(path) as sink:
            for event in events:
                sink.emit(event)
        assert list(read_events(path)) == events

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "trace.jsonl"
        with JsonlSink(path):
            pass
        assert path.is_file()

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "trace.jsonl")
        sink.close()
        with pytest.raises(ConfigurationError):
            sink.emit(make_event(0))

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "trace.jsonl")
        sink.close()
        sink.close()

    def test_satisfies_protocol(self, tmp_path):
        sink = JsonlSink(tmp_path / "trace.jsonl")
        try:
            assert isinstance(sink, TraceSink)
        finally:
            sink.close()


class TestReader:
    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "enqueue"}\n')
        with pytest.raises(ConfigurationError):
            list(read_events(path))

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "header", "schema": "repro-trace-v999"}\n')
        with pytest.raises(ConfigurationError):
            list(read_events(path))

    def test_unparsable_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"kind": "header", "schema": TRACE_SCHEMA}) + "\nnot json\n"
        )
        with pytest.raises(ConfigurationError):
            list(read_events(path))

    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(make_event(1))
        path.write_text(path.read_text() + "\n\n")
        assert len(list(read_events(path))) == 1
