"""Threshold formulas (Propositions 1-2, footnote 5, Section 4.2)."""

import pytest

from repro.core.thresholds import (
    compute_thresholds,
    flow_threshold,
    hybrid_flow_threshold,
    scale_to_partition,
)
from repro.errors import ConfigurationError


class TestFlowThreshold:
    def test_proposition2_formula(self):
        # T = sigma + rho * B / R
        assert flow_threshold(50_000.0, 250_000.0, 1_000_000.0, 6_000_000.0) == pytest.approx(
            50_000.0 + 250_000.0 * 1_000_000.0 / 6_000_000.0
        )

    def test_zero_sigma_recovers_proposition1(self):
        # Peak-rate flows: T = rho * B / R.
        assert flow_threshold(0.0, 3_000_000.0, 1_000_000.0, 6_000_000.0) == pytest.approx(
            500_000.0
        )

    def test_threshold_scales_linearly_with_buffer(self):
        t1 = flow_threshold(0.0, 1000.0, 10_000.0, 10_000.0)
        t2 = flow_threshold(0.0, 1000.0, 20_000.0, 10_000.0)
        assert t2 == pytest.approx(2 * t1)

    def test_rate_share_of_buffer(self):
        # A flow reserving half the link gets half the buffer (plus sigma).
        threshold = flow_threshold(0.0, 500.0, 8_000.0, 1000.0)
        assert threshold == pytest.approx(4_000.0)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            flow_threshold(-1.0, 100.0, 1000.0, 1000.0)
        with pytest.raises(ConfigurationError):
            flow_threshold(1.0, -100.0, 1000.0, 1000.0)
        with pytest.raises(ConfigurationError):
            flow_threshold(1.0, 100.0, 0.0, 1000.0)


class TestScaleToPartition:
    def test_underallocated_thresholds_scaled_up(self):
        thresholds = {0: 100.0, 1: 300.0}
        scaled = scale_to_partition(thresholds, 800.0)
        assert scaled[0] == pytest.approx(200.0)
        assert scaled[1] == pytest.approx(600.0)
        assert sum(scaled.values()) == pytest.approx(800.0)

    def test_oversubscribed_thresholds_unchanged(self):
        thresholds = {0: 600.0, 1: 600.0}
        assert scale_to_partition(thresholds, 800.0) == thresholds

    def test_exact_partition_unchanged(self):
        thresholds = {0: 400.0, 1: 400.0}
        assert scale_to_partition(thresholds, 800.0) == thresholds

    def test_scaling_preserves_ratios(self):
        thresholds = {0: 100.0, 1: 200.0, 2: 300.0}
        scaled = scale_to_partition(thresholds, 6000.0)
        assert scaled[1] / scaled[0] == pytest.approx(2.0)
        assert scaled[2] / scaled[0] == pytest.approx(3.0)


class TestComputeThresholds:
    PROFILES = {0: (50_000.0, 250_000.0), 1: (100_000.0, 1_000_000.0)}

    def test_per_flow_formula_applied(self):
        thresholds = compute_thresholds(
            self.PROFILES, 100_000.0, 6_000_000.0, fully_partition=False
        )
        assert thresholds[0] == pytest.approx(50_000.0 + 250_000.0 / 60.0)
        assert thresholds[1] == pytest.approx(100_000.0 + 1_000_000.0 / 60.0)

    def test_full_partition_scales_up_when_buffer_large(self):
        thresholds = compute_thresholds(self.PROFILES, 10_000_000.0, 6_000_000.0)
        assert sum(thresholds.values()) == pytest.approx(10_000_000.0)

    def test_partition_keeps_thresholds_when_oversubscribed(self):
        small = compute_thresholds(self.PROFILES, 100_000.0, 6_000_000.0)
        unscaled = compute_thresholds(
            self.PROFILES, 100_000.0, 6_000_000.0, fully_partition=False
        )
        assert small == unscaled  # sum(T) > B already


class TestHybridFlowThreshold:
    def test_section42_formula(self):
        # sigma_j + (rho_j / rho_hat_i) * B_i
        assert hybrid_flow_threshold(50_000.0, 250_000.0, 1_500_000.0, 600_000.0) == (
            pytest.approx(50_000.0 + (250_000.0 / 1_500_000.0) * 600_000.0)
        )

    def test_flow_owning_whole_queue_gets_whole_buffer(self):
        assert hybrid_flow_threshold(0.0, 100.0, 100.0, 5000.0) == pytest.approx(5000.0)

    def test_invalid_queue_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            hybrid_flow_threshold(0.0, 100.0, 0.0, 5000.0)
        with pytest.raises(ConfigurationError):
            hybrid_flow_threshold(0.0, 100.0, 100.0, 0.0)
