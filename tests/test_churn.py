"""Dynamic flow churn: determinism, route-wide admission, accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.fabric import (
    ChurnSpec,
    LinkSpec,
    NetworkScenario,
    NodeSpec,
    RoutedFlow,
    run_fabric,
)
from repro.experiments.fabric.demo import demo_tandem
from repro.experiments.schemes import Scheme
from repro.traffic.profiles import FlowSpec
from repro.units import kbytes, mbps, mbytes

LINK = mbps(48.0)
BUF = mbytes(1.0)


def conformant(flow_id):
    return FlowSpec(
        flow_id=flow_id,
        peak_rate=mbps(8.0),
        avg_rate=mbps(2.0),
        bucket=kbytes(50.0),
        token_rate=mbps(2.0),
        conformant=True,
        mean_burst=kbytes(50.0),
    )


def churn_scenario(
    mean_holding,
    *,
    arrival_rate=50.0,
    sim_time=2.0,
    seed=13,
    scheme=Scheme.FIFO_THRESHOLD,
    flows=(),
):
    """One 48 Mbit/s link under a churn-only (or churn-plus-static) load.

    With the conformant (50 KB, 2 Mbit/s) template, the FIFO admission
    region of a 1 MB buffer holds about ten concurrent flows.
    """
    return NetworkScenario(
        nodes=(NodeSpec("a", scheme, BUF), NodeSpec("b")),
        links=(LinkSpec("a", "b", LINK),),
        flows=tuple(flows),
        churn=ChurnSpec(
            arrival_rate=arrival_rate,
            mean_holding=mean_holding,
            templates=(conformant(0),),
            routes=(("a", "b"),),
        ),
        sim_time=sim_time,
        seed=seed,
    )


class TestDeterminism:
    def test_same_seed_reproduces_report_and_event_count(self):
        scenario = demo_tandem(hops=2, sim_time=4.0, seed=11)
        first = run_fabric(scenario)
        second = run_fabric(scenario)
        assert first.churn is not None
        assert first.churn.to_dict() == second.churn.to_dict()
        assert first.events_processed == second.events_processed

    def test_different_seed_changes_the_arrival_pattern(self):
        a = run_fabric(demo_tandem(hops=2, sim_time=4.0, seed=11)).churn
        b = run_fabric(demo_tandem(hops=2, sim_time=4.0, seed=12)).churn
        assert a.to_dict() != b.to_dict()

    def test_churn_does_not_perturb_static_sample_paths(self):
        # The churn seed child is spawned after the static flows', so the
        # traffic each static source offers at its entry hop must be
        # identical with churn on or off (drops downstream may differ).
        with_churn = run_fabric(demo_tandem(hops=2, sim_time=4.0, seed=5))
        without = run_fabric(demo_tandem(hops=2, sim_time=4.0, seed=5, churn=False))
        entry = "n0->n1"
        for flow_id in (0, 100, 101):
            assert (
                with_churn.links[entry].flow_stats[flow_id].offered_packets
                == without.links[entry].flow_stats[flow_id].offered_packets
            )


class TestBlockingAccounting:
    def test_arrivals_split_exactly_into_outcomes(self):
        report = run_fabric(demo_tandem(hops=3, sim_time=8.0, seed=0)).churn
        assert report.arrivals > 0
        assert report.accepted > 0
        assert report.blocked > 0
        assert report.arrivals == report.accepted + report.blocked
        assert report.blocked == report.blocked_bandwidth + report.blocked_buffer
        assert 0.0 < report.blocking_probability < 1.0

    def test_per_node_counts_sum_to_the_global_split(self):
        report = run_fabric(demo_tandem(hops=3, sim_time=8.0, seed=0)).churn
        bandwidth = sum(
            counts.get("bandwidth-limited", 0) for counts in report.per_node.values()
        )
        buffer = sum(
            counts.get("buffer-limited", 0) for counts in report.per_node.values()
        )
        assert bandwidth == report.blocked_bandwidth
        assert buffer == report.blocked_buffer

    def test_lifecycle_conservation(self):
        report = run_fabric(demo_tandem(hops=2, sim_time=6.0, seed=4)).churn
        assert report.departures + report.active_at_end == report.accepted

    def test_report_round_trips(self):
        from repro.experiments.fabric import ChurnReport

        report = run_fabric(demo_tandem(hops=2, sim_time=4.0, seed=2)).churn
        assert ChurnReport.from_dict(report.to_dict()) == report

    def test_unknown_rejections_counted_separately(self):
        from repro.experiments.fabric import ChurnReport

        report = ChurnReport(
            arrivals=5, accepted=2, blocked_bandwidth=1, blocked_buffer=1,
            blocked_unknown=1,
        )
        assert report.blocked == 3
        assert report.to_dict()["blocked_unknown"] == 1
        assert ChurnReport.from_dict(report.to_dict()) == report

    def test_unclassified_rejection_is_not_charged_to_buffer(self):
        from repro.experiments.fabric.churn import FlowChurnProcess

        process = FlowChurnProcess.__new__(FlowChurnProcess)
        from repro.experiments.fabric import ChurnReport

        process.report = ChurnReport()
        process._record_rejection("a", None)
        assert process.report.blocked_unknown == 1
        assert process.report.blocked_buffer == 0
        assert process.report.blocked_bandwidth == 0
        assert process.report.per_node["a"] == {"unknown": 1}

    def test_old_records_without_unknown_still_load(self):
        from repro.experiments.fabric import ChurnReport

        raw = ChurnReport(arrivals=3, accepted=3).to_dict()
        del raw["blocked_unknown"]
        assert ChurnReport.from_dict(raw).blocked_unknown == 0


class TestAdmissionRelease:
    def test_departures_release_capacity_for_later_arrivals(self):
        # ~100 arrivals against a ~10-flow region.  With 20 ms holding
        # the region keeps draining and almost everyone gets in; with
        # 1000 s holding the first ~10 fill it for the whole run.
        quick = run_fabric(churn_scenario(0.02)).churn
        squatters = run_fabric(churn_scenario(1000.0)).churn
        assert quick.departures > 0
        assert squatters.departures == 0
        assert quick.accepted > 2 * squatters.accepted
        assert squatters.blocked_buffer > 0

    def test_saturated_link_blocks_buffer_limited_at_the_entry_node(self):
        report = run_fabric(churn_scenario(1000.0)).churn
        assert set(report.per_node) == {"a"}
        assert report.per_node["a"].get("buffer-limited", 0) == report.blocked


class TestConfigurationGuards:
    def test_overbooked_static_population_is_refused(self):
        flows = tuple(
            RoutedFlow(spec=conformant(i), route=("a", "b")) for i in range(12)
        )
        with pytest.raises(ConfigurationError, match="does not fit the admission"):
            run_fabric(churn_scenario(1.0, flows=flows))

    def test_non_fifo_scheme_on_churn_route_is_refused(self):
        flows = (RoutedFlow(spec=conformant(1), route=("a", "b")),)
        with pytest.raises(ConfigurationError, match="FIFO-family"):
            run_fabric(
                churn_scenario(1.0, scheme=Scheme.WFQ_THRESHOLD, flows=flows)
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"arrival_rate": 0.0},
            {"mean_holding": -1.0},
            {"templates": ()},
            {"routes": ()},
            {"routes": (("a",),)},
            {"admission": "oracle"},
        ],
        ids=["rate", "holding", "templates", "routes", "short-route", "admission"],
    )
    def test_invalid_churn_spec_rejected(self, kwargs):
        base = dict(
            arrival_rate=6.0,
            mean_holding=1.0,
            templates=(conformant(0),),
            routes=(("a", "b"),),
        )
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            ChurnSpec(**base)
