"""Metrics registry: instruments, labels, snapshots, merging."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry


class TestInstruments:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        a = registry.counter("drops")
        b = registry.counter("drops")
        assert a is b
        a.inc(3)
        assert registry.snapshot()["drops"] == 3.0

    def test_counter_rejects_decrease(self):
        counter = MetricsRegistry().counter("drops")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("occupancy")
        gauge.set(10.0)
        gauge.inc(5.0)
        gauge.dec(2.0)
        assert registry.snapshot()["occupancy"] == 13.0

    def test_labels_distinguish_instruments(self):
        registry = MetricsRegistry()
        registry.counter("drops", flow=1).inc()
        registry.counter("drops", flow=2).inc(2)
        snap = registry.snapshot()
        assert snap["drops{flow=1}"] == 1.0
        assert snap["drops{flow=2}"] == 2.0

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        a = registry.gauge("x", b=1, a=2)
        b = registry.gauge("x", a=2, b=1)
        assert a is b

    def test_cross_family_name_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")
        with pytest.raises(ConfigurationError):
            registry.histogram("x")
        with pytest.raises(ConfigurationError):
            registry.gauge_callback("x", lambda: 0.0)

    def test_gauge_callback_sampled_at_snapshot(self):
        registry = MetricsRegistry()
        state = {"v": 1.0}
        registry.gauge_callback("live", lambda: state["v"])
        assert registry.snapshot()["live"] == 1.0
        state["v"] = 7.0
        assert registry.snapshot()["live"] == 7.0

    def test_gauge_callback_rebind_allowed(self):
        registry = MetricsRegistry()
        registry.gauge_callback("live", lambda: 1.0)
        registry.gauge_callback("live", lambda: 2.0)
        assert registry.snapshot()["live"] == 2.0

    def test_histogram_snapshot_shape(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("wall", lo=1e-3, hi=10.0)
        for value in (0.01, 0.02, 0.04):
            histogram.record(value)
        entry = registry.snapshot()["wall"]
        assert entry["count"] == 3
        assert entry["mean"] == pytest.approx(0.07 / 3)
        assert entry["max"] == 0.04
        assert set(entry) == {"count", "mean", "max", "p50", "p95", "p99"}


class TestMerge:
    def test_counters_add_and_gauges_overwrite(self):
        ours = MetricsRegistry()
        theirs = MetricsRegistry()
        ours.counter("drops").inc(2)
        theirs.counter("drops").inc(3)
        ours.gauge("occupancy").set(1.0)
        theirs.gauge("occupancy").set(9.0)
        ours.merge(theirs)
        snap = ours.snapshot()
        assert snap["drops"] == 5.0
        assert snap["occupancy"] == 9.0

    def test_histograms_merge_binwise(self):
        ours = MetricsRegistry()
        theirs = MetricsRegistry()
        ours.histogram("wall", lo=1e-3, hi=10.0).record(0.01)
        theirs.histogram("wall", lo=1e-3, hi=10.0).record(0.1)
        ours.merge(theirs)
        entry = ours.snapshot()["wall"]
        assert entry["count"] == 2
        assert entry["max"] == 0.1

    def test_merge_creates_missing_histogram_with_same_binning(self):
        ours = MetricsRegistry()
        theirs = MetricsRegistry()
        theirs.histogram("wall", lo=1e-2, hi=100.0, bins_per_decade=4).record(1.0)
        ours.merge(theirs)
        mine = ours.histogram("wall", lo=1e-2, hi=100.0, bins_per_decade=4)
        assert mine.count == 1

    def test_callbacks_not_merged(self):
        ours = MetricsRegistry()
        theirs = MetricsRegistry()
        theirs.gauge_callback("live", lambda: 1.0)
        ours.merge(theirs)
        assert "live" not in ours.snapshot()


class TestComponentRegistration:
    def test_simulator_metrics(self):
        from repro.sim.engine import Simulator

        registry = MetricsRegistry()
        sim = Simulator()
        sim.register_metrics(registry)
        sim.schedule(1.0, lambda: None)
        sim.run(until=2.0)
        snap = registry.snapshot()
        assert snap["sim.events_processed"] == 1.0
        assert snap["sim.now"] == 2.0
        assert snap["sim.pending"] == 0.0

    def test_manager_metrics(self):
        from repro.core.fixed_threshold import FixedThresholdManager

        registry = MetricsRegistry()
        manager = FixedThresholdManager(
            capacity=1000.0, thresholds={}, default_threshold=400.0
        )
        manager.register_metrics(registry)
        manager.try_admit(1, 300.0)
        snap = registry.snapshot()
        assert snap["buffer.total_occupancy"] == 300.0
        assert snap["buffer.free_space"] == 700.0
        assert snap["buffer.active_flows"] == 1.0

    def test_shared_headroom_metrics(self):
        from repro.core.shared_headroom import SharedHeadroomManager

        registry = MetricsRegistry()
        manager = SharedHeadroomManager(
            capacity=1000.0,
            headroom=200.0,
            thresholds={},
            default_threshold=400.0,
        )
        manager.register_metrics(registry)
        snap = registry.snapshot()
        assert "buffer.headroom" in snap
        assert "buffer.holes" in snap

    def test_port_metrics_cover_all_layers(self):
        from repro.core.fixed_threshold import FixedThresholdManager
        from repro.sched.fifo import FIFOScheduler
        from repro.sim.engine import Simulator
        from repro.sim.port import OutputPort

        registry = MetricsRegistry()
        sim = Simulator()
        manager = FixedThresholdManager(
            capacity=10_000.0, thresholds={}, default_threshold=5000.0
        )
        port = OutputPort(sim, 1e6, FIFOScheduler(), manager)
        port.register_metrics(registry)
        snap = registry.snapshot()
        for name in (
            "port.admitted_packets",
            "port.dropped_packets",
            "port.transmitted_packets",
            "port.backlog_packets",
            "sim.events_processed",
            "buffer.total_occupancy",
        ):
            assert name in snap
