"""ResultCache: hit/miss behaviour, robustness, content addressing."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.campaign import ResultCache, ScenarioJob, execute_job
from repro.experiments.schemes import Scheme
from repro.experiments.workloads import table1_flows
from repro.units import mbytes

FLOWS = table1_flows()


@pytest.fixture(scope="module")
def record_and_job():
    job = ScenarioJob(
        flows=FLOWS, scheme=Scheme.FIFO_THRESHOLD, buffer_size=mbytes(1),
        sim_time=0.5, warmup=0.1, seed=3,
    )
    return execute_job(job), job


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestHitMiss:
    def test_empty_cache_misses(self, cache, record_and_job):
        _record, job = record_and_job
        assert cache.get(job.digest()) is None
        assert cache.misses == 1
        assert cache.hits == 0

    def test_round_trip_hit_equals_original(self, cache, record_and_job):
        record, job = record_and_job
        cache.put(record)
        fetched = cache.get(job.digest())
        assert fetched == record
        assert cache.hits == 1
        assert cache.stores == 1

    def test_contains(self, cache, record_and_job):
        record, job = record_and_job
        assert job.digest() not in cache
        cache.put(record)
        assert job.digest() in cache

    def test_stored_file_is_valid_json(self, cache, record_and_job):
        record, _job = record_and_job
        path = cache.put(record)
        raw = json.loads(path.read_text())
        assert raw["schema"] == "repro-campaign-v1"
        assert raw["job_digest"] == record.job_digest


class TestRobustness:
    def test_corrupt_entry_is_a_miss(self, cache, record_and_job):
        record, job = record_and_job
        path = cache.put(record)
        path.write_text("{ not json")
        assert cache.get(job.digest()) is None

    def test_schema_mismatch_is_a_miss(self, cache, record_and_job):
        record, job = record_and_job
        path = cache.put(record)
        raw = json.loads(path.read_text())
        raw["schema"] = "repro-campaign-v999"
        path.write_text(json.dumps(raw))
        assert cache.get(job.digest()) is None

    def test_renamed_entry_is_a_miss(self, cache, record_and_job):
        # Content addressing: the payload must match the file name.
        record, job = record_and_job
        path = cache.put(record)
        imposter = cache.path("0" * 64)
        path.rename(imposter)
        assert cache.get("0" * 64) is None

    def test_root_that_is_a_file_rejected(self, tmp_path):
        target = tmp_path / "occupied"
        target.write_text("")
        with pytest.raises(ConfigurationError):
            ResultCache(target)


class TestMaintenance:
    def test_entries_and_size(self, cache, record_and_job):
        record, _job = record_and_job
        assert cache.entries() == []
        assert cache.size_bytes() == 0
        cache.put(record)
        assert len(cache.entries()) == 1
        assert cache.size_bytes() > 0

    def test_clear_removes_everything(self, cache, record_and_job):
        record, job = record_and_job
        cache.put(record)
        assert cache.clear() == 1
        assert cache.entries() == []
        assert cache.get(job.digest()) is None
