"""Property-based tests: fluid GPS invariants over random arrivals."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.gps import gps_finish_times

RATE = 10_000.0
WEIGHTS = {0: 1.0, 1: 2.5, 2: 7.0}

arrivals_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.5, allow_nan=False),   # gap
        st.integers(min_value=0, max_value=2),
        st.floats(min_value=1.0, max_value=2000.0, allow_nan=False),
    ),
    min_size=1,
    max_size=50,
)


def to_absolute(arrivals):
    time = 0.0
    result = []
    for gap, flow_id, size in arrivals:
        time += gap
        result.append((time, flow_id, size))
    return result


class TestGPSInvariants:
    @given(arrivals=arrivals_strategy)
    @settings(max_examples=100, deadline=None)
    def test_finish_after_arrival_plus_full_rate_service(self, arrivals):
        normalized = to_absolute(arrivals)
        finishes = gps_finish_times(normalized, WEIGHTS, RATE)
        for (time, _flow, size), entry in zip(normalized, finishes):
            # Even alone, a packet needs size/R; GPS never beats that for
            # the last packet of a flow's backlog.
            assert entry.finish >= time - 1e-9

    @given(arrivals=arrivals_strategy)
    @settings(max_examples=100, deadline=None)
    def test_per_flow_finishes_monotone(self, arrivals):
        normalized = to_absolute(arrivals)
        finishes = gps_finish_times(normalized, WEIGHTS, RATE)
        last = {}
        for entry in finishes:
            flow_id = entry.arrival.flow_id
            if flow_id in last:
                assert entry.finish >= last[flow_id] - 1e-9
            last[flow_id] = entry.finish

    @given(arrivals=arrivals_strategy)
    @settings(max_examples=100, deadline=None)
    def test_work_conservation_upper_bound(self, arrivals):
        # The server is never idle while work remains, so everything is
        # done by last_arrival + total_bytes / rate.
        normalized = to_absolute(arrivals)
        finishes = gps_finish_times(normalized, WEIGHTS, RATE)
        total_bytes = sum(size for _, _, size in normalized)
        last_arrival = normalized[-1][0]
        bound = last_arrival + total_bytes / RATE
        assert max(entry.finish for entry in finishes) <= bound + 1e-6

    @given(
        sizes=st.lists(
            st.floats(min_value=1.0, max_value=2000.0, allow_nan=False),
            min_size=1, max_size=30,
        ),
        flows=st.lists(st.integers(min_value=0, max_value=2), min_size=30,
                       max_size=30),
    )
    @settings(max_examples=100, deadline=None)
    def test_single_busy_period_exactly_total_over_rate(self, sizes, flows):
        # All arrivals at t = 0: one busy period, the last fluid finish is
        # exactly total bytes / rate (work conservation, tight).
        normalized = [(0.0, flows[i], size) for i, size in enumerate(sizes)]
        finishes = gps_finish_times(normalized, WEIGHTS, RATE)
        total = sum(sizes)
        assert max(e.finish for e in finishes) <= total / RATE + 1e-6
        assert max(e.finish for e in finishes) >= total / RATE - 1e-6

    @given(arrivals=arrivals_strategy)
    @settings(max_examples=60, deadline=None)
    def test_scaling_rate_scales_time(self, arrivals):
        normalized = to_absolute(arrivals)
        # Compress arrival times by 2 and double the rate: finishes halve.
        slow = gps_finish_times(normalized, WEIGHTS, RATE)
        compressed = [(t / 2.0, f, s) for t, f, s in normalized]
        fast = gps_finish_times(compressed, WEIGHTS, 2.0 * RATE)
        for entry_slow, entry_fast in zip(slow, fast):
            assert abs(entry_fast.finish - entry_slow.finish / 2.0) < 1e-6
