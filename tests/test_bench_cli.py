"""The ``repro bench`` CLI: verbs, files written, and exit codes.

The compare exit contract is what CI leans on:
0 pass, 1 regression, 2 usage error, 4 stale/unusable baseline.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.baseline import BENCH_SCHEMA, BenchBaseline
from repro.bench.cli import EXIT_STALE_BASELINE, main
from repro.bench.measure import CaseResult

# One tiny, fast micro case keeps each CLI invocation ~milliseconds.
FAST = ["--quick", "--trials", "1", "--cases", "engine-chain"]


def _run_baseline(tmp_path, tag="t"):
    out = tmp_path / "out"
    assert main(["run", *FAST, "--out", str(out), "--host-tag", tag]) == 0
    return out / f"BENCH_{tag}.json"


def _resign(path, mutate):
    """Apply ``mutate`` to a loaded baseline's cases and re-sign it."""
    baseline = BenchBaseline.load(path)
    cases = tuple(mutate(case) for case in baseline.cases)
    doctored = BenchBaseline(
        host_tag=baseline.host_tag,
        python=baseline.python,
        platform=baseline.platform,
        cases=cases,
    )
    return doctored.write(path.parent.parent / "doctored")


class TestRun:
    def test_writes_schema_versioned_baseline_and_table(self, tmp_path, capsys):
        path = _run_baseline(tmp_path)
        raw = json.loads(path.read_text())
        assert raw["schema"] == BENCH_SCHEMA
        assert set(raw["cases"]) == {"engine-chain"}
        assert path.with_suffix(".txt").exists()
        assert "events/s" in capsys.readouterr().out

    def test_unknown_case_is_usage_error(self, tmp_path):
        assert main(["run", "--cases", "nope", "--out", str(tmp_path)]) == 2

    def test_backend_flag_recorded_and_env_restored(self, tmp_path, monkeypatch):
        import os

        from repro.sim.equeue import EQUEUE_ENV_VAR

        monkeypatch.delenv(EQUEUE_ENV_VAR, raising=False)
        out = tmp_path / "out"
        code = main(
            ["run", *FAST, "--backend", "calendar", "--out", str(out), "--host-tag", "t"]
        )
        assert code == 0
        baseline = BenchBaseline.load(out / "BENCH_t.json")
        assert baseline.backend == "calendar"
        assert EQUEUE_ENV_VAR not in os.environ

    def test_default_backend_is_heap(self, tmp_path, monkeypatch):
        from repro.sim.equeue import EQUEUE_ENV_VAR

        monkeypatch.delenv(EQUEUE_ENV_VAR, raising=False)
        baseline = BenchBaseline.load(_run_baseline(tmp_path))
        assert baseline.backend == "heap"

    def test_unknown_backend_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["run", *FAST, "--backend", "wheel", "--out", str(tmp_path)])


class TestUpdateBaseline:
    def test_writes_into_baseline_dir(self, tmp_path):
        target = tmp_path / "baselines"
        code = main(
            ["update-baseline", *FAST, "--dir", str(target), "--host-tag", "ref"]
        )
        assert code == 0
        assert (target / "BENCH_ref.json").exists()


class TestCompareExitCodes:
    def test_fresh_baseline_passes(self, tmp_path):
        path = _run_baseline(tmp_path)
        code = main(
            ["compare", "--baseline", str(path), "--fresh", str(path)]
        )
        assert code == 0

    def test_doctored_faster_baseline_regresses(self, tmp_path, capsys, monkeypatch):
        from repro.sim.equeue import EQUEUE_ENV_VAR

        # _resign rebuilds with the default backend field; pin the
        # ambient env so the fresh run records the same backend and the
        # verdict exercised is regression, not mismatched-backend.
        monkeypatch.delenv(EQUEUE_ENV_VAR, raising=False)
        path = _run_baseline(tmp_path)

        def tenfold_faster(case):
            return CaseResult(
                name=case.name,
                kind=case.kind,
                digest=case.digest,
                events=case.events,
                packets=case.packets,
                wall_times=tuple(t / 10 for t in case.wall_times),
                peak_rss_bytes=case.peak_rss_bytes,
            )

        doctored = _resign(path, tenfold_faster)
        code = main(
            ["compare", "--baseline", str(doctored), "--fresh", str(path)]
        )
        assert code == 1
        assert "regression" in capsys.readouterr().err

    def test_missing_baseline_file(self, tmp_path):
        path = _run_baseline(tmp_path)
        code = main(
            [
                "compare",
                "--baseline",
                str(tmp_path / "BENCH_absent.json"),
                "--fresh",
                str(path),
            ]
        )
        assert code == EXIT_STALE_BASELINE

    def test_hand_edited_baseline_fails_integrity(self, tmp_path):
        path = _run_baseline(tmp_path)
        raw = json.loads(path.read_text())
        raw["cases"]["engine-chain"]["wall_times"] = [1e-9]
        edited = tmp_path / "BENCH_edited.json"
        edited.write_text(json.dumps(raw))
        fresh = _run_baseline(tmp_path, tag="fresh")
        code = main(["compare", "--baseline", str(edited), "--fresh", str(fresh)])
        assert code == EXIT_STALE_BASELINE

    def test_workload_digest_mismatch_is_stale(self, tmp_path, capsys):
        path = _run_baseline(tmp_path)
        doctored = _resign(
            path,
            lambda case: CaseResult(
                name=case.name,
                kind=case.kind,
                digest="0" * 64,
                events=case.events,
                packets=case.packets,
                wall_times=case.wall_times,
                peak_rss_bytes=case.peak_rss_bytes,
            ),
        )
        code = main(["compare", "--baseline", str(doctored), "--fresh", str(path)])
        assert code == EXIT_STALE_BASELINE
        assert "stale" in capsys.readouterr().err

    def test_backend_mismatch_is_stale(self, tmp_path, capsys, monkeypatch):
        from repro.sim.equeue import EQUEUE_ENV_VAR

        # The fresh run must land on the default heap backend so the
        # doctored "calendar" baseline genuinely mismatches it.
        monkeypatch.delenv(EQUEUE_ENV_VAR, raising=False)
        path = _run_baseline(tmp_path)
        baseline = BenchBaseline.load(path)
        other = BenchBaseline(
            host_tag=baseline.host_tag,
            python=baseline.python,
            platform=baseline.platform,
            cases=baseline.cases,
            backend="calendar",
        )
        other_path = other.write(tmp_path / "other")
        code = main(["compare", "--baseline", str(other_path), "--fresh", str(path)])
        assert code == EXIT_STALE_BASELINE
        out = capsys.readouterr().out
        assert "mismatched-backend" in out

    def test_baseline_dir_resolved_by_host_tag(self, tmp_path):
        path = _run_baseline(tmp_path)
        code = main(
            [
                "compare",
                "--baseline",
                str(path.parent),
                "--fresh",
                str(path),
                "--host-tag",
                "t",
            ]
        )
        assert code == 0


class TestTopLevelDelegation:
    def test_python_m_repro_bench_delegates(self, tmp_path):
        from repro.__main__ import main as repro_main

        out = tmp_path / "out"
        code = repro_main(
            ["bench", "run", *FAST, "--out", str(out), "--host-tag", "x"]
        )
        assert code == 0
        assert (out / "BENCH_x.json").exists()

    @pytest.mark.parametrize("verb", ["run", "compare", "update-baseline"])
    def test_verbs_are_registered(self, verb):
        from repro.bench.cli import build_parser

        # argparse exits 2 on missing required args, 0 on --help; both
        # prove the verb exists (unknown verbs also exit 2 but without
        # registering, so check the subparser table directly).
        parser = build_parser()
        actions = [
            a for a in parser._actions if hasattr(a, "choices") and a.choices
        ]
        assert verb in actions[0].choices
