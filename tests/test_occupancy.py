"""BufferManager base accounting."""

import pytest

from repro.core.occupancy import BufferManager
from repro.core.tail_drop import TailDropManager
from repro.errors import ConfigurationError, SimulationError


class AdmitAll(BufferManager):
    """Test double that bypasses the capacity check in the predicate."""

    def _admits(self, flow_id, size):
        return True


class TestConstruction:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            TailDropManager(0.0)

    def test_capacity_stored_as_float(self):
        assert TailDropManager(1000).capacity == 1000.0


class TestAccounting:
    def test_occupancy_starts_empty(self):
        manager = TailDropManager(1000.0)
        assert manager.total_occupancy == 0.0
        assert manager.occupancy(5) == 0.0
        assert manager.free_space == 1000.0

    def test_admit_charges_flow_and_total(self):
        manager = TailDropManager(1000.0)
        assert manager.try_admit(1, 300.0)
        assert manager.occupancy(1) == 300.0
        assert manager.total_occupancy == 300.0
        assert manager.free_space == 700.0

    def test_departure_releases(self):
        manager = TailDropManager(1000.0)
        manager.try_admit(1, 300.0)
        manager.on_depart(1, 300.0)
        assert manager.occupancy(1) == 0.0
        assert manager.total_occupancy == 0.0

    def test_flows_tracked_independently(self):
        manager = TailDropManager(1000.0)
        manager.try_admit(1, 300.0)
        manager.try_admit(2, 200.0)
        assert manager.occupancy(1) == 300.0
        assert manager.occupancy(2) == 200.0
        assert manager.total_occupancy == 500.0

    def test_rejected_packet_changes_nothing(self):
        manager = TailDropManager(500.0)
        manager.try_admit(1, 400.0)
        assert not manager.try_admit(2, 200.0)
        assert manager.occupancy(2) == 0.0
        assert manager.total_occupancy == 400.0


class TestInvariantEnforcement:
    def test_departure_without_admission_raises(self):
        manager = TailDropManager(1000.0)
        with pytest.raises(SimulationError):
            manager.on_depart(1, 100.0)

    def test_non_positive_size_raises(self):
        manager = TailDropManager(1000.0)
        with pytest.raises(SimulationError):
            manager.try_admit(1, 0.0)

    def test_policy_admitting_beyond_capacity_is_caught(self):
        manager = AdmitAll(100.0)
        manager.try_admit(1, 80.0)
        with pytest.raises(SimulationError):
            manager.try_admit(1, 80.0)


class TestReprovisionRetireBase:
    def test_base_reprovision_rejected_without_thresholds(self):
        # Thresholdless policies expose the contract but refuse it
        # loudly rather than silently ignoring a resize request.
        manager = TailDropManager(1000.0)
        assert type(manager).has_flow_thresholds is False
        with pytest.raises(ConfigurationError):
            manager.reprovision(1, 100.0)

    def test_retire_idle_flow_drops_its_entry_immediately(self):
        manager = AdmitAll(1000.0)
        manager.try_admit(1, 100.0)
        manager.on_depart(1, 100.0)
        assert 1 in manager._occupancy  # zero-valued entry lingers
        manager.retire(1)
        assert 1 not in manager._occupancy

    def test_retire_active_flow_waits_for_drain(self):
        manager = AdmitAll(1000.0)
        manager.try_admit(1, 300.0)
        manager.retire(1)
        assert manager.occupancy(1) == 300.0
        manager.on_depart(1, 200.0)
        assert 1 in manager._occupancy  # still draining
        manager.on_depart(1, 100.0)
        assert 1 not in manager._occupancy
