"""Regression gating: thresholds, noise widening, digest discipline."""

from __future__ import annotations

import pytest

from repro.bench.baseline import BenchBaseline
from repro.bench.compare import compare_baselines
from repro.bench.measure import CaseResult
from repro.errors import ConfigurationError


def _case(name="c", wall=1.0, spread=0.0, digest="abc", events=1000):
    # wall_times (w, w-d, w+d) give median `wall` and rel_spread 2d/w.
    half = wall * spread / 2.0
    return CaseResult(
        name=name,
        kind="micro",
        digest=digest,
        events=events,
        packets=None,
        wall_times=(wall, wall - half, wall + half),
        peak_rss_bytes=1,
    )


def _baseline(*cases, backend="heap"):
    return BenchBaseline(
        host_tag="t",
        python="3.11.0",
        platform="Linux-x86_64",
        cases=cases,
        backend=backend,
    )


def _verdict(base_case, fresh_case, **kwargs):
    report = compare_baselines(_baseline(base_case), _baseline(fresh_case), **kwargs)
    assert len(report.comparisons) == 1
    return report.comparisons[0]


class TestVerdicts:
    def test_equal_speed_is_ok(self):
        assert _verdict(_case(wall=1.0), _case(wall=1.0)).status == "ok"

    def test_small_slowdown_within_threshold_is_ok(self):
        assert _verdict(_case(wall=1.0), _case(wall=1.03)).status == "ok"

    def test_slowdown_beyond_threshold_regresses(self):
        verdict = _verdict(_case(wall=1.0), _case(wall=1.5))
        assert verdict.status == "regressed"
        assert verdict.delta == pytest.approx(1 / 1.5 - 1)

    def test_speedup_beyond_threshold_flagged_improved(self):
        assert _verdict(_case(wall=1.0), _case(wall=0.5)).status == "improved"

    def test_noise_widens_the_gate(self):
        # 20% slowdown, but the baseline trials themselves varied by 30%:
        # with noise_mult=1 the drop is within the measured noise.
        base = _case(wall=1.0, spread=0.3)
        slower = _case(wall=1.2)
        assert _verdict(base, slower).status == "ok"
        # Trusting the spread less (mult 0.1) exposes the regression.
        assert _verdict(base, slower, noise_mult=0.1).status == "regressed"

    def test_fresh_side_noise_also_widens(self):
        verdict = _verdict(_case(wall=1.0), _case(wall=1.2, spread=0.3))
        assert verdict.status == "ok"
        assert verdict.allowed_drop == pytest.approx(0.3)

    def test_flat_threshold_is_the_floor(self):
        verdict = _verdict(_case(wall=1.0), _case(wall=1.0), threshold=0.25)
        assert verdict.allowed_drop == 0.25

    def test_digest_mismatch_is_not_a_perf_verdict(self):
        verdict = _verdict(_case(digest="abc"), _case(digest="xyz"))
        assert verdict.status == "mismatched"
        assert verdict.allowed_drop is None

    def test_baseline_case_missing_from_fresh_run(self):
        report = compare_baselines(
            _baseline(_case("old")), _baseline(_case("other"))
        )
        statuses = {c.name: c.status for c in report.comparisons}
        assert statuses == {"old": "missing", "other": "new"}

    def test_new_case_never_fails_the_gate(self):
        report = compare_baselines(
            _baseline(_case("a")), _baseline(_case("a"), _case("b"))
        )
        assert report.passed

    def test_backend_mismatch_marks_every_case_stale(self):
        report = compare_baselines(
            _baseline(_case("a"), _case("b"), backend="heap"),
            _baseline(_case("a", wall=0.5), backend="calendar"),
        )
        statuses = {c.name: c.status for c in report.comparisons}
        assert statuses == {
            "a": "mismatched-backend",
            "b": "mismatched-backend",
        }
        assert not report.passed
        assert report.stale and not report.regressions
        # The fresh side's numbers are still surfaced where available.
        by_name = {c.name: c for c in report.comparisons}
        assert by_name["a"].fresh_eps is not None
        assert by_name["b"].fresh_eps is None

    def test_same_nondefault_backend_compares_normally(self):
        report = compare_baselines(
            _baseline(_case(), backend="calendar"),
            _baseline(_case(), backend="calendar"),
        )
        assert report.passed

    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            compare_baselines(_baseline(_case()), _baseline(_case()), threshold=-1)

    def test_negative_noise_mult_rejected(self):
        with pytest.raises(ConfigurationError):
            compare_baselines(_baseline(_case()), _baseline(_case()), noise_mult=-1)


class TestReport:
    def test_pass_fail_semantics(self):
        ok = compare_baselines(_baseline(_case()), _baseline(_case()))
        assert ok.passed and not ok.regressions and not ok.stale
        bad = compare_baselines(_baseline(_case(wall=1.0)), _baseline(_case(wall=9.0)))
        assert not bad.passed and bad.regressions
        stale = compare_baselines(
            _baseline(_case(digest="abc")), _baseline(_case(digest="xyz"))
        )
        assert not stale.passed and stale.stale and not stale.regressions

    def test_render_mentions_every_case_and_the_gate(self):
        report = compare_baselines(
            _baseline(_case("alpha"), _case("beta", digest="zzz")),
            _baseline(_case("alpha", wall=9.0), _case("beta", digest="yyy")),
        )
        text = report.render()
        assert "alpha" in text and "regressed" in text
        assert "beta" in text and "mismatched" in text
        assert "FAIL" in text

    def test_render_pass_verdict(self):
        report = compare_baselines(_baseline(_case()), _baseline(_case()))
        assert "PASS" in report.render()
