"""Scenario fabric: dispatch, path equivalence, multi-hop guarantees."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.fabric import (
    DYNAMIC_FLOW_BASE,
    LinkSpec,
    NetworkScenario,
    NodeSpec,
    RoutedFlow,
    run_fabric,
)
from repro.experiments.fabric.build import _run_network
from repro.experiments.fabric.demo import TARGET_FLOW_ID, demo_tandem
from repro.experiments.schemes import Scheme
from repro.obs import RingSink
from repro.traffic.profiles import FlowSpec
from repro.units import kbytes, mbps, mbytes

LINK = mbps(48.0)
BUF = mbytes(1.0)


def conformant(flow_id):
    return FlowSpec(
        flow_id=flow_id,
        peak_rate=mbps(8.0),
        avg_rate=mbps(2.0),
        bucket=kbytes(50.0),
        token_rate=mbps(2.0),
        conformant=True,
        mean_burst=kbytes(50.0),
    )


def hostile(flow_id):
    return FlowSpec(
        flow_id=flow_id,
        peak_rate=mbps(24.0),
        avg_rate=mbps(6.0),
        bucket=kbytes(50.0),
        token_rate=mbps(4.0),
        conformant=False,
        mean_burst=kbytes(250.0),
    )


def single_node_scenario(seed=7, sim_time=4.0):
    return NetworkScenario.single_node(
        [conformant(1), hostile(2)],
        Scheme.FIFO_THRESHOLD,
        BUF,
        link_rate=LINK,
        sim_time=sim_time,
        seed=seed,
    )


def two_hop_scenario(recycle=True, seed=3, sim_time=4.0):
    """Target flow crosses both hops; one hostile lane congests each."""
    return NetworkScenario(
        nodes=(
            NodeSpec("n0", Scheme.FIFO_THRESHOLD, BUF),
            NodeSpec("n1", Scheme.FIFO_THRESHOLD, BUF),
            NodeSpec("n2"),
        ),
        links=(LinkSpec("n0", "n1", LINK), LinkSpec("n1", "n2", LINK)),
        flows=(
            RoutedFlow(spec=conformant(1), route=("n0", "n1", "n2")),
            RoutedFlow(spec=hostile(100), route=("n0", "n1")),
            RoutedFlow(spec=hostile(101), route=("n1", "n2")),
        ),
        sim_time=sim_time,
        seed=seed,
        recycle=recycle,
    )


class TestDispatch:
    def test_single_node_takes_fast_path(self):
        scenario = single_node_scenario()
        assert scenario.is_single_port
        result = run_fabric(scenario)
        # The fast path is the historical runner: it produces the classic
        # ScenarioResult and never builds a topology/delivery sink.
        assert result.scenario_result is not None
        assert result.delivery is None

    def test_multi_hop_takes_network_path(self):
        scenario = two_hop_scenario()
        assert not scenario.is_single_port
        result = run_fabric(scenario)
        assert result.scenario_result is None
        assert result.delivery is not None

    def test_churn_forces_network_path(self):
        assert not demo_tandem(hops=1).is_single_port

    def test_link_lookup(self):
        result = run_fabric(two_hop_scenario(sim_time=1.0))
        assert result.link("n0", "n1").label == "n0->n1"
        with pytest.raises(ConfigurationError):
            result.link("n0", "n2")


class TestPathEquivalence:
    """The fast path and the general path measure the same physics."""

    def test_single_node_counters_match_across_paths(self):
        scenario = single_node_scenario()
        fast = run_fabric(scenario)
        general = _run_network(scenario)
        fast_stats = fast.links["n0->n1"].flow_stats
        general_stats = general.links["n0->n1"].flow_stats
        assert set(fast_stats) == set(general_stats)
        for flow_id in fast_stats:
            a, b = fast_stats[flow_id], general_stats[flow_id]
            assert a.offered_packets == b.offered_packets
            assert a.offered_bytes == b.offered_bytes
            assert a.dropped_packets == b.dropped_packets
            assert a.departed_packets == b.departed_packets
            assert a.departed_bytes == b.departed_bytes

    def test_single_node_thresholds_match_across_paths(self):
        # One hop means no burst inflation: the general path must size
        # the same thresholds the classic pipeline did.
        scenario = single_node_scenario()
        fast = run_fabric(scenario)
        general = _run_network(scenario)
        assert fast.links["n0->n1"].thresholds == general.links["n0->n1"].thresholds


class TestPacketRecycling:
    """Recycling must never corrupt packets that cross several hops."""

    def test_two_hop_run_with_recycling_stays_correct(self):
        on = run_fabric(two_hop_scenario(recycle=True))
        off = run_fabric(two_hop_scenario(recycle=False))
        for label in ("n0->n1", "n1->n2"):
            stats_on, stats_off = on.links[label].flow_stats, off.links[label].flow_stats
            assert set(stats_on) == set(stats_off)
            for flow_id in stats_on:
                a, b = stats_on[flow_id], stats_off[flow_id]
                assert a.offered_packets == b.offered_packets
                assert a.dropped_packets == b.dropped_packets
                assert a.departed_packets == b.departed_packets
        assert on.delivery.packets == off.delivery.packets
        assert on.delivery.bytes == off.delivery.bytes

    def test_second_hop_sees_exactly_what_first_hop_forwarded(self):
        result = run_fabric(two_hop_scenario(recycle=True))
        first = result.links["n0->n1"].flow_stats[1]
        second = result.links["n1->n2"].flow_stats[1]
        assert second.offered_packets == first.departed_packets


class TestEndToEndProtection:
    """Satellite: per-hop sigma inflation keeps the target flow lossless."""

    def test_conformant_flow_crosses_three_protected_hops_without_loss(self):
        # Churn on: the link load includes the dynamic population, which
        # is what makes the zero-drop guarantee non-trivial below.
        result = run_fabric(demo_tandem(hops=3, churn=True))
        for link in result.links.values():
            stats = link.flow_stats.get(TARGET_FLOW_ID)
            assert stats is not None, f"target flow missing at {link.label}"
            assert stats.dropped_packets == 0, f"target flow dropped at {link.label}"
        # The guarantee is non-trivial: other traffic loses somewhere.
        cross_drops = sum(
            stats.dropped_packets
            for link in result.links.values()
            for flow_id, stats in link.flow_stats.items()
            if flow_id != TARGET_FLOW_ID
        )
        assert cross_drops > 0
        assert result.delivery.packets[TARGET_FLOW_ID] > 0


class TestScenarioValidation:
    def test_bad_sim_time_rejected(self):
        with pytest.raises(ConfigurationError):
            single_node_scenario(sim_time=0.0)

    def test_warmup_beyond_sim_time_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkScenario.single_node(
                [conformant(1)], Scheme.FIFO_NONE, BUF, sim_time=2.0, warmup=2.0
            )

    def test_unknown_link_endpoint_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown endpoint"):
            NetworkScenario(
                nodes=(NodeSpec("n0", Scheme.FIFO_NONE, BUF),),
                links=(LinkSpec("n0", "ghost", LINK),),
                flows=(RoutedFlow(spec=conformant(1), route=("n0", "ghost")),),
            )

    def test_duplicate_node_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate node"):
            NetworkScenario(
                nodes=(NodeSpec("n0", Scheme.FIFO_NONE, BUF), NodeSpec("n0")),
                links=(LinkSpec("n0", "n0", LINK),),
                flows=(RoutedFlow(spec=conformant(1), route=("n0", "n1")),),
            )

    def test_route_over_missing_link_rejected(self):
        with pytest.raises(ConfigurationError, match="missing link"):
            NetworkScenario(
                nodes=(
                    NodeSpec("n0", Scheme.FIFO_NONE, BUF),
                    NodeSpec("n1", Scheme.FIFO_NONE, BUF),
                    NodeSpec("n2"),
                ),
                links=(LinkSpec("n0", "n1", LINK), LinkSpec("n1", "n2", LINK)),
                flows=(RoutedFlow(spec=conformant(1), route=("n0", "n2")),),
            )

    def test_static_flow_in_dynamic_id_range_rejected(self):
        with pytest.raises(ConfigurationError, match="dynamic"):
            RoutedFlow(spec=conformant(DYNAMIC_FLOW_BASE), route=("n0", "n1"))

    def test_scenario_without_flows_or_churn_rejected(self):
        with pytest.raises(ConfigurationError, match="flows or churn"):
            NetworkScenario(
                nodes=(NodeSpec("n0", Scheme.FIFO_NONE, BUF), NodeSpec("n1")),
                links=(LinkSpec("n0", "n1", LINK),),
                flows=(),
            )

    def test_source_node_without_scheme_rejected(self):
        with pytest.raises(ConfigurationError, match="no scheme/buffer"):
            NetworkScenario(
                nodes=(NodeSpec("n0"), NodeSpec("n1")),
                links=(LinkSpec("n0", "n1", LINK),),
                flows=(RoutedFlow(spec=conformant(1), route=("n0", "n1")),),
            )


class TestSerialization:
    def test_round_trip_with_churn(self):
        scenario = demo_tandem(hops=3, seed=9)
        assert scenario.churn is not None
        assert NetworkScenario.from_dict(scenario.to_dict()) == scenario

    def test_round_trip_survives_json(self):
        scenario = two_hop_scenario(recycle=False, seed=21)
        raw = json.loads(json.dumps(scenario.to_dict()))
        assert NetworkScenario.from_dict(raw) == scenario


class TestTraceNodeLabels:
    """Satellite: network trace events are attributable to their hop."""

    def test_network_events_carry_link_labels(self):
        sink = RingSink()
        run_fabric(two_hop_scenario(sim_time=1.0), sink=sink)
        labelled = {
            event.node for event in sink.events() if hasattr(event, "node")
        }
        assert labelled == {"n0->n1", "n1->n2"}

    def test_single_port_events_have_empty_node(self):
        sink = RingSink()
        run_fabric(single_node_scenario(sim_time=1.0), sink=sink)
        packet_events = [
            event for event in sink.events() if hasattr(event, "node")
        ]
        assert packet_events
        assert all(event.node == "" for event in packet_events)
