"""Fixed-partition threshold manager (Sections 2, 3.2)."""

import pytest

from repro.core.fixed_threshold import FixedThresholdManager
from repro.errors import ConfigurationError


class TestAdmission:
    def test_below_threshold_admitted(self):
        manager = FixedThresholdManager(1000.0, {0: 400.0})
        assert manager.try_admit(0, 300.0)

    def test_exactly_at_threshold_admitted(self):
        manager = FixedThresholdManager(1000.0, {0: 400.0})
        assert manager.try_admit(0, 400.0)

    def test_beyond_threshold_dropped(self):
        manager = FixedThresholdManager(1000.0, {0: 400.0})
        manager.try_admit(0, 400.0)
        assert not manager.try_admit(0, 100.0)

    def test_threshold_enforced_even_with_free_buffer(self):
        # The logical partition is the whole point: free space elsewhere
        # does not help a flow over its own threshold.
        manager = FixedThresholdManager(10_000.0, {0: 400.0})
        manager.try_admit(0, 400.0)
        assert manager.free_space == 9_600.0
        assert not manager.try_admit(0, 100.0)

    def test_total_capacity_also_enforced(self):
        # Thresholds can oversubscribe the buffer; the physical capacity
        # still binds.
        manager = FixedThresholdManager(1000.0, {0: 800.0, 1: 800.0})
        assert manager.try_admit(0, 800.0)
        assert not manager.try_admit(1, 300.0)

    def test_departure_reopens_threshold(self):
        manager = FixedThresholdManager(1000.0, {0: 400.0})
        manager.try_admit(0, 400.0)
        manager.on_depart(0, 400.0)
        assert manager.try_admit(0, 400.0)

    def test_flows_do_not_interfere_below_capacity(self):
        manager = FixedThresholdManager(1000.0, {0: 400.0, 1: 400.0})
        manager.try_admit(0, 400.0)
        assert manager.try_admit(1, 400.0)


class TestUnknownFlows:
    def test_unknown_flow_dropped_by_default(self):
        manager = FixedThresholdManager(1000.0, {0: 400.0})
        assert not manager.try_admit(99, 100.0)

    def test_default_threshold_applies_to_unknown_flows(self):
        manager = FixedThresholdManager(1000.0, {0: 400.0}, default_threshold=200.0)
        assert manager.try_admit(99, 200.0)
        assert not manager.try_admit(99, 100.0)

    def test_threshold_lookup(self):
        manager = FixedThresholdManager(1000.0, {0: 400.0}, default_threshold=50.0)
        assert manager.threshold(0) == 400.0
        assert manager.threshold(1) == 50.0


class TestValidation:
    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedThresholdManager(1000.0, {0: -1.0})

    def test_negative_default_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedThresholdManager(1000.0, {}, default_threshold=-1.0)

    def test_zero_threshold_blocks_flow(self):
        manager = FixedThresholdManager(1000.0, {0: 0.0})
        assert not manager.try_admit(0, 1.0)


class TestReprovisionRetire:
    def test_reprovision_installs_a_threshold_live(self):
        manager = FixedThresholdManager(1000.0, {0: 400.0})
        assert not manager.try_admit(7, 100.0)
        manager.reprovision(7, 300.0)
        assert manager.threshold(7) == 300.0
        assert manager.try_admit(7, 300.0)

    def test_shrinking_threshold_is_drain_safe(self):
        # Occupancy above a shrunken threshold is never dropped
        # retroactively: it blocks new admissions and drains normally.
        manager = FixedThresholdManager(1000.0, {0: 400.0})
        manager.try_admit(0, 400.0)
        manager.reprovision(0, 100.0)
        assert manager.occupancy(0) == 400.0
        assert not manager.try_admit(0, 50.0)
        manager.on_depart(0, 350.0)
        assert manager.try_admit(0, 50.0)

    def test_retire_withdraws_the_threshold(self):
        manager = FixedThresholdManager(1000.0, {0: 400.0})
        manager.retire(0)
        assert manager.threshold(0) == manager.default_threshold
        assert not manager.try_admit(0, 1.0)

    def test_retire_reclaims_occupancy_entry_after_drain(self):
        manager = FixedThresholdManager(1000.0, {0: 400.0})
        manager.try_admit(0, 200.0)
        manager.retire(0)
        assert manager.occupancy(0) == 200.0  # still draining
        manager.on_depart(0, 200.0)
        assert 0 not in manager._occupancy  # entry reclaimed

    def test_negative_reprovision_rejected(self):
        manager = FixedThresholdManager(1000.0, {})
        with pytest.raises(ConfigurationError):
            manager.reprovision(0, -1.0)

    def test_reprovision_emits_a_trace_event(self):
        from repro.obs import RingSink
        from repro.obs.events import ReprovisionEvent

        manager = FixedThresholdManager(1000.0, {0: 400.0})
        sink = RingSink()
        manager.attach_trace(sink, lambda: 1.5, node="n0")
        manager.reprovision(0, 250.0)
        manager.retire(0)
        kinds = [e for e in sink.events() if isinstance(e, ReprovisionEvent)]
        assert [(e.threshold, e.previous) for e in kinds] == [
            (250.0, 400.0),
            (manager.default_threshold, 250.0),
        ]
        assert kinds[0].node == "n0"
