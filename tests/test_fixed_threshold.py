"""Fixed-partition threshold manager (Sections 2, 3.2)."""

import pytest

from repro.core.fixed_threshold import FixedThresholdManager
from repro.errors import ConfigurationError


class TestAdmission:
    def test_below_threshold_admitted(self):
        manager = FixedThresholdManager(1000.0, {0: 400.0})
        assert manager.try_admit(0, 300.0)

    def test_exactly_at_threshold_admitted(self):
        manager = FixedThresholdManager(1000.0, {0: 400.0})
        assert manager.try_admit(0, 400.0)

    def test_beyond_threshold_dropped(self):
        manager = FixedThresholdManager(1000.0, {0: 400.0})
        manager.try_admit(0, 400.0)
        assert not manager.try_admit(0, 100.0)

    def test_threshold_enforced_even_with_free_buffer(self):
        # The logical partition is the whole point: free space elsewhere
        # does not help a flow over its own threshold.
        manager = FixedThresholdManager(10_000.0, {0: 400.0})
        manager.try_admit(0, 400.0)
        assert manager.free_space == 9_600.0
        assert not manager.try_admit(0, 100.0)

    def test_total_capacity_also_enforced(self):
        # Thresholds can oversubscribe the buffer; the physical capacity
        # still binds.
        manager = FixedThresholdManager(1000.0, {0: 800.0, 1: 800.0})
        assert manager.try_admit(0, 800.0)
        assert not manager.try_admit(1, 300.0)

    def test_departure_reopens_threshold(self):
        manager = FixedThresholdManager(1000.0, {0: 400.0})
        manager.try_admit(0, 400.0)
        manager.on_depart(0, 400.0)
        assert manager.try_admit(0, 400.0)

    def test_flows_do_not_interfere_below_capacity(self):
        manager = FixedThresholdManager(1000.0, {0: 400.0, 1: 400.0})
        manager.try_admit(0, 400.0)
        assert manager.try_admit(1, 400.0)


class TestUnknownFlows:
    def test_unknown_flow_dropped_by_default(self):
        manager = FixedThresholdManager(1000.0, {0: 400.0})
        assert not manager.try_admit(99, 100.0)

    def test_default_threshold_applies_to_unknown_flows(self):
        manager = FixedThresholdManager(1000.0, {0: 400.0}, default_threshold=200.0)
        assert manager.try_admit(99, 200.0)
        assert not manager.try_admit(99, 100.0)

    def test_threshold_lookup(self):
        manager = FixedThresholdManager(1000.0, {0: 400.0}, default_threshold=50.0)
        assert manager.threshold(0) == 400.0
        assert manager.threshold(1) == 50.0


class TestValidation:
    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedThresholdManager(1000.0, {0: -1.0})

    def test_negative_default_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedThresholdManager(1000.0, {}, default_threshold=-1.0)

    def test_zero_threshold_blocks_flow(self):
        manager = FixedThresholdManager(1000.0, {0: 0.0})
        assert not manager.try_admit(0, 1.0)
