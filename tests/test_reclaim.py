"""Live reprovisioning: equivalence, reclamation semantics, RPR206."""

import json

import pytest

from repro.check.artifacts import check_artifact_file
from repro.experiments.fabric import run_fabric
from repro.experiments.fabric.demo import demo_tandem
from repro.experiments.reclaim import record_loss, run_reclaim_study
from repro.obs import JsonlSink


def paired_runs(seed, *, hops=2, sim_time=4.0):
    static = run_fabric(
        demo_tandem(hops=hops, seed=seed, sim_time=sim_time, churn=True)
    )
    reclaim = run_fabric(
        demo_tandem(
            hops=hops, seed=seed, sim_time=sim_time, churn=True, reclamation=True
        )
    )
    return static, reclaim


class TestEquivalenceWithStatic:
    """The pool admits exactly when the FIFO region (eq. 9) admits."""

    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_blocking_matches_static_on_the_same_sample_path(self, seed):
        static, reclaim = paired_runs(seed)
        assert static.churn.arrivals == reclaim.churn.arrivals
        assert static.churn.accepted == reclaim.churn.accepted
        assert static.churn.blocked == reclaim.churn.blocked
        assert static.churn.per_node == reclaim.churn.per_node

    def test_blocking_probability_no_worse_than_static(self):
        static, reclaim = paired_runs(7, hops=3)
        assert (
            reclaim.churn.blocking_probability
            <= static.churn.blocking_probability
        )

    def test_reclamation_off_is_the_static_run(self):
        base = run_fabric(demo_tandem(hops=2, seed=5, sim_time=4.0))
        off = run_fabric(
            demo_tandem(hops=2, seed=5, sim_time=4.0, reclamation=False)
        )
        assert base.events_processed == off.events_processed
        assert base.churn.to_dict() == off.churn.to_dict()


class TestReclamationRun:
    def test_deterministic_under_reclamation(self):
        scenario = demo_tandem(hops=2, seed=9, sim_time=4.0, reclamation=True)
        first = run_fabric(scenario)
        second = run_fabric(scenario)
        assert first.events_processed == second.events_processed
        assert first.churn.to_dict() == second.churn.to_dict()

    def test_scenario_round_trips_with_reclamation(self):
        from repro.experiments.fabric import NetworkScenario

        scenario = demo_tandem(hops=2, seed=1, reclamation=True)
        rebuilt = NetworkScenario.from_dict(scenario.to_dict())
        assert rebuilt.churn.reclamation is True
        assert rebuilt == scenario


class TestTraceAudit:
    def test_rpr206_passes_over_an_emitted_trace(self, tmp_path):
        trace = tmp_path / "reclaim.jsonl"
        scenario = demo_tandem(
            hops=2, seed=0, sim_time=2.0, reclamation=True,
            delay_histograms=False,
        )
        with JsonlSink(trace) as sink:
            run_fabric(scenario, sink=sink)
        lines = [
            json.loads(line)
            for line in trace.read_text().splitlines()
            if line.strip()
        ]
        kinds = {entry.get("kind") for entry in lines}
        assert "pool" in kinds
        assert "reprovision" in kinds
        assert check_artifact_file(trace) == []

    def test_rpr206_flags_a_seeded_violation(self, tmp_path):
        trace = tmp_path / "bad.jsonl"
        scenario = demo_tandem(
            hops=2, seed=0, sim_time=2.0, reclamation=True,
            delay_histograms=False,
        )
        with JsonlSink(trace) as sink:
            run_fabric(scenario, sink=sink)
        lines = trace.read_text().splitlines()
        corrupted = []
        broken = False
        for line in lines:
            entry = json.loads(line)
            if not broken and entry.get("kind") == "pool":
                entry["holes"] = entry["holes"] + 4096.0
                broken = True
            corrupted.append(json.dumps(entry))
        trace.write_text("\n".join(corrupted) + "\n")
        findings = check_artifact_file(trace)
        assert [f.rule_id for f in findings] == ["RPR206"]
        assert "conserve" in findings[0].message


class TestStudy:
    def test_study_reports_blocking_no_worse_than_static(self):
        study = run_reclaim_study(hops=2, seeds=(1, 2), sim_time=2.0)
        assert len(study.static) == len(study.reclaim) == 2
        for static, reclaim in zip(study.static, study.reclaim):
            assert (
                reclaim.blocking_probability()
                <= static.blocking_probability()
            )

    def test_render_mentions_both_modes(self):
        study = run_reclaim_study(hops=2, seeds=(1,), sim_time=2.0)
        text = study.render()
        assert "blocking static" in text
        assert "blocking reclaim" in text
        assert "means over 1 seed(s)" in text

    def test_record_loss_is_a_fraction(self):
        study = run_reclaim_study(hops=2, seeds=(1,), sim_time=2.0)
        for record in study.static + study.reclaim:
            assert 0.0 <= record_loss(record) < 1.0
