"""Composite buffer manager for the hybrid architecture."""

import pytest

from repro.core.fixed_threshold import FixedThresholdManager
from repro.core.hybrid import HybridBufferManager
from repro.core.tail_drop import TailDropManager
from repro.errors import ConfigurationError


def make_hybrid():
    managers = [
        FixedThresholdManager(1000.0, {0: 400.0, 1: 400.0}),
        FixedThresholdManager(500.0, {2: 500.0}),
    ]
    class_of = {0: 0, 1: 0, 2: 1}
    return HybridBufferManager(class_of, managers), managers


class TestDelegation:
    def test_admission_goes_to_class_manager(self):
        hybrid, managers = make_hybrid()
        assert hybrid.try_admit(0, 400.0)
        assert managers[0].occupancy(0) == 400.0
        assert managers[1].total_occupancy == 0.0

    def test_departure_goes_to_class_manager(self):
        hybrid, managers = make_hybrid()
        hybrid.try_admit(2, 300.0)
        hybrid.on_depart(2, 300.0)
        assert managers[1].total_occupancy == 0.0

    def test_occupancy_lookup(self):
        hybrid, _ = make_hybrid()
        hybrid.try_admit(1, 250.0)
        assert hybrid.occupancy(1) == 250.0

    def test_unknown_flow_raises(self):
        hybrid, _ = make_hybrid()
        with pytest.raises(ConfigurationError):
            hybrid.try_admit(42, 100.0)


class TestIsolationBetweenClasses:
    def test_full_class_does_not_block_other_class(self):
        hybrid, _ = make_hybrid()
        hybrid.try_admit(0, 400.0)
        hybrid.try_admit(1, 400.0)
        # Class 0 near capacity; class 1 unaffected.
        assert hybrid.try_admit(2, 500.0)

    def test_class_capacity_binds_locally(self):
        hybrid, _ = make_hybrid()
        assert hybrid.try_admit(2, 500.0)
        assert not hybrid.try_admit(2, 1.0)
        # Plenty of space in class 0 cannot help flow 2.
        assert hybrid.free_space == 1000.0


class TestAggregates:
    def test_capacity_is_sum_of_partitions(self):
        hybrid, _ = make_hybrid()
        assert hybrid.capacity == 1500.0

    def test_total_occupancy_sums_classes(self):
        hybrid, _ = make_hybrid()
        hybrid.try_admit(0, 100.0)
        hybrid.try_admit(2, 200.0)
        assert hybrid.total_occupancy == 300.0
        assert hybrid.free_space == 1200.0


class TestValidation:
    def test_needs_at_least_one_manager(self):
        with pytest.raises(ConfigurationError):
            HybridBufferManager({}, [])

    def test_class_index_out_of_range(self):
        with pytest.raises(ConfigurationError):
            HybridBufferManager({0: 3}, [TailDropManager(100.0)])


class TestReprovisionRetire:
    def test_reprovision_delegates_to_the_class_manager(self):
        hybrid, managers = make_hybrid()
        hybrid.reprovision(2, 450.0)
        assert managers[1].threshold(2) == 450.0
        assert managers[0].threshold(2) != 450.0
        assert hybrid.threshold(2) == 450.0

    def test_retire_delegates_and_keeps_class_mapping(self):
        hybrid, managers = make_hybrid()
        hybrid.try_admit(0, 300.0)
        hybrid.retire(0)
        assert managers[0].threshold(0) == managers[0].default_threshold
        # The class mapping survives so in-flight packets still route to
        # the right sub-manager while they drain.
        hybrid.on_depart(0, 300.0)
        assert hybrid.occupancy(0) == 0.0

    def test_unknown_flow_rejected(self):
        hybrid, _ = make_hybrid()
        with pytest.raises(ConfigurationError):
            hybrid.reprovision(9, 100.0)
