"""True-positive / true-negative coverage for each RPR rule.

Every rule is exercised on purpose-built snippets through the public
``lint_source`` API with a library-like path, plus scoping checks that
library rules stay out of test/benchmark files.
"""

import textwrap

import pytest

from repro.lint import lint_source

LIB_PATH = "src/repro/analysis/snippet.py"
SIM_PATH = "src/repro/sim/snippet.py"
CORE_PATH = "src/repro/core/snippet.py"
TEST_PATH = "tests/test_snippet.py"


def rule_ids(source, path=LIB_PATH, select=None):
    return [finding.rule_id for finding in lint_source(textwrap.dedent(source), path, select)]


class TestDeterminismRPR101:
    def test_flags_stdlib_random_import(self):
        assert "RPR101" in rule_ids("import random\n")

    def test_flags_from_random_import(self):
        assert "RPR101" in rule_ids("from random import shuffle\n")

    def test_flags_wall_clock_calls(self):
        assert "RPR101" in rule_ids(
            """
            import time

            def stamp():
                return time.time()
            """
        )

    def test_flags_datetime_now(self):
        assert "RPR101" in rule_ids(
            """
            import datetime

            def stamp():
                return datetime.datetime.now()
            """
        )

    def test_flags_id_based_ordering(self):
        assert "RPR101" in rule_ids(
            """
            def order(flows):
                return sorted(flows, key=id)
            """
        )

    def test_flags_raw_set_iteration(self):
        assert "RPR101" in rule_ids(
            """
            def drain(flows):
                for flow in set(flows):
                    flow.poll()
            """
        )

    def test_accepts_seeded_generator_and_sorted_sets(self):
        clean = """
            import numpy as np

            def drain(flows, seed):
                rng = np.random.default_rng(seed)
                for flow in sorted(set(flows)):
                    flow.poll(rng.random())
            """
        assert rule_ids(clean, select=["RPR101"]) == []


class TestUnitsRPR102:
    def test_flags_raw_mbps_conversion(self):
        assert "RPR102" in rule_ids(
            """
            def rate_bytes(rate_mbits):
                return rate_mbits * 1e6 / 8
            """
        )

    def test_flags_raw_kbyte_scaling(self):
        assert "RPR102" in rule_ids(
            """
            def size_bytes(size_kb):
                return size_kb * 1000
            """
        )

    def test_accepts_units_helpers_and_plain_arithmetic(self):
        clean = """
            from repro import units

            def rate_bytes(rate_mbits, burst):
                return units.mbps(rate_mbits) + 2 * burst / 3
            """
        assert rule_ids(clean, select=["RPR102"]) == []

    def test_accepts_constant_only_expressions(self):
        # No non-constant operand: constant folding, not a conversion.
        assert rule_ids("LIMIT = 60 * 1000\n", select=["RPR102"]) == []


class TestErrorDisciplineRPR103:
    def test_flags_bare_valueerror(self):
        assert "RPR103" in rule_ids(
            """
            def check(x):
                if x < 0:
                    raise ValueError("negative")
            """
        )

    def test_flags_bare_runtimeerror_reraise(self):
        assert "RPR103" in rule_ids("raise RuntimeError\n")

    def test_flags_assert_in_library_code(self):
        assert "RPR103" in rule_ids(
            """
            def check(x):
                assert x >= 0
            """
        )

    def test_accepts_repro_error_hierarchy(self):
        clean = """
            from repro.errors import ConfigurationError

            def check(x):
                if x < 0:
                    raise ConfigurationError(f"negative: {x}")
                raise NotImplementedError("abstract")
            """
        assert rule_ids(clean, select=["RPR103"]) == []


class TestSimTimeRPR104:
    def test_flags_float_equality_on_time(self):
        assert "RPR104" in rule_ids(
            """
            def same_instant(packet, now):
                return packet.enqueued == now
            """
        )

    def test_flags_inequality_on_time_attribute(self):
        assert "RPR104" in rule_ids(
            """
            def moved(sim, start_time):
                return sim.now != start_time
            """
        )

    def test_flags_negative_literal_delay(self):
        assert "RPR104" in rule_ids(
            """
            def rewind(sim, fn):
                sim.schedule(-0.5, fn)
            """
        )

    def test_accepts_tolerances_and_ordering(self):
        clean = """
            def fine(packet, now, sim, fn):
                late = now - packet.enqueued > 1e-9
                idle = packet.enqueued is None
                sim.schedule(0.5, fn)
                return late or idle or sim.now <= now
            """
        assert rule_ids(clean, select=["RPR104"]) == []


class TestHotPathRPR105:
    def test_flags_missing_slots_in_sim(self):
        snippet = """
            class Thing:
                def __init__(self):
                    self.x = 1
            """
        assert "RPR105" in rule_ids(snippet, path=SIM_PATH)

    def test_flags_missing_slots_in_core(self):
        snippet = """
            class Manager:
                pass
            """
        assert "RPR105" in rule_ids(snippet, path=CORE_PATH)

    def test_flags_mutable_default_argument(self):
        assert "RPR105" in rule_ids(
            """
            def collect(values=[]):
                return values
            """
        )

    def test_accepts_slotted_and_exempt_classes(self):
        clean = """
            from dataclasses import dataclass

            class Thing:
                __slots__ = ("x",)

                def __init__(self):
                    self.x = 1

            class SnippetError(Exception):
                pass

            @dataclass
            class Record:
                x: int = 0

            def collect(values=None):
                return values or []
            """
        assert rule_ids(clean, path=SIM_PATH, select=["RPR105"]) == []

    def test_no_slots_requirement_outside_hot_paths(self):
        snippet = """
            class Report:
                def __init__(self):
                    self.rows = []
            """
        assert rule_ids(snippet, path="src/repro/experiments/snippet.py", select=["RPR105"]) == []


class TestPortEncapsulationRPR106:
    SNIPPET = """
        from repro.sim.port import OutputPort

        def build(sim, scheduler, manager):
            return OutputPort(sim, 6e6, scheduler, manager)
        """

    def test_flags_direct_construction_in_library_code(self):
        assert "RPR106" in rule_ids(self.SNIPPET)

    def test_flags_attribute_style_construction(self):
        snippet = """
            import repro.sim.port as port_mod

            def build(sim, scheduler, manager):
                return port_mod.OutputPort(sim, 6e6, scheduler, manager)
            """
        assert "RPR106" in rule_ids(snippet)

    @pytest.mark.parametrize(
        "path",
        [
            "src/repro/sim/port.py",
            "src/repro/net/topology.py",
            "src/repro/experiments/fabric/build.py",
        ],
    )
    def test_port_layers_may_construct_ports(self, path):
        assert rule_ids(self.SNIPPET, path=path, select=["RPR106"]) == []

    def test_tests_and_benchmarks_exempt(self):
        assert rule_ids(self.SNIPPET, path=TEST_PATH) == []
        assert rule_ids(self.SNIPPET, path="benchmarks/bench_port.py") == []

    def test_references_without_construction_are_fine(self):
        clean = """
            from repro.experiments.fabric import run_fabric

            def run(scenario):
                return run_fabric(scenario)
            """
        assert rule_ids(clean, select=["RPR106"]) == []


class TestEventQueueEncapsulationRPR110:
    def test_flags_plain_import(self):
        assert "RPR110" in rule_ids("import heapq\n")

    def test_flags_from_import(self):
        assert "RPR110" in rule_ids("from heapq import heappush\n")

    def test_flags_submodule_style_import(self):
        assert "RPR110" in rule_ids("import heapq as hq\n")

    def test_equeue_module_is_allowed(self):
        assert rule_ids("import heapq\n", path="src/repro/sim/equeue.py") == []

    @pytest.mark.parametrize(
        "path",
        ["src/repro/sched/wfq.py", "src/repro/sched/scfq.py"],
    )
    def test_packet_schedulers_are_allowed(self, path):
        # WFQ/SCFQ/RPQ order packets by virtual finish time — a separate
        # priority queue from the event calendar.
        assert rule_ids("import heapq\n", path=path, select=["RPR110"]) == []

    def test_engine_module_is_not_exempt(self):
        # The refactor's point: the engine schedules through EventQueue.
        assert "RPR110" in rule_ids(
            "import heapq\n", path="src/repro/sim/engine.py"
        )

    def test_tests_and_benchmarks_exempt(self):
        assert rule_ids("import heapq\n", path=TEST_PATH) == []
        assert rule_ids("import heapq\n", path="benchmarks/bench_x.py") == []


class TestScoping:
    def test_library_rules_skip_test_files(self):
        bad_everywhere = """
            import random

            def check(x):
                assert x >= 0
                raise ValueError(x)
            """
        assert rule_ids(bad_everywhere, path=TEST_PATH) == []
        assert rule_ids(bad_everywhere, path="benchmarks/bench_snippet.py") == []

    def test_unknown_rule_id_rejected(self):
        from repro.lint import LintUsageError

        with pytest.raises(LintUsageError):
            lint_source("x = 1\n", LIB_PATH, select=["RPR999"])

    def test_syntax_error_raises_parse_error(self):
        from repro.lint import LintParseError

        with pytest.raises(LintParseError):
            lint_source("def broken(:\n", LIB_PATH)

    def test_findings_sorted_and_located(self):
        findings = lint_source(
            "import random\nimport time\nx = time.time()\n", LIB_PATH
        )
        assert [finding.line for finding in findings] == sorted(
            finding.line for finding in findings
        )
        assert findings[0].location().startswith(LIB_PATH)
