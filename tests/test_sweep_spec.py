"""Sweep DSL: validation, lazy expansion, constraints, round-trips."""

import itertools
import json
import tracemalloc

import pytest

from repro.errors import ConfigurationError
from repro.experiments.campaign.job import ScenarioJob
from repro.experiments.campaign.network import NetworkJob
from repro.experiments.sweep import (
    SWEEP_SPEC_SCHEMA,
    SweepAxis,
    SweepConstraint,
    SweepSpec,
    load_sweep,
)


def scenario_spec(**overrides):
    kwargs = dict(
        name="unit",
        axes=(
            SweepAxis("scheme", ("FIFO_NONE", "FIFO_THRESHOLD")),
            SweepAxis("buffer_mb", (0.5, 1.0)),
            SweepAxis("seed", (1, 2)),
        ),
        base={"sim_time": 0.5, "warmup": 0.1},
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


class TestValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            scenario_spec(name="")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown sweep kind"):
            scenario_spec(kind="figure")

    def test_axis_needs_values(self):
        with pytest.raises(ConfigurationError, match="no values"):
            SweepAxis("seed", ())

    def test_axis_rejects_duplicate_values(self):
        with pytest.raises(ConfigurationError, match="repeats"):
            SweepAxis("seed", (1, 1))

    def test_axis_rejects_non_scalar_values(self):
        with pytest.raises(ConfigurationError, match="JSON scalar"):
            SweepAxis("seed", ([1],))

    def test_duplicate_axis_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate axis"):
            scenario_spec(
                axes=(SweepAxis("seed", (1,)), SweepAxis("seed", (2,)))
            )

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scenario parameter"):
            scenario_spec(axes=(SweepAxis("bandwidth", (1,)),))

    def test_base_and_axis_conflict_rejected(self):
        with pytest.raises(ConfigurationError, match="both a base value"):
            scenario_spec(base={"sim_time": 0.5, "seed": 3})

    def test_unknown_scheme_rejected_eagerly(self):
        with pytest.raises(ConfigurationError, match="unknown scheme"):
            scenario_spec(axes=(SweepAxis("scheme", ("FIFO_MAGIC",)),))

    def test_unknown_workload_rejected_eagerly(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            scenario_spec(base={"workload": "table9"})

    def test_non_integer_seed_rejected(self):
        with pytest.raises(ConfigurationError, match="must be an integer"):
            scenario_spec(axes=(SweepAxis("seed", (1.5,)),))

    def test_bad_metric_rejected_eagerly(self):
        with pytest.raises(ConfigurationError, match="unknown metric"):
            scenario_spec(metrics=("latency",))

    def test_network_metrics_validated(self):
        with pytest.raises(ConfigurationError, match="unknown network metric"):
            SweepSpec(
                name="net",
                kind="network",
                axes=(SweepAxis("seed", (1,)),),
                metrics=("utilization",),
            )

    def test_constraint_on_unknown_parameter_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown parameter"):
            scenario_spec(
                constraints=(SweepConstraint("bandwidth", "==", 1),)
            )

    def test_constraint_bad_op_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown constraint op"):
            SweepConstraint("seed", "~=", 1)

    def test_membership_op_needs_list(self):
        with pytest.raises(ConfigurationError, match="needs a list"):
            SweepConstraint("seed", "in", 1)


class TestExpansion:
    def test_row_major_declared_order(self):
        spec = scenario_spec()
        cells = list(spec.cells())
        assert len(cells) == 8 == spec.total_cells() == spec.count()
        expected = [
            (scheme, buffer_mb, seed)
            for scheme in ("FIFO_NONE", "FIFO_THRESHOLD")
            for buffer_mb in (0.5, 1.0)
            for seed in (1, 2)
        ]
        got = [(c["scheme"], c["buffer_mb"], c["seed"]) for c in cells]
        assert got == expected

    def test_base_overrides_defaults_in_every_cell(self):
        for cell in scenario_spec().cells():
            assert cell["sim_time"] == 0.5
            assert cell["warmup"] == 0.1
            assert cell["workload"] == "table1"  # untouched default

    def test_value_constraint_prunes(self):
        spec = scenario_spec(
            constraints=(SweepConstraint("buffer_mb", ">=", 1.0),)
        )
        assert spec.count() == 4
        assert all(c["buffer_mb"] >= 1.0 for c in spec.cells())

    def test_cross_parameter_constraint(self):
        spec = scenario_spec(
            axes=(
                SweepAxis("buffer_mb", (0.5, 1.0)),
                SweepAxis("headroom_mb", (0.25, 0.5, 1.0)),
                SweepAxis("seed", (1,)),
            ),
            constraints=(
                SweepConstraint("headroom_mb", "<", None, other="buffer_mb"),
            ),
        )
        for cell in spec.cells():
            assert cell["headroom_mb"] < cell["buffer_mb"]
        assert spec.count() == 3

    def test_membership_constraint(self):
        spec = scenario_spec(
            constraints=(SweepConstraint("scheme", "in", ["FIFO_NONE"]),)
        )
        assert {c["scheme"] for c in spec.cells()} == {"FIFO_NONE"}

    def test_scenario_jobs_are_campaign_jobs(self):
        spec = scenario_spec()
        pairs = list(spec.jobs())
        assert len(pairs) == 8
        digests = set()
        for params, job in pairs:
            assert isinstance(job, ScenarioJob)
            assert job.scheme.name == params["scheme"]
            assert job.seed == params["seed"]
            digests.add(job.digest())
        assert len(digests) == 8  # all distinct cells

    def test_hybrid_scheme_gets_default_groups(self):
        spec = scenario_spec(axes=(SweepAxis("scheme", ("HYBRID_THRESHOLD",)),))
        [(_params, job)] = [next(iter(spec.jobs()))]
        assert job.groups is not None

    def test_network_jobs_carry_the_axes(self):
        spec = SweepSpec(
            name="net",
            kind="network",
            axes=(
                SweepAxis("arrival_rate", (4.0, 8.0)),
                SweepAxis("seed", (1,)),
            ),
            base={"hops": 2, "sim_time": 0.5, "delay_histograms": False},
        )
        pairs = list(spec.jobs())
        assert len(pairs) == 2
        for params, job in pairs:
            assert isinstance(job, NetworkJob)
            assert job.scenario.churn.arrival_rate == params["arrival_rate"]
            assert len(job.scenario.links) == 2

    def test_group_key_folds_out_seed(self):
        spec = scenario_spec()
        keys = {spec.group_key(params) for params in spec.cells()}
        assert len(keys) == 4  # 8 cells, 2 seeds per group
        assert all("seed" not in json.loads(key) for key in keys)


class TestRoundTrip:
    def test_dict_round_trip_preserves_digest(self):
        spec = scenario_spec(
            constraints=(SweepConstraint("buffer_mb", ">=", 0.5),),
            metrics=("utilization", "loss:conformant"),
        )
        clone = SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.digest() == spec.digest()

    def test_schema_tag_present_and_pinned(self):
        raw = scenario_spec().to_dict()
        assert raw["schema"] == SWEEP_SPEC_SCHEMA
        raw["schema"] = "repro-sweep-spec-v0"
        with pytest.raises(ConfigurationError, match="schema mismatch"):
            SweepSpec.from_dict(raw)

    def test_digest_changes_with_any_field(self):
        base = scenario_spec()
        renamed = scenario_spec(name="other")
        assert base.digest() != renamed.digest()

    def test_load_sweep_file(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(scenario_spec().to_dict()))
        assert load_sweep(path) == scenario_spec()

    def test_load_sweep_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2]")
        with pytest.raises(ConfigurationError, match="one JSON object"):
            load_sweep(path)
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_sweep(tmp_path / "missing.json")

    def test_committed_example_loads(self):
        spec = load_sweep("examples/sweeps/ci_grid.json")
        assert spec.count() == 12


class TestLaziness:
    """Acceptance criterion: peak memory independent of grid size."""

    @staticmethod
    def _grid(cells_per_axis):
        return SweepSpec(
            name="lazy",
            axes=(
                SweepAxis("seed", tuple(range(1, cells_per_axis + 1))),
                SweepAxis(
                    "buffer_mb",
                    tuple(0.25 + 0.01 * i for i in range(cells_per_axis)),
                ),
            ),
            base={"sim_time": 0.5},
        )

    @staticmethod
    def _peak_iterating(spec):
        tracemalloc.start()
        try:
            count = 0
            for _params in spec.cells():
                count += 1
            _current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return count, peak

    def test_ten_thousand_cells_expand_flat(self):
        small = self._grid(10)  # 100 cells
        large = self._grid(100)  # 10,000 cells
        count_small, peak_small = self._peak_iterating(small)
        count_large, peak_large = self._peak_iterating(large)
        assert count_small == 100
        assert count_large == 10_000
        # 100x the cells must not cost anywhere near 100x the memory;
        # the generator holds one cell at a time (the only O(n) term is
        # the axis value tuples themselves, a few KB here).
        assert peak_large < 3 * peak_small + 64_000

    def test_jobs_stream_without_materializing(self):
        spec = self._grid(100)
        jobs = spec.jobs()
        first = list(itertools.islice(jobs, 3))
        assert len(first) == 3
        assert all(isinstance(job, ScenarioJob) for _p, job in first)

    def test_count_does_not_materialize(self):
        assert self._grid(100).total_cells() == 10_000
