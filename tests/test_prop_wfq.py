"""Property-based tests: WFQ fairness and conservation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.wfq import WFQScheduler
from repro.sim.engine import Simulator
from repro.sim.packet import Packet

weights_strategy = st.lists(
    st.floats(min_value=10.0, max_value=1000.0, allow_nan=False),
    min_size=2,
    max_size=5,
)

arrivals_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),
        st.floats(min_value=10.0, max_value=1500.0, allow_nan=False),
    ),
    min_size=1,
    max_size=80,
)


def build(weights):
    sim = Simulator()
    wfq = WFQScheduler(
        lambda: sim.now, 10_000.0,
        {i: w for i, w in enumerate(weights)},
    )
    return sim, wfq


class TestConservation:
    @given(weights=weights_strategy, arrivals=arrivals_strategy)
    @settings(max_examples=80, deadline=None)
    def test_every_packet_served_exactly_once(self, weights, arrivals):
        _, wfq = build(weights)
        sent = []
        for flow_index, size in arrivals:
            packet = Packet(flow_index % len(weights), size, 0.0)
            sent.append(packet)
            wfq.enqueue(packet)
        served = []
        while True:
            packet = wfq.dequeue()
            if packet is None:
                break
            served.append(packet)
        assert sorted(p.seq for p in served) == sorted(p.seq for p in sent)
        assert len(wfq) == 0
        assert abs(wfq.backlog_bytes) < 1e-6

    @given(weights=weights_strategy, arrivals=arrivals_strategy)
    @settings(max_examples=80, deadline=None)
    def test_per_flow_order_preserved(self, weights, arrivals):
        _, wfq = build(weights)
        per_flow_in = {}
        for flow_index, size in arrivals:
            flow_id = flow_index % len(weights)
            packet = Packet(flow_id, size, 0.0)
            per_flow_in.setdefault(flow_id, []).append(packet.seq)
            wfq.enqueue(packet)
        per_flow_out = {}
        while True:
            packet = wfq.dequeue()
            if packet is None:
                break
            per_flow_out.setdefault(packet.flow_id, []).append(packet.seq)
        assert per_flow_out == per_flow_in


class TestFairness:
    @given(
        weight_ratio=st.floats(min_value=1.0, max_value=8.0, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_backlogged_flows_served_in_weight_ratio(self, weight_ratio):
        # Two permanently backlogged flows with equal packet sizes: over
        # any long service prefix, service counts track the weight ratio.
        _, wfq = build([100.0 * weight_ratio, 100.0])
        for _ in range(400):
            wfq.enqueue(Packet(0, 100.0, 0.0))
            wfq.enqueue(Packet(1, 100.0, 0.0))
        counts = {0: 0, 1: 0}
        for _ in range(200):
            counts[wfq.dequeue().flow_id] += 1
        assert counts[1] > 0
        observed = counts[0] / counts[1]
        assert abs(observed - weight_ratio) / weight_ratio < 0.15

    @given(
        sizes=st.lists(
            st.floats(min_value=50.0, max_value=500.0, allow_nan=False),
            min_size=20, max_size=20,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_equal_weights_serve_equal_bytes(self, sizes):
        # Two flows, identical packet sequences, equal weights: after any
        # even number of services the byte counts differ by at most one
        # maximum packet.
        _, wfq = build([100.0, 100.0])
        for size in sizes:
            wfq.enqueue(Packet(0, size, 0.0))
            wfq.enqueue(Packet(1, size, 0.0))
        served_bytes = {0: 0.0, 1: 0.0}
        for _ in range(len(sizes)):  # half the packets
            packet = wfq.dequeue()
            served_bytes[packet.flow_id] += packet.size
        assert abs(served_bytes[0] - served_bytes[1]) <= 500.0 + 1e-6
