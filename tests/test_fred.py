"""FRED buffer manager: per-flow protection on top of RED."""

import numpy as np
import pytest

from repro.core.fred import FREDManager
from repro.errors import ConfigurationError


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_fred(capacity=20_000.0, min_th=2_000.0, max_th=8_000.0,
              minq=1_000.0, maxq=4_000.0, max_p=0.1, weight=1.0, seed=1):
    clock = FakeClock()
    manager = FREDManager(
        capacity, min_th, max_th, np.random.default_rng(seed), clock,
        minq=minq, maxq=maxq, max_p=max_p, weight=weight,
    )
    return manager, clock


class TestValidation:
    def test_minq_maxq_ordering(self):
        clock = FakeClock()
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            FREDManager(1000.0, 100.0, 400.0, rng, clock, minq=300.0, maxq=200.0)
        with pytest.raises(ConfigurationError):
            FREDManager(1000.0, 100.0, 400.0, rng, clock, minq=0.0, maxq=200.0)


class TestPerFlowCaps:
    def test_flow_capped_at_maxq(self):
        manager, _ = make_fred()
        while manager.try_admit(0, 1_000.0):
            pass
        assert manager.occupancy(0) <= 4_000.0

    def test_maxq_violations_accumulate_strikes(self):
        manager, _ = make_fred()
        while manager.try_admit(0, 1_000.0):
            pass
        assert manager._strikes.get(0, 0) >= 1

    def test_struck_flow_held_to_average_backlog(self):
        manager, _ = make_fred(minq=500.0)
        # Flow 0 misbehaves: hammer it until it collects strikes.
        for _ in range(10):
            manager.try_admit(0, 1_000.0)
        strikes = manager._strikes.get(0, 0)
        assert strikes > 1
        # Drain flow 0, then it may only rebuild up to avgcq.
        while manager.occupancy(0) > 0:
            manager.on_depart(0, 1_000.0)
        manager.try_admit(1, 1_000.0)
        while manager.try_admit(0, 100.0):
            pass
        # The struck flow stalls at the current average per-flow backlog,
        # far below the maxq cap a well-behaved flow would get.
        assert manager.occupancy(0) <= manager.average_per_flow_backlog() + 100.0
        assert manager.occupancy(0) < manager.maxq / 2

    def test_fragile_flow_protected_below_minq(self):
        # A low-rate flow under minq is accepted even when the average
        # queue sits in the RED drop band.
        manager, _ = make_fred(capacity=40_000.0, min_th=2_000.0,
                               max_th=30_000.0, minq=1_000.0, maxq=20_000.0)
        for flow in (1, 2, 3, 4, 5):
            while manager.occupancy(flow) < 4_000.0:
                if not manager.try_admit(flow, 1_000.0):
                    break
        assert manager.avg >= 2_000.0
        assert manager.try_admit(9, 500.0)


class TestActiveFlowAccounting:
    def test_active_flows_counted(self):
        manager, _ = make_fred()
        manager.try_admit(0, 1_000.0)
        manager.try_admit(1, 1_000.0)
        assert manager.active_flows() == 2
        manager.on_depart(0, 1_000.0)
        assert manager.active_flows() == 1

    def test_average_per_flow_backlog_floor(self):
        manager, _ = make_fred()
        assert manager.average_per_flow_backlog() >= 1.0

    def test_average_per_flow_backlog_tracks_avg(self):
        manager, _ = make_fred()
        manager.try_admit(0, 2_000.0)
        manager.try_admit(1, 2_000.0)
        # weight=1 -> avg equals pre-charge total of the last arrival.
        assert manager.average_per_flow_backlog() == pytest.approx(
            manager.avg / 2
        )
