"""Unit-conversion helpers."""

import pytest

from repro import units


class TestRateConversions:
    def test_mbps_to_bytes(self):
        assert units.mbps(48.0) == 6_000_000.0

    def test_mbps_roundtrip(self):
        assert units.to_mbps(units.mbps(2.4)) == pytest.approx(2.4)

    def test_mbps_zero(self):
        assert units.mbps(0.0) == 0.0

    def test_to_mbps_of_link_rate(self):
        assert units.to_mbps(6_000_000.0) == pytest.approx(48.0)


class TestSizeConversions:
    def test_kbytes(self):
        assert units.kbytes(50.0) == 50_000.0

    def test_mbytes(self):
        assert units.mbytes(2.0) == 2_000_000.0

    def test_kbytes_roundtrip(self):
        assert units.to_kbytes(units.kbytes(123.4)) == pytest.approx(123.4)

    def test_mbytes_roundtrip(self):
        assert units.to_mbytes(units.mbytes(0.5)) == pytest.approx(0.5)

    def test_mbyte_is_thousand_kbytes(self):
        assert units.mbytes(1.0) == units.kbytes(1000.0)


class TestConstants:
    def test_bits_per_byte(self):
        assert units.BITS_PER_BYTE == 8

    def test_decimal_prefixes(self):
        # The library documents decimal (1000-based) prefixes.
        assert units.KBYTE == 1000
        assert units.MBYTE == 1000 * units.KBYTE
