"""FlowSpec validation and derived quantities."""

import pytest

from repro.errors import ConfigurationError
from repro.traffic.profiles import FlowSpec


def spec(**overrides):
    base = dict(
        flow_id=0,
        peak_rate=2_000_000.0,
        avg_rate=250_000.0,
        bucket=50_000.0,
        token_rate=250_000.0,
        conformant=True,
        mean_burst=50_000.0,
    )
    base.update(overrides)
    return FlowSpec(**base)


class TestValidation:
    def test_valid_spec_constructs(self):
        assert spec().flow_id == 0

    def test_avg_above_peak_rejected(self):
        with pytest.raises(ConfigurationError):
            spec(avg_rate=3_000_000.0)

    def test_zero_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            spec(peak_rate=0.0)
        with pytest.raises(ConfigurationError):
            spec(avg_rate=0.0, peak_rate=1.0)
        with pytest.raises(ConfigurationError):
            spec(token_rate=0.0)

    def test_zero_bucket_rejected(self):
        with pytest.raises(ConfigurationError):
            spec(bucket=0.0)

    def test_zero_mean_burst_rejected(self):
        with pytest.raises(ConfigurationError):
            spec(mean_burst=0.0)

    def test_avg_equal_peak_allowed(self):
        # Degenerates to CBR; the source handles it.
        assert spec(avg_rate=2_000_000.0).avg_rate == 2_000_000.0


class TestDerived:
    def test_profile_pair(self):
        assert spec().profile == (50_000.0, 250_000.0)

    def test_overload_factor_conformant(self):
        assert spec().overload_factor == pytest.approx(1.0)

    def test_overload_factor_aggressive(self):
        aggressive = spec(avg_rate=2_000_000.0, token_rate=250_000.0)
        assert aggressive.overload_factor == pytest.approx(8.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            spec().flow_id = 5
