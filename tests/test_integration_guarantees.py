"""End-to-end validation of the paper's core guarantees.

These tests build small networks (sources -> port) and check the
Proposition 1/2 statements inside the packet-level simulator: a conformant
flow whose threshold follows the paper's formula does not lose packets,
no matter how aggressive the competition.  Packetisation introduces a
one-packet slack relative to the fluid analysis, so thresholds get one
extra packet of margin where noted.
"""

import numpy as np
import pytest

from repro.core.fixed_threshold import FixedThresholdManager
from repro.core.tail_drop import TailDropManager
from repro.core.thresholds import flow_threshold
from repro.metrics.collector import StatsCollector
from repro.sched.fifo import FIFOScheduler
from repro.sim.engine import Simulator
from repro.sim.port import OutputPort
from repro.traffic.shaper import LeakyBucketShaper
from repro.traffic.sources import CBRSource, GreedySource, OnOffSource

LINK = 1_000_000.0  # 1 MB/s for round numbers
PKT = 500.0


def build_port(manager, warmup=0.0):
    sim = Simulator()
    collector = StatsCollector(warmup=warmup)
    port = OutputPort(sim, LINK, FIFOScheduler(), manager, collector)
    return sim, port, collector


class TestProposition1:
    """Peak-rate flows: threshold B * rho / R suffices."""

    def test_cbr_flow_lossless_against_greedy(self):
        buffer_size = 100_000.0
        rho = 250_000.0  # quarter of the link
        threshold = flow_threshold(0.0, rho, buffer_size, LINK) + PKT
        manager = FixedThresholdManager(
            buffer_size, {1: threshold, 2: buffer_size - threshold}
        )
        sim, port, collector = build_port(manager)
        CBRSource(sim, 1, rho, port, packet_size=PKT, until=20.0)
        GreedySource(sim, 2, LINK, port, packet_size=PKT, until=20.0)
        sim.run(until=25.0)
        assert collector.flows[1].dropped_packets == 0
        assert collector.flows[1].offered_packets > 1000

    def test_cbr_flow_receives_guaranteed_rate_asymptotically(self):
        buffer_size = 100_000.0
        rho = 250_000.0
        threshold = flow_threshold(0.0, rho, buffer_size, LINK) + PKT
        manager = FixedThresholdManager(buffer_size, {1: threshold, 2: buffer_size - threshold})
        sim, port, collector = build_port(manager, warmup=5.0)
        CBRSource(sim, 1, rho, port, packet_size=PKT, until=30.0)
        GreedySource(sim, 2, LINK, port, packet_size=PKT, until=30.0)
        sim.run(until=30.0)
        throughput = collector.flows[1].departed_bytes / 25.0
        assert throughput == pytest.approx(rho, rel=0.02)

    def test_greedy_flow_gets_residual_capacity(self):
        buffer_size = 100_000.0
        rho = 250_000.0
        threshold = flow_threshold(0.0, rho, buffer_size, LINK) + PKT
        manager = FixedThresholdManager(buffer_size, {1: threshold, 2: buffer_size - threshold})
        sim, port, collector = build_port(manager, warmup=5.0)
        CBRSource(sim, 1, rho, port, packet_size=PKT, until=30.0)
        GreedySource(sim, 2, LINK, port, packet_size=PKT, until=30.0)
        sim.run(until=30.0)
        residual = collector.flows[2].departed_bytes / 25.0
        assert residual == pytest.approx(LINK - rho, rel=0.02)

    def test_undersized_threshold_loses_packets(self):
        # Necessity (Example 1's converse): give the flow clearly less
        # than B rho / R and it must lose against a greedy competitor.
        buffer_size = 100_000.0
        rho = 250_000.0
        threshold = 0.5 * flow_threshold(0.0, rho, buffer_size, LINK)
        manager = FixedThresholdManager(buffer_size, {1: threshold, 2: buffer_size - threshold})
        sim, port, collector = build_port(manager)
        CBRSource(sim, 1, rho, port, packet_size=PKT, until=20.0)
        GreedySource(sim, 2, LINK, port, packet_size=PKT, until=20.0)
        sim.run(until=25.0)
        assert collector.flows[1].dropped_packets > 0

    def test_without_thresholds_greedy_starves_cbr(self):
        manager = TailDropManager(100_000.0)
        sim, port, collector = build_port(manager)
        # Greedy starts first and keeps the buffer full.
        GreedySource(sim, 2, LINK, port, packet_size=PKT, until=20.0)
        CBRSource(sim, 1, 250_000.0, port, packet_size=PKT, start=1.0, until=20.0)
        sim.run(until=25.0)
        assert collector.flows[1].dropped_packets > 0


class TestProposition2:
    """Leaky-bucket flows: threshold sigma + B * rho / R suffices."""

    def test_shaped_onoff_flow_lossless_against_greedy(self):
        buffer_size = 200_000.0
        sigma, rho = 20_000.0, 250_000.0
        threshold = flow_threshold(sigma, rho, buffer_size, LINK) + PKT
        manager = FixedThresholdManager(buffer_size, {1: threshold, 2: buffer_size - threshold})
        sim, port, collector = build_port(manager)
        shaper = LeakyBucketShaper(sim, sigma, rho, port)
        OnOffSource(
            sim, 1, peak_rate=800_000.0, avg_rate=250_000.0, mean_burst=20_000.0,
            sink=shaper, rng=np.random.default_rng(5), packet_size=PKT, until=20.0,
        )
        GreedySource(sim, 2, LINK, port, packet_size=PKT, until=20.0)
        sim.run(until=25.0)
        assert collector.flows[1].dropped_packets == 0
        assert collector.flows[1].offered_packets > 100

    def test_burst_after_idle_fits_in_sigma_term(self):
        # Worst case of the Prop-2 note: the flow first trickles at rho
        # (filling its B rho / R share) and then dumps a full sigma burst.
        buffer_size = 200_000.0
        sigma, rho = 20_000.0, 250_000.0
        threshold = flow_threshold(sigma, rho, buffer_size, LINK) + PKT
        manager = FixedThresholdManager(buffer_size, {1: threshold, 2: buffer_size - threshold})
        sim, port, collector = build_port(manager)
        CBRSource(sim, 1, rho, port, packet_size=PKT, until=15.0)
        GreedySource(sim, 2, LINK, port, packet_size=PKT, until=20.0)
        # Dump sigma bytes instantaneously at t = 15 (conformant: the
        # bucket is full because the flow never used its burst credit).
        def dump():
            from repro.sim.packet import Packet
            for _ in range(int(sigma / PKT)):
                port.receive(Packet(1, PKT, sim.now))
        sim.schedule_at(15.0, dump)
        sim.run(until=25.0)
        assert collector.flows[1].dropped_packets == 0

    def test_occupancy_never_exceeds_threshold(self):
        buffer_size = 200_000.0
        sigma, rho = 20_000.0, 250_000.0
        threshold = flow_threshold(sigma, rho, buffer_size, LINK) + PKT
        manager = FixedThresholdManager(buffer_size, {1: threshold, 2: buffer_size - threshold})
        sim, port, _ = build_port(manager)
        shaper = LeakyBucketShaper(sim, sigma, rho, port)
        OnOffSource(
            sim, 1, 800_000.0, 250_000.0, 20_000.0, shaper,
            np.random.default_rng(9), packet_size=PKT, until=10.0,
        )
        GreedySource(sim, 2, LINK, port, packet_size=PKT, until=10.0)
        peak = 0.0

        def sample():
            nonlocal peak
            peak = max(peak, manager.occupancy(1))
            if sim.now < 10.0:
                sim.schedule(0.01, sample)

        sim.schedule_at(0.0, sample)
        sim.run(until=12.0)
        assert peak <= threshold + 1e-6


class TestIsolationBetweenManyFlows:
    def test_multiple_conformant_flows_all_protected(self):
        # Three CBR flows with proportional thresholds + one greedy flow.
        buffer_size = 150_000.0
        rates = {1: 100_000.0, 2: 200_000.0, 3: 300_000.0}
        thresholds = {
            flow_id: flow_threshold(0.0, rho, buffer_size, LINK) + PKT
            for flow_id, rho in rates.items()
        }
        thresholds[9] = buffer_size - sum(thresholds.values())
        manager = FixedThresholdManager(buffer_size, thresholds)
        sim, port, collector = build_port(manager, warmup=5.0)
        for flow_id, rho in rates.items():
            CBRSource(sim, flow_id, rho, port, packet_size=PKT, until=30.0)
        GreedySource(sim, 9, LINK, port, packet_size=PKT, until=30.0)
        sim.run(until=30.0)
        for flow_id, rho in rates.items():
            assert collector.flows[flow_id].dropped_packets == 0, flow_id
            throughput = collector.flows[flow_id].departed_bytes / 25.0
            assert throughput == pytest.approx(rho, rel=0.03)
