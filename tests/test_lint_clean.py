"""Tier-1 gate: the whole library must pass its own static analysis.

This is the enforcement point for the determinism / units / error /
sim-time / hot-path invariants: any new violation in ``src/`` fails the
ordinary test run (``PYTHONPATH=src python -m pytest -x -q``), not just a
separate lint job.  Deliberate exceptions must carry a
``# repro: noqa RPR### — reason`` annotation *with* a reason.
"""

from pathlib import Path

from repro.lint import lint_paths, render_text, unsuppressed

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_src_tree_is_lint_clean():
    findings = lint_paths([str(REPO_ROOT / "src")])
    offending = unsuppressed(findings)
    assert offending == [], "\n" + render_text(findings)


def test_every_suppression_in_src_carries_a_reason():
    findings = lint_paths([str(REPO_ROOT / "src")])
    silent = [
        finding
        for finding in findings
        if finding.suppressed and not finding.suppress_reason
    ]
    assert silent == [], f"suppressions without a reason: {silent}"


def test_tests_and_benchmarks_scan_without_findings():
    # Library rules do not apply outside src/, but the suppression scanner
    # does: malformed noqa comments anywhere are RPR001 findings.
    findings = lint_paths([str(REPO_ROOT / "tests"), str(REPO_ROOT / "benchmarks")])
    assert unsuppressed(findings) == [], "\n" + render_text(findings)
