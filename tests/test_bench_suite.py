"""The curated suite: case definitions, digests, and measurement."""

from __future__ import annotations

import pytest

from repro.bench.measure import CaseResult, measure_case, run_suite
from repro.bench.suite import (
    MACRO,
    MICRO,
    BenchCase,
    default_suite,
    resolve_cases,
)
from repro.errors import ConfigurationError, SimulationError


def _tiny_micro(name="tiny", value=5):
    return BenchCase(
        name,
        MICRO,
        runner=lambda params: params["n"],
        params={"n": value},
    )


class TestSuiteDefinition:
    def test_one_macro_case_per_scheme_family(self):
        macro = [c.name for c in default_suite() if c.kind == MACRO]
        assert macro == [
            "fifo-threshold",
            "shared-headroom",
            "wfq-threshold",
            "hybrid-sharing",
            "tandem-3hop",
            "tandem-3hop-calendar",
        ]

    def test_micro_cases_cover_engine_and_sources(self):
        micro = {c.name for c in default_suite() if c.kind == MICRO}
        assert micro == {
            "engine-chain",
            "engine-preloaded",
            "engine-cancel",
            "onoff-batched",
            "churn",
            "churn-reclaim",
            "timeline-sampled",
            "equeue-churn",
            "equeue-calendar",
            "batched-pipeline",
        }

    def test_equeue_pair_differs_only_in_backend(self):
        cases = {c.name: c for c in default_suite()}
        heap = cases["equeue-churn"].params
        calendar = cases["equeue-calendar"].params
        assert heap["equeue"] == "heap"
        assert calendar["equeue"] == "calendar"
        assert {k: v for k, v in heap.items() if k != "equeue"} == {
            k: v for k, v in calendar.items() if k != "equeue"
        }

    def test_calendar_tandem_digest_differs_from_heap_tandem(self):
        cases = {c.name: c for c in default_suite()}
        assert (
            cases["tandem-3hop"].digest()
            != cases["tandem-3hop-calendar"].digest()
        )

    def test_quick_and_full_have_different_digests(self):
        full = {c.name: c.digest() for c in default_suite()}
        quick = {c.name: c.digest() for c in default_suite(quick=True)}
        assert set(full) == set(quick)
        for name in full:
            assert full[name] != quick[name], name

    def test_digests_are_stable_across_rebuilds(self):
        first = {c.name: c.digest() for c in default_suite()}
        second = {c.name: c.digest() for c in default_suite()}
        assert first == second

    def test_macro_digest_is_the_campaign_job_digest(self):
        case = default_suite()[0]
        assert case.digest() == case.job.digest()

    def test_micro_digest_depends_on_params(self):
        assert _tiny_micro(value=5).digest() != _tiny_micro(value=6).digest()

    def test_macro_case_requires_job(self):
        with pytest.raises(ConfigurationError):
            BenchCase("broken", MACRO)

    def test_micro_case_requires_runner(self):
        with pytest.raises(ConfigurationError):
            BenchCase("broken", MICRO)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            BenchCase("broken", "mega")

    def test_resolve_cases_by_name(self):
        cases = resolve_cases(["engine-chain", "fifo-threshold"])
        assert [c.name for c in cases] == ["engine-chain", "fifo-threshold"]

    def test_resolve_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_cases(["engine-chain", "nope"])


class TestMeasure:
    def test_micro_measurement_records_trials(self):
        result = measure_case(_tiny_micro(), trials=3)
        assert result.trials == 3
        assert result.events == 5
        assert result.packets is None
        assert result.digest == _tiny_micro().digest()
        assert all(t >= 0 for t in result.wall_times)
        assert result.peak_rss_bytes > 0

    def test_macro_measurement_counts_events_and_packets(self):
        case = resolve_cases(["fifo-threshold"], quick=True)[0]
        result = measure_case(case, trials=1)
        assert result.kind == MACRO
        assert result.events > 0
        assert result.packets is not None and result.packets > 0
        assert result.events_per_sec > 0
        assert result.packets_per_sec > 0

    def test_setup_runs_outside_the_timed_window(self):
        calls = []
        case = BenchCase(
            "prepared",
            MICRO,
            runner=lambda params, state: state["value"],
            params={"value": 7},
            setup=lambda params: calls.append(params) or {"value": params["value"]},
        )
        result = measure_case(case, trials=2)
        assert result.events == 7
        assert len(calls) == 2  # fresh state per trial

    def test_macro_case_rejects_setup_hook(self):
        job = resolve_cases(["fifo-threshold"], quick=True)[0].job
        with pytest.raises(ConfigurationError):
            BenchCase("broken", MACRO, job=job, setup=lambda params: None)

    def test_equeue_churn_backends_fire_identical_event_counts(self):
        quick = {c.name: c for c in default_suite(quick=True)}
        counts = {}
        for name in ("equeue-churn", "equeue-calendar"):
            case = quick[name]
            params = dict(case.params, n_events=2_000)
            counts[name] = case.runner(params, case.setup(params))
        # 2000 entries, every fourth cancelled before the drain.
        assert counts["equeue-churn"] == counts["equeue-calendar"] == 1_500

    def test_nondeterministic_case_rejected(self):
        drifting = iter(range(10))
        case = BenchCase(
            "drift",
            MICRO,
            runner=lambda params: next(drifting),
            params={},
        )
        with pytest.raises(SimulationError, match="nondeterministic"):
            measure_case(case, trials=2)

    def test_zero_trials_rejected(self):
        with pytest.raises(ConfigurationError):
            measure_case(_tiny_micro(), trials=0)

    def test_run_suite_preserves_order_and_reports_progress(self):
        seen = []
        results = run_suite(
            [_tiny_micro("a"), _tiny_micro("b")],
            trials=1,
            progress=lambda r: seen.append(r.name),
        )
        assert [r.name for r in results] == ["a", "b"]
        assert seen == ["a", "b"]


class TestCaseResult:
    def test_round_trips_through_dict(self):
        result = measure_case(_tiny_micro(), trials=2)
        clone = CaseResult.from_dict(result.to_dict())
        assert clone == result

    def test_rel_spread_is_relative_range(self):
        result = CaseResult(
            name="x",
            kind=MICRO,
            digest="d",
            events=10,
            packets=None,
            wall_times=(1.0, 2.0, 3.0),
            peak_rss_bytes=1,
        )
        assert result.wall_time == 2.0
        assert result.rel_spread == pytest.approx(1.0)

    def test_empty_trials_rejected(self):
        with pytest.raises(ConfigurationError):
            CaseResult(
                name="x",
                kind=MICRO,
                digest="d",
                events=1,
                packets=None,
                wall_times=(),
                peak_rss_bytes=1,
            )

    def test_malformed_dict_rejected(self):
        with pytest.raises(ConfigurationError):
            CaseResult.from_dict({"name": "x"})
