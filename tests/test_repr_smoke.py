"""Smoke tests for debugging-aid __repr__ methods.

These used to hide behind ``# pragma: no cover``; exercising them keeps
the reprs from rotting (they interpolate attributes that refactors move)
and keeps coverage pragmas honest.
"""

from repro.lint.findings import Finding
from repro.sim.engine import Simulator
from repro.sim.packet import Packet


class TestEventRepr:
    def test_pending_event(self):
        sim = Simulator()
        event = sim.schedule(1.25, lambda: None)
        text = repr(event)
        assert "Event(" in text
        assert "t=1.250000" in text
        assert "pending" in text

    def test_cancelled_event(self):
        sim = Simulator()
        event = sim.schedule(2.0, lambda: None)
        event.cancel()
        assert "cancelled" in repr(event)

    def test_named_callback_shown(self):
        sim = Simulator()

        def tick():
            return None

        event = sim.schedule(0.5, tick)
        assert "tick" in repr(event)


class TestPacketRepr:
    def test_repr_mentions_flow_size_and_time(self):
        packet = Packet(flow_id=7, size=1500.0, created=0.125)
        text = repr(packet)
        assert "flow=7" in text
        assert "1500" in text
        assert "0.125000" in text


class TestFindingRepr:
    def test_active_finding(self):
        finding = Finding("RPR101", "msg", "src/repro/x.py", 3, 4)
        text = repr(finding)
        assert "RPR101" in text
        assert "src/repro/x.py:3:5" in text
        assert "suppressed" not in text

    def test_suppressed_finding(self):
        finding = Finding("RPR102", "msg", "src/repro/x.py", 3, 0, suppressed=True)
        assert "[suppressed]" in repr(finding)
