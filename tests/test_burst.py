"""Burst-potential process and conformance checks (Section 2.2)."""

import pytest

from repro.analysis.burst import burst_potential, is_conformant_path, proposition2_bound
from repro.errors import ConfigurationError


class TestBurstPotential:
    def test_fresh_flow_has_full_bucket(self):
        # No arrivals yet: sigma(t) = sigma.
        path = [(0.0, 0.0)]
        assert burst_potential(path, 1000.0, 100.0, at=0.0) == 1000.0

    def test_instantaneous_burst_drains_potential(self):
        path = [(0.0, 800.0)]
        assert burst_potential(path, 1000.0, 100.0, at=0.0) == pytest.approx(200.0)

    def test_potential_recovers_at_token_rate(self):
        path = [(0.0, 800.0)]
        assert burst_potential(path, 1000.0, 100.0, at=2.0) == pytest.approx(400.0)

    def test_potential_capped_at_sigma(self):
        path = [(0.0, 800.0)]
        # Long after the burst, potential saturates at sigma (the infimum
        # is attained at s = t).
        assert burst_potential(path, 1000.0, 100.0, at=100.0) == pytest.approx(1000.0)

    def test_steady_rate_reaches_fixed_point(self):
        # 100-byte jumps every second at rho = 100: each debit is exactly
        # refilled before the next, so right after the jump at t the
        # potential sits at sigma - 100.
        path = [(float(t), 100.0 * t) for t in range(10)]
        assert burst_potential(path, 500.0, 100.0, at=9.0) == pytest.approx(400.0)
        # Half a second later, 50 bytes have been recredited.
        assert burst_potential(path, 500.0, 100.0, at=9.5) == pytest.approx(450.0)

    def test_evaluation_before_path_rejected(self):
        with pytest.raises(ConfigurationError):
            burst_potential([(1.0, 0.0)], 100.0, 10.0, at=0.5)

    def test_unsorted_path_rejected(self):
        with pytest.raises(ConfigurationError):
            burst_potential([(1.0, 0.0), (0.5, 10.0)], 100.0, 10.0, at=1.0)

    def test_decreasing_cumulative_rejected(self):
        with pytest.raises(ConfigurationError):
            burst_potential([(0.0, 10.0), (1.0, 5.0)], 100.0, 10.0, at=1.0)


class TestConformance:
    def test_rate_limited_path_conformant(self):
        # Discrete 100-byte jumps once per second at rho = 100: conformant
        # exactly when sigma covers one jump.
        path = [(float(t), 100.0 * t) for t in range(20)]
        assert is_conformant_path(path, sigma=100.0, rho=100.0)
        assert not is_conformant_path(path, sigma=99.0, rho=100.0)

    def test_burst_within_sigma_conformant(self):
        path = [(0.0, 500.0), (1.0, 600.0)]
        assert is_conformant_path(path, sigma=500.0, rho=100.0)

    def test_excessive_burst_not_conformant(self):
        path = [(0.0, 501.0)]
        assert not is_conformant_path(path, sigma=500.0, rho=100.0)

    def test_sustained_overrate_not_conformant(self):
        path = [(float(t), 200.0 * t) for t in range(10)]
        assert not is_conformant_path(path, sigma=100.0, rho=100.0)

    def test_burst_potential_nonnegative_iff_conformant(self):
        good = [(0.0, 300.0), (2.0, 500.0)]
        assert is_conformant_path(good, 500.0, 100.0)
        assert burst_potential(good, 500.0, 100.0, at=2.0) >= 0.0
        bad = [(0.0, 300.0), (1.0, 700.0)]
        assert not is_conformant_path(bad, 500.0, 100.0)
        assert burst_potential(bad, 500.0, 100.0, at=1.0) < 0.0


class TestProposition2Bound:
    def test_bound_below_reserved_threshold(self):
        # footnote 3: for B >= R sigma / (R - rho) the proof's occupancy
        # bound sits below the reserved allocation sigma + B rho / R.
        sigma, rho, link_rate = 500.0, 250.0, 1000.0
        min_buffer = link_rate * sigma / (link_rate - rho)
        for buffer_size in (min_buffer, 2 * min_buffer, 10 * min_buffer):
            bound = proposition2_bound(sigma, rho, buffer_size, link_rate)
            threshold = sigma + buffer_size * rho / link_rate
            assert bound <= threshold + 1e-9

    def test_minimum_buffer_leaves_no_competitor_share(self):
        # At B = R sigma / (R - rho) the reserved threshold consumes the
        # whole buffer (B2 = 0) and the occupancy bound collapses to sigma.
        sigma, rho, link_rate = 500.0, 250.0, 1000.0
        min_buffer = link_rate * sigma / (link_rate - rho)
        threshold = sigma + min_buffer * rho / link_rate
        assert threshold == pytest.approx(min_buffer)
        assert proposition2_bound(sigma, rho, min_buffer, link_rate) == (
            pytest.approx(sigma)
        )

    def test_too_small_buffer_rejected(self):
        with pytest.raises(ConfigurationError):
            proposition2_bound(500.0, 900.0, 100.0, 1000.0)

    def test_rho_must_be_less_than_link_rate(self):
        with pytest.raises(ConfigurationError):
            proposition2_bound(500.0, 1000.0, 1000.0, 1000.0)
