"""CLI contract: exit codes, formats, and module/script parity."""

import json
import subprocess
import sys
from pathlib import Path

from repro.lint.cli import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS, main

SRC_ROOT = Path(__file__).resolve().parent.parent / "src"

CLEAN_SNIPPET = "from repro import units\n\nRATE = units.mbps(45.0)\n"
BAD_SNIPPET = "def rate(mbits):\n    return mbits * 1e6 / 8\n"


def write_library_file(tmp_path, name, text):
    """Place a snippet under a src/repro-like path so library rules apply."""
    target = tmp_path / "src" / "repro" / "sim" / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text)
    return target


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        target = write_library_file(tmp_path, "clean.py", CLEAN_SNIPPET)
        assert main([str(target)]) == EXIT_CLEAN
        assert "clean: 0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        target = write_library_file(tmp_path, "bad.py", BAD_SNIPPET)
        assert main([str(target)]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "RPR102" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == EXIT_ERROR
        assert "error" in capsys.readouterr().err

    def test_no_paths_exits_two(self, capsys):
        assert main([]) == EXIT_ERROR
        assert "no paths given" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        target = write_library_file(tmp_path, "clean.py", CLEAN_SNIPPET)
        assert main(["--select", "RPR999", str(target)]) == EXIT_ERROR
        assert "unknown rule id" in capsys.readouterr().err

    def test_parse_error_exits_two(self, tmp_path, capsys):
        target = write_library_file(tmp_path, "broken.py", "def broken(:\n")
        assert main([str(target)]) == EXIT_ERROR
        assert "error" in capsys.readouterr().err

    def test_select_restricts_rules(self, tmp_path, capsys):
        target = write_library_file(tmp_path, "bad.py", BAD_SNIPPET)
        assert main(["--select", "RPR101", str(target)]) == EXIT_CLEAN
        capsys.readouterr()


class TestOutputs:
    def test_json_format_is_machine_readable(self, tmp_path, capsys):
        target = write_library_file(tmp_path, "bad.py", BAD_SNIPPET)
        assert main(["--format", "json", str(target)]) == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["RPR102"] == 1
        assert payload["findings"][0]["rule"] == "RPR102"
        assert payload["findings"][0]["line"] == 2

    def test_list_rules_names_all_six_domain_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule_id in ("RPR101", "RPR102", "RPR103", "RPR104", "RPR105", "RPR106"):
            assert rule_id in out


class TestModuleParity:
    """`python -m repro.lint` and the console-script path share main()."""

    def run_module(self, args, tmp_path):
        env = {"PYTHONPATH": str(SRC_ROOT), "PATH": "/usr/bin:/bin"}
        return subprocess.run(
            [sys.executable, "-m", "repro.lint", *args],
            capture_output=True,
            text=True,
            env=env,
            cwd=tmp_path,
        )

    def test_module_entry_matches_main_for_findings(self, tmp_path):
        target = write_library_file(tmp_path, "bad.py", BAD_SNIPPET)
        result = self.run_module([str(target)], tmp_path)
        assert result.returncode == EXIT_FINDINGS
        assert "RPR102" in result.stdout

    def test_module_entry_matches_main_for_clean(self, tmp_path):
        target = write_library_file(tmp_path, "clean.py", CLEAN_SNIPPET)
        result = self.run_module([str(target)], tmp_path)
        assert result.returncode == EXIT_CLEAN
        assert "clean: 0 findings" in result.stdout

    def test_module_entry_usage_error(self, tmp_path):
        result = self.run_module([], tmp_path)
        assert result.returncode == EXIT_ERROR
