"""Failure injection: errors surface loudly and near their cause.

The library's stated policy (see ``repro.errors``) is that internal
inconsistencies raise immediately rather than corrupting results; these
tests inject faults and verify the blast radius.
"""

import pytest

from repro.core.occupancy import BufferManager
from repro.core.tail_drop import TailDropManager
from repro.errors import SimulationError
from repro.metrics.collector import StatsCollector
from repro.sched.fifo import FIFOScheduler
from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.sim.port import OutputPort


class ExplodingManager(BufferManager):
    def _admits(self, flow_id, size):
        raise RuntimeError("boom")


class OveradmittingManager(BufferManager):
    """A buggy policy that ignores capacity."""

    def _admits(self, flow_id, size):
        return True


class TestEngineFaults:
    def test_callback_exception_propagates(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            sim.run()

    def test_clock_reflects_failing_event(self):
        sim = Simulator()
        sim.schedule(2.5, lambda: 1 / 0)
        try:
            sim.run()
        except ZeroDivisionError:
            pass
        assert sim.now == 2.5

    def test_engine_usable_after_caught_exception(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: 1 / 0)
        sim.schedule(2.0, fired.append, "later")
        try:
            sim.run()
        except ZeroDivisionError:
            pass
        sim.run()
        assert fired == ["later"]


class TestPortFaults:
    def test_manager_exception_propagates_from_receive(self):
        sim = Simulator()
        port = OutputPort(sim, 1000.0, FIFOScheduler(), ExplodingManager(1000.0))
        with pytest.raises(RuntimeError, match="boom"):
            port.receive(Packet(0, 500.0, 0.0))

    def test_overadmission_detected_at_the_buggy_policy(self):
        sim = Simulator()
        port = OutputPort(sim, 1000.0, FIFOScheduler(), OveradmittingManager(800.0))
        port.receive(Packet(0, 500.0, 0.0))
        with pytest.raises(SimulationError, match="beyond capacity"):
            port.receive(Packet(0, 500.0, 0.0))

    def test_zero_size_packet_rejected_loudly(self):
        sim = Simulator()
        port = OutputPort(sim, 1000.0, FIFOScheduler(), TailDropManager(1000.0))
        with pytest.raises(SimulationError):
            port.receive(Packet(0, 0.0, 0.0))

    def test_double_departure_detected(self):
        manager = TailDropManager(1000.0)
        manager.try_admit(0, 500.0)
        manager.on_depart(0, 500.0)
        with pytest.raises(SimulationError):
            manager.on_depart(0, 500.0)


class TestCollectorEdges:
    def test_departure_for_unseen_flow_creates_entry(self):
        collector = StatsCollector()
        collector.on_depart(7, 500.0, 0.01, 1.0)
        assert collector.flows[7].departed_packets == 1

    def test_subset_queries_ignore_unknown_flows(self):
        collector = StatsCollector()
        collector.on_offered(1, 500.0, 0.0)
        assert collector.loss_fraction([1, 999]) == 0.0
        assert collector.total_departed_bytes([999]) == 0.0
