"""Rotating Priority Queues scheduler."""

import pytest

from repro.errors import ConfigurationError
from repro.sched.rpq import RPQScheduler
from repro.sim.packet import Packet


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_rpq(class_of=None, delta=1.0, default_class=None):
    clock = FakeClock()
    if class_of is None:
        class_of = {0: 0, 1: 1, 2: 2}
    return clock, RPQScheduler(clock, delta, class_of, default_class=default_class)


def pkt(flow_id, size=100.0):
    return Packet(flow_id, size, 0.0)


class TestValidation:
    def test_bad_delta(self):
        with pytest.raises(ConfigurationError):
            RPQScheduler(FakeClock(), 0.0, {0: 0})

    def test_negative_class(self):
        with pytest.raises(ConfigurationError):
            RPQScheduler(FakeClock(), 1.0, {0: -1})

    def test_unknown_flow_rejected_without_default(self):
        _, rpq = make_rpq()
        with pytest.raises(ConfigurationError):
            rpq.enqueue(pkt(42))

    def test_default_class_accepts_unknown_flows(self):
        _, rpq = make_rpq(default_class=3)
        rpq.enqueue(pkt(42))
        assert len(rpq) == 1


class TestPriorityOrder:
    def test_urgent_class_served_first(self):
        _, rpq = make_rpq()
        low = pkt(2)   # class 2
        high = pkt(0)  # class 0
        rpq.enqueue(low)
        rpq.enqueue(high)
        assert rpq.dequeue() is high
        assert rpq.dequeue() is low

    def test_fifo_within_class(self):
        _, rpq = make_rpq()
        first, second = pkt(0), pkt(0)
        rpq.enqueue(first)
        rpq.enqueue(second)
        assert rpq.dequeue() is first
        assert rpq.dequeue() is second

    def test_rotation_promotes_old_packets(self):
        # A class-2 packet from epoch 0 outranks a class-0 packet from
        # epoch 3: 0 + 2 < 3 + 0.
        clock, rpq = make_rpq()
        old_low = pkt(2)
        rpq.enqueue(old_low)
        clock.now = 3.0
        fresh_high = pkt(0)
        rpq.enqueue(fresh_high)
        assert rpq.dequeue() is old_low

    def test_same_bucket_merges_across_epochs(self):
        # Class-1 packet in epoch 0 and class-0 packet in epoch 1 share
        # bucket 1 and are served FIFO.
        clock, rpq = make_rpq()
        first = pkt(1)
        rpq.enqueue(first)
        clock.now = 1.0
        second = pkt(0)
        rpq.enqueue(second)
        assert rpq.dequeue() is first
        assert rpq.dequeue() is second

    def test_granularity_delta(self):
        # With delta = 10, clock 3.0 is still epoch 0.
        clock, rpq = make_rpq(delta=10.0)
        rpq.enqueue(pkt(1))          # bucket 1
        clock.now = 3.0
        rpq.enqueue(pkt(0))          # still epoch 0 -> bucket 0
        assert rpq.dequeue().flow_id == 0


class TestAccounting:
    def test_len_and_backlog(self):
        _, rpq = make_rpq()
        rpq.enqueue(pkt(0, size=300.0))
        rpq.enqueue(pkt(1, size=200.0))
        assert len(rpq) == 2
        assert rpq.backlog_bytes == 500.0
        rpq.dequeue()
        assert len(rpq) == 1

    def test_dequeue_empty(self):
        _, rpq = make_rpq()
        assert rpq.dequeue() is None

    def test_bucket_count(self):
        clock, rpq = make_rpq()
        rpq.enqueue(pkt(0))
        rpq.enqueue(pkt(2))
        assert rpq.bucket_count() == 2
        rpq.dequeue()
        assert rpq.bucket_count() == 1

    def test_conservation(self):
        clock, rpq = make_rpq(default_class=1)
        sent = []
        for i in range(30):
            clock.now = i * 0.3
            packet = pkt(i % 5, size=50.0 + i)
            sent.append(packet)
            rpq.enqueue(packet)
        served = []
        while True:
            packet = rpq.dequeue()
            if packet is None:
                break
            served.append(packet)
        assert sorted(p.seq for p in served) == sorted(p.seq for p in sent)
