"""Run telemetry: per-job accounting through the campaign pipeline."""

import dataclasses
import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.campaign import CampaignRunner, ResultCache, ScenarioJob
from repro.experiments.schemes import Scheme
from repro.experiments.workloads import table1_flows
from repro.obs.telemetry import (
    TELEMETRY_SCHEMA,
    CampaignReport,
    JobTelemetry,
    batch_digest,
    read_telemetry_dir,
    write_telemetry,
)


def make_entry(digest="d0", wall=0.5, events=100, hit=False, worker=1, equeue=""):
    return JobTelemetry(
        job_digest=digest,
        wall_time=wall,
        events=events,
        cache_hit=hit,
        worker=worker,
        equeue=equeue,
    )


def make_jobs(n=2, sim_time=0.2):
    flows = table1_flows()[:4]
    return [
        ScenarioJob.for_scenario(
            flows, Scheme.FIFO_THRESHOLD, 20_000.0, seed=seed, sim_time=sim_time
        )
        for seed in range(1, n + 1)
    ]


class TestJobTelemetry:
    def test_round_trip(self):
        entry = make_entry()
        raw = entry.to_dict()
        assert raw["schema"] == TELEMETRY_SCHEMA
        assert JobTelemetry.from_dict(raw) == entry

    def test_schema_mismatch_rejected(self):
        raw = make_entry().to_dict()
        raw["schema"] = "repro-telemetry-v999"
        with pytest.raises(ConfigurationError):
            JobTelemetry.from_dict(raw)


class TestCampaignReport:
    def test_aggregation(self):
        report = CampaignReport.from_telemetry(
            [
                make_entry("a", wall=1.0, events=10, hit=False, worker=1),
                make_entry("b", wall=2.0, events=20, hit=False, worker=2),
                make_entry("c", wall=0.001, events=30, hit=True, worker=1),
            ]
        )
        assert report.jobs == 3
        assert report.executed == 2
        assert report.cache_hits == 1
        assert report.hit_fraction == pytest.approx(1 / 3)
        assert report.total_events == 60
        assert report.total_wall_time == pytest.approx(3.001)
        assert report.workers == [1, 2]

    def test_wall_histogram_merges_workers(self):
        report = CampaignReport.from_telemetry(
            [
                make_entry("a", wall=0.1, worker=1),
                make_entry("b", wall=1.0, worker=2),
                make_entry("c", wall=10.0, worker=3),
            ]
        )
        merged = report.wall_histogram()
        assert merged.count == 3
        assert merged.max_value == 10.0

    def test_render_and_to_dict(self):
        report = CampaignReport.from_telemetry([make_entry()])
        text = report.render()
        assert "jobs" in text and "wall time p95" in text
        raw = report.to_dict()
        assert raw["jobs"] == 1
        assert "wall_time_p50" in raw

    def test_empty_report(self):
        report = CampaignReport()
        assert report.hit_fraction == 0.0
        assert report.wall_histogram().count == 0
        report.render()  # must not raise on empty


class TestBackendAccounting:
    def test_per_backend_sums_over_executed_jobs(self):
        report = CampaignReport.from_telemetry(
            [
                make_entry("a", wall=1.0, events=10, equeue="heap"),
                make_entry("b", wall=2.0, events=20, equeue="heap"),
                make_entry("c", wall=4.0, events=40, equeue="calendar"),
            ]
        )
        backends = report.backends
        assert set(backends) == {"calendar", "heap"}
        assert backends["heap"] == {
            "jobs": 2,
            "events": 30,
            "wall_time": pytest.approx(3.0),
            "cancelled_pending": 0,
            "compactions": 0,
        }
        assert backends["calendar"]["jobs"] == 1
        assert backends["calendar"]["events"] == 40

    def test_cache_hits_report_no_backend(self):
        # A cache hit runs no engine: its backend is unknown and must
        # not pollute the per-backend accounting.
        report = CampaignReport.from_telemetry(
            [
                make_entry("a", equeue="heap"),
                make_entry("b", hit=True, equeue=""),
            ]
        )
        assert set(report.backends) == {"heap"}
        assert report.backends["heap"]["jobs"] == 1

    def test_engine_counters_accumulate(self):
        entries = [
            JobTelemetry(
                job_digest=d,
                wall_time=0.1,
                events=5,
                cache_hit=False,
                worker=1,
                equeue="calendar",
                cancelled_pending=2,
                compactions=1,
            )
            for d in ("a", "b")
        ]
        stats = CampaignReport.from_telemetry(entries).backends["calendar"]
        assert stats["cancelled_pending"] == 4
        assert stats["compactions"] == 2

    def test_backends_in_render_and_to_dict(self):
        report = CampaignReport.from_telemetry(
            [make_entry("a", equeue="calendar")]
        )
        assert report.to_dict()["backends"]["calendar"]["jobs"] == 1
        assert "engine [calendar]" in report.render()

    def test_backends_returns_copies(self):
        report = CampaignReport.from_telemetry([make_entry("a", equeue="heap")])
        report.backends["heap"]["jobs"] = 999
        assert report.backends["heap"]["jobs"] == 1


class TestTelemetryFiles:
    def test_write_then_read(self, tmp_path):
        entries = [make_entry("a"), make_entry("b")]
        path = write_telemetry(tmp_path, entries)
        assert path.name == f"campaign-{batch_digest(['a', 'b'])}.jsonl"
        assert read_telemetry_dir(tmp_path) == entries

    def test_rerun_overwrites_not_accumulates(self, tmp_path):
        entries = [make_entry("a")]
        write_telemetry(tmp_path, entries)
        write_telemetry(tmp_path, entries)
        assert len(read_telemetry_dir(tmp_path)) == 1

    def test_bad_lines_skipped(self, tmp_path):
        path = write_telemetry(tmp_path, [make_entry("a")])
        path.write_text(path.read_text() + "not json\n" + json.dumps({"schema": "x"}) + "\n")
        assert len(read_telemetry_dir(tmp_path)) == 1

    def test_missing_dir_is_empty(self, tmp_path):
        assert read_telemetry_dir(tmp_path / "nope") == []


class TestRunnerIntegration:
    def test_executed_jobs_carry_telemetry(self, monkeypatch):
        from repro.sim.equeue import EQUEUE_ENV_VAR

        # Jobs without an explicit backend resolve via REPRO_EQUEUE;
        # pin the env so the recorded backend is the heap default.
        monkeypatch.delenv(EQUEUE_ENV_VAR, raising=False)
        runner = CampaignRunner()
        jobs = make_jobs(2)
        records = runner.run(jobs)
        for job, record in zip(jobs, records):
            telemetry = record.telemetry
            assert telemetry is not None
            assert telemetry.job_digest == job.digest()
            assert telemetry.cache_hit is False
            assert telemetry.wall_time > 0
            assert telemetry.events == record.events_processed
            assert telemetry.equeue == "heap"

    def test_executed_jobs_report_their_backend(self):
        jobs = [
            dataclasses.replace(job, equeue="calendar") for job in make_jobs(1)
        ]
        runner = CampaignRunner()
        records = runner.run(jobs)
        assert records[0].telemetry.equeue == "calendar"
        assert set(runner.last_report.backends) == {"calendar"}

    def test_cache_hits_marked(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        jobs = make_jobs(2)
        CampaignRunner(cache=cache).run(jobs)
        records = CampaignRunner(cache=cache).run(jobs)
        for record in records:
            assert record.telemetry is not None
            assert record.telemetry.cache_hit is True

    def test_last_report_aggregates_batch(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = CampaignRunner(cache=cache)
        runner.run(make_jobs(2))
        report = runner.last_report
        assert report is not None
        assert report.jobs == 2
        assert report.executed == 2
        rerun = CampaignRunner(cache=cache)
        rerun.run(make_jobs(2))
        assert rerun.last_report.cache_hits == 2

    def test_telemetry_written_to_dir(self, tmp_path):
        runner = CampaignRunner(telemetry_dir=tmp_path / "telemetry")
        jobs = make_jobs(2)
        runner.run(jobs)
        entries = read_telemetry_dir(tmp_path / "telemetry")
        assert sorted(entry.job_digest for entry in entries) == sorted(
            job.digest() for job in jobs
        )

    def test_telemetry_not_serialized(self, tmp_path):
        runner = CampaignRunner()
        record = runner.run(make_jobs(1))[0]
        assert record.telemetry is not None
        assert "telemetry" not in record.to_dict()
        # Equality ignores telemetry: a cache round-trip compares equal.
        stripped = dataclasses.replace(record, telemetry=None)
        assert stripped == record

    def test_parallel_run_records_worker_ids(self, tmp_path):
        runner = CampaignRunner(workers=2, chunk_size=1)
        records = runner.run(make_jobs(4, sim_time=0.3))
        workers = {record.telemetry.worker for record in records}
        assert len(workers) >= 1  # pool may reuse one worker on tiny jobs
        assert all(record.telemetry.wall_time > 0 for record in records)


class TestCachePersistedStats:
    def test_stats_accumulate_across_instances(self, tmp_path):
        root = tmp_path / "cache"
        jobs = make_jobs(1)
        cache = ResultCache(root)
        CampaignRunner(cache=cache).run(jobs)  # miss + store
        cache2 = ResultCache(root)
        CampaignRunner(cache=cache2).run(jobs)  # hit
        stats = ResultCache(root).persisted_stats()
        assert stats["misses"] == 1
        assert stats["stores"] == 1
        assert stats["hits"] == 1

    def test_persist_resets_in_memory_counters(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.get("absent")
        cache.persist_stats()
        assert cache.misses == 0
        cache.persist_stats()
        assert ResultCache(tmp_path / "cache").persisted_stats()["misses"] == 1

    def test_stats_file_is_not_a_cache_entry(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.persist_stats()
        assert cache.stats_path.is_file()
        assert cache.entries() == []

    def test_clear_removes_stats(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.get("absent")
        cache.persist_stats()
        cache.clear()
        assert not cache.stats_path.exists()
        assert cache.persisted_stats() == {"hits": 0, "misses": 0, "stores": 0}

    def test_corrupt_stats_file_tolerated(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.root.mkdir(parents=True)
        cache.stats_path.write_text("not json")
        assert cache.persisted_stats() == {"hits": 0, "misses": 0, "stores": 0}
