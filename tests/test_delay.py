"""Delay-bound analysis (Section 1's scalability argument)."""

import pytest

from repro.analysis.delay import (
    OC48,
    max_buffer_for_delay,
    threshold_delay_bound,
    worst_case_fifo_delay,
)
from repro.core.tail_drop import TailDropManager
from repro.errors import ConfigurationError
from repro.metrics.collector import StatsCollector
from repro.sched.fifo import FIFOScheduler
from repro.sim.engine import Simulator
from repro.sim.port import OutputPort
from repro.traffic.sources import GreedySource
from repro.units import mbytes


class TestWorstCaseDelay:
    def test_papers_oc48_example(self):
        # "the worst case delay caused by a 1MByte buffer feeding an
        # OC-48 link (2.4Gbits/sec) is less than 3.5msec"
        delay = worst_case_fifo_delay(mbytes(1.0), OC48)
        assert delay < 3.5e-3
        assert delay > 3.0e-3

    def test_scales_linearly_with_buffer(self):
        assert worst_case_fifo_delay(2000.0, 1000.0) == pytest.approx(
            2 * worst_case_fifo_delay(1000.0, 1000.0)
        )

    def test_inverse_with_link_rate(self):
        assert worst_case_fifo_delay(1000.0, 2000.0) == pytest.approx(
            0.5 * worst_case_fifo_delay(1000.0, 1000.0)
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            worst_case_fifo_delay(0.0, 1000.0)
        with pytest.raises(ConfigurationError):
            worst_case_fifo_delay(1000.0, 0.0)


class TestInverseDesignRule:
    def test_roundtrip(self):
        buffer_size = max_buffer_for_delay(0.005, OC48)
        assert worst_case_fifo_delay(buffer_size, OC48) == pytest.approx(0.005)

    def test_threshold_bound_equals_fifo_bound(self):
        assert threshold_delay_bound(500.0, 10_000.0, 1000.0) == (
            worst_case_fifo_delay(10_000.0, 1000.0)
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            max_buffer_for_delay(0.0, 1000.0)
        with pytest.raises(ConfigurationError):
            threshold_delay_bound(-1.0, 1000.0, 1000.0)


class TestBoundHoldsInSimulation:
    def test_measured_delay_never_exceeds_bound(self):
        # Saturate a small buffer with a greedy source and verify every
        # delivered packet met the B/R bound (plus one transmission time).
        link = 100_000.0
        buffer_size = 10_000.0
        sim = Simulator()
        collector = StatsCollector()
        port = OutputPort(sim, link, FIFOScheduler(), TailDropManager(buffer_size),
                          collector)
        GreedySource(sim, 0, link, port, packet_size=500.0, until=10.0)
        sim.run(until=12.0)
        bound = worst_case_fifo_delay(buffer_size, link) + 500.0 / link
        assert collector.flows[0].delay_max <= bound + 1e-9
        assert collector.flows[0].departed_packets > 0
