"""Declarative scenario specifications."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.schemes import Scheme
from repro.experiments.spec import ScenarioSpec, load_specs, run_spec
from repro.units import mbytes

BASE = {
    "name": "demo",
    "workload": "table1",
    "scheme": "FIFO_THRESHOLD",
    "buffer_mb": 1.0,
    "sim_time": 1.0,
    "seeds": [1],
    "metrics": ["utilization", "loss:conformant", "throughput:6,8"],
}


def spec_with(**overrides):
    raw = dict(BASE)
    raw.update(overrides)
    return ScenarioSpec.from_dict(raw)


class TestFromDict:
    def test_basic_fields(self):
        spec = spec_with()
        assert spec.name == "demo"
        assert spec.scheme is Scheme.FIFO_THRESHOLD
        assert spec.buffer_bytes == mbytes(1.0)
        assert len(spec.flows) == 9
        assert spec.conformant_ids == tuple(range(6))

    def test_missing_required_key(self):
        raw = dict(BASE)
        del raw["scheme"]
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_dict(raw)

    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            spec_with(scheme="MAGIC")

    def test_unknown_workload(self):
        with pytest.raises(ConfigurationError):
            spec_with(workload="table9")

    def test_unknown_metric(self):
        with pytest.raises(ConfigurationError):
            spec_with(metrics=["jitter"])

    def test_bad_metric_ids(self):
        with pytest.raises(ConfigurationError):
            spec_with(metrics=["loss:a,b"])

    def test_empty_seeds(self):
        with pytest.raises(ConfigurationError):
            spec_with(seeds=[])

    def test_hybrid_gets_default_groups(self):
        spec = spec_with(scheme="HYBRID_SHARING")
        assert spec.groups == ((0, 1, 2), (3, 4, 5), (6, 7, 8))

    def test_custom_workload(self):
        spec = spec_with(workload=[
            {"peak_mbps": 16, "avg_mbps": 2, "bucket_kb": 50, "token_mbps": 2},
            {"peak_mbps": 40, "avg_mbps": 16, "bucket_kb": 50, "token_mbps": 2,
             "conformant": False, "burst_kb": 250},
        ])
        assert len(spec.flows) == 2
        assert spec.flows[0].conformant
        assert not spec.flows[1].conformant
        assert spec.conformant_ids == (0,)

    def test_custom_workload_missing_key(self):
        with pytest.raises(ConfigurationError):
            spec_with(workload=[{"peak_mbps": 16}])


class TestRunSpec:
    def test_produces_all_metrics(self):
        results = run_spec(spec_with())
        assert set(results) == set(BASE["metrics"])
        assert 0.0 < results["utilization"].mean <= 100.0

    def test_multiple_seeds_give_ci(self):
        results = run_spec(spec_with(seeds=[1, 2]))
        assert results["utilization"].n == 2

    def test_deterministic(self):
        first = run_spec(spec_with())
        second = run_spec(spec_with())
        assert first["utilization"].mean == second["utilization"].mean

    def test_hybrid_spec_runs(self):
        results = run_spec(spec_with(scheme="HYBRID_SHARING"))
        assert results["utilization"].mean > 0.0


class TestLoadSpecs:
    def test_single_object(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(BASE))
        specs = load_specs(path)
        assert len(specs) == 1
        assert specs[0].name == "demo"

    def test_list_of_specs(self, tmp_path):
        second = dict(BASE, name="other", scheme="WFQ_SHARING")
        path = tmp_path / "specs.json"
        path.write_text(json.dumps([BASE, second]))
        specs = load_specs(path)
        assert [spec.name for spec in specs] == ["demo", "other"]

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[]")
        with pytest.raises(ConfigurationError):
            load_specs(path)


class TestCLIRun:
    def test_run_target(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "spec.json"
        path.write_text(json.dumps(BASE))
        assert main(["run", "--spec", str(path)]) == 0
        out = capsys.readouterr().out
        assert "demo" in out
        assert "utilization" in out

    def test_run_requires_spec(self, capsys):
        from repro.__main__ import main

        assert main(["run"]) == 2
        assert "--spec" in capsys.readouterr().err
