"""Batched pipeline: block generation, closed-form shaping, gating.

``repro.traffic.batched`` replaces the per-packet source/shaper event
chains with numpy block computation.  The load-bearing claims, each
pinned here:

* the closed-form leaky bucket (``shaped_release_times``) is *exact* —
  it must match the event-driven :class:`LeakyBucketShaper` release for
  release, including the bucket cap after idle periods;
* block generation is deterministic and block-size invariant;
* the pipeline is gated off by default and ``REPRO_BATCHED`` switches
  the single-port fabric over, deterministically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.traffic.batched import (
    BATCHED_ENV_VAR,
    BatchedOnOffSource,
    batched_pipeline_enabled,
    onoff_arrival_times,
    shaped_release_times,
)
from repro.traffic.shaper import LeakyBucketShaper
from repro.units import mbps

PACKET = 1000.0


class Recorder:
    """Sink that records (time, flow_id, size) per received packet."""

    def __init__(self, sim):
        self.sim = sim
        self.received = []

    def receive(self, packet):
        self.received.append((self.sim.now, packet.flow_id, packet.size))


def _scalar_release_times(arrivals, sigma, rho, size=PACKET):
    """Release schedule of the event-driven shaper for the same input."""
    sim = Simulator()
    sink = Recorder(sim)
    shaper = LeakyBucketShaper(sim, sigma, rho, sink)

    def feed():
        shaper.receive(Packet.acquire(0, size, sim.now))

    for t in arrivals:
        sim.schedule_at(float(t), feed)
    sim.run()
    return [t for t, _fid, _size in sink.received]


class TestGeneration:
    KW = dict(
        peak_rate=mbps(48.0),
        avg_rate=mbps(12.0),
        mean_burst=8 * PACKET,
        until=5.0,
        packet_size=PACKET,
    )

    def test_deterministic_given_seed(self):
        a = onoff_arrival_times(np.random.default_rng(7), **self.KW)
        b = onoff_arrival_times(np.random.default_rng(7), **self.KW)
        assert np.array_equal(a, b)
        assert a.size > 0

    def test_block_size_does_not_change_the_stream(self):
        reference = onoff_arrival_times(
            np.random.default_rng(7), block_bursts=512, **self.KW
        )
        for block in (1, 3, 64, 4096):
            got = onoff_arrival_times(
                np.random.default_rng(7), block_bursts=block, **self.KW
            )
            assert np.array_equal(got, reference), f"block_bursts={block}"

    def test_times_sorted_and_inside_horizon(self):
        times = onoff_arrival_times(np.random.default_rng(3), **self.KW)
        assert np.all(np.diff(times) >= 0)
        assert times[0] >= 0.0
        assert times[-1] < self.KW["until"]

    def test_peak_rate_bounds_intra_burst_spacing(self):
        times = onoff_arrival_times(np.random.default_rng(3), **self.KW)
        spacing = PACKET / self.KW["peak_rate"]
        # No two packets closer than the peak-rate spacing (up to float).
        assert np.all(np.diff(times) >= spacing * (1 - 1e-9))

    def test_long_run_rate_approaches_average(self):
        kw = dict(self.KW, until=200.0)
        times = onoff_arrival_times(np.random.default_rng(11), **kw)
        rate = times.size * PACKET / kw["until"]
        assert rate == pytest.approx(kw["avg_rate"], rel=0.15)

    def test_empty_horizon_is_empty(self):
        assert onoff_arrival_times(
            np.random.default_rng(0), **dict(self.KW, until=0.0)
        ).size == 0

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            onoff_arrival_times(rng, **dict(self.KW, avg_rate=mbps(96.0)))
        with pytest.raises(ConfigurationError):
            onoff_arrival_times(rng, **dict(self.KW, mean_burst=PACKET / 2))
        with pytest.raises(ConfigurationError):
            onoff_arrival_times(rng, block_bursts=0, **self.KW)


class TestShapedReleaseTimes:
    SIGMA = 4 * PACKET
    RHO = mbps(8.0)

    def test_matches_event_driven_shaper_on_random_stream(self):
        arrivals = onoff_arrival_times(
            np.random.default_rng(5),
            peak_rate=mbps(48.0),
            avg_rate=mbps(12.0),
            mean_burst=8 * PACKET,
            until=3.0,
            packet_size=PACKET,
        )
        closed = shaped_release_times(arrivals, PACKET, self.SIGMA, self.RHO)
        scalar = _scalar_release_times(arrivals, self.SIGMA, self.RHO)
        assert len(scalar) == closed.size
        np.testing.assert_allclose(closed, scalar, rtol=1e-9, atol=1e-7)

    def test_bucket_cap_after_idle_period(self):
        # A long idle gap must not earn more than sigma of credit: after
        # the gap only 4 packets (the bucket) pass back-to-back, the
        # rest wait for tokens.  The from-zero cumsum formula gets this
        # wrong; the event-driven shaper is the referee.
        burst = np.array([10.0 + i * 1e-4 for i in range(8)])
        arrivals = np.concatenate(([0.0], burst))
        closed = shaped_release_times(arrivals, PACKET, self.SIGMA, self.RHO)
        scalar = _scalar_release_times(arrivals, self.SIGMA, self.RHO)
        np.testing.assert_allclose(closed, scalar, rtol=1e-9, atol=1e-7)
        # Tokens for packets beyond the bucket arrive at rho.
        assert closed[-1] >= 10.0 + (8 - 4) * PACKET / self.RHO - 1e-6

    def test_conformant_stream_passes_untouched(self):
        arrivals = np.arange(20) * (PACKET / self.RHO) * 2.0
        released = shaped_release_times(arrivals, PACKET, self.SIGMA, self.RHO)
        np.testing.assert_allclose(released, arrivals)

    def test_releases_never_precede_arrivals(self):
        arrivals = np.sort(np.random.default_rng(9).uniform(0, 1.0, 200))
        released = shaped_release_times(arrivals, PACKET, self.SIGMA, self.RHO)
        assert np.all(released >= arrivals - 1e-12)
        assert np.all(np.diff(released) >= -1e-12)

    def test_start_offset_means_full_bucket_at_start(self):
        arrivals = np.array([2.0, 2.0, 2.0, 2.0])
        released = shaped_release_times(
            arrivals, PACKET, 4 * PACKET, self.RHO, start=2.0
        )
        np.testing.assert_allclose(released, arrivals)

    def test_empty_input(self):
        assert shaped_release_times(
            np.empty(0), PACKET, self.SIGMA, self.RHO
        ).size == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            shaped_release_times(np.array([0.0]), PACKET, 0.0, self.RHO)
        with pytest.raises(ConfigurationError):
            shaped_release_times(np.array([0.0]), PACKET, self.SIGMA, 0.0)
        with pytest.raises(ConfigurationError):
            shaped_release_times(np.array([0.0]), 2 * self.SIGMA, self.SIGMA, self.RHO)


class TestBatchedOnOffSource:
    KW = dict(
        peak_rate=mbps(48.0),
        avg_rate=mbps(12.0),
        mean_burst=8 * PACKET,
        packet_size=PACKET,
    )

    def _replay(self, shaping=None, until=2.0, seed=13):
        sim = Simulator()
        sink = Recorder(sim)
        source = BatchedOnOffSource(
            sim,
            flow_id=4,
            sink=sink,
            rng=np.random.default_rng(seed),
            until=until,
            shaping=shaping,
            **self.KW,
        )
        sim.run(until=until)
        return source, sink

    def test_replays_the_precomputed_schedule_exactly(self):
        times = onoff_arrival_times(
            np.random.default_rng(13), until=2.0, **self.KW
        )
        source, sink = self._replay()
        assert source.scheduled_packets == times.size
        assert source.emitted_packets == times.size
        assert [t for t, _f, _s in sink.received] == pytest.approx(times.tolist())
        assert all(fid == 4 and size == PACKET for _t, fid, size in sink.received)
        assert source.emitted_bytes == times.size * PACKET

    def test_shaping_collapses_the_chain(self):
        sigma, rho = 4 * PACKET, mbps(8.0)
        source, sink = self._replay(shaping=(sigma, rho))
        assert source.shaped_packets == len(sink.received)
        released = np.array([t for t, _f, _s in sink.received])
        arrivals = onoff_arrival_times(
            np.random.default_rng(13), until=2.0, **self.KW
        )
        expected = shaped_release_times(arrivals, PACKET, sigma, rho)
        expected = expected[expected < 2.0]
        np.testing.assert_allclose(released, expected)

    def test_stop_silences_the_source(self):
        sim = Simulator()
        sink = Recorder(sim)
        source = BatchedOnOffSource(
            sim,
            flow_id=1,
            sink=sink,
            rng=np.random.default_rng(13),
            until=2.0,
            **self.KW,
        )
        sim.schedule_at(1.0, source.stop)
        sim.run(until=2.0)
        assert source.emitted_packets < source.scheduled_packets
        assert all(t <= 1.0 for t, _f, _s in sink.received)

    def test_requires_finite_horizon(self):
        with pytest.raises(ConfigurationError, match="finite horizon"):
            BatchedOnOffSource(
                Simulator(),
                flow_id=1,
                sink=None,
                rng=np.random.default_rng(0),
                until=None,
                **self.KW,
            )


class TestGating:
    @pytest.mark.parametrize("raw", ["", "0", "false", "no", " 0 "])
    def test_off_values(self, raw, monkeypatch):
        monkeypatch.setenv(BATCHED_ENV_VAR, raw)
        assert not batched_pipeline_enabled()

    @pytest.mark.parametrize("raw", ["1", "true", "yes", "on"])
    def test_on_values(self, raw, monkeypatch):
        monkeypatch.setenv(BATCHED_ENV_VAR, raw)
        assert batched_pipeline_enabled()

    def test_unset_means_off(self, monkeypatch):
        monkeypatch.delenv(BATCHED_ENV_VAR, raising=False)
        assert not batched_pipeline_enabled()


class TestFabricIntegration:
    """REPRO_BATCHED swaps the single-port pipeline over, deterministically."""

    @staticmethod
    def _run(seed=1):
        from repro.experiments.runner import run_scenario
        from repro.experiments.schemes import Scheme
        from repro.experiments.workloads import table1_flows
        from repro.units import mbytes

        result = run_scenario(
            table1_flows(),
            Scheme.FIFO_THRESHOLD,
            mbytes(1),
            seed=seed,
            sim_time=1.0,
            warmup=0.1,
        )
        return {
            fid: (fs.offered_packets, fs.dropped_packets, fs.departed_packets)
            for fid, fs in result.flow_stats.items()
        }

    def test_batched_run_is_deterministic(self, monkeypatch):
        monkeypatch.setenv(BATCHED_ENV_VAR, "1")
        assert self._run() == self._run()

    def test_batched_stream_differs_from_scalar(self, monkeypatch):
        # Same process, different (equally valid) random stream — which
        # is exactly why the pipeline is opt-in and the goldens pin only
        # the scalar path.
        monkeypatch.setenv(BATCHED_ENV_VAR, "1")
        batched = self._run()
        monkeypatch.delenv(BATCHED_ENV_VAR)
        scalar = self._run()
        assert set(batched) == set(scalar)
        assert batched != scalar
        assert sum(c[0] for c in batched.values()) > 0
