"""Closed-form buffer requirements (Section 2.3)."""

import pytest

from repro.analysis.buffer_sizing import (
    buffer_inflation_factor,
    buffer_vs_utilization,
    fifo_min_buffer,
    reserved_utilization,
    wfq_min_buffer,
)
from repro.errors import ConfigurationError
from repro.units import kbytes, mbps


class TestWFQMinBuffer:
    def test_sum_of_bursts(self):
        assert wfq_min_buffer([100.0, 200.0, 300.0]) == 600.0

    def test_empty_flow_set(self):
        assert wfq_min_buffer([]) == 0.0

    def test_negative_burst_rejected(self):
        with pytest.raises(ConfigurationError):
            wfq_min_buffer([-1.0])


class TestFIFOMinBuffer:
    def test_equation9(self):
        # B = R * sum(sigma) / (R - sum(rho))
        sigmas = [1000.0, 2000.0]
        rhos = [300.0, 200.0]
        assert fifo_min_buffer(sigmas, rhos, 1000.0) == pytest.approx(
            1000.0 * 3000.0 / 500.0
        )

    def test_reduces_to_wfq_at_zero_utilisation(self):
        sigmas = [1000.0]
        assert fifo_min_buffer(sigmas, [0.0], 1000.0) == wfq_min_buffer(sigmas)

    def test_unbounded_at_full_reservation(self):
        with pytest.raises(ConfigurationError):
            fifo_min_buffer([1000.0], [1000.0], 1000.0)

    def test_paper_workload(self):
        # Table 1: sum(sigma) = 600 KB, sum(rho) = 32.8 Mb/s, R = 48 Mb/s.
        sigmas = [kbytes(50)] * 3 + [kbytes(100)] * 3 + [kbytes(50)] * 3
        rhos = [mbps(2)] * 3 + [mbps(8)] * 3 + [mbps(0.4)] * 2 + [mbps(2)]
        required = fifo_min_buffer(sigmas, rhos, mbps(48))
        # u ~ 0.683 -> inflation ~ 3.16: about 1.9 MB.
        assert required == pytest.approx(kbytes(600) / (1 - 32.8 / 48), rel=1e-9)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            fifo_min_buffer([1.0], [1.0, 2.0], 10.0)


class TestUtilizationForms:
    def test_reserved_utilization(self):
        assert reserved_utilization([200.0, 300.0], 1000.0) == pytest.approx(0.5)

    def test_equation10_matches_equation9(self):
        sigmas = [500.0, 700.0]
        rhos = [100.0, 400.0]
        link_rate = 1000.0
        u = reserved_utilization(rhos, link_rate)
        assert buffer_vs_utilization(u, sum(sigmas)) == pytest.approx(
            fifo_min_buffer(sigmas, rhos, link_rate)
        )

    def test_blowup_towards_full_utilisation(self):
        near_full = buffer_vs_utilization(0.99, 1000.0)
        moderate = buffer_vs_utilization(0.5, 1000.0)
        assert near_full > 49 * moderate

    def test_utilisation_bounds(self):
        with pytest.raises(ConfigurationError):
            buffer_vs_utilization(1.0, 1000.0)
        with pytest.raises(ConfigurationError):
            buffer_vs_utilization(-0.1, 1000.0)

    def test_inflation_factor(self):
        assert buffer_inflation_factor([500.0], 1000.0) == pytest.approx(2.0)

    def test_inflation_is_fifo_over_wfq(self):
        sigmas = [100.0, 300.0]
        rhos = [250.0, 250.0]
        ratio = fifo_min_buffer(sigmas, rhos, 1000.0) / wfq_min_buffer(sigmas)
        assert ratio == pytest.approx(buffer_inflation_factor(rhos, 1000.0))
