"""Property-based tests: RPQ and SCFQ conservation and ordering."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.rpq import RPQScheduler
from repro.sched.scfq import SCFQScheduler
from repro.sim.packet import Packet

arrivals = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.2, allow_nan=False),   # gap
        st.integers(min_value=0, max_value=3),                      # flow
        st.floats(min_value=10.0, max_value=1500.0, allow_nan=False),
    ),
    min_size=1,
    max_size=80,
)


class TestRPQProperties:
    @given(arrivals=arrivals, delta=st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=80, deadline=None)
    def test_conservation_and_fifo_within_flow(self, arrivals, delta):
        clock = [0.0]
        rpq = RPQScheduler(lambda: clock[0], delta, {0: 0, 1: 1, 2: 2, 3: 3})
        sent = []
        for gap, flow_id, size in arrivals:
            clock[0] += gap
            packet = Packet(flow_id, size, clock[0])
            sent.append(packet)
            rpq.enqueue(packet)
        served = []
        while True:
            packet = rpq.dequeue()
            if packet is None:
                break
            served.append(packet)
        assert sorted(p.seq for p in served) == sorted(p.seq for p in sent)
        # FIFO within each flow (same class + monotone epochs => stable).
        for flow_id in range(4):
            seqs = [p.seq for p in served if p.flow_id == flow_id]
            assert seqs == sorted(seqs)

    @given(arrivals=arrivals, delta=st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=80, deadline=None)
    def test_served_in_bucket_order(self, arrivals, delta):
        clock = [0.0]
        class_of = {0: 0, 1: 1, 2: 2, 3: 3}
        rpq = RPQScheduler(lambda: clock[0], delta, class_of)
        bucket_of = {}
        for gap, flow_id, size in arrivals:
            clock[0] += gap
            packet = Packet(flow_id, size, clock[0])
            bucket_of[packet.seq] = int(clock[0] / delta) + class_of[flow_id]
            rpq.enqueue(packet)
        served_buckets = []
        while True:
            packet = rpq.dequeue()
            if packet is None:
                break
            served_buckets.append(bucket_of[packet.seq])
        assert served_buckets == sorted(served_buckets)


class TestSCFQProperties:
    @given(arrivals=arrivals)
    @settings(max_examples=80, deadline=None)
    def test_conservation(self, arrivals):
        scfq = SCFQScheduler({0: 1.0, 1: 2.0, 2: 3.0, 3: 4.0})
        sent = []
        for _gap, flow_id, size in arrivals:
            packet = Packet(flow_id, size, 0.0)
            sent.append(packet)
            scfq.enqueue(packet)
        served = []
        while True:
            packet = scfq.dequeue()
            if packet is None:
                break
            served.append(packet)
        assert sorted(p.seq for p in served) == sorted(p.seq for p in sent)
        assert len(scfq) == 0

    @given(arrivals=arrivals)
    @settings(max_examples=80, deadline=None)
    def test_per_flow_order_preserved(self, arrivals):
        scfq = SCFQScheduler({0: 1.0, 1: 2.0, 2: 3.0, 3: 4.0})
        for _gap, flow_id, size in arrivals:
            scfq.enqueue(Packet(flow_id, size, 0.0))
        last_seq = {}
        while True:
            packet = scfq.dequeue()
            if packet is None:
                break
            if packet.flow_id in last_seq:
                assert packet.seq > last_seq[packet.flow_id]
            last_seq[packet.flow_id] = packet.seq

    @given(
        weight=st.floats(min_value=1.0, max_value=16.0, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_backlogged_service_tracks_weights(self, weight):
        scfq = SCFQScheduler({0: weight, 1: 1.0})
        for _ in range(200):
            scfq.enqueue(Packet(0, 100.0, 0.0))
            scfq.enqueue(Packet(1, 100.0, 0.0))
        counts = {0: 0, 1: 0}
        for _ in range(100):
            counts[scfq.dequeue().flow_id] += 1
        assert counts[1] > 0
        observed = counts[0] / counts[1]
        assert abs(observed - weight) / weight < 0.25
