"""Event-queue backends: selection, ordering parity, calendar internals.

The engine-level contract (scheduling, run/until, compaction counters)
is pinned in ``test_engine.py`` against the default backend; this file
pins what the refactor added — backend selection (`resolve_equeue`),
the calendar queue's own machinery (staging, inbox, width adaptation,
deferred compaction), and the cross-backend equivalence the goldens
rely on: same callbacks, same order, same counters, same records.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.obs.sink import RingSink
from repro.sim.engine import Simulator
from repro.sim.equeue import (
    EQUEUE_BACKENDS,
    EQUEUE_ENV_VAR,
    CalendarEventQueue,
    EventQueue,
    HeapEventQueue,
    resolve_equeue,
)

BACKENDS = sorted(EQUEUE_BACKENDS)

#: Trace kinds that are queue housekeeping, not simulation semantics.
#: Cadence (and, for bucket resizes, existence) is backend-specific.
HOUSEKEEPING_KINDS = {"compact", "bucket-resize"}


def _semantic(events):
    return [e for e in events if type(e).kind not in HOUSEKEEPING_KINDS]


class TestResolveEqueue:
    def test_default_is_heap(self, monkeypatch):
        monkeypatch.delenv(EQUEUE_ENV_VAR, raising=False)
        assert isinstance(resolve_equeue(), HeapEventQueue)

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(EQUEUE_ENV_VAR, "calendar")
        assert isinstance(resolve_equeue(), CalendarEventQueue)
        assert Simulator().equeue_backend == "calendar"

    def test_empty_env_var_falls_back_to_heap(self, monkeypatch):
        monkeypatch.setenv(EQUEUE_ENV_VAR, "")
        assert isinstance(resolve_equeue(), HeapEventQueue)

    def test_explicit_argument_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(EQUEUE_ENV_VAR, "calendar")
        assert Simulator(equeue="heap").equeue_backend == "heap"

    @pytest.mark.parametrize("name", BACKENDS)
    def test_name_lookup(self, name):
        queue = resolve_equeue(name)
        assert isinstance(queue, EventQueue)
        assert queue.backend == name

    def test_instance_passthrough(self):
        queue = CalendarEventQueue(width=2.0)
        assert resolve_equeue(queue) is queue
        assert Simulator(equeue=queue).equeue is queue

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="wheel"):
            resolve_equeue("wheel")

    def test_registry_names_match_class_attributes(self):
        for name, cls in EQUEUE_BACKENDS.items():
            assert cls.backend == name


class TestOrderingParity:
    """Both backends fire the same callbacks in the same total order."""

    @staticmethod
    def _program(sim, fired):
        # Ties at equal timestamps, mixed scheduling APIs, a cancel, and
        # a callback that schedules more work mid-run.
        for i in range(40):
            delay = (i * 37 % 11) * 0.25
            if i % 2:
                sim.schedule_fast(delay, fired.append, (delay, i))
            else:
                sim.schedule(delay, fired.append, (delay, i))
        doomed = sim.schedule(1.0, fired.append, ("doomed", -1))
        doomed.cancel()
        sim.schedule(0.5, lambda: sim.schedule_fast(0.25, fired.append, ("inner", -2)))

    def test_fired_streams_identical(self):
        streams = {}
        for backend in BACKENDS:
            sim = Simulator(equeue=backend)
            fired = []
            self._program(sim, fired)
            sim.run()
            streams[backend] = (fired, sim.events_processed, sim.now)
        assert streams["calendar"] == streams["heap"]
        fired = streams["heap"][0]
        assert ("doomed", -1) not in fired
        assert ("inner", -2) in fired

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_ties_fire_in_scheduling_order(self, backend):
        sim = Simulator(equeue=backend)
        fired = []
        for i in range(10):
            sim.schedule(1.0, fired.append, i)
        sim.run()
        assert fired == list(range(10))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_callback_exception_consumes_the_entry(self, backend):
        # A user exception escaping run() must not re-fire the event
        # that raised: the entry was consumed before the callback ran.
        sim = Simulator(equeue=backend)
        fired = []
        sim.schedule(1.0, lambda: 1 / 0)
        sim.schedule(2.0, fired.append, "later")
        with pytest.raises(ZeroDivisionError):
            sim.run()
        sim.run()
        assert fired == ["later"]
        assert sim.events_processed == 2
        assert sim.pending == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_step_and_run_interleave(self, backend):
        sim = Simulator(equeue=backend)
        fired = []
        for t in (1.0, 2.0, 3.0, 4.0):
            sim.schedule_at(t, fired.append, t)
        assert sim.step()
        sim.run(until=2.5)
        assert sim.step()
        assert sim.step()
        assert not sim.step()
        assert fired == [1.0, 2.0, 3.0, 4.0]


class TestCompactionParity:
    """Shared trigger rule: counters line up event-for-event."""

    @staticmethod
    def _cancel_heavy(backend):
        sim = Simulator(equeue=backend)
        handles = [sim.schedule(float(i), lambda: None) for i in range(100)]
        for handle in handles[:51]:
            handle.cancel()
        return sim

    def test_trigger_point_identical(self):
        sims = {b: self._cancel_heavy(b) for b in BACKENDS}
        for sim in sims.values():
            # 51 cancelled of 100 pending crosses the half-dead mark.
            assert sim.compactions == 1
            assert sim.cancelled_pending == 0
            assert sim.pending == 49
        sims["heap"].run()
        sims["calendar"].run()
        assert (
            sims["heap"].events_processed
            == sims["calendar"].events_processed
            == 49
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_small_populations_never_compact(self, backend):
        sim = Simulator(equeue=backend)
        handles = [sim.schedule(float(i), lambda: None) for i in range(50)]
        for handle in handles:
            handle.cancel()
        assert sim.compactions == 0
        assert sim.cancelled_pending == 50
        sim.run()
        assert sim.events_processed == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_compact_emits_trace_event(self, backend):
        sink = RingSink()
        sim = Simulator(equeue=backend)
        sim.attach_trace(sink)
        handles = [sim.schedule(float(i), lambda: None) for i in range(100)]
        for handle in handles[:51]:
            handle.cancel()
        compacts = [e for e in sink.events() if type(e).kind == "compact"]
        assert len(compacts) == 1
        assert compacts[0].removed == 51
        assert compacts[0].remaining == 49

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_counters_survive_run_until_overshoot(self, backend):
        # Satellite regression: entries beyond ``until`` stay queued with
        # their cancelled/compaction bookkeeping intact across resumes.
        sim = Simulator(equeue=backend)
        fired = []
        sim.schedule(1.0, fired.append, "early")
        late_live = sim.schedule(5.0, fired.append, "late")
        late_dead = sim.schedule(6.0, fired.append, "dead")
        late_dead.cancel()
        sim.run(until=2.0)
        assert fired == ["early"]
        assert sim.now == 2.0
        assert sim.cancelled_pending == 1
        assert sim.pending == 2
        sim.run()
        assert fired == ["early", "late"]
        assert sim.cancelled_pending == 0
        assert not late_live.cancelled and late_live.fired

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cancel_after_fire_is_a_counter_noop(self, backend):
        sim = Simulator(equeue=backend)
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        handle.cancel()
        assert not handle.cancelled
        assert sim.cancelled_pending == 0


class TestCalendarStaging:
    """raw_push is a bare list.append; reads flush transparently."""

    def test_raw_push_visible_through_len_and_pop(self):
        queue = CalendarEventQueue()
        push = queue.raw_push()
        entries = [(float(t), t, (lambda: None), (), None) for t in (3, 1, 2)]
        for entry in entries:
            push(entry)
        assert len(queue) == 3
        popped = [queue.pop_live() for _ in range(3)]
        assert [e[0] for e in popped] == [1.0, 2.0, 3.0]
        assert len(queue) == 0
        assert queue.pop_live() is None

    def test_staged_entries_count_toward_compaction_trigger(self):
        sim = Simulator(equeue="calendar")
        handles = [sim.schedule(float(i), lambda: None) for i in range(70)]
        # Everything above still sits in staging — the trigger must see
        # it, or a preloaded-then-cancelled workload never compacts.
        assert isinstance(sim.equeue, CalendarEventQueue)
        for handle in handles[:36]:
            handle.cancel()
        assert sim.compactions == 1

    def test_staging_list_is_never_rebound(self):
        # The simulator caches the bound append for the whole run; a
        # flush that rebound the list would silently drop every
        # subsequent push.
        sim = Simulator(equeue="calendar")
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.run()  # forces a flush + drain
        sim.schedule(2.0, fired.append, 2)
        sim.run()
        assert fired == [1, 2]


class TestCalendarInternals:
    def test_constructor_width_validation(self):
        with pytest.raises(ConfigurationError):
            CalendarEventQueue(width=0.0)
        with pytest.raises(ConfigurationError):
            CalendarEventQueue(width=-1.0)
        assert CalendarEventQueue(width=2.5).width == 2.5

    def test_inbox_preserves_order_for_mid_drain_pushes(self):
        # Width 10 puts everything in one bucket: the callback's pushes
        # land at/behind the bucket being drained and must interleave in
        # exact (time, seq) order, not after the bucket.
        sim = Simulator(equeue=CalendarEventQueue(width=10.0))
        fired = []

        def burst():
            fired.append("burst")
            sim.schedule_fast(0.5, fired.append, "inner-1.5")
            sim.schedule_fast(0.0, fired.append, "inner-1.0")

        sim.schedule_at(1.0, burst)
        sim.schedule_at(1.2, fired.append, "pre-1.2")
        sim.schedule_at(2.0, fired.append, "pre-2.0")
        sim.run()
        assert fired == ["burst", "inner-1.0", "pre-1.2", "inner-1.5", "pre-2.0"]

    def test_initial_width_sized_from_preloaded_batch(self):
        # A large preload into an empty structure picks the width from
        # the batch span instead of bucketing blind at INITIAL_WIDTH and
        # paying a full re-bucket on first open.
        sim = Simulator(equeue="calendar")
        n = 2 * CalendarEventQueue.MIN_PENDING_FOR_RESIZE
        for i in range(n):
            sim.schedule_fast(i * 0.001, lambda: None)
        sim.run()
        queue = sim.equeue
        assert queue.bucket_resizes >= 1
        assert queue.width != CalendarEventQueue.INITIAL_WIDTH
        assert sim.events_processed == n

    def test_resize_emits_trace_event(self):
        sink = RingSink()
        sim = Simulator(equeue="calendar")
        sim.attach_trace(sink)
        n = 2 * CalendarEventQueue.MIN_PENDING_FOR_RESIZE
        for i in range(n):
            sim.schedule_fast(i * 0.001, lambda: None)
        sim.run()
        resizes = [e for e in sink.events() if type(e).kind == "bucket-resize"]
        assert len(resizes) == sim.equeue.bucket_resizes >= 1
        assert resizes[0].previous == CalendarEventQueue.INITIAL_WIDTH
        assert resizes[0].pending == n
        assert resizes[-1].width == sim.equeue.width

    def test_width_adapts_upward_for_sparse_buckets(self):
        # One event per thousand buckets at width=1e-3: the rolling
        # occupancy average sits far below LOW_AVG_OCC, so the structure
        # must widen as it drains.
        queue = CalendarEventQueue(width=1e-3)
        sim = Simulator(equeue=queue)
        for i in range(CalendarEventQueue.MIN_PENDING_FOR_RESIZE + 64):
            sim.schedule_fast(float(i), lambda: None)
        sim.run()
        assert queue.width > 1e-3
        assert queue.bucket_resizes >= 1

    def test_deferred_compaction_settles_after_drain(self):
        # A callback cancelling most of the future mid-drain: the
        # compaction is deferred to a bucket boundary, but the counters
        # end up exactly where the heap backend's do.
        outcomes = {}
        for backend in BACKENDS:
            sim = Simulator(equeue=backend)
            fired = []
            handles = [
                sim.schedule(2.0 + i * 0.01, fired.append, i) for i in range(80)
            ]

            def massacre(handles=handles):
                for handle in handles[:60]:
                    handle.cancel()

            sim.schedule(1.0, massacre)
            sim.run()
            outcomes[backend] = (
                fired,
                sim.events_processed,
                sim.compactions,
                sim.cancelled_pending,
                sim.pending,
            )
        assert outcomes["calendar"] == outcomes["heap"]
        assert outcomes["heap"][3] == 0  # cancelled weight fully reclaimed

    def test_calendar_metrics_register_width_gauges(self):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        sim = Simulator(equeue="calendar")
        sim.register_metrics(registry)
        snapshot = registry.snapshot()
        assert snapshot["sim.equeue_width"] == sim.equeue.width
        assert snapshot["sim.equeue_resizes"] == 0.0
        assert snapshot["sim.equeue"] == float(
            list(EQUEUE_BACKENDS).index("calendar")
        )


class TestCrossBackendScenarioDeterminism:
    """Satellite: a full scenario is byte-identical across backends."""

    @pytest.fixture(scope="class")
    def runs(self):
        import hashlib
        import json

        from repro.bench.suite import default_suite
        from repro.experiments.campaign import ScenarioRecord
        from repro.experiments.runner import run_scenario

        case = {c.name: c for c in default_suite(quick=True)}["fifo-threshold"]
        job = case.job
        out = {}
        for backend in BACKENDS:
            sink = RingSink()
            kwargs = job.scenario_kwargs()
            kwargs["equeue"] = backend
            result = run_scenario(
                list(job.flows),
                job.scheme,
                job.buffer_size,
                sink=sink,
                **kwargs,
            )
            record = ScenarioRecord.from_result(result, job.digest())
            canonical = json.dumps(
                record.to_dict(), sort_keys=True, separators=(",", ":")
            )
            out[backend] = {
                "digest": hashlib.sha256(canonical.encode()).hexdigest(),
                "events": record.events_processed,
                "flow_stats": record.flow_stats,
                "trace": sink.events(),
            }
        return out

    def test_record_digests_identical(self, runs):
        assert runs["heap"]["digest"] == runs["calendar"]["digest"]

    def test_blocking_stats_identical(self, runs):
        assert runs["heap"]["flow_stats"] == runs["calendar"]["flow_stats"]
        assert runs["heap"]["events"] == runs["calendar"]["events"]

    def test_semantic_trace_streams_identical(self, runs):
        heap_trace = _semantic(runs["heap"]["trace"])
        calendar_trace = _semantic(runs["calendar"]["trace"])
        assert heap_trace, "scenario emitted no semantic trace events"
        assert heap_trace == calendar_trace

    def test_housekeeping_is_the_only_divergence(self, runs):
        # The full streams may differ (resize events exist only under
        # the calendar backend) — but only in housekeeping kinds.
        for backend in BACKENDS:
            extra = [
                type(e).kind
                for e in runs[backend]["trace"]
                if type(e).kind in HOUSEKEEPING_KINDS
            ]
            assert set(extra) <= HOUSEKEEPING_KINDS
