"""NetworkScenario error paths: constructor and checker reject alike.

Every malformed input is pushed through both gates — direct
construction (``NetworkScenario.from_dict`` raising
``ConfigurationError``) and the static auditor
(``check_scenario_dict`` returning an RPR203 finding) — so the two can
never drift apart on what counts as a valid scenario.
"""

import copy

import pytest

from repro.check.invariants import check_scenario_dict
from repro.errors import ConfigurationError
from repro.experiments.fabric.scenario import NetworkScenario
from repro.units import kbytes, mbps, mbytes


def base_dict():
    """A well-formed 2-hop tandem with churn, as raw dict data."""
    return {
        "nodes": [
            {
                "name": "a",
                "scheme": "FIFO_THRESHOLD",
                "buffer_size": mbytes(1.0),
                "headroom": 0.05,
                "groups": None,
            },
            {
                "name": "b",
                "scheme": "FIFO_THRESHOLD",
                "buffer_size": mbytes(1.0),
                "headroom": 0.05,
                "groups": None,
            },
            {
                "name": "c",
                "scheme": None,
                "buffer_size": None,
                "headroom": 0.05,
                "groups": None,
            },
        ],
        "links": [
            {"src": "a", "dst": "b", "rate": mbps(48.0)},
            {"src": "b", "dst": "c", "rate": mbps(48.0)},
        ],
        "flows": [
            {
                "spec": {
                    "flow_id": 0,
                    "peak_rate": mbps(10.0),
                    "avg_rate": mbps(1.0),
                    "bucket": kbytes(50.0),
                    "token_rate": mbps(2.0),
                    "conformant": True,
                    "mean_burst": kbytes(50.0),
                },
                "route": ["a", "b", "c"],
            }
        ],
        "churn": {
            "arrival_rate": 2.0,
            "mean_holding": 1.0,
            "templates": [
                {
                    "flow_id": 0,
                    "peak_rate": mbps(10.0),
                    "avg_rate": mbps(1.0),
                    "bucket": kbytes(50.0),
                    "token_rate": mbps(2.0),
                    "conformant": True,
                    "mean_burst": kbytes(50.0),
                }
            ],
            "routes": [["a", "b", "c"]],
            "admission": "auto",
        },
        "sim_time": 2.0,
        "warmup": 0.2,
        "seed": 1,
        "packet_size": 1000.0,
        "delay_histograms": False,
        "max_events": None,
        "recycle": True,
    }


def mutate(**overrides):
    raw = copy.deepcopy(base_dict())
    raw.update(overrides)
    return raw


def assert_both_reject(raw, fragment):
    """Constructor raises; checker reports the same defect as RPR203."""
    with pytest.raises(ConfigurationError, match=fragment):
        NetworkScenario.from_dict(raw)
    findings = check_scenario_dict(raw, path="bad.json")
    assert [finding.rule_id for finding in findings] == ["RPR203"]
    assert findings[0].severity == "error"


class TestBaseDictIsValid:
    def test_constructs_and_audits_clean(self):
        scenario = NetworkScenario.from_dict(base_dict())
        assert len(scenario.flows) == 1
        assert check_scenario_dict(base_dict()) == []


class TestStructuralRejections:
    def test_route_over_missing_link(self):
        raw = base_dict()
        raw["flows"][0]["route"] = ["a", "c"]
        assert_both_reject(raw, "missing link a->c")

    def test_dangling_link_endpoint(self):
        raw = base_dict()
        raw["links"].append({"src": "b", "dst": "ghost", "rate": mbps(48.0)})
        assert_both_reject(raw, "unknown endpoint")

    def test_zero_capacity_link(self):
        raw = base_dict()
        raw["links"][0]["rate"] = 0.0
        assert_both_reject(raw, "rate must be positive")

    def test_churn_with_no_candidate_routes(self):
        raw = base_dict()
        raw["churn"]["routes"] = []
        assert_both_reject(raw, "at least one candidate route")

    def test_churn_route_over_missing_link(self):
        raw = base_dict()
        raw["churn"]["routes"] = [["b", "a"]]
        assert_both_reject(raw, "missing link b->a")

    def test_duplicate_node_names(self):
        raw = base_dict()
        raw["nodes"][1]["name"] = "a"
        assert_both_reject(raw, "duplicate")

    def test_duplicate_links(self):
        raw = base_dict()
        raw["links"].append({"src": "a", "dst": "b", "rate": mbps(48.0)})
        assert_both_reject(raw, "duplicate link a->b")

    def test_route_with_loop(self):
        raw = base_dict()
        raw["flows"][0]["route"] = ["a", "b", "a"]
        assert_both_reject(raw, "loop")

    def test_single_node_route(self):
        raw = base_dict()
        raw["flows"][0]["route"] = ["a"]
        assert_both_reject(raw, "at least two nodes")

    def test_forwarding_node_without_scheme(self):
        raw = base_dict()
        raw["nodes"][0]["scheme"] = None
        assert_both_reject(raw, "no scheme/buffer")

    def test_duplicate_flow_ids(self):
        raw = base_dict()
        raw["flows"].append(copy.deepcopy(raw["flows"][0]))
        assert_both_reject(raw, "duplicate flow ids")

    def test_negative_sim_time(self):
        assert_both_reject(mutate(sim_time=-1.0), "sim_time must be positive")


class TestMalformedData:
    def test_missing_required_key_is_rpr203(self):
        raw = base_dict()
        del raw["nodes"]
        findings = check_scenario_dict(raw, path="bad.json")
        assert [finding.rule_id for finding in findings] == ["RPR203"]
        assert "malformed scenario" in findings[0].message

    def test_non_dict_payload_is_rpr203(self):
        findings = check_scenario_dict([1, 2, 3], path="bad.json")
        assert [finding.rule_id for finding in findings] == ["RPR203"]
