"""Scenario runner: wiring, determinism, measurement windows."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import run_replications, run_scenario
from repro.experiments.schemes import Scheme
from repro.experiments.workloads import (
    CASE1_GROUPS,
    TABLE1_CONFORMANT,
    table1_flows,
)
from repro.units import mbytes

FLOWS = table1_flows()
FAST = dict(sim_time=1.0, warmup=0.1)


class TestBasicRun:
    def test_all_flows_reported(self):
        result = run_scenario(FLOWS, Scheme.FIFO_NONE, mbytes(1), seed=1, **FAST)
        assert set(result.flow_stats) == {flow.flow_id for flow in FLOWS}

    def test_events_were_processed(self):
        result = run_scenario(FLOWS, Scheme.FIFO_NONE, mbytes(1), seed=1, **FAST)
        assert result.events_processed > 1000

    def test_duration_is_measurement_window(self):
        result = run_scenario(FLOWS, Scheme.FIFO_NONE, mbytes(1), seed=1,
                              sim_time=2.0, warmup=0.5)
        assert result.duration == pytest.approx(1.5)

    def test_default_warmup_is_ten_percent(self):
        result = run_scenario(FLOWS, Scheme.FIFO_NONE, mbytes(1), seed=1, sim_time=2.0)
        assert result.warmup == pytest.approx(0.2)

    def test_utilization_at_most_one(self):
        result = run_scenario(FLOWS, Scheme.FIFO_NONE, mbytes(1), seed=1, **FAST)
        assert 0.0 < result.utilization() <= 1.0 + 1e-6

    def test_loss_fraction_bounds(self):
        result = run_scenario(FLOWS, Scheme.FIFO_NONE, mbytes(1), seed=1, **FAST)
        assert 0.0 <= result.loss_fraction() < 1.0

    def test_throughput_subset_sums(self):
        result = run_scenario(FLOWS, Scheme.FIFO_NONE, mbytes(1), seed=1, **FAST)
        total = result.throughput()
        by_flow = sum(result.throughput([flow.flow_id]) for flow in FLOWS)
        assert total == pytest.approx(by_flow)


class TestDeterminism:
    def test_same_seed_same_result(self):
        first = run_scenario(FLOWS, Scheme.FIFO_THRESHOLD, mbytes(1), seed=7, **FAST)
        second = run_scenario(FLOWS, Scheme.FIFO_THRESHOLD, mbytes(1), seed=7, **FAST)
        assert first.throughput() == second.throughput()
        assert first.loss_fraction() == second.loss_fraction()
        assert first.events_processed == second.events_processed

    def test_different_seed_different_result(self):
        first = run_scenario(FLOWS, Scheme.FIFO_THRESHOLD, mbytes(1), seed=7, **FAST)
        second = run_scenario(FLOWS, Scheme.FIFO_THRESHOLD, mbytes(1), seed=8, **FAST)
        assert first.throughput() != second.throughput()


class TestSchemeWiring:
    def test_threshold_scheme_records_thresholds(self):
        result = run_scenario(FLOWS, Scheme.FIFO_THRESHOLD, mbytes(1), seed=1, **FAST)
        assert len(result.thresholds) == len(FLOWS)

    def test_hybrid_records_queue_configuration(self):
        result = run_scenario(
            FLOWS, Scheme.HYBRID_SHARING, mbytes(1), seed=1,
            groups=CASE1_GROUPS, **FAST
        )
        assert len(result.queue_rates) == 3
        assert len(result.queue_buffers) == 3

    def test_conformant_flows_protected_by_thresholds(self):
        # The central qualitative claim, in miniature: with thresholds the
        # conformant flows lose (almost) nothing even under overload.
        result = run_scenario(
            FLOWS, Scheme.FIFO_THRESHOLD, mbytes(2), seed=3, sim_time=3.0
        )
        assert result.loss_fraction(TABLE1_CONFORMANT) < 0.001

    def test_no_management_starves_conformant_flows(self):
        result = run_scenario(FLOWS, Scheme.FIFO_NONE, mbytes(1), seed=3, sim_time=3.0)
        assert result.loss_fraction(TABLE1_CONFORMANT) > 0.001


class TestSchemeVariants:
    def test_scfq_scheme_runs_and_protects(self):
        result = run_scenario(
            FLOWS, Scheme.SCFQ_THRESHOLD, mbytes(2), seed=3, sim_time=2.0
        )
        assert result.loss_fraction(TABLE1_CONFORMANT) < 0.005
        assert result.utilization() > 0.5

    def test_scfq_sharing_scheme_runs(self):
        result = run_scenario(
            FLOWS, Scheme.SCFQ_SHARING, mbytes(3), seed=3, sim_time=2.0
        )
        assert result.utilization() > 0.5


class TestDelayHistograms:
    def test_percentiles_available_when_enabled(self):
        result = run_scenario(
            FLOWS, Scheme.FIFO_THRESHOLD, mbytes(1), seed=1,
            delay_histograms=True, **FAST,
        )
        p50 = result.delay_percentile(8, 50)
        p99 = result.delay_percentile(8, 99)
        assert 0.0 < p50 <= p99
        # All delays are bounded by the FIFO bound B/R + one packet.
        assert p99 <= mbytes(1) / result.link_rate + 0.001

    def test_disabled_by_default(self):
        result = run_scenario(FLOWS, Scheme.FIFO_THRESHOLD, mbytes(1), seed=1,
                              **FAST)
        with pytest.raises(ConfigurationError):
            result.delay_percentile(8, 50)


class TestValidation:
    def test_bad_sim_time(self):
        with pytest.raises(ConfigurationError):
            run_scenario(FLOWS, Scheme.FIFO_NONE, mbytes(1), sim_time=0.0)

    def test_bad_warmup(self):
        with pytest.raises(ConfigurationError):
            run_scenario(FLOWS, Scheme.FIFO_NONE, mbytes(1), sim_time=1.0, warmup=1.5)


class TestReplications:
    def test_mean_over_seeds(self):
        result = run_replications(
            FLOWS, Scheme.FIFO_NONE, mbytes(1),
            metric=lambda r: r.utilization(),
            seeds=[1, 2], **FAST,
        )
        assert result.n == 2
        assert 0.0 < result.mean <= 1.0 + 1e-6

    def test_single_seed_zero_halfwidth(self):
        result = run_replications(
            FLOWS, Scheme.FIFO_NONE, mbytes(1),
            metric=lambda r: r.utilization(),
            seeds=[1], **FAST,
        )
        assert result.halfwidth == 0.0

    def test_empty_seeds_rejected(self):
        with pytest.raises(ConfigurationError):
            run_replications(
                FLOWS, Scheme.FIFO_NONE, mbytes(1),
                metric=lambda r: r.utilization(),
                seeds=[], **FAST,
            )

    def test_per_seed_samples_returned(self):
        result = run_replications(
            FLOWS, Scheme.FIFO_NONE, mbytes(1),
            metric=lambda r: r.utilization(),
            seeds=[1, 2, 3], **FAST,
        )
        assert len(result.samples) == 3
        assert result.mean == pytest.approx(sum(result.samples) / 3)

    def test_samples_follow_seed_order(self):
        seeds = [5, 1, 9]
        result = run_replications(
            FLOWS, Scheme.FIFO_NONE, mbytes(1),
            metric=lambda r: r.utilization(),
            seeds=seeds, **FAST,
        )
        singles = [
            run_scenario(FLOWS, Scheme.FIFO_NONE, mbytes(1), seed=s, **FAST).utilization()
            for s in seeds
        ]
        assert list(result.samples) == pytest.approx(singles)
