"""Work-queue runner: claims, reaping, crash-resume, idempotence."""

import json
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.errors import ConfigurationError
from repro.experiments.campaign.cache import ResultCache
from repro.experiments.campaign.runner import execute_job
from repro.experiments.sweep import (
    CLAIM_SCHEMA,
    SweepAxis,
    SweepSpec,
    aggregate_sweep,
    append_shard_row,
    claim_path,
    metric_row,
    read_claim,
    reap_stale_claims,
    release_claim,
    run_sweep_worker,
    scan_claims,
    scan_queue,
    shard_dir,
    shard_path,
    sweep_status,
    try_claim,
    write_aggregate,
)
from repro.experiments.sweep.queue import _Heartbeat

REPO = pathlib.Path(__file__).resolve().parent.parent

FAST = {"sim_time": 0.5, "warmup": 0.1}


def small_spec(**overrides):
    kwargs = dict(
        name="queue",
        axes=(
            SweepAxis("scheme", ("FIFO_NONE", "FIFO_THRESHOLD")),
            SweepAxis("seed", (1, 2)),
        ),
        base=FAST,
        metrics=("utilization", "loss"),
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


def age_claim(path, seconds=300.0):
    """Rewind a claim's mtime so it reads as orphaned (no wall clock)."""
    stat = os.stat(path)
    os.utime(path, (stat.st_atime - seconds, stat.st_mtime - seconds))


def serial_aggregate_bytes(spec, root):
    cache = ResultCache(root)
    for _params, job in spec.jobs():
        if job.digest() not in cache:
            cache.put(execute_job(job))
    out = pathlib.Path(root) / "aggregate.json"
    write_aggregate(aggregate_sweep(spec, cache), out)
    return out.read_bytes()


def shard_digests(root, spec):
    """Every digest appended to any shard of this sweep, with repeats."""
    digests = []
    for path in sorted(shard_dir(root).glob("*.jsonl")):
        for line in path.read_text().splitlines():
            try:
                row = json.loads(line)
            except ValueError:
                continue
            if row.get("sweep") == spec.digest():
                digests.append(row["digest"])
    return digests


# Module-level so ProcessPoolExecutor can pickle them by reference.


def _race_claim(payload):
    root, digest, owner = payload
    return owner if try_claim(root, digest, owner) else None


def _race_reap(payload):
    root, timeout = payload
    return len(reap_stale_claims(root, timeout))


class TestClaims:
    def test_try_claim_is_exclusive_and_carries_owner(self, tmp_path):
        path = try_claim(tmp_path, "a" * 64, "w1")
        assert path == claim_path(tmp_path, "a" * 64)
        assert try_claim(tmp_path, "a" * 64, "w2") is None
        payload = read_claim(path)
        assert payload["schema"] == CLAIM_SCHEMA
        assert payload["owner"] == "w1"
        assert payload["digest"] == "a" * 64
        assert payload["pid"] == os.getpid()

    def test_release_is_idempotent(self, tmp_path):
        path = try_claim(tmp_path, "a" * 64, "w1")
        release_claim(path)
        release_claim(path)  # second release: no error
        assert try_claim(tmp_path, "a" * 64, "w1") is not None

    def test_read_claim_rejects_corrupt_and_foreign(self, tmp_path):
        bad = tmp_path / "x.claim"
        bad.write_text("not json")
        assert read_claim(bad) is None
        bad.write_text('{"schema": "other-v1"}')
        assert read_claim(bad) is None
        assert read_claim(tmp_path / "missing.claim") is None

    def test_scan_classifies_fresh_vs_stale(self, tmp_path):
        fresh = try_claim(tmp_path, "a" * 64, "w1")
        stale = try_claim(tmp_path, "b" * 64, "w2")
        age_claim(stale)
        claims = {c.digest: c for c in scan_claims(tmp_path, 60.0)}
        assert not claims["a" * 64].stale
        assert claims["b" * 64].stale
        state = scan_queue(tmp_path, 60.0)
        assert (state.claimed, state.orphaned, state.total) == (1, 1, 2)
        release_claim(fresh)

    def test_reap_removes_only_stale(self, tmp_path):
        try_claim(tmp_path, "a" * 64, "w1")
        stale = try_claim(tmp_path, "b" * 64, "w2")
        age_claim(stale)
        assert reap_stale_claims(tmp_path, 60.0) == ["b" * 64]
        assert claim_path(tmp_path, "a" * 64).exists()
        assert not stale.exists()
        assert reap_stale_claims(tmp_path, 60.0) == []

    def test_claim_race_has_exactly_one_winner(self, tmp_path):
        digest = "c" * 64
        payloads = [(str(tmp_path), digest, f"w{i}") for i in range(8)]
        with ProcessPoolExecutor(max_workers=4) as pool:
            winners = [w for w in pool.map(_race_claim, payloads) if w]
        assert len(winners) == 1

    def test_racing_reapers_count_each_claim_exactly_once(self, tmp_path):
        stale_count = 6
        for i in range(stale_count):
            path = try_claim(tmp_path, f"{i:064d}", f"w{i}")
            age_claim(path)
        payloads = [(str(tmp_path), 60.0)] * 4
        with ProcessPoolExecutor(max_workers=4) as pool:
            counts = list(pool.map(_race_reap, payloads))
        assert sum(counts) == stale_count
        assert scan_claims(tmp_path, 60.0) == []

    def test_heartbeat_keeps_claim_fresh(self, tmp_path):
        path = try_claim(tmp_path, "a" * 64, "w1")
        age_claim(path, seconds=10.0)
        before = os.stat(path).st_mtime
        beat = _Heartbeat(path, interval=0.05)
        beat.start()
        time.sleep(0.3)
        beat.stop()
        assert os.stat(path).st_mtime > before
        release_claim(path)


class TestWorker:
    def test_single_worker_completes_the_grid(self, tmp_path):
        spec = small_spec()
        cache = ResultCache(tmp_path)
        summary = run_sweep_worker(spec, cache, "w1")
        assert summary.executed == 4
        assert summary.outstanding == 0
        assert summary.reaped == 0
        status = sweep_status(spec, cache)
        assert status.complete
        assert (status.completed, status.pending) == (4, 0)
        assert scan_claims(tmp_path) == []  # all claims released
        assert len(shard_digests(tmp_path, spec)) == 4

    def test_warm_rerun_is_pure_cache_replay(self, tmp_path):
        spec = small_spec()
        run_sweep_worker(spec, ResultCache(tmp_path), "w1")
        cache = ResultCache(tmp_path)
        summary = run_sweep_worker(spec, cache, "w2")
        assert summary.executed == 0
        assert summary.passes == 1
        # Lifetime stats record the replay: every cell was a cache hit
        # (the worker folds its counters into stats.meta on exit).
        assert cache.persisted_stats()["hits"] == 4
        assert len(shard_digests(tmp_path, spec)) == 4  # no new rows

    def test_live_peer_claim_is_respected(self, tmp_path):
        spec = small_spec()
        cache = ResultCache(tmp_path)
        _params, first_job = next(iter(spec.jobs()))
        peer = try_claim(tmp_path, first_job.digest(), "peer")
        summary = run_sweep_worker(spec, cache, "w1")
        assert summary.executed == 3
        assert summary.outstanding == 1
        assert peer.exists()  # fresh claims are never reaped
        release_claim(peer)

    def test_stale_claim_is_reaped_and_cell_executed(self, tmp_path):
        spec = small_spec()
        cache = ResultCache(tmp_path)
        _params, first_job = next(iter(spec.jobs()))
        corpse = try_claim(tmp_path, first_job.digest(), "dead")
        age_claim(corpse)
        summary = run_sweep_worker(spec, cache, "w1")
        assert summary.reaped == 1
        assert summary.executed == 4
        assert sweep_status(spec, cache).complete

    def test_rejects_nonpositive_timeout(self, tmp_path):
        with pytest.raises(ConfigurationError, match="must be positive"):
            run_sweep_worker(
                small_spec(), ResultCache(tmp_path), heartbeat_timeout=0.0
            )

    def test_two_concurrent_workers_partition_the_grid(self, tmp_path):
        spec = small_spec(axes=(SweepAxis("seed", (1, 2, 3, 4, 5, 6)),))
        summaries = {}

        def work(name):
            summaries[name] = run_sweep_worker(
                spec, ResultCache(tmp_path), name, wait=True, poll_interval=0.05
            )

        threads = [
            threading.Thread(target=work, args=(name,))
            for name in ("w1", "w2")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        executed = sum(s.executed for s in summaries.values())
        assert executed == 6
        digests = shard_digests(tmp_path, spec)
        assert len(digests) == 6
        assert len(set(digests)) == 6  # no cell executed twice
        assert sweep_status(spec, ResultCache(tmp_path)).complete


class TestCrashResume:
    """Satellite (e): kill after k jobs, resume, byte-identical output."""

    def test_simulated_crash_after_k_jobs_resumes_cleanly(self, tmp_path):
        spec = small_spec()
        root = tmp_path / "shared"
        cache = ResultCache(root)
        jobs = list(spec.jobs())

        # Worker A completes k=2 cells by hand, claims a third, appends a
        # torn half-line to its shard (SIGKILL mid-write), and vanishes
        # without releasing the claim.
        for params, job in jobs[:2]:
            claim = try_claim(root, job.digest(), "victim")
            record = execute_job(job)
            cache.put(record)
            append_shard_row(
                root, spec.digest(), "victim", job.digest(), params,
                metric_row(spec, params, record),
            )
            release_claim(claim)
        _params, third = jobs[2]
        corpse = try_claim(root, third.digest(), "victim")
        with open(shard_path(root, spec.digest(), "victim"), "a") as handle:
            handle.write('{"schema": "repro-sweep-shard-v1", "dig')
        age_claim(corpse)

        # Worker B resumes: reaps the corpse exactly once, executes only
        # the unfinished cells, and the aggregate matches a fresh serial
        # run byte for byte.
        resume_cache = ResultCache(root)
        summary = run_sweep_worker(spec, resume_cache, "rescuer")
        assert summary.reaped == 1
        assert summary.executed == 2  # cells 3 and 4 only — no re-runs
        assert sweep_status(spec, resume_cache).complete

        digests = [d for d in shard_digests(root, spec)]
        assert len(digests) == 4
        assert len(set(digests)) == 4  # no duplicate records

        out = root / "resumed.json"
        write_aggregate(aggregate_sweep(spec, resume_cache), out)
        assert out.read_bytes() == serial_aggregate_bytes(
            spec, tmp_path / "serial"
        )

    def test_sigkilled_cli_worker_resumes_byte_identical(self, tmp_path):
        spec = small_spec(
            axes=(SweepAxis("seed", (1, 2, 3, 4, 5, 6)),),
            base={"sim_time": 4.0, "warmup": 0.5},
        )
        root = tmp_path / "shared"
        spec_file = tmp_path / "sweep.json"
        spec_file.write_text(json.dumps(spec.to_dict()))
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        worker = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "campaign", "sweep", "run",
                "--spec", str(spec_file), "--cache-dir", str(root),
                "--owner", "victim",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Kill as soon as the first cell lands in the cache, while
            # later cells are still running.
            cache = ResultCache(root)
            for _ in range(3000):
                if len(list(cache.entries())) >= 1:
                    break
                time.sleep(0.01)
            worker.send_signal(signal.SIGKILL)
            worker.wait(timeout=30)
        finally:
            if worker.poll() is None:
                worker.kill()
                worker.wait(timeout=30)

        # Whatever claim the victim held goes stale; pre-age it rather
        # than sleeping out the heartbeat timeout.
        for claim in root.glob("*.claim"):
            age_claim(claim)

        resume_cache = ResultCache(root)
        summary = run_sweep_worker(spec, resume_cache, "rescuer")
        assert summary.outstanding == 0
        assert sweep_status(spec, resume_cache).complete
        # Every shard row belongs to the grid.  A victim killed between
        # cache.put and its shard append leaves a cell with no row at
        # all (served from the cache at aggregation time), and one
        # killed between the append and the claim release leaves a
        # duplicate row (collapsed by the reader) — so neither exact
        # coverage nor strict uniqueness can be asserted here; the
        # byte-identity check below is the real invariant.
        digests = shard_digests(root, spec)
        assert set(digests) <= {job.digest() for _p, job in spec.jobs()}

        out = root / "resumed.json"
        write_aggregate(aggregate_sweep(spec, resume_cache), out)
        assert out.read_bytes() == serial_aggregate_bytes(
            spec, tmp_path / "serial"
        )
