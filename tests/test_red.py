"""RED buffer manager."""

import numpy as np
import pytest

from repro.core.red import REDManager
from repro.errors import ConfigurationError


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_red(capacity=10_000.0, min_th=2_000.0, max_th=8_000.0, max_p=0.1,
             weight=0.5, seed=1):
    clock = FakeClock()
    manager = REDManager(
        capacity, min_th, max_th, np.random.default_rng(seed), clock,
        max_p=max_p, weight=weight,
    )
    return manager, clock


class TestValidation:
    def test_thresholds_must_be_ordered(self):
        clock = FakeClock()
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            REDManager(1000.0, 500.0, 400.0, rng, clock)
        with pytest.raises(ConfigurationError):
            REDManager(1000.0, 0.0, 400.0, rng, clock)

    def test_max_p_range(self):
        clock = FakeClock()
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            REDManager(1000.0, 100.0, 400.0, rng, clock, max_p=0.0)
        with pytest.raises(ConfigurationError):
            REDManager(1000.0, 100.0, 400.0, rng, clock, max_p=1.5)


class TestDropBehaviour:
    def test_all_accepted_below_min_threshold(self):
        manager, _ = make_red()
        for _ in range(3):
            assert manager.try_admit(0, 500.0)

    def test_all_dropped_above_max_threshold(self):
        manager, _ = make_red(weight=1.0)  # avg tracks queue exactly
        # Keep offering until the queue actually holds 8000 bytes
        # (probabilistic drops in the band may reject some offers).
        while manager.total_occupancy < 8_000.0:
            manager.try_admit(0, 1_000.0)
        # avg == 8000 >= max_th: forced drop.
        assert not manager.try_admit(0, 100.0)

    def test_probabilistic_drops_between_thresholds(self):
        manager, _ = make_red(weight=1.0, max_p=0.5, seed=3)
        # Fill to the middle of the band, then offer many packets.
        while manager.total_occupancy < 5_000.0:
            manager.try_admit(0, 1_000.0)
        outcomes = []
        for _ in range(100):
            admitted = manager.try_admit(0, 1.0)
            outcomes.append(admitted)
            if admitted:
                manager.on_depart(0, 1.0)  # hold queue steady
        assert any(outcomes) and not all(outcomes)

    def test_hard_drop_when_full(self):
        manager, _ = make_red(capacity=2_500.0, min_th=1_000.0, max_th=2_400.0)
        manager.try_admit(0, 1_000.0)
        manager.try_admit(0, 1_000.0)
        assert not manager.try_admit(0, 1_000.0)


class TestAverageQueue:
    def test_average_moves_towards_queue(self):
        manager, _ = make_red(weight=0.5)
        manager.try_admit(0, 4_000.0)
        first_avg = manager.avg
        manager.try_admit(0, 1_000.0)
        assert manager.avg > first_avg

    def test_average_decays_over_idle_period(self):
        manager, clock = make_red(weight=0.5)
        manager.try_admit(0, 4_000.0)
        manager.try_admit(0, 1_000.0)  # avg now reflects the 4000 backlog
        manager.on_depart(0, 4_000.0)
        manager.on_depart(0, 1_000.0)  # queue empty -> idle starts
        avg_before = manager.avg
        assert avg_before > 0.0
        clock.now = 1.0  # long idle: many tx slots
        manager.try_admit(0, 500.0)
        assert manager.avg < avg_before

    def test_no_flow_state(self):
        # RED is aggregate-only: per-flow occupancy is tracked by the base
        # class for accounting, but admission ignores which flow arrives.
        manager, _ = make_red(weight=1.0)
        for _ in range(5):
            manager.try_admit(1, 1_000.0)
        blocked_new = not manager.try_admit(2, 1.0)
        manager2, _ = make_red(weight=1.0)
        for _ in range(5):
            manager2.try_admit(1, 1_000.0)
        blocked_same = not manager2.try_admit(1, 1.0)
        assert blocked_new == blocked_same
