"""Flow grouping strategies for the hybrid system."""

import pytest

from repro.analysis.grouping import (
    best_grouping_exhaustive,
    greedy_grouping,
    group_requirements,
    grouping_buffer,
)
from repro.errors import ConfigurationError

# (sigma, rho) profiles: two "telephony" flows (low burst) and two
# "video" flows (high burst), mirroring the paper's example.
PROFILES = [
    (1_000.0, 100_000.0),
    (2_000.0, 120_000.0),
    (200_000.0, 400_000.0),
    (300_000.0, 500_000.0),
]
LINK = 2_000_000.0


class TestGroupRequirements:
    def test_aggregates_sigma_and_rho(self):
        requirements = group_requirements(PROFILES, [[0, 1], [2, 3]])
        assert requirements[0].sigma_hat == 3_000.0
        assert requirements[0].rho_hat == 220_000.0
        assert requirements[1].sigma_hat == 500_000.0
        assert requirements[1].rho_hat == 900_000.0

    def test_duplicate_index_rejected(self):
        with pytest.raises(ConfigurationError):
            group_requirements(PROFILES, [[0, 1], [1, 2]])

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ConfigurationError):
            group_requirements(PROFILES, [[0, 9]])

    def test_empty_group_rejected(self):
        with pytest.raises(ConfigurationError):
            group_requirements(PROFILES, [[0], []])


class TestGroupingBuffer:
    def test_single_group_equals_single_fifo(self):
        sigma = sum(s for s, _ in PROFILES)
        rho = sum(r for _, r in PROFILES)
        expected = LINK * sigma / (LINK - rho)
        assert grouping_buffer(PROFILES, [[0, 1, 2, 3]], LINK) == pytest.approx(expected)

    def test_separating_classes_saves_buffer(self):
        single = grouping_buffer(PROFILES, [[0, 1, 2, 3]], LINK)
        split = grouping_buffer(PROFILES, [[0, 1], [2, 3]], LINK)
        assert split < single


class TestExhaustiveSearch:
    def test_finds_class_separating_grouping(self):
        groups, buffer_needed = best_grouping_exhaustive(PROFILES, 2, LINK)
        # Optimal 2-queue grouping separates low-burst from high-burst.
        assert sorted(map(sorted, groups)) in (
            [[0, 1], [2, 3]],
            [[0], [1, 2, 3]],
            [[0, 1, 2], [3]],
            [[1], [0, 2, 3]],
            [[0, 2], [1, 3]],
            [[0, 3], [1, 2]],
            [[2], [0, 1, 3]],
            [[3], [0, 1, 2]],
        )
        # Whatever it picked, it must beat the obvious alternatives.
        assert buffer_needed <= grouping_buffer(PROFILES, [[0, 1], [2, 3]], LINK) + 1e-6
        assert buffer_needed <= grouping_buffer(PROFILES, [[0, 2], [1, 3]], LINK) + 1e-6

    def test_more_queues_never_hurt(self):
        _, buffer2 = best_grouping_exhaustive(PROFILES, 2, LINK)
        _, buffer3 = best_grouping_exhaustive(PROFILES, 3, LINK)
        assert buffer3 <= buffer2 + 1e-6

    def test_k_one_is_single_fifo(self):
        groups, buffer_needed = best_grouping_exhaustive(PROFILES, 1, LINK)
        assert groups == [[0, 1, 2, 3]]
        assert buffer_needed == pytest.approx(
            grouping_buffer(PROFILES, [[0, 1, 2, 3]], LINK)
        )

    def test_large_flow_count_rejected(self):
        with pytest.raises(ConfigurationError):
            best_grouping_exhaustive([(1.0, 1.0)] * 13, 2, 100.0)


class TestGreedyHeuristic:
    def test_greedy_matches_exhaustive_on_separable_input(self):
        greedy_groups, greedy_buffer = greedy_grouping(PROFILES, 2, LINK)
        _, best_buffer = best_grouping_exhaustive(PROFILES, 2, LINK)
        # The ratio-sorted heuristic is near-optimal on class-structured
        # input (within 5%).
        assert greedy_buffer <= best_buffer * 1.05

    def test_greedy_never_worse_than_single_queue(self):
        _, greedy_buffer = greedy_grouping(PROFILES, 3, LINK)
        single = grouping_buffer(PROFILES, [[0, 1, 2, 3]], LINK)
        assert greedy_buffer <= single + 1e-6

    def test_k_capped_at_flow_count(self):
        groups, _ = greedy_grouping(PROFILES[:2], 5, LINK)
        assert len(groups) <= 2

    def test_empty_profiles_rejected(self):
        with pytest.raises(ConfigurationError):
            greedy_grouping([], 2, LINK)
