"""WFQ scheduler: virtual time, ordering, fairness."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sched.wfq import WFQScheduler
from repro.sim.engine import Simulator
from repro.sim.packet import Packet


def make_wfq(weights, rate=1000.0):
    sim = Simulator()
    return sim, WFQScheduler(lambda: sim.now, rate, weights)


def pkt(flow_id, size=100.0):
    return Packet(flow_id, size, 0.0)


class TestValidation:
    def test_empty_weights_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            WFQScheduler(lambda: sim.now, 1000.0, {})

    def test_non_positive_weight_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            WFQScheduler(lambda: sim.now, 1000.0, {0: 0.0})

    def test_non_positive_rate_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            WFQScheduler(lambda: sim.now, -1.0, {0: 1.0})

    def test_unknown_flow_rejected(self):
        _, wfq = make_wfq({0: 1.0})
        with pytest.raises(ConfigurationError):
            wfq.enqueue(pkt(99))


class TestOrdering:
    def test_single_flow_is_fifo(self):
        _, wfq = make_wfq({0: 1.0})
        packets = [pkt(0) for _ in range(4)]
        for packet in packets:
            wfq.enqueue(packet)
        assert [wfq.dequeue() for _ in range(4)] == packets

    def test_equal_weights_alternate_between_backlogged_flows(self):
        _, wfq = make_wfq({0: 1.0, 1: 1.0})
        for _ in range(3):
            wfq.enqueue(pkt(0))
            wfq.enqueue(pkt(1))
        flows = [wfq.dequeue().flow_id for _ in range(6)]
        # Same finish times alternate by arrival (seq) order: 0,1,0,1,...
        assert flows == [0, 1, 0, 1, 0, 1]

    def test_heavier_weight_served_more_often(self):
        # Weight 3:1 -> in any window flow 0 sends ~3x the packets.
        _, wfq = make_wfq({0: 3.0, 1: 1.0})
        for _ in range(12):
            wfq.enqueue(pkt(0))
        for _ in range(12):
            wfq.enqueue(pkt(1))
        first_eight = [wfq.dequeue().flow_id for _ in range(8)]
        assert first_eight.count(0) == 6
        assert first_eight.count(1) == 2

    def test_smaller_packets_finish_earlier_at_equal_weight(self):
        _, wfq = make_wfq({0: 1.0, 1: 1.0})
        big = Packet(0, 1000.0, 0.0)
        small = Packet(1, 100.0, 0.0)
        wfq.enqueue(big)
        wfq.enqueue(small)
        assert wfq.dequeue() is small
        assert wfq.dequeue() is big

    def test_dequeue_empty_returns_none(self):
        _, wfq = make_wfq({0: 1.0})
        assert wfq.dequeue() is None


class TestVirtualTime:
    def test_virtual_time_frozen_when_idle(self):
        sim, wfq = make_wfq({0: 1.0})
        v0 = wfq.virtual_time
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert wfq.virtual_time == v0

    def test_virtual_time_advances_while_backlogged(self):
        sim, wfq = make_wfq({0: 500.0}, rate=1000.0)
        wfq.enqueue(pkt(0))
        v0 = wfq.virtual_time
        sim.schedule(1.0, lambda: None)
        sim.run()
        # Only flow 0 (weight 500) backlogged: dV/dt = R / 500 = 2.
        assert wfq.virtual_time == pytest.approx(v0 + 2.0)

    def test_late_arrival_does_not_inherit_stale_finish(self):
        # A flow that was idle for a long time starts from current V, so
        # it cannot claim service "owed" from its idle period.
        sim, wfq = make_wfq({0: 1.0, 1: 1.0}, rate=1000.0)
        wfq.enqueue(pkt(0, size=100.0))
        assert wfq.dequeue().flow_id == 0
        sim.schedule(10.0, lambda: None)
        sim.run()
        wfq.enqueue(pkt(0, size=100.0))
        wfq.enqueue(pkt(1, size=100.0))
        assert wfq.dequeue().flow_id == 0  # arrival order, not stale credit


class TestAccounting:
    def test_len_and_backlog(self):
        _, wfq = make_wfq({0: 1.0, 1: 1.0})
        wfq.enqueue(pkt(0, size=300.0))
        wfq.enqueue(pkt(1, size=200.0))
        assert len(wfq) == 2
        assert wfq.backlog_bytes == 500.0
        wfq.dequeue()
        assert len(wfq) == 1

    def test_queue_length_per_flow(self):
        _, wfq = make_wfq({0: 1.0, 1: 1.0})
        wfq.enqueue(pkt(0))
        wfq.enqueue(pkt(0))
        wfq.enqueue(pkt(1))
        assert wfq.queue_length(0) == 2
        assert wfq.queue_length(1) == 1


class TestClassifier:
    def test_classifier_maps_flows_to_classes(self):
        sim = Simulator()
        wfq = WFQScheduler(
            lambda: sim.now, 1000.0, {0: 1.0, 1: 1.0},
            classifier=lambda packet: packet.flow_id % 2,
        )
        wfq.enqueue(pkt(4))  # class 0
        wfq.enqueue(pkt(7))  # class 1
        assert wfq.queue_length(0) == 1
        assert wfq.queue_length(1) == 1
