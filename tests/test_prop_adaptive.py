"""Property-based tests: adaptive/non-adaptive sharing invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive import AdaptiveSharingManager
from repro.core.shared_headroom import SharedHeadroomManager

CAPACITY = 10_000.0

operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),
        st.floats(min_value=1.0, max_value=2000.0, allow_nan=False),
        st.booleans(),
    ),
    min_size=1,
    max_size=100,
)

thresholds_strategy = st.dictionaries(
    st.integers(min_value=0, max_value=4),
    st.floats(min_value=0.0, max_value=4000.0, allow_nan=False),
    max_size=5,
)

shares = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
headrooms = st.floats(min_value=0.0, max_value=12_000.0, allow_nan=False)
adaptive_sets = st.sets(st.integers(min_value=0, max_value=4), max_size=5)


def drive(manager, ops):
    queued = []
    for flow_id, size, depart_first in ops:
        if depart_first and queued:
            manager.on_depart(*queued.pop(0))
        if manager.try_admit(flow_id, size):
            queued.append((flow_id, size))
        yield queued


class TestAdaptiveInvariants:
    @given(ops=operations, thresholds=thresholds_strategy, share=shares,
           headroom=headrooms, adaptive=adaptive_sets)
    @settings(max_examples=60, deadline=None)
    def test_counter_invariant(self, ops, thresholds, share, headroom, adaptive):
        manager = AdaptiveSharingManager(
            CAPACITY, thresholds, headroom, adaptive, nonadaptive_share=share
        )
        for _ in drive(manager, ops):
            free = manager.capacity - manager.total_occupancy
            assert abs(manager.holes + manager.headroom - free) < 1e-3
            assert manager.headroom <= manager.headroom_cap + 1e-9

    @given(ops=operations, thresholds=thresholds_strategy,
           headroom=headrooms, adaptive=adaptive_sets)
    @settings(max_examples=60, deadline=None)
    def test_share_one_equals_plain_sharing(self, ops, thresholds, headroom,
                                            adaptive):
        # With nonadaptive_share = 1 the adaptivity tags are irrelevant:
        # decisions coincide with SharedHeadroomManager step by step.
        adaptive_manager = AdaptiveSharingManager(
            CAPACITY, thresholds, headroom, adaptive, nonadaptive_share=1.0
        )
        plain = SharedHeadroomManager(CAPACITY, thresholds, headroom)
        queued_a, queued_p = [], []
        for flow_id, size, depart_first in ops:
            if depart_first and queued_a:
                adaptive_manager.on_depart(*queued_a.pop(0))
            if depart_first and queued_p:
                plain.on_depart(*queued_p.pop(0))
            decision_a = adaptive_manager.try_admit(flow_id, size)
            decision_p = plain.try_admit(flow_id, size)
            assert decision_a == decision_p
            if decision_a:
                queued_a.append((flow_id, size))
            if decision_p:
                queued_p.append((flow_id, size))

    @given(ops=operations, thresholds=thresholds_strategy,
           headroom=headrooms, share=shares)
    @settings(max_examples=60, deadline=None)
    def test_all_adaptive_ignores_share(self, ops, thresholds, headroom, share):
        # If every flow is adaptive, the share parameter must not matter.
        full = AdaptiveSharingManager(
            CAPACITY, thresholds, headroom, {0, 1, 2, 3, 4},
            nonadaptive_share=share,
        )
        reference = SharedHeadroomManager(CAPACITY, thresholds, headroom)
        queued_f, queued_r = [], []
        for flow_id, size, depart_first in ops:
            if depart_first and queued_f:
                full.on_depart(*queued_f.pop(0))
            if depart_first and queued_r:
                reference.on_depart(*queued_r.pop(0))
            decision_f = full.try_admit(flow_id, size)
            decision_r = reference.try_admit(flow_id, size)
            assert decision_f == decision_r
            if decision_f:
                queued_f.append((flow_id, size))
            if decision_r:
                queued_r.append((flow_id, size))

    @given(ops=operations, thresholds=thresholds_strategy, share=shares,
           headroom=headrooms, adaptive=adaptive_sets)
    @settings(max_examples=60, deadline=None)
    def test_reservations_always_honoured_when_space_exists(
        self, ops, thresholds, share, headroom, adaptive
    ):
        # A within-reservation packet is admitted iff it fits, regardless
        # of adaptivity class — reservations never depend on the tag.
        manager = AdaptiveSharingManager(
            CAPACITY, thresholds, headroom, adaptive, nonadaptive_share=share
        )
        queued = []
        for flow_id, size, depart_first in ops:
            if depart_first and queued:
                manager.on_depart(*queued.pop(0))
            within = (
                manager.occupancy(flow_id) + size <= manager.threshold(flow_id)
            )
            fits = manager.total_occupancy + size <= manager.capacity + 1e-9
            admitted = manager.try_admit(flow_id, size)
            if within:
                assert admitted == fits
            if admitted:
                queued.append((flow_id, size))
