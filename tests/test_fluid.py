"""Fluid two-flow dynamics (Example 1, Section 2.1)."""

import pytest

from repro.analysis.fluid import fluid_limits, two_flow_fluid
from repro.errors import ConfigurationError


class TestRecursion:
    def test_first_interval_flow1_starved(self):
        # Between t0 and t1 flow 1 receives no service: R_1^1 = 0, R_1^2 = R.
        trajectory = two_flow_fluid(rho1=250.0, buffer_size=1000.0, link_rate=1000.0)
        first = trajectory.intervals[0]
        assert first.rate_flow1 == pytest.approx(0.0)
        assert first.rate_flow2 == pytest.approx(1000.0)

    def test_first_interval_length_is_b2_over_r(self):
        trajectory = two_flow_fluid(rho1=250.0, buffer_size=1000.0, link_rate=1000.0)
        b2 = 1000.0 - 1000.0 * 250.0 / 1000.0
        assert trajectory.intervals[0].length == pytest.approx(b2 / 1000.0)

    def test_recursion_rule(self):
        # l_{i+1} = (rho1/R) l_i + B2/R
        trajectory = two_flow_fluid(rho1=250.0, buffer_size=1000.0, link_rate=1000.0)
        b2 = 750.0
        for prev, nxt in zip(trajectory.intervals, trajectory.intervals[1:]):
            assert nxt.length == pytest.approx(0.25 * prev.length + b2 / 1000.0)

    def test_second_interval_rate_below_guarantee(self):
        # The paper notes R_2^1 = rho1 R / (rho1 + R) < rho1.
        trajectory = two_flow_fluid(rho1=250.0, buffer_size=1000.0, link_rate=1000.0)
        second = trajectory.intervals[1]
        assert second.rate_flow1 == pytest.approx(250.0 * 1000.0 / 1250.0)
        assert second.rate_flow1 < 250.0

    def test_intervals_are_contiguous(self):
        trajectory = two_flow_fluid(rho1=100.0, buffer_size=500.0, link_rate=1000.0)
        for prev, nxt in zip(trajectory.intervals, trajectory.intervals[1:]):
            assert nxt.start == pytest.approx(prev.end)

    def test_rates_sum_to_link_rate(self):
        trajectory = two_flow_fluid(rho1=400.0, buffer_size=2000.0, link_rate=1000.0)
        for interval in trajectory.intervals:
            assert interval.rate_flow1 + interval.rate_flow2 == pytest.approx(1000.0)


class TestConvergence:
    def test_flow1_rate_converges_to_guarantee(self):
        trajectory = two_flow_fluid(
            rho1=250.0, buffer_size=1000.0, link_rate=1000.0, n_intervals=60
        )
        assert trajectory.intervals[-1].rate_flow1 == pytest.approx(250.0, rel=1e-9)

    def test_flow2_rate_converges_to_residual(self):
        trajectory = two_flow_fluid(
            rho1=250.0, buffer_size=1000.0, link_rate=1000.0, n_intervals=60
        )
        assert trajectory.intervals[-1].rate_flow2 == pytest.approx(750.0, rel=1e-9)

    def test_interval_length_converges(self):
        trajectory = two_flow_fluid(
            rho1=250.0, buffer_size=1000.0, link_rate=1000.0, n_intervals=60
        )
        assert trajectory.intervals[-1].length == pytest.approx(
            trajectory.limit_length, rel=1e-9
        )

    def test_limits_match_closed_form(self):
        limit_length, rate1, rate2 = fluid_limits(250.0, 1000.0, 1000.0)
        b2 = 750.0
        assert limit_length == pytest.approx(b2 / 750.0)
        assert rate1 == 250.0
        assert rate2 == 750.0

    def test_convergence_is_monotone_increasing_for_flow1(self):
        trajectory = two_flow_fluid(
            rho1=250.0, buffer_size=1000.0, link_rate=1000.0, n_intervals=20
        )
        rates = [interval.rate_flow1 for interval in trajectory.intervals]
        assert all(a <= b + 1e-12 for a, b in zip(rates, rates[1:]))


class TestLosslessness:
    def test_flow1_occupancy_never_exceeds_threshold(self):
        # The sufficiency direction of Proposition 1: Q1 stays below
        # B1 = B rho1 / R in every interval.
        trajectory = two_flow_fluid(
            rho1=250.0, buffer_size=1000.0, link_rate=1000.0, n_intervals=100
        )
        for interval in trajectory.intervals:
            assert interval.occupancy_flow1_end <= trajectory.threshold_flow1 + 1e-9

    def test_occupancy_approaches_threshold_asymptotically(self):
        # "flow 1 asymptotically fills its maximum allowed share of buffer"
        trajectory = two_flow_fluid(
            rho1=250.0, buffer_size=1000.0, link_rate=1000.0, n_intervals=80
        )
        assert trajectory.intervals[-1].occupancy_flow1_end == pytest.approx(
            trajectory.threshold_flow1, rel=1e-9
        )


class TestValidation:
    def test_rho1_must_be_below_link_rate(self):
        with pytest.raises(ConfigurationError):
            two_flow_fluid(rho1=1000.0, buffer_size=1000.0, link_rate=1000.0)

    def test_positive_buffer_required(self):
        with pytest.raises(ConfigurationError):
            two_flow_fluid(rho1=100.0, buffer_size=0.0, link_rate=1000.0)

    def test_at_least_one_interval(self):
        with pytest.raises(ConfigurationError):
            two_flow_fluid(100.0, 1000.0, 1000.0, n_intervals=0)
