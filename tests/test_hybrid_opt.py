"""Hybrid rate allocation and buffer sizing (Proposition 3, eqs. 11-19)."""

import math

import pytest

from repro.analysis.hybrid_opt import (
    QueueRequirement,
    buffer_savings,
    buffer_savings_identity,
    hybrid_buffer_for_allocation,
    hybrid_min_buffers,
    hybrid_total_buffer,
    optimal_alphas,
    queue_min_buffer,
    queue_rates,
)
from repro.errors import ConfigurationError

QUEUES = [
    QueueRequirement(sigma_hat=150_000.0, rho_hat=750_000.0),
    QueueRequirement(sigma_hat=300_000.0, rho_hat=3_000_000.0),
    QueueRequirement(sigma_hat=150_000.0, rho_hat=350_000.0),
]
LINK = 6_000_000.0


class TestOptimalAlphas:
    def test_proposition3_formula(self):
        alphas = optimal_alphas(QUEUES)
        weights = [math.sqrt(q.sigma_hat * q.rho_hat) for q in QUEUES]
        total = sum(weights)
        for alpha, weight in zip(alphas, weights):
            assert alpha == pytest.approx(weight / total)

    def test_alphas_sum_to_one(self):
        assert sum(optimal_alphas(QUEUES)) == pytest.approx(1.0)

    def test_single_queue_gets_everything(self):
        assert optimal_alphas(QUEUES[:1]) == [1.0]

    def test_symmetric_queues_split_equally(self):
        twins = [QueueRequirement(100.0, 200.0), QueueRequirement(100.0, 200.0)]
        assert optimal_alphas(twins) == pytest.approx([0.5, 0.5])


class TestQueueRates:
    def test_rates_sum_to_link_rate(self):
        rates = queue_rates(QUEUES, LINK)
        assert sum(rates) == pytest.approx(LINK)

    def test_each_queue_gets_at_least_its_reservation(self):
        for rate, queue in zip(queue_rates(QUEUES, LINK), QUEUES):
            assert rate > queue.rho_hat

    def test_custom_alphas_respected(self):
        rates = queue_rates(QUEUES, LINK, alphas=[0.5, 0.25, 0.25])
        excess = LINK - sum(q.rho_hat for q in QUEUES)
        assert rates[0] == pytest.approx(QUEUES[0].rho_hat + 0.5 * excess)

    def test_alphas_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            queue_rates(QUEUES, LINK, alphas=[0.5, 0.25, 0.1])

    def test_overloaded_link_rejected(self):
        with pytest.raises(ConfigurationError):
            queue_rates(QUEUES, 1_000_000.0)


class TestBufferFormulas:
    def test_equation11(self):
        queue = QUEUES[0]
        rate = 1_000_000.0
        assert queue_min_buffer(queue, rate) == pytest.approx(
            rate * queue.sigma_hat / (rate - queue.rho_hat)
        )

    def test_equation11_requires_rate_above_reservation(self):
        with pytest.raises(ConfigurationError):
            queue_min_buffer(QUEUES[0], QUEUES[0].rho_hat)

    def test_equation18_closed_form(self):
        # B_i = sigma_i + S sqrt(sigma_i rho_i) / (R - rho)
        buffers = hybrid_min_buffers(QUEUES, LINK)
        s = sum(math.sqrt(q.sigma_hat * q.rho_hat) for q in QUEUES)
        excess = LINK - sum(q.rho_hat for q in QUEUES)
        for buffer_size, queue in zip(buffers, QUEUES):
            expected = queue.sigma_hat + s * math.sqrt(
                queue.sigma_hat * queue.rho_hat
            ) / excess
            assert buffer_size == pytest.approx(expected)

    def test_equation19_total(self):
        # B_hybrid = sigma + S^2 / (R - rho)
        s = sum(math.sqrt(q.sigma_hat * q.rho_hat) for q in QUEUES)
        sigma = sum(q.sigma_hat for q in QUEUES)
        rho = sum(q.rho_hat for q in QUEUES)
        assert hybrid_total_buffer(QUEUES, LINK) == pytest.approx(
            sigma + s * s / (LINK - rho)
        )

    def test_total_is_sum_of_queue_buffers(self):
        assert hybrid_total_buffer(QUEUES, LINK) == pytest.approx(
            sum(hybrid_min_buffers(QUEUES, LINK))
        )


class TestOptimality:
    def test_optimal_allocation_beats_alternatives(self):
        best = hybrid_total_buffer(QUEUES, LINK)
        for alphas in ([0.4, 0.4, 0.2], [0.1, 0.8, 0.1], [1 / 3] * 3):
            assert hybrid_buffer_for_allocation(QUEUES, LINK, alphas) >= best - 1e-6

    def test_proportional_split_matches_single_fifo(self):
        # alpha_i = rho_i / rho gives no saving: B_hybrid == B_FIFO.
        rho = sum(q.rho_hat for q in QUEUES)
        alphas = [q.rho_hat / rho for q in QUEUES]
        sigma = sum(q.sigma_hat for q in QUEUES)
        b_fifo = LINK * sigma / (LINK - rho)
        assert hybrid_buffer_for_allocation(QUEUES, LINK, alphas) == pytest.approx(
            b_fifo
        )


class TestSavings:
    def test_savings_non_negative(self):
        assert buffer_savings(QUEUES, LINK) >= 0.0

    def test_equation17_identity(self):
        assert buffer_savings(QUEUES, LINK) == pytest.approx(
            buffer_savings_identity(QUEUES, LINK)
        )

    def test_no_savings_for_proportional_queues(self):
        # sigma_i / rho_i constant -> every pairwise term vanishes.
        proportional = [
            QueueRequirement(100.0, 1000.0),
            QueueRequirement(200.0, 2000.0),
            QueueRequirement(50.0, 500.0),
        ]
        assert buffer_savings(proportional, LINK) == pytest.approx(0.0, abs=1e-6)

    def test_savings_grow_with_heterogeneity(self):
        homogeneous = [QueueRequirement(100.0, 1000.0), QueueRequirement(100.0, 1000.0)]
        heterogeneous = [QueueRequirement(10.0, 1000.0), QueueRequirement(190.0, 1000.0)]
        assert buffer_savings(heterogeneous, 10_000.0) > buffer_savings(
            homogeneous, 10_000.0
        )

    def test_hybrid_never_needs_more_than_single_fifo(self):
        sigma = sum(q.sigma_hat for q in QUEUES)
        rho = sum(q.rho_hat for q in QUEUES)
        b_fifo = LINK * sigma / (LINK - rho)
        assert hybrid_total_buffer(QUEUES, LINK) <= b_fifo + 1e-9


class TestQueueRequirement:
    def test_geometric_weight(self):
        queue = QueueRequirement(sigma_hat=400.0, rho_hat=100.0)
        assert queue.geometric_weight == pytest.approx(200.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QueueRequirement(sigma_hat=0.0, rho_hat=1.0)
        with pytest.raises(ConfigurationError):
            QueueRequirement(sigma_hat=1.0, rho_hat=0.0)
