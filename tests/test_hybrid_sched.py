"""Hybrid scheduler: WFQ across FIFO class queues."""

import pytest

from repro.errors import ConfigurationError
from repro.sched.hybrid import HybridScheduler, validate_grouping
from repro.sim.engine import Simulator
from repro.sim.packet import Packet


def make_hybrid(groups, rates, link_rate=1000.0):
    sim = Simulator()
    return sim, HybridScheduler(lambda: sim.now, link_rate, groups, rates)


def pkt(flow_id, size=100.0):
    return Packet(flow_id, size, 0.0)


class TestValidateGrouping:
    def test_maps_flows_to_classes(self):
        class_of = validate_grouping([[0, 1], [2]])
        assert class_of == {0: 0, 1: 0, 2: 1}

    def test_empty_grouping_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_grouping([])

    def test_empty_group_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_grouping([[0], []])

    def test_duplicate_flow_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_grouping([[0, 1], [1]])


class TestConstruction:
    def test_rate_count_must_match_groups(self):
        with pytest.raises(ConfigurationError):
            make_hybrid([[0], [1]], [500.0])

    def test_unknown_flow_rejected_at_enqueue(self):
        _, hybrid = make_hybrid([[0], [1]], [500.0, 500.0])
        with pytest.raises(ConfigurationError):
            hybrid.enqueue(pkt(42))


class TestServiceOrder:
    def test_fifo_within_class(self):
        _, hybrid = make_hybrid([[0, 1]], [1000.0])
        a, b, c = pkt(0), pkt(1), pkt(0)
        for packet in (a, b, c):
            hybrid.enqueue(packet)
        assert hybrid.dequeue() is a
        assert hybrid.dequeue() is b
        assert hybrid.dequeue() is c

    def test_classes_share_by_rate(self):
        # Class rates 3:1 -> class 0 gets ~3 of every 4 transmissions.
        _, hybrid = make_hybrid([[0], [1]], [750.0, 250.0])
        for _ in range(8):
            hybrid.enqueue(pkt(0))
        for _ in range(8):
            hybrid.enqueue(pkt(1))
        first_four = [hybrid.dequeue().flow_id for _ in range(4)]
        assert first_four.count(0) == 3
        assert first_four.count(1) == 1

    def test_flows_in_same_class_share_its_fifo(self):
        _, hybrid = make_hybrid([[0, 1], [2]], [500.0, 500.0])
        hybrid.enqueue(pkt(0))
        hybrid.enqueue(pkt(1))
        assert hybrid.class_queue_length(0) == 2
        assert hybrid.class_queue_length(1) == 0


class TestAccounting:
    def test_len_and_backlog(self):
        _, hybrid = make_hybrid([[0], [1]], [500.0, 500.0])
        hybrid.enqueue(pkt(0, size=300.0))
        hybrid.enqueue(pkt(1, size=200.0))
        assert len(hybrid) == 2
        assert hybrid.backlog_bytes == 500.0

    def test_dequeue_empty_returns_none(self):
        _, hybrid = make_hybrid([[0]], [1000.0])
        assert hybrid.dequeue() is None

    def test_class_of_exposed(self):
        _, hybrid = make_hybrid([[0, 1], [2]], [500.0, 500.0])
        assert hybrid.class_of == {0: 0, 1: 0, 2: 1}
