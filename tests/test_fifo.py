"""FIFO scheduler semantics."""

from repro.sched.fifo import FIFOScheduler
from repro.sim.packet import Packet


def pkt(flow_id=0, size=500.0):
    return Packet(flow_id, size, 0.0)


class TestFIFOOrder:
    def test_serves_in_arrival_order(self):
        fifo = FIFOScheduler()
        packets = [pkt(i) for i in range(5)]
        for packet in packets:
            fifo.enqueue(packet)
        served = [fifo.dequeue() for _ in range(5)]
        assert served == packets

    def test_interleaved_flows_keep_global_order(self):
        fifo = FIFOScheduler()
        a, b, c = pkt(1), pkt(2), pkt(1)
        for packet in (a, b, c):
            fifo.enqueue(packet)
        assert fifo.dequeue() is a
        assert fifo.dequeue() is b
        assert fifo.dequeue() is c

    def test_dequeue_empty_returns_none(self):
        assert FIFOScheduler().dequeue() is None


class TestFIFOAccounting:
    def test_len_tracks_queue(self):
        fifo = FIFOScheduler()
        assert len(fifo) == 0
        fifo.enqueue(pkt())
        fifo.enqueue(pkt())
        assert len(fifo) == 2
        fifo.dequeue()
        assert len(fifo) == 1

    def test_backlog_bytes(self):
        fifo = FIFOScheduler()
        fifo.enqueue(pkt(size=300.0))
        fifo.enqueue(pkt(size=200.0))
        assert fifo.backlog_bytes == 500.0
        fifo.dequeue()
        assert fifo.backlog_bytes == 200.0

    def test_backlog_returns_to_zero(self):
        fifo = FIFOScheduler()
        fifo.enqueue(pkt(size=300.0))
        fifo.dequeue()
        assert fifo.backlog_bytes == 0.0
        assert len(fifo) == 0
