"""Occupancy probe (time-series instrumentation)."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics.trace import OccupancyProbe
from repro.sim.engine import Simulator


class TestSampling:
    def test_samples_at_fixed_period(self):
        sim = Simulator()
        value = [0.0]
        probe = OccupancyProbe(sim, 0.5, {"x": lambda: value[0]}, until=2.0)
        sim.run(until=2.0)
        assert probe.times == pytest.approx([0.0, 0.5, 1.0, 1.5, 2.0])

    def test_values_track_the_callable(self):
        sim = Simulator()
        probe = OccupancyProbe(sim, 1.0, {"t": lambda: sim.now}, until=3.0)
        sim.run(until=3.0)
        assert probe.series["t"] == pytest.approx([0.0, 1.0, 2.0, 3.0])

    def test_multiple_series_aligned(self):
        sim = Simulator()
        probe = OccupancyProbe(
            sim, 1.0, {"a": lambda: 1.0, "b": lambda: 2.0}, until=2.0
        )
        sim.run(until=2.0)
        assert len(probe.series["a"]) == len(probe.series["b"]) == len(probe.times)

    def test_until_stops_sampling(self):
        sim = Simulator()
        probe = OccupancyProbe(sim, 1.0, {"x": lambda: 0.0}, until=1.5)
        sim.schedule(10.0, lambda: None)
        sim.run()
        assert max(probe.times) <= 1.5

    def test_boundary_sample_taken_at_until(self):
        # 3 * 0.1 > 0.3 in floats: without clamping the last step to
        # `until`, accumulated error pushes the final sample past the
        # window and it is silently lost.
        sim = Simulator()
        probe = OccupancyProbe(sim, 0.1, {"x": lambda: sim.now}, until=0.3)
        sim.run(until=0.3)
        assert probe.times[-1] == pytest.approx(0.3)
        assert len(probe.times) == 4  # 0.0, 0.1, 0.2, 0.3 inclusive

    def test_boundary_sample_not_duplicated(self):
        # `until` an exact multiple of the period in floats: the clamp
        # must not schedule a second sample at the same instant.
        sim = Simulator()
        probe = OccupancyProbe(sim, 0.5, {"x": lambda: 0.0}, until=2.0)
        sim.run(until=2.0)
        assert probe.times == pytest.approx([0.0, 0.5, 1.0, 1.5, 2.0])
        assert len(probe.times) == len(set(probe.times))


class TestReductions:
    def make_probe(self):
        sim = Simulator()
        probe = OccupancyProbe(sim, 1.0, {"t": lambda: sim.now}, until=4.0)
        sim.run(until=4.0)
        return probe

    def test_maximum(self):
        assert self.make_probe().maximum("t") == 4.0

    def test_final(self):
        assert self.make_probe().final("t") == 4.0

    def test_time_average(self):
        assert self.make_probe().time_average("t") == pytest.approx(2.0)

    def test_maximum_of_empty_series_is_zero(self):
        sim = Simulator()
        probe = OccupancyProbe(sim, 1.0, {"x": lambda: 1.0})
        assert probe.maximum("x") == 0.0

    def test_final_of_empty_series_raises(self):
        sim = Simulator()
        probe = OccupancyProbe(sim, 1.0, {"x": lambda: 1.0})
        with pytest.raises(ConfigurationError):
            probe.final("x")


class TestToRows:
    def test_rows_ordered_by_time_then_series(self):
        sim = Simulator()
        probe = OccupancyProbe(
            sim, 1.0, {"b": lambda: 2.0, "a": lambda: sim.now}, until=1.0
        )
        sim.run(until=1.0)
        rows = probe.to_rows()
        # Time-major, insertion order within a timestamp.
        assert rows == [
            (0.0, "b", 2.0),
            (0.0, "a", 0.0),
            (1.0, "b", 2.0),
            (1.0, "a", 1.0),
        ]

    def test_empty_probe_yields_no_rows(self):
        sim = Simulator()
        probe = OccupancyProbe(sim, 1.0, {"x": lambda: 0.0})
        assert probe.to_rows() == []


class TestValidation:
    def test_bad_period(self):
        with pytest.raises(ConfigurationError):
            OccupancyProbe(Simulator(), 0.0, {"x": lambda: 0.0})

    def test_no_probes(self):
        with pytest.raises(ConfigurationError):
            OccupancyProbe(Simulator(), 1.0, {})
