"""Sim-time timeline sampler: series, sampling contract, export.

The timeline's contract has three legs, each pinned here:

* **Series arithmetic** — bounded rings with eviction accounting,
  piecewise-constant windowed reductions, sparkline downsampling.
* **Zero-cost when detached** — a constructed-but-uninstalled timeline
  schedules nothing and never perturbs the run it was built for; an
  installed one ticks exactly ``floor(T / interval)`` times.
* **Export** — ``repro-timeline-v1`` JSONL/CSV round-trips through
  :func:`~repro.obs.timeline.read_timeline` and the summary dict.
"""

import pytest

from repro.core.fixed_threshold import FixedThresholdManager
from repro.errors import ConfigurationError
from repro.obs.sink import RingSink
from repro.obs.timeline import (
    _SPARK_BLOCKS,
    TIMELINE_SCHEMA,
    SeriesStats,
    Timeline,
    TimelineSeries,
    TimelineSummary,
    read_timeline,
)
from repro.sched.fifo import FIFOScheduler
from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.sim.port import OutputPort


def overloaded_port(timeline=None, n_packets=400, sim_time=1.0):
    """Drive a port past saturation; optionally install ``timeline``."""
    sim = Simulator()
    manager = FixedThresholdManager(
        capacity=50_000.0, thresholds={}, default_threshold=10_000.0
    )
    port = OutputPort(sim, 1e6, FIFOScheduler(), manager)
    if timeline is not None:
        timeline.probe("occupancy", lambda: manager.total_occupancy)
        timeline.probe("backlog", lambda: float(port.backlog_packets))
    state = {"sent": 0}

    def arrival():
        port.receive(Packet(flow_id=state["sent"] % 4, size=500.0, created=sim.now))
        state["sent"] += 1
        if state["sent"] < n_packets:
            sim.schedule_fast(0.0004, arrival)

    sim.schedule_fast(0.0, arrival)
    if timeline is not None and timeline.interval <= sim_time:
        timeline.install(sim, sim_time)
    sim.run(until=sim_time)
    return sim, port, manager


class TestTimelineSeries:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            TimelineSeries("occupancy", capacity=0)

    def test_key_includes_node(self):
        assert TimelineSeries("occupancy").key == "occupancy"
        assert TimelineSeries("occupancy", node="n0->n1").key == "n0->n1/occupancy"

    def test_append_and_copies(self):
        series = TimelineSeries("x")
        series.append(0.0, 1.0)
        series.append(1.0, 2.0)
        assert len(series) == 2
        times = series.times()
        times.append(99.0)  # caller's copy, not the ring
        assert series.times() == [0.0, 1.0]
        assert series.values() == [1.0, 2.0]

    def test_ring_eviction_counts_dropped(self):
        series = TimelineSeries("x", capacity=3)
        for i in range(5):
            series.append(float(i), float(i) * 10.0)
        assert len(series) == 3
        assert series.dropped == 2
        assert series.times() == [2.0, 3.0, 4.0]

    def test_stats(self):
        series = TimelineSeries("x")
        assert series.stats() is None
        for t, v in [(0.0, 2.0), (1.0, 8.0), (2.0, 5.0)]:
            series.append(t, v)
        stats = series.stats()
        assert stats == SeriesStats(count=3, minimum=2.0, mean=5.0, maximum=8.0, last=5.0)
        assert SeriesStats.from_dict(stats.to_dict()) == stats

    def test_windowed_stats(self):
        series = TimelineSeries("x")
        for i in range(10):
            series.append(float(i), float(i))
        stats = series.stats(since=3.0, until=6.0)
        assert stats.count == 4
        assert stats.minimum == 3.0 and stats.maximum == 6.0

    def test_time_above_is_strict_and_piecewise_constant(self):
        series = TimelineSeries("x")
        series.append(0.0, 1.0)
        series.append(1.0, 5.0)
        series.append(2.0, 5.0)
        series.append(3.0, 1.0)
        # Value 5 holds over [1, 3); the final sample has no successor
        # and contributes nothing without an explicit ``until``.
        assert series.time_above(4.0) == pytest.approx(2.0)
        # Strictly above: a sample *at* the threshold does not count.
        assert series.time_above(5.0) == pytest.approx(0.0)

    def test_time_above_extends_last_sample_to_until(self):
        series = TimelineSeries("x")
        series.append(0.0, 9.0)
        assert series.time_above(1.0) == 0.0
        assert series.time_above(1.0, until=2.5) == pytest.approx(2.5)

    def test_sparkline_flat_series_uses_lowest_block(self):
        series = TimelineSeries("x")
        for i in range(8):
            series.append(float(i), 7.0)
        line = series.sparkline(width=4)
        assert line == _SPARK_BLOCKS[0] * 4

    def test_sparkline_spans_blocks(self):
        series = TimelineSeries("x")
        for i in range(64):
            series.append(float(i), float(i))
        line = series.sparkline(width=8)
        assert len(line) == 8
        assert line[0] == _SPARK_BLOCKS[0]
        assert line[-1] == _SPARK_BLOCKS[-1]

    def test_sparkline_width_must_be_positive(self):
        series = TimelineSeries("x")
        series.append(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            series.sparkline(width=0)
        assert TimelineSeries("empty").sparkline() == ""


class TestTimelineValidation:
    def test_interval_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            Timeline(interval=0.0)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            Timeline(capacity=0)

    def test_duplicate_probe_rejected(self):
        timeline = Timeline()
        timeline.probe("occupancy", lambda: 0.0)
        with pytest.raises(ConfigurationError):
            timeline.probe("occupancy", lambda: 1.0)
        # Same name on a different node is a different series.
        timeline.probe("occupancy", lambda: 2.0, node="n1")

    def test_double_install_rejected(self):
        timeline = Timeline()
        sim = Simulator()
        timeline.install(sim, 1.0)
        with pytest.raises(ConfigurationError):
            timeline.install(sim, 1.0)

    def test_install_until_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            Timeline().install(Simulator(), 0.0)


class TestSamplingContract:
    def test_detached_timeline_schedules_nothing(self):
        sim_bare, port_bare, _ = overloaded_port()
        timeline = Timeline(interval=1e9)  # probed, never installed
        sim, port, _ = overloaded_port(timeline)
        assert timeline.ticks == 0
        assert all(len(s) == 0 for s in timeline.all_series())
        assert sim.events_processed == sim_bare.events_processed

    def test_installed_timeline_does_not_perturb_the_run(self):
        _, port_bare, m_bare = overloaded_port()
        timeline = Timeline(interval=0.05)
        _, port, manager = overloaded_port(timeline)
        assert timeline.ticks > 0
        assert port.backlog_packets == port_bare.backlog_packets
        assert manager.total_occupancy == m_bare.total_occupancy

    def test_tick_count_is_floor_of_horizon_over_interval(self):
        # A binary-exact interval so the reschedule accumulator is exact.
        timeline = Timeline(interval=0.125)
        overloaded_port(timeline, sim_time=1.0)
        # First tick at ``interval``, last at the largest multiple <= T.
        assert timeline.ticks == 8
        series = timeline.series("occupancy")
        assert series.times()[0] == pytest.approx(0.125)
        assert series.times()[-1] == pytest.approx(1.0)

    def test_sample_now_records_without_engine(self):
        timeline = Timeline()
        box = {"v": 3.0}
        timeline.probe("x", lambda: box["v"])
        timeline.sample_now(0.5)
        box["v"] = 7.0
        timeline.sample_now(1.5)
        assert timeline.series("x").values() == [3.0, 7.0]

    def test_attach_trace_mirrors_samples(self):
        ring = RingSink()
        timeline = Timeline(interval=0.25)
        timeline.attach_trace(ring)
        overloaded_port(timeline, sim_time=1.0)
        samples = [e for e in ring.events() if type(e).kind == "sample"]
        # Two probes x four ticks.
        assert len(samples) == 8
        assert {e.series for e in samples} == {"occupancy", "backlog"}


class TestExport:
    def filled(self, tmp_path):
        timeline = Timeline(interval=0.1)
        overloaded_port(timeline, sim_time=1.0)
        path = tmp_path / "timeline.jsonl"
        timeline.write_jsonl(path)
        return timeline, path

    def test_jsonl_round_trip(self, tmp_path):
        timeline, path = self.filled(tmp_path)
        header, samples = read_timeline(path)
        assert header["schema"] == TIMELINE_SCHEMA
        assert header["interval"] == timeline.interval
        assert header["ticks"] == timeline.ticks
        assert header["series"] == sorted(s.key for s in timeline.all_series())
        assert len(samples) == sum(len(s) for s in timeline.all_series())
        times = [s["time"] for s in samples]
        assert times == sorted(times)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "header", "schema": "repro-timeline-v0"}\n')
        with pytest.raises(ConfigurationError):
            read_timeline(path)

    def test_csv_is_wide(self, tmp_path):
        timeline, _ = self.filled(tmp_path)
        path = tmp_path / "timeline.csv"
        timeline.write_csv(path)
        lines = path.read_text().splitlines()
        keys = sorted(s.key for s in timeline.all_series())
        assert lines[0] == ",".join(["time"] + keys)
        assert len(lines) == 1 + timeline.ticks

    def test_summary_round_trip(self, tmp_path):
        timeline, _ = self.filled(tmp_path)
        summary = timeline.summary()
        raw = summary.to_dict()
        assert raw["schema"] == TIMELINE_SCHEMA
        assert TimelineSummary.from_dict(raw) == summary
        raw["schema"] = "repro-timeline-v0"
        with pytest.raises(ConfigurationError):
            TimelineSummary.from_dict(raw)

    def test_render_shows_every_series(self, tmp_path):
        timeline, _ = self.filled(tmp_path)
        text = timeline.render()
        for series in timeline.all_series():
            assert series.key in text
