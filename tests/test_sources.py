"""Traffic sources: on-off, CBR, greedy, trace."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.traffic.sources import CBRSource, GreedySource, OnOffSource, TraceSource


class Recorder:
    def __init__(self):
        self.packets = []

    def receive(self, packet):
        self.packets.append(packet)


class TestCBRSource:
    def test_emits_at_constant_spacing(self):
        sim = Simulator()
        sink = Recorder()
        CBRSource(sim, 0, rate=1000.0, sink=sink, packet_size=100.0, until=1.0)
        sim.run(until=1.0)
        times = [p.created for p in sink.packets]
        assert times[0] == 0.0
        deltas = np.diff(times)
        assert np.allclose(deltas, 0.1)

    def test_rate_achieved(self):
        sim = Simulator()
        sink = Recorder()
        CBRSource(sim, 0, rate=1000.0, sink=sink, packet_size=100.0, until=10.0)
        sim.run(until=10.0)
        emitted = sum(p.size for p in sink.packets)
        assert emitted == pytest.approx(10_000.0, rel=0.02)

    def test_until_stops_emission(self):
        sim = Simulator()
        sink = Recorder()
        CBRSource(sim, 0, rate=1000.0, sink=sink, packet_size=100.0, until=0.5)
        sim.run()
        assert all(p.created <= 0.5 for p in sink.packets)

    def test_start_offset(self):
        sim = Simulator()
        sink = Recorder()
        CBRSource(sim, 0, rate=1000.0, sink=sink, packet_size=100.0,
                  start=2.0, until=3.0)
        sim.run(until=3.0)
        assert sink.packets[0].created == 2.0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            CBRSource(Simulator(), 0, rate=0.0, sink=Recorder())


class TestGreedySource:
    def test_offers_more_than_link_rate(self):
        sim = Simulator()
        sink = Recorder()
        GreedySource(sim, 0, link_rate=1000.0, sink=sink, packet_size=100.0,
                     until=1.0)
        sim.run(until=1.0)
        offered = sum(p.size for p in sink.packets)
        assert offered > 1000.0

    def test_overdrive_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            GreedySource(Simulator(), 0, 1000.0, Recorder(), overdrive=0.5)


class TestOnOffSource:
    def test_long_run_average_rate(self):
        sim = Simulator()
        sink = Recorder()
        OnOffSource(
            sim, 0, peak_rate=10_000.0, avg_rate=2_000.0, mean_burst=2_000.0,
            sink=sink, rng=np.random.default_rng(42), packet_size=100.0,
            until=200.0,
        )
        sim.run(until=200.0)
        rate = sum(p.size for p in sink.packets) / 200.0
        assert rate == pytest.approx(2_000.0, rel=0.25)

    def test_peak_rate_respected_within_bursts(self):
        sim = Simulator()
        sink = Recorder()
        OnOffSource(
            sim, 0, peak_rate=10_000.0, avg_rate=2_000.0, mean_burst=2_000.0,
            sink=sink, rng=np.random.default_rng(7), packet_size=100.0,
            until=50.0,
        )
        sim.run(until=50.0)
        times = [p.created for p in sink.packets]
        spacing = 100.0 / 10_000.0
        min_gap = min(np.diff(times))
        assert min_gap >= spacing - 1e-9

    def test_cbr_degenerate_when_avg_equals_peak(self):
        sim = Simulator()
        sink = Recorder()
        OnOffSource(
            sim, 0, peak_rate=1_000.0, avg_rate=1_000.0, mean_burst=1_000.0,
            sink=sink, rng=np.random.default_rng(0), packet_size=100.0,
            until=5.0,
        )
        sim.run(until=5.0)
        rate = sum(p.size for p in sink.packets) / 5.0
        assert rate == pytest.approx(1_000.0, rel=0.05)

    def test_deterministic_given_seed(self):
        def run(seed):
            sim = Simulator()
            sink = Recorder()
            OnOffSource(
                sim, 0, 10_000.0, 2_000.0, 2_000.0, sink,
                np.random.default_rng(seed), packet_size=100.0, until=20.0,
            )
            sim.run(until=20.0)
            return [round(p.created, 9) for p in sink.packets]

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_mean_burst_smaller_than_packet_rejected(self):
        with pytest.raises(ConfigurationError):
            OnOffSource(
                Simulator(), 0, 1_000.0, 500.0, 50.0, Recorder(),
                np.random.default_rng(0), packet_size=100.0,
            )

    def test_avg_above_peak_rejected(self):
        with pytest.raises(ConfigurationError):
            OnOffSource(
                Simulator(), 0, 1_000.0, 2_000.0, 1_000.0, Recorder(),
                np.random.default_rng(0),
            )

    def test_mean_burst_size_approximately_respected(self):
        sim = Simulator()
        sink = Recorder()
        source = OnOffSource(
            sim, 0, peak_rate=100_000.0, avg_rate=10_000.0, mean_burst=1_000.0,
            sink=sink, rng=np.random.default_rng(11), packet_size=100.0,
            until=300.0,
        )
        sim.run(until=300.0)
        times = np.array([p.created for p in sink.packets])
        gaps = np.diff(times)
        # A gap much larger than the peak spacing separates bursts.
        burst_count = 1 + int(np.sum(gaps > 5 * (100.0 / 100_000.0)))
        mean_burst = sum(p.size for p in sink.packets) / burst_count
        assert mean_burst == pytest.approx(1_000.0, rel=0.3)


class TestTraceSource:
    def test_replays_schedule(self):
        sim = Simulator()
        sink = Recorder()
        TraceSource(sim, 3, [(0.5, 100.0), (1.5, 200.0)], sink)
        sim.run()
        assert [(p.created, p.size) for p in sink.packets] == [
            (0.5, 100.0), (1.5, 200.0)
        ]
        assert all(p.flow_id == 3 for p in sink.packets)

    def test_unordered_schedule_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceSource(Simulator(), 0, [(1.0, 100.0), (0.5, 100.0)], Recorder())


class TestRngBatching:
    """Opt-in block RNG draws; the default path stays byte-identical."""

    @staticmethod
    def _emission_times(rng_batch, seed=5, until=2.0):
        sim = Simulator()
        sink = Recorder()
        OnOffSource(
            sim,
            0,
            peak_rate=4000.0,
            avg_rate=1000.0,
            mean_burst=1000.0,
            sink=sink,
            rng=np.random.default_rng(seed),
            packet_size=500.0,
            until=until,
            rng_batch=rng_batch,
        )
        sim.run(until=until)
        assert sink.packets
        return [p.created for p in sink.packets]

    def test_batch_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            self._emission_times(rng_batch=0)

    def test_batched_stream_reproducible_for_a_seed(self):
        assert self._emission_times(16) == self._emission_times(16)

    def test_batched_stream_invariant_to_block_size(self):
        assert self._emission_times(1) == self._emission_times(128)

    def test_batched_draws_use_child_streams(self):
        # Documented contract: batching switches to spawned child
        # streams, so it is a *different* deterministic stream than the
        # legacy scalar draws (which remain the default).
        assert self._emission_times(None) != self._emission_times(16)

    def test_default_remains_legacy_scalar_draws(self):
        # Guard the byte-compat default: same seed, no batching, same
        # stream as a directly-seeded generator making interleaved
        # scalar draws.
        times = self._emission_times(None)
        assert times == self._emission_times(None)
