"""Admission control: WFQ vs FIFO schedulability regions."""

import pytest

from repro.analysis.admission import (
    FIFOAdmission,
    Rejection,
    WFQAdmission,
)
from repro.errors import AdmissionError


class TestWFQAdmission:
    def test_admits_within_both_constraints(self):
        control = WFQAdmission(link_rate=1000.0, buffer_size=10_000.0)
        assert control.admit(sigma=1_000.0, rho=400.0)

    def test_bandwidth_limited_rejection(self):
        control = WFQAdmission(1000.0, 10_000.0)
        control.admit(100.0, 900.0)
        decision = control.check(100.0, 200.0)
        assert not decision
        assert decision.reason is Rejection.BANDWIDTH_LIMITED

    def test_buffer_limited_rejection(self):
        control = WFQAdmission(1000.0, 1_000.0)
        control.admit(900.0, 100.0)
        decision = control.check(200.0, 100.0)
        assert decision.reason is Rejection.BUFFER_LIMITED

    def test_check_does_not_mutate(self):
        control = WFQAdmission(1000.0, 10_000.0)
        control.check(100.0, 100.0)
        assert control.admitted_count == 0
        assert control.rho_total == 0.0

    def test_full_reservation_allowed(self):
        # WFQ tolerates sum(rho) == R exactly (eq. 5 is >=).
        control = WFQAdmission(1000.0, 10_000.0)
        assert control.admit(100.0, 1000.0)


class TestFIFOAdmission:
    def test_admits_when_buffer_covers_equation9(self):
        # u = 0.5 -> B must cover 2 * sum(sigma).
        control = FIFOAdmission(1000.0, 4_000.0)
        assert control.admit(sigma=1_000.0, rho=500.0)

    def test_buffer_limited_at_high_utilisation(self):
        # Same flows, same buffer: WFQ admits, FIFO rejects on buffer.
        fifo = FIFOAdmission(1000.0, 4_000.0)
        wfq = WFQAdmission(1000.0, 4_000.0)
        fifo.admit(1_000.0, 500.0)
        wfq.admit(1_000.0, 500.0)
        decision_fifo = fifo.check(1_000.0, 450.0)
        decision_wfq = wfq.check(1_000.0, 450.0)
        assert decision_wfq.admitted
        assert not decision_fifo.admitted
        assert decision_fifo.reason is Rejection.BUFFER_LIMITED

    def test_bandwidth_limited_rejection(self):
        control = FIFOAdmission(1000.0, 1e12)
        control.admit(1.0, 990.0)
        decision = control.check(1.0, 20.0)
        assert decision.reason is Rejection.BANDWIDTH_LIMITED

    def test_full_reservation_is_buffer_limited(self):
        # At sum(rho) == R the required buffer is unbounded.
        control = FIFOAdmission(1000.0, 1e12)
        decision = control.check(1.0, 1000.0)
        assert not decision.admitted
        assert decision.reason is Rejection.BUFFER_LIMITED

    def test_fifo_admits_fewer_flows_than_wfq_when_buffer_tight(self):
        buffer_size = 10_000.0
        fifo = FIFOAdmission(1000.0, buffer_size)
        wfq = WFQAdmission(1000.0, buffer_size)
        flow = (1_000.0, 90.0)
        fifo_count = 0
        while fifo.admit(*flow):
            fifo_count += 1
        wfq_count = 0
        while wfq.admit(*flow):
            wfq_count += 1
        assert fifo_count < wfq_count


class TestRelease:
    def test_release_restores_capacity(self):
        control = WFQAdmission(1000.0, 1_000.0)
        control.admit(1_000.0, 500.0)
        assert not control.check(500.0, 100.0).admitted
        control.release(1_000.0, 500.0)
        assert control.check(500.0, 100.0).admitted

    def test_release_without_admission_raises(self):
        control = WFQAdmission(1000.0, 1_000.0)
        with pytest.raises(AdmissionError):
            control.release(100.0, 100.0)

    def test_release_more_than_admitted_raises(self):
        control = WFQAdmission(1000.0, 1_000.0)
        control.admit(100.0, 100.0)
        with pytest.raises(AdmissionError):
            control.release(100.0, 500.0)


class TestValidation:
    def test_invalid_construction(self):
        with pytest.raises(AdmissionError):
            WFQAdmission(0.0, 100.0)
        with pytest.raises(AdmissionError):
            FIFOAdmission(100.0, 0.0)

    def test_invalid_flow_parameters(self):
        control = WFQAdmission(1000.0, 1_000.0)
        with pytest.raises(AdmissionError):
            control.check(-1.0, 100.0)
        with pytest.raises(AdmissionError):
            control.check(100.0, 0.0)
