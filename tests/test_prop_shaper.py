"""Property-based tests: leaky-bucket regulation.

The defining property of the shaper (the paper's conformance mechanism):
whatever the input, the *output* satisfies the (sigma, rho) envelope of
eq. (2), no packet is lost, and order is preserved.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.burst import is_conformant_path
from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.traffic.shaper import LeakyBucketShaper, TokenBucketMeter

# Arrival schedules: inter-arrival gaps and packet sizes.
schedules = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
        st.floats(min_value=1.0, max_value=900.0, allow_nan=False),
    ),
    min_size=1,
    max_size=60,
)

sigmas = st.floats(min_value=1_000.0, max_value=10_000.0, allow_nan=False)
rhos = st.floats(min_value=100.0, max_value=50_000.0, allow_nan=False)


class Recorder:
    def __init__(self, clock):
        self.clock = clock
        self.packets = []

    def receive(self, packet):
        self.packets.append((self.clock(), packet))


def run_shaper(schedule, sigma, rho):
    sim = Simulator()
    sink = Recorder(lambda: sim.now)
    shaper = LeakyBucketShaper(sim, sigma, rho, sink)
    time = 0.0
    sent = []
    for gap, size in schedule:
        time += gap
        packet = Packet(0, size, time)
        sent.append(packet)
        sim.schedule_at(time, shaper.receive, packet)
    sim.run()
    return sent, sink.packets


class TestShaperProperties:
    @given(schedule=schedules, sigma=sigmas, rho=rhos)
    @settings(max_examples=80, deadline=None)
    def test_output_is_conformant(self, schedule, sigma, rho):
        _, out = run_shaper(schedule, sigma, rho)
        meter = TokenBucketMeter(sigma + 1.0, rho)  # epsilon for float slack
        for time, packet in out:
            assert meter.observe(time, packet.size)

    @given(schedule=schedules, sigma=sigmas, rho=rhos)
    @settings(max_examples=80, deadline=None)
    def test_no_loss_and_order_preserved(self, schedule, sigma, rho):
        sent, out = run_shaper(schedule, sigma, rho)
        assert [packet for _, packet in out] == sent

    @given(schedule=schedules, sigma=sigmas, rho=rhos)
    @settings(max_examples=80, deadline=None)
    def test_packets_never_released_early(self, schedule, sigma, rho):
        _, out = run_shaper(schedule, sigma, rho)
        for time, packet in out:
            assert time >= packet.created - 1e-9

    @given(schedule=schedules, sigma=sigmas, rho=rhos)
    @settings(max_examples=40, deadline=None)
    def test_cumulative_output_path_conformant(self, schedule, sigma, rho):
        # Check via the analysis module too: the cumulative byte path of
        # the output satisfies eq. (2).
        _, out = run_shaper(schedule, sigma, rho)
        cumulative = 0.0
        path = []
        for time, packet in out:
            cumulative += packet.size
            path.append((time, cumulative))
        if path:
            assert is_conformant_path(path, sigma + 1.0, rho, tolerance=1e-3)


class TestMeterProperties:
    @given(schedule=schedules, sigma=sigmas, rho=rhos)
    @settings(max_examples=80, deadline=None)
    def test_burst_potential_bounded_by_sigma(self, schedule, sigma, rho):
        meter = TokenBucketMeter(sigma, rho)
        time = 0.0
        for gap, size in schedule:
            time += gap
            meter.observe(time, size)
            assert meter.burst_potential(time) <= sigma + 1e-9

    @given(schedule=schedules, sigma=sigmas, rho=rhos)
    @settings(max_examples=80, deadline=None)
    def test_conformant_iff_potential_covers_size(self, schedule, sigma, rho):
        meter = TokenBucketMeter(sigma, rho)
        reference = TokenBucketMeter(sigma, rho)
        time = 0.0
        for gap, size in schedule:
            time += gap
            potential = reference.burst_potential(time)
            conformant = meter.observe(time, size)
            assert conformant == (potential >= size - 1e-9)
            reference.observe(time, size)
