"""Scheme factory: correct scheduler/manager combinations and thresholds."""

import pytest

from repro.core.fixed_threshold import FixedThresholdManager
from repro.core.hybrid import HybridBufferManager
from repro.core.shared_headroom import SharedHeadroomManager
from repro.core.tail_drop import TailDropManager
from repro.errors import ConfigurationError
from repro.experiments.schemes import DEFAULT_HEADROOM, Scheme, build_scheme
from repro.experiments.workloads import CASE1_GROUPS, LINK_RATE, table1_flows
from repro.sched.fifo import FIFOScheduler
from repro.sched.hybrid import HybridScheduler
from repro.sched.scfq import SCFQScheduler
from repro.sched.wfq import WFQScheduler
from repro.sim.engine import Simulator
from repro.units import mbytes

FLOWS = table1_flows()
BUFFER = mbytes(2.0)


def build(scheme, **kwargs):
    return build_scheme(Simulator(), scheme, FLOWS, BUFFER, LINK_RATE, **kwargs)


class TestComponentSelection:
    @pytest.mark.parametrize(
        "scheme,sched_type,mgr_type",
        [
            (Scheme.FIFO_NONE, FIFOScheduler, TailDropManager),
            (Scheme.WFQ_NONE, WFQScheduler, TailDropManager),
            (Scheme.FIFO_THRESHOLD, FIFOScheduler, FixedThresholdManager),
            (Scheme.WFQ_THRESHOLD, WFQScheduler, FixedThresholdManager),
            (Scheme.FIFO_SHARING, FIFOScheduler, SharedHeadroomManager),
            (Scheme.WFQ_SHARING, WFQScheduler, SharedHeadroomManager),
            (Scheme.SCFQ_THRESHOLD, SCFQScheduler, FixedThresholdManager),
            (Scheme.SCFQ_SHARING, SCFQScheduler, SharedHeadroomManager),
        ],
    )
    def test_flat_schemes(self, scheme, sched_type, mgr_type):
        result = build(scheme)
        assert isinstance(result.scheduler, sched_type)
        assert isinstance(result.manager, mgr_type)

    def test_hybrid_schemes(self):
        result = build(Scheme.HYBRID_SHARING, groups=CASE1_GROUPS)
        assert isinstance(result.scheduler, HybridScheduler)
        assert isinstance(result.manager, HybridBufferManager)
        for sub in result.manager.managers:
            assert isinstance(sub, SharedHeadroomManager)
        threshold_build = build(Scheme.HYBRID_THRESHOLD, groups=CASE1_GROUPS)
        for sub in threshold_build.manager.managers:
            assert isinstance(sub, FixedThresholdManager)

    def test_hybrid_requires_groups(self):
        with pytest.raises(ConfigurationError):
            build(Scheme.HYBRID_SHARING)

    def test_scheme_flags(self):
        assert Scheme.HYBRID_SHARING.is_hybrid
        assert not Scheme.FIFO_SHARING.is_hybrid
        assert Scheme.FIFO_SHARING.uses_sharing
        assert not Scheme.FIFO_THRESHOLD.uses_sharing


class TestThresholds:
    def test_threshold_formula_with_partition_scaling(self):
        result = build(Scheme.FIFO_THRESHOLD)
        # Raw thresholds: sigma + rho B / R; B = 2 MB, so the raw sum
        # exceeds B (600 KB + 0.683 * 2 MB ~ 1.97 MB < 2 MB -> scaled up).
        raw = {
            flow.flow_id: flow.bucket + flow.token_rate * BUFFER / LINK_RATE
            for flow in FLOWS
        }
        raw_total = sum(raw.values())
        assert raw_total < BUFFER  # this buffer triggers footnote 5
        for flow_id, threshold in result.thresholds.items():
            assert threshold == pytest.approx(raw[flow_id] * BUFFER / raw_total)

    def test_thresholds_not_scaled_when_oversubscribed(self):
        small_buffer = mbytes(0.5)
        result = build_scheme(
            Simulator(), Scheme.FIFO_THRESHOLD, FLOWS, small_buffer, LINK_RATE
        )
        for flow in FLOWS:
            expected = flow.bucket + flow.token_rate * small_buffer / LINK_RATE
            assert result.thresholds[flow.flow_id] == pytest.approx(expected)

    def test_wfq_weights_are_token_rates(self):
        result = build(Scheme.WFQ_THRESHOLD)
        wfq = result.scheduler
        # Verify indirectly: enqueue a packet per flow and check the
        # scheduler accepted all ids (weights registered for each flow).
        from repro.sim.packet import Packet

        for flow in FLOWS:
            wfq.enqueue(Packet(flow.flow_id, 500.0, 0.0))
        assert len(wfq) == len(FLOWS)


class TestHybridConfiguration:
    def test_queue_rates_sum_to_link(self):
        result = build(Scheme.HYBRID_SHARING, groups=CASE1_GROUPS)
        assert sum(result.queue_rates) == pytest.approx(LINK_RATE)

    def test_queue_buffers_sum_to_total(self):
        result = build(Scheme.HYBRID_SHARING, groups=CASE1_GROUPS)
        assert sum(result.queue_buffers) == pytest.approx(BUFFER)

    def test_queue_rates_exceed_reservations(self):
        result = build(Scheme.HYBRID_SHARING, groups=CASE1_GROUPS)
        for group, rate in zip(CASE1_GROUPS, result.queue_rates):
            rho_hat = sum(FLOWS[f].token_rate for f in group)
            assert rate > rho_hat

    def test_flow_thresholds_use_section42_formula(self):
        result = build(Scheme.HYBRID_SHARING, groups=CASE1_GROUPS)
        for class_id, group in enumerate(CASE1_GROUPS):
            rho_hat = sum(FLOWS[f].token_rate for f in group)
            queue_buffer = result.queue_buffers[class_id]
            for flow_id in group:
                expected = FLOWS[flow_id].bucket + (
                    FLOWS[flow_id].token_rate / rho_hat
                ) * queue_buffer
                assert result.thresholds[flow_id] == pytest.approx(expected)

    def test_headroom_split_in_proportion_to_buffers(self):
        result = build(Scheme.HYBRID_SHARING, groups=CASE1_GROUPS)
        for sub, queue_buffer in zip(result.manager.managers, result.queue_buffers):
            expected = DEFAULT_HEADROOM * queue_buffer / BUFFER
            assert sub.headroom_cap == pytest.approx(expected)

    def test_grouping_must_cover_all_flows(self):
        with pytest.raises(ConfigurationError):
            build(Scheme.HYBRID_SHARING, groups=[[0, 1], [2, 3]])


class TestValidation:
    def test_non_positive_buffer_rejected(self):
        with pytest.raises(ConfigurationError):
            build_scheme(Simulator(), Scheme.FIFO_NONE, FLOWS, 0.0, LINK_RATE)
