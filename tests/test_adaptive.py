"""Adaptive/non-adaptive sharing (the conclusion's sharing-model knob)."""

import pytest

from repro.core.adaptive import AdaptiveSharingManager
from repro.errors import ConfigurationError


def make_manager(nonadaptive_share=0.25, headroom=200.0):
    return AdaptiveSharingManager(
        capacity=1000.0,
        thresholds={1: 200.0, 2: 200.0, 3: 200.0},
        headroom=headroom,
        adaptive_flows={1},
        nonadaptive_share=nonadaptive_share,
    )


class TestReservationsAreSacred:
    def test_both_classes_admitted_within_reservation(self):
        manager = make_manager()
        assert manager.try_admit(1, 200.0)  # adaptive
        assert manager.try_admit(2, 200.0)  # non-adaptive

    def test_reserved_traffic_uses_headroom_when_holes_run_dry(self):
        manager = make_manager()
        # Adaptive flow 1 takes its reservation and then borrows from the
        # holes until the fairness cap bites (excess == remaining holes).
        assert manager.try_admit(1, 200.0)   # reservation: holes -> 600
        assert manager.try_admit(1, 300.0)   # excess: holes -> 300
        assert manager.holes == pytest.approx(300.0)
        # Non-adaptive flow 2's reservation drains the rest of the holes.
        assert manager.try_admit(2, 200.0)   # holes -> 100
        # Flow 3's reservation no longer fits in the holes alone; the
        # remainder must come from the protected headroom.
        assert manager.try_admit(3, 150.0)
        assert manager.holes == pytest.approx(0.0)
        assert manager.headroom == pytest.approx(150.0)


class TestExcessAccess:
    def test_adaptive_flow_borrows_freely(self):
        manager = make_manager()
        manager.try_admit(1, 200.0)
        assert manager.try_admit(1, 300.0)  # 300 excess <= holes

    def test_nonadaptive_flow_capped_at_share_of_holes(self):
        manager = make_manager(nonadaptive_share=0.25)
        manager.try_admit(2, 200.0)  # fills reservation; holes = 600
        # Allowance = 0.25 * 600 = 150: a 100-byte excess packet fits...
        assert manager.try_admit(2, 100.0)
        # ... but pushes the excess to 100; another 100 would exceed the
        # updated allowance 0.25 * 500 = 125 (excess_after = 200 > 125).
        assert not manager.try_admit(2, 100.0)

    def test_zero_share_confines_nonadaptive_to_threshold(self):
        manager = make_manager(nonadaptive_share=0.0)
        manager.try_admit(2, 200.0)
        assert not manager.try_admit(2, 1.0)
        # Adaptive flow is unaffected.
        manager.try_admit(1, 200.0)
        assert manager.try_admit(1, 100.0)

    def test_share_one_treats_all_flows_alike(self):
        full = make_manager(nonadaptive_share=1.0)
        full.try_admit(2, 200.0)
        assert full.try_admit(2, 300.0)  # same as an adaptive flow

    def test_nonadaptive_never_touches_headroom(self):
        manager = make_manager(nonadaptive_share=1.0)
        manager.try_admit(2, 200.0)
        headroom_before = manager.headroom
        while manager.try_admit(2, 50.0):
            pass
        assert manager.headroom == headroom_before


class TestConfiguration:
    def test_share_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            make_manager(nonadaptive_share=1.5)
        with pytest.raises(ConfigurationError):
            make_manager(nonadaptive_share=-0.1)

    def test_adaptivity_lookup(self):
        manager = make_manager()
        assert manager.is_adaptive(1)
        assert not manager.is_adaptive(2)
        assert not manager.is_adaptive(42)

    def test_counter_invariant_maintained(self):
        manager = make_manager()
        manager.try_admit(1, 200.0)
        manager.try_admit(2, 150.0)
        manager.try_admit(1, 250.0)
        manager.on_depart(1, 200.0)
        free = manager.capacity - manager.total_occupancy
        assert manager.holes + manager.headroom == pytest.approx(free)
