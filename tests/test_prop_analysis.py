"""Property-based tests: the paper's closed-form identities."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.buffer_sizing import (
    buffer_vs_utilization,
    fifo_min_buffer,
    reserved_utilization,
    wfq_min_buffer,
)
from repro.analysis.fluid import two_flow_fluid
from repro.analysis.hybrid_opt import (
    QueueRequirement,
    buffer_savings,
    buffer_savings_identity,
    hybrid_buffer_for_allocation,
    hybrid_total_buffer,
    optimal_alphas,
    queue_rates,
)

queue_lists = st.lists(
    st.builds(
        QueueRequirement,
        sigma_hat=st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
        rho_hat=st.floats(min_value=1.0, max_value=1e5, allow_nan=False),
    ),
    min_size=1,
    max_size=6,
)


def link_for(queues):
    return 2.0 * sum(q.rho_hat for q in queues) + 1.0


class TestProposition3Properties:
    @given(queues=queue_lists)
    @settings(max_examples=100, deadline=None)
    def test_alphas_form_a_distribution(self, queues):
        alphas = optimal_alphas(queues)
        assert all(a > 0 for a in alphas)
        assert abs(sum(alphas) - 1.0) < 1e-9

    @given(queues=queue_lists)
    @settings(max_examples=100, deadline=None)
    def test_rates_sum_to_link_and_cover_reservations(self, queues):
        link = link_for(queues)
        rates = queue_rates(queues, link)
        assert abs(sum(rates) - link) < max(1e-6, 1e-9 * link)
        for rate, queue in zip(rates, queues):
            assert rate > queue.rho_hat

    @given(queues=queue_lists, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_optimum_beats_random_allocations(self, queues, data):
        link = link_for(queues)
        best = hybrid_total_buffer(queues, link)
        raw = data.draw(
            st.lists(
                st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
                min_size=len(queues), max_size=len(queues),
            )
        )
        total = sum(raw)
        alphas = [value / total for value in raw]
        alternative = hybrid_buffer_for_allocation(queues, link, alphas)
        assert alternative >= best - max(1e-6, 1e-9 * best)

    @given(queues=queue_lists)
    @settings(max_examples=100, deadline=None)
    def test_savings_identity_eq17(self, queues):
        link = link_for(queues)
        direct = buffer_savings(queues, link)
        identity = buffer_savings_identity(queues, link)
        scale = max(1.0, abs(direct))
        assert abs(direct - identity) < 1e-6 * scale

    @given(queues=queue_lists)
    @settings(max_examples=100, deadline=None)
    def test_hybrid_never_worse_than_single_fifo(self, queues):
        link = link_for(queues)
        sigma = sum(q.sigma_hat for q in queues)
        rho = sum(q.rho_hat for q in queues)
        single = link * sigma / (link - rho)
        assert hybrid_total_buffer(queues, link) <= single + 1e-6 * single


class TestBufferSizingProperties:
    profiles = st.lists(
        st.tuples(
            st.floats(min_value=1.0, max_value=1e6, allow_nan=False),   # sigma
            st.floats(min_value=1.0, max_value=1e5, allow_nan=False),   # rho
        ),
        min_size=1,
        max_size=10,
    )

    @given(profiles=profiles)
    @settings(max_examples=100, deadline=None)
    def test_fifo_needs_at_least_wfq_buffer(self, profiles):
        sigmas = [s for s, _ in profiles]
        rhos = [r for _, r in profiles]
        link = 2.0 * sum(rhos)
        assert fifo_min_buffer(sigmas, rhos, link) >= wfq_min_buffer(sigmas)

    @given(profiles=profiles)
    @settings(max_examples=100, deadline=None)
    def test_equation10_consistency(self, profiles):
        sigmas = [s for s, _ in profiles]
        rhos = [r for _, r in profiles]
        link = 3.0 * sum(rhos)
        u = reserved_utilization(rhos, link)
        via_u = buffer_vs_utilization(u, sum(sigmas))
        direct = fifo_min_buffer(sigmas, rhos, link)
        assert abs(via_u - direct) < 1e-6 * max(1.0, direct)

    @given(
        profiles=profiles,
        scale=st.floats(min_value=1.01, max_value=10.0, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_requirement_decreases_with_faster_link(self, profiles, scale):
        sigmas = [s for s, _ in profiles]
        rhos = [r for _, r in profiles]
        link = 1.5 * sum(rhos)
        slower = fifo_min_buffer(sigmas, rhos, link)
        faster = fifo_min_buffer(sigmas, rhos, link * scale)
        assert faster <= slower + 1e-9


class TestFluidProperties:
    @given(
        rho_fraction=st.floats(min_value=0.01, max_value=0.95, allow_nan=False),
        buffer_size=st.floats(min_value=100.0, max_value=1e7, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_flow1_rates_increase_towards_guarantee(self, rho_fraction, buffer_size):
        link = 1_000_000.0
        rho1 = rho_fraction * link
        trajectory = two_flow_fluid(rho1, buffer_size, link, n_intervals=40)
        rates = [interval.rate_flow1 for interval in trajectory.intervals]
        for earlier, later in zip(rates, rates[1:]):
            assert later >= earlier - 1e-9
        assert rates[-1] <= rho1 + 1e-6 * rho1

    @given(
        rho_fraction=st.floats(min_value=0.01, max_value=0.95, allow_nan=False),
        buffer_size=st.floats(min_value=100.0, max_value=1e7, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_occupancy_bounded_by_threshold(self, rho_fraction, buffer_size):
        link = 1_000_000.0
        rho1 = rho_fraction * link
        trajectory = two_flow_fluid(rho1, buffer_size, link, n_intervals=40)
        for interval in trajectory.intervals:
            assert interval.occupancy_flow1_end <= trajectory.threshold_flow1 * (
                1.0 + 1e-9
            )

    @given(
        rho_fraction=st.floats(min_value=0.01, max_value=0.95, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_limit_is_fixed_point_of_recursion(self, rho_fraction):
        link = 1_000_000.0
        rho1 = rho_fraction * link
        buffer_size = 1e6
        trajectory = two_flow_fluid(rho1, buffer_size, link, n_intervals=5)
        b2 = buffer_size * (1.0 - rho_fraction)
        fixed_point = trajectory.limit_length
        assert math.isclose(
            (rho1 / link) * fixed_point + b2 / link, fixed_point, rel_tol=1e-9
        )
