"""End-to-end behaviour of the hybrid architecture (Section 4)."""

import pytest

from repro.core.fixed_threshold import FixedThresholdManager
from repro.core.hybrid import HybridBufferManager
from repro.metrics.collector import StatsCollector
from repro.sched.hybrid import HybridScheduler
from repro.sched.wfq import WFQScheduler
from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.sim.port import OutputPort
from repro.traffic.sources import CBRSource, GreedySource

LINK = 1_000_000.0
PKT = 500.0


class TestClassRateGuarantees:
    def test_saturated_classes_split_by_assigned_rates(self):
        # Two classes, rates 3:1, both saturated by greedy flows: served
        # bytes track the class rates.
        sim = Simulator()
        scheduler = HybridScheduler(
            lambda: sim.now, LINK, [[1], [2]], [750_000.0, 250_000.0]
        )
        manager = HybridBufferManager(
            {1: 0, 2: 1},
            [FixedThresholdManager(30_000.0, {1: 30_000.0}),
             FixedThresholdManager(30_000.0, {2: 30_000.0})],
        )
        collector = StatsCollector(warmup=5.0)
        port = OutputPort(sim, LINK, scheduler, manager, collector)
        GreedySource(sim, 1, LINK, port, packet_size=PKT, until=30.0)
        GreedySource(sim, 2, LINK, port, packet_size=PKT, until=30.0)
        sim.run(until=30.0)
        rate1 = collector.flows[1].departed_bytes / 25.0
        rate2 = collector.flows[2].departed_bytes / 25.0
        assert rate1 / rate2 == pytest.approx(3.0, rel=0.05)

    def test_idle_class_capacity_redistributed(self):
        # Class 2 idle: class 1 should take (almost) the whole link, not
        # just its assigned rate — the WFQ across classes is work
        # conserving.
        sim = Simulator()
        scheduler = HybridScheduler(
            lambda: sim.now, LINK, [[1], [2]], [250_000.0, 750_000.0]
        )
        manager = HybridBufferManager(
            {1: 0, 2: 1},
            [FixedThresholdManager(30_000.0, {1: 30_000.0}),
             FixedThresholdManager(30_000.0, {2: 30_000.0})],
        )
        collector = StatsCollector(warmup=5.0)
        port = OutputPort(sim, LINK, scheduler, manager, collector)
        GreedySource(sim, 1, LINK, port, packet_size=PKT, until=30.0)
        sim.run(until=30.0)
        rate1 = collector.flows[1].departed_bytes / 25.0
        assert rate1 == pytest.approx(LINK, rel=0.02)


class TestWithinClassIsolation:
    def test_thresholds_isolate_flows_inside_a_class(self):
        # One class at rate R; inside it a conformant CBR flow and a
        # greedy flow share the class buffer under thresholds.
        sim = Simulator()
        class_buffer = 50_000.0
        rho = 250_000.0
        threshold = rho / LINK * class_buffer + PKT
        scheduler = HybridScheduler(lambda: sim.now, LINK, [[1, 2]], [LINK])
        manager = HybridBufferManager(
            {1: 0, 2: 0},
            [FixedThresholdManager(
                class_buffer, {1: threshold, 2: class_buffer - threshold}
            )],
        )
        collector = StatsCollector(warmup=5.0)
        port = OutputPort(sim, LINK, scheduler, manager, collector)
        CBRSource(sim, 1, rho, port, packet_size=PKT, until=30.0)
        GreedySource(sim, 2, LINK, port, packet_size=PKT, until=30.0)
        sim.run(until=30.0)
        assert collector.flows[1].dropped_packets == 0
        rate1 = collector.flows[1].departed_bytes / 25.0
        assert rate1 == pytest.approx(rho, rel=0.03)


class TestEquivalenceLimits:
    def test_one_class_hybrid_behaves_like_fifo(self):
        # A single class containing all flows is exactly a FIFO queue.
        sim = Simulator()
        scheduler = HybridScheduler(lambda: sim.now, LINK, [[1, 2]], [LINK])
        packets = [Packet(1, PKT, 0.0), Packet(2, PKT, 0.0), Packet(1, PKT, 0.0)]
        for packet in packets:
            scheduler.enqueue(packet)
        assert [scheduler.dequeue() for _ in range(3)] == packets

    def test_one_flow_per_class_behaves_like_wfq(self):
        # k == N classes: service order matches a WFQ with the same
        # weights, packet for packet.
        weights = {1: 100.0, 2: 300.0}
        sim_a, sim_b = Simulator(), Simulator()
        hybrid = HybridScheduler(
            lambda: sim_a.now, LINK, [[1], [2]], [100.0, 300.0]
        )
        wfq = WFQScheduler(lambda: sim_b.now, LINK, weights)
        order_a, order_b = [], []
        for _ in range(6):
            for flow_id in (1, 2):
                hybrid.enqueue(Packet(flow_id, PKT, 0.0))
                wfq.enqueue(Packet(flow_id, PKT, 0.0))
        for _ in range(12):
            order_a.append(hybrid.dequeue().flow_id)
            order_b.append(wfq.dequeue().flow_id)
        assert order_a == order_b
