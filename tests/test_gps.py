"""Fluid GPS reference simulator."""

import pytest

from repro.analysis.gps import GPSArrival, gps_finish_times
from repro.errors import ConfigurationError


class TestSingleFlow:
    def test_one_packet(self):
        finishes = gps_finish_times([(0.0, 1, 1000.0)], {1: 1.0}, rate=1000.0)
        assert finishes[0].finish == pytest.approx(1.0)

    def test_back_to_back_packets(self):
        arrivals = [(0.0, 1, 500.0), (0.0, 1, 500.0)]
        finishes = gps_finish_times(arrivals, {1: 1.0}, rate=1000.0)
        assert finishes[0].finish == pytest.approx(0.5)
        assert finishes[1].finish == pytest.approx(1.0)

    def test_idle_gap_respected(self):
        arrivals = [(0.0, 1, 500.0), (5.0, 1, 500.0)]
        finishes = gps_finish_times(arrivals, {1: 1.0}, rate=1000.0)
        assert finishes[0].finish == pytest.approx(0.5)
        assert finishes[1].finish == pytest.approx(5.5)

    def test_lone_flow_gets_full_rate_regardless_of_weight(self):
        slow = gps_finish_times([(0.0, 1, 1000.0)], {1: 0.01}, rate=1000.0)
        assert slow[0].finish == pytest.approx(1.0)


class TestSharing:
    def test_equal_weights_serve_simultaneously(self):
        # Two packets arriving together with equal weights: both drain at
        # R/2 and finish together at 2 * L / R.
        arrivals = [(0.0, 1, 500.0), (0.0, 2, 500.0)]
        finishes = gps_finish_times(arrivals, {1: 1.0, 2: 1.0}, rate=1000.0)
        assert finishes[0].finish == pytest.approx(1.0)
        assert finishes[1].finish == pytest.approx(1.0)

    def test_weighted_split(self):
        # Weights 3:1 -> flow 1 drains at 750, flow 2 at 250 until flow 1
        # empties at t = 1000/750; then flow 2 gets the full rate.
        arrivals = [(0.0, 1, 1000.0), (0.0, 2, 1000.0)]
        finishes = gps_finish_times(arrivals, {1: 3.0, 2: 1.0}, rate=1000.0)
        t1 = 1000.0 / 750.0
        assert finishes[0].finish == pytest.approx(t1)
        served_flow2 = 250.0 * t1
        assert finishes[1].finish == pytest.approx(t1 + (1000.0 - served_flow2) / 1000.0)

    def test_service_proportional_over_constant_backlog(self):
        # Saturate both flows; compare fluid finishing of equal-position
        # boundaries: flow with weight 2 crosses 2x the bytes.
        arrivals = []
        for _ in range(10):
            arrivals.append((0.0, 1, 100.0))
        for _ in range(10):
            arrivals.append((0.0, 2, 100.0))
        finishes = gps_finish_times(arrivals, {1: 2.0, 2: 1.0}, rate=300.0)
        flow1 = [f.finish for f in finishes if f.arrival.flow_id == 1]
        flow2 = [f.finish for f in finishes if f.arrival.flow_id == 2]
        # While both backlogged, flow 1 crosses boundaries twice as fast.
        assert flow1[1] == pytest.approx(flow2[0])  # 200 B @2w == 100 B @1w

    def test_late_arrival_shares_remaining_capacity(self):
        arrivals = [(0.0, 1, 1000.0), (0.5, 2, 250.0)]
        finishes = gps_finish_times(arrivals, {1: 1.0, 2: 1.0}, rate=1000.0)
        # Flow 1 alone until 0.5 (500 B served); then both at 500 B/s.
        # Flow 2 finishes its 250 B at t = 1.0; flow 1 then finishes the
        # last 250 B at full rate: 1.0 + 0.25.
        assert finishes[1].finish == pytest.approx(1.0)
        assert finishes[0].finish == pytest.approx(1.25)


class TestConservation:
    def test_total_work_conserving(self):
        arrivals = [(0.0, 1, 400.0), (0.0, 2, 400.0), (0.1, 3, 200.0)]
        finishes = gps_finish_times(
            arrivals, {1: 1.0, 2: 2.0, 3: 3.0}, rate=1000.0
        )
        # Busy period: all 1000 bytes arrive by 0.1 < busy end, so the
        # last fluid finish is exactly total bytes / rate.
        assert max(f.finish for f in finishes) == pytest.approx(1.0)

    def test_finish_never_before_arrival(self):
        arrivals = [(0.0, 1, 100.0), (0.2, 2, 300.0), (0.4, 1, 100.0)]
        finishes = gps_finish_times(arrivals, {1: 1.0, 2: 1.0}, rate=1000.0)
        for entry in finishes:
            assert entry.finish >= entry.arrival.time

    def test_per_flow_finishes_monotone(self):
        arrivals = [(0.0, 1, 300.0), (0.1, 1, 300.0), (0.2, 1, 300.0)]
        finishes = gps_finish_times(arrivals, {1: 1.0}, rate=1000.0)
        times = [f.finish for f in finishes]
        assert times == sorted(times)


class TestValidation:
    def test_unknown_flow_rejected(self):
        with pytest.raises(ConfigurationError):
            gps_finish_times([(0.0, 9, 100.0)], {1: 1.0}, rate=1000.0)

    def test_unordered_arrivals_rejected(self):
        with pytest.raises(ConfigurationError):
            gps_finish_times(
                [(1.0, 1, 100.0), (0.0, 1, 100.0)], {1: 1.0}, rate=1000.0
            )

    def test_bad_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            gps_finish_times([(0.0, 1, 100.0)], {1: 1.0}, rate=0.0)

    def test_gps_arrival_objects_accepted(self):
        finishes = gps_finish_times(
            [GPSArrival(0.0, 1, 500.0)], {1: 1.0}, rate=1000.0
        )
        assert finishes[0].finish == pytest.approx(0.5)
