"""Typed trace events: vocabulary and serialization round-trips."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.events import (
    EVENT_TYPES,
    DepartEvent,
    DropEvent,
    EnqueueEvent,
    HeadroomEvent,
    HeapCompactEvent,
    PoolEvent,
    ReprovisionEvent,
    SampleEvent,
    ThresholdCrossEvent,
    ViolationEvent,
    event_from_dict,
    event_to_dict,
)

SAMPLES = [
    EnqueueEvent(time=0.5, flow_id=3, size=500.0, backlog=7),
    DropEvent(time=1.0, flow_id=9, size=500.0, reason="threshold"),
    DepartEvent(time=2.5, flow_id=3, size=500.0, delay=0.004),
    ThresholdCrossEvent(
        time=3.0, flow_id=3, occupancy=4000.0, threshold=4000.0, direction="up"
    ),
    HeadroomEvent(time=4.0, headroom=1500.0, holes=2.0),
    HeapCompactEvent(time=5.0, removed=120, remaining=40),
    EnqueueEvent(time=6.0, flow_id=3, size=500.0, backlog=7, node="n1"),
    DropEvent(time=6.5, flow_id=9, size=500.0, reason="threshold", node="n2"),
    DepartEvent(time=7.0, flow_id=3, size=500.0, delay=0.004, node="n1"),
    ReprovisionEvent(
        time=8.0, flow_id=3, threshold=5000.0, previous=4000.0, node="n1"
    ),
    PoolEvent(
        time=8.5,
        reserved=6000.0,
        headroom=1000.0,
        holes=3000.0,
        capacity=10000.0,
        flows=2,
        node="n1",
    ),
    SampleEvent(time=9.0, series="occupancy", value=4500.0, node="n1"),
    ViolationEvent(
        time=9.5,
        check="hop-delay",
        severity="error",
        observed=0.03,
        bound=0.02,
        flow_id=3,
        node="n1",
    ),
]


class TestVocabulary:
    def test_every_event_class_registered(self):
        assert set(EVENT_TYPES) == {
            "enqueue",
            "drop",
            "depart",
            "threshold",
            "headroom",
            "compact",
            "bucket-resize",
            "reprovision",
            "pool",
            "sample",
            "violation",
        }

    def test_kind_tags_match_classes(self):
        for kind, cls in EVENT_TYPES.items():
            assert cls.kind == kind

    def test_events_are_frozen(self):
        event = SAMPLES[0]
        with pytest.raises(AttributeError):
            event.time = 99.0


class TestSerialization:
    @pytest.mark.parametrize("event", SAMPLES, ids=lambda e: type(e).kind)
    def test_round_trip(self, event):
        raw = event_to_dict(event)
        assert raw["kind"] == type(event).kind
        assert event_from_dict(raw) == event

    def test_kind_key_comes_first(self):
        raw = event_to_dict(SAMPLES[0])
        assert next(iter(raw)) == "kind"

    def test_to_dict_rejects_foreign_objects(self):
        with pytest.raises(ConfigurationError):
            event_to_dict({"kind": "enqueue"})

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            event_from_dict({"kind": "martian", "time": 0.0})

    def test_from_dict_missing_field_raises(self):
        with pytest.raises(KeyError):
            event_from_dict({"kind": "enqueue", "time": 0.0})
