"""Command-line interface (python -m repro)."""

import pathlib

import pytest

import repro.experiments.figures as figures_module
from repro.__main__ import build_parser, main
from repro.experiments.config import SweepConfig
from repro.units import mbytes

TINY = SweepConfig(buffers=(mbytes(0.5),), seeds=(1,), sim_time=0.5)


@pytest.fixture(autouse=True)
def tiny_sweeps(monkeypatch):
    monkeypatch.setattr(figures_module, "sweep_config", lambda fast=None: TINY)


class TestParser:
    def test_target_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_flags(self):
        args = build_parser().parse_args(["figure1", "--full", "--out", "x"])
        assert args.target == "figure1"
        assert args.full
        assert args.out == pathlib.Path("x")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out and "figure13" in out

    def test_unknown_target(self, capsys):
        assert main(["figure99"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_run_single_figure(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "utilization" in out

    def test_out_directory_archives(self, tmp_path, capsys):
        assert main(["figure7", "--out", str(tmp_path)]) == 0
        archived = tmp_path / "figure7.txt"
        assert archived.exists()
        assert "Figure 7" in archived.read_text()

    def test_all_runs_every_figure(self, tmp_path, capsys):
        assert main(["all", "--out", str(tmp_path)]) == 0
        archived = sorted(path.name for path in tmp_path.glob("figure*.txt"))
        assert len(archived) == 13

    def test_figure_with_cache_dir_populates_cache(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["figure1", "--cache-dir", str(cache_dir)]) == 0
        assert len(list(cache_dir.glob("*.json"))) > 0


class TestCampaignCommands:
    def test_status_on_empty_cache(self, tmp_path, capsys):
        assert main(["campaign", "status", "--cache-dir", str(tmp_path / "c")]) == 0
        out = capsys.readouterr().out
        assert "entries         : 0" in out
        assert "repro-campaign-v1" in out

    def test_status_counts_entries(self, tmp_path, capsys):
        cache_dir = tmp_path / "c"
        main(["figure1", "--cache-dir", str(cache_dir)])
        assert main(["campaign", "status", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "entries         : 0" not in out

    def test_clear_cache(self, tmp_path, capsys):
        cache_dir = tmp_path / "c"
        main(["figure1", "--cache-dir", str(cache_dir)])
        capsys.readouterr()
        assert main(["campaign", "clear-cache", "--cache-dir", str(cache_dir)]) == 0
        assert "removed" in capsys.readouterr().out
        assert list(cache_dir.glob("*.json")) == []

    def test_unknown_action_rejected(self, capsys):
        assert main(["campaign", "flush"]) == 2
        assert "unknown campaign action" in capsys.readouterr().err

    def test_run_requires_spec(self, capsys):
        assert main(["campaign", "run"]) == 2
        assert "--spec" in capsys.readouterr().err

    def test_run_executes_spec_with_cache(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(
            '{"name": "tiny", "workload": "table1", "scheme": "FIFO_NONE",'
            ' "buffer_mb": 0.5, "sim_time": 0.5, "seeds": [1, 2],'
            ' "metrics": ["utilization"]}'
        )
        cache_dir = tmp_path / "c"
        argv = [
            "campaign", "run", "--spec", str(spec),
            "--cache-dir", str(cache_dir),
            "--telemetry-dir", str(tmp_path / "telemetry"),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "tiny" in cold and "0 cached" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "2 cached" in warm and "0 executed" in warm

    def test_status_surfaces_lifetime_cache_stats(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(
            '{"name": "tiny", "workload": "table1", "scheme": "FIFO_NONE",'
            ' "buffer_mb": 0.5, "sim_time": 0.5, "seeds": [1],'
            ' "metrics": ["utilization"]}'
        )
        cache_dir = tmp_path / "c"
        argv = [
            "campaign", "run", "--spec", str(spec),
            "--cache-dir", str(cache_dir),
            "--telemetry-dir", str(tmp_path / "telemetry"),
        ]
        main(argv)
        main(argv)
        capsys.readouterr()
        assert main(["campaign", "status", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "lifetime hits   : 1" in out
        assert "lifetime misses : 1" in out
        assert "lifetime stores : 1" in out
        assert "cached bytes    : " in out

    def test_status_reports_queue_state(self, tmp_path, capsys):
        from repro.experiments.sweep import try_claim

        cache_dir = tmp_path / "c"
        cache_dir.mkdir()
        try_claim(cache_dir, "a" * 64, "w1")
        assert main(["campaign", "status", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "claimed         : 1" in out
        assert "orphaned claims : 0" in out


SWEEP_SPEC = (
    '{"schema": "repro-sweep-spec-v1", "name": "cli", "kind": "scenario",'
    ' "axes": [{"name": "scheme", "values": ["FIFO_NONE"]},'
    ' {"name": "seed", "values": [1, 2]}],'
    ' "base": {"sim_time": 0.5, "warmup": 0.1},'
    ' "metrics": ["utilization", "loss"]}'
)


class TestSweepCommands:
    def write_spec(self, tmp_path):
        spec = tmp_path / "sweep.json"
        spec.write_text(SWEEP_SPEC)
        return spec

    def argv(self, verb, spec, tmp_path, *extra):
        return [
            "campaign", "sweep", verb, "--spec", str(spec),
            "--cache-dir", str(tmp_path / "cache"),
            "--telemetry-dir", str(tmp_path / "telemetry"),
            *extra,
        ]

    def test_unknown_verb_rejected(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path)
        assert main(self.argv("harvest", spec, tmp_path)) == 2
        assert "unknown sweep verb" in capsys.readouterr().err

    def test_run_requires_spec(self, capsys):
        assert main(["campaign", "sweep", "run"]) == 2
        assert "--spec" in capsys.readouterr().err

    def test_status_before_any_work_is_incomplete(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path)
        assert main(self.argv("status", spec, tmp_path)) == 1
        out = capsys.readouterr().out
        assert "cells           : 2" in out
        assert "pending         : 2" in out

    def test_run_status_aggregate_round_trip(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path)
        assert main(self.argv("run", spec, tmp_path, "--owner", "w1")) == 0
        run_out = capsys.readouterr().out
        assert "executed        : 2" in run_out
        assert "worker          : w1" in run_out
        assert main(self.argv("status", spec, tmp_path)) == 0
        status_out = capsys.readouterr().out
        assert "completed       : 2" in status_out
        assert "pending         : 0" in status_out
        out_file = tmp_path / "agg.json"
        argv = self.argv("aggregate", spec, tmp_path, "--out", str(out_file))
        assert main(argv) == 0
        agg_out = capsys.readouterr().out
        assert "groups          : 1" in agg_out
        assert out_file.exists()

    def test_warm_rerun_executes_nothing(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path)
        main(self.argv("run", spec, tmp_path))
        capsys.readouterr()
        assert main(self.argv("run", spec, tmp_path)) == 0
        out = capsys.readouterr().out
        assert "executed        : 0" in out

    def test_aggregate_before_completion_fails(self, tmp_path, capsys):
        from repro.errors import ConfigurationError

        spec = self.write_spec(tmp_path)
        with pytest.raises(ConfigurationError, match="incomplete"):
            main(self.argv("aggregate", spec, tmp_path))

    def test_aggregate_default_path_is_digest_keyed(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path)
        main(self.argv("run", spec, tmp_path))
        assert main(self.argv("aggregate", spec, tmp_path)) == 0
        out = capsys.readouterr().out
        aggregates = list((tmp_path / "cache" / "aggregates").glob("*.json"))
        assert len(aggregates) == 1
        assert str(aggregates[0]) in out


class TestObsCommands:
    SPEC = (
        '{"name": "tiny", "workload": "table1", "scheme": "FIFO_THRESHOLD",'
        ' "buffer_mb": 0.02, "sim_time": 0.5, "seeds": [3],'
        ' "metrics": ["utilization"]}'
    )

    def write_spec(self, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(self.SPEC)
        return spec

    def test_trace_needs_exactly_one_source(self, capsys, tmp_path):
        assert main(["obs", "trace"]) == 2
        assert "--input" in capsys.readouterr().err
        spec = self.write_spec(tmp_path)
        argv = [
            "obs", "trace", "--spec", str(spec),
            "--input", str(tmp_path / "t.jsonl"),
        ]
        assert main(argv) == 2

    def test_trace_from_spec_writes_and_prints(self, tmp_path, capsys):
        import json

        spec = self.write_spec(tmp_path)
        out_path = tmp_path / "trace.jsonl"
        argv = ["obs", "trace", "--spec", str(spec), "--trace-out", str(out_path)]
        assert main(argv) == 0
        assert out_path.is_file()
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        kinds = {json.loads(line)["kind"] for line in lines}
        assert "enqueue" in kinds

    def test_trace_filters_by_flow_and_type(self, tmp_path, capsys):
        import json

        spec = self.write_spec(tmp_path)
        out_path = tmp_path / "trace.jsonl"
        main(["obs", "trace", "--spec", str(spec), "--trace-out", str(out_path)])
        capsys.readouterr()
        argv = [
            "obs", "trace", "--input", str(out_path),
            "--flow", "0", "--type", "drop",
        ]
        assert main(argv) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines, "tiny buffer must produce drops for flow 0"
        for line in lines:
            event = json.loads(line)
            assert event["kind"] == "drop"
            assert event["flow_id"] == 0

    def test_trace_time_window(self, tmp_path, capsys):
        import json

        spec = self.write_spec(tmp_path)
        out_path = tmp_path / "trace.jsonl"
        main(["obs", "trace", "--spec", str(spec), "--trace-out", str(out_path)])
        capsys.readouterr()
        argv = [
            "obs", "trace", "--input", str(out_path),
            "--since", "0.1", "--until", "0.2",
        ]
        assert main(argv) == 0
        for line in capsys.readouterr().out.strip().splitlines():
            assert 0.1 <= json.loads(line)["time"] <= 0.2

    def test_report_after_campaign_run(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path)
        telemetry_dir = tmp_path / "telemetry"
        main([
            "campaign", "run", "--spec", str(spec),
            "--cache-dir", str(tmp_path / "c"),
            "--telemetry-dir", str(telemetry_dir),
        ])
        capsys.readouterr()
        assert main(["obs", "report", "--telemetry-dir", str(telemetry_dir)]) == 0
        out = capsys.readouterr().out
        assert "jobs            : 1" in out
        assert "wall time p50" in out

    def test_report_on_empty_dir(self, tmp_path, capsys):
        argv = ["obs", "report", "--telemetry-dir", str(tmp_path / "nope")]
        assert main(argv) == 0
        assert "no telemetry found" in capsys.readouterr().out

    def test_unknown_action_rejected(self, capsys):
        assert main(["obs", "flush"]) == 2
        err = capsys.readouterr().err
        assert "unknown obs action" in err
        assert "timeline" in err and "monitor" in err

    def fabric_trace(self, tmp_path):
        """A short multi-hop trace with per-node event labels."""
        from repro.experiments.fabric import run_fabric
        from repro.experiments.fabric.demo import demo_tandem
        from repro.obs import JsonlSink

        path = tmp_path / "net-trace.jsonl"
        scenario = demo_tandem(
            hops=2, seed=0, sim_time=1.0, churn=False, delay_histograms=False
        )
        with JsonlSink(path) as sink:
            run_fabric(scenario, sink=sink)
        return path

    def test_trace_filters_by_node(self, tmp_path, capsys):
        import json

        trace = self.fabric_trace(tmp_path)
        argv = ["obs", "trace", "--input", str(trace), "--node", "n0->n1"]
        assert main(argv) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines, "first hop must carry traffic"
        assert {json.loads(line)["node"] for line in lines} == {"n0->n1"}

    def test_trace_kind_merges_with_type(self, tmp_path, capsys):
        import json

        trace = self.fabric_trace(tmp_path)
        argv = [
            "obs", "trace", "--input", str(trace),
            "--type", "enqueue", "--kind", "depart",
        ]
        assert main(argv) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        kinds = {json.loads(line)["kind"] for line in lines}
        assert kinds == {"enqueue", "depart"}


class TestObsTimelineCommands:
    def test_timeline_renders_series(self, capsys):
        argv = ["obs", "timeline", "--hops", "1", "--no-churn", "--interval", "0.5"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        # One hop, no churn: the single-port fast path, unlabelled series.
        assert "timeline: 1-hop tandem" in out
        assert "occupancy" in out
        assert "backlog_packets" in out

    def test_timeline_json_summary(self, capsys):
        import json

        from repro.obs.timeline import TIMELINE_SCHEMA

        argv = [
            "obs", "timeline", "--hops", "1", "--no-churn",
            "--interval", "0.5", "--json",
        ]
        assert main(argv) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["schema"] == TIMELINE_SCHEMA
        assert summary["ticks"] > 0
        assert "occupancy" in summary["series"]

    def test_timeline_rejects_bad_arguments(self, capsys):
        assert main(["obs", "timeline", "--hops", "0"]) == 2
        assert main(["obs", "timeline", "--interval", "0"]) == 2
        capsys.readouterr()

    def test_monitor_conformant_run_exits_zero(self, tmp_path, capsys):
        out_path = tmp_path / "timeline.jsonl"
        argv = [
            "obs", "monitor", "--hops", "1", "--no-churn",
            "--timeline-out", str(out_path),
        ]
        assert main(argv) == 0
        assert "conformance: OK" in capsys.readouterr().out
        from repro.obs.timeline import read_timeline

        header, samples = read_timeline(out_path)
        assert samples

    def test_monitor_undersized_run_exits_one(self, capsys):
        import json

        argv = ["obs", "monitor", "--hops", "1", "--undersized", "--json"]
        assert main(argv) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False
        assert any(
            v["check"] == "conformant-drop" for v in report["violations"]
        )


class TestNetCommands:
    def test_demo_attributes_churn_blocking(self, capsys):
        assert main(["net", "demo", "--hops", "1"]) == 0
        out = capsys.readouterr().out
        assert "buffer-limited" in out
        assert "unattributed" in out
