"""Command-line interface (python -m repro)."""

import pathlib

import pytest

import repro.experiments.figures as figures_module
from repro.__main__ import build_parser, main
from repro.experiments.config import SweepConfig
from repro.units import mbytes

TINY = SweepConfig(buffers=(mbytes(0.5),), seeds=(1,), sim_time=0.5)


@pytest.fixture(autouse=True)
def tiny_sweeps(monkeypatch):
    monkeypatch.setattr(figures_module, "sweep_config", lambda fast=None: TINY)


class TestParser:
    def test_target_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_flags(self):
        args = build_parser().parse_args(["figure1", "--full", "--out", "x"])
        assert args.target == "figure1"
        assert args.full
        assert args.out == pathlib.Path("x")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out and "figure13" in out

    def test_unknown_target(self, capsys):
        assert main(["figure99"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_run_single_figure(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "utilization" in out

    def test_out_directory_archives(self, tmp_path, capsys):
        assert main(["figure7", "--out", str(tmp_path)]) == 0
        archived = tmp_path / "figure7.txt"
        assert archived.exists()
        assert "Figure 7" in archived.read_text()

    def test_all_runs_every_figure(self, tmp_path, capsys):
        assert main(["all", "--out", str(tmp_path)]) == 0
        archived = sorted(path.name for path in tmp_path.glob("figure*.txt"))
        assert len(archived) == 13
