"""Buffer sharing with headroom and holes (Section 3.3)."""

import pytest

from repro.core.shared_headroom import SharedHeadroomManager
from repro.errors import ConfigurationError


def make_manager(capacity=1000.0, thresholds=None, headroom=200.0):
    if thresholds is None:
        thresholds = {0: 300.0, 1: 300.0}
    return SharedHeadroomManager(capacity, thresholds, headroom)


class TestInitialCounters:
    def test_headroom_starts_at_cap(self):
        manager = make_manager(capacity=1000.0, headroom=200.0)
        assert manager.headroom == 200.0
        assert manager.holes == 800.0

    def test_headroom_clipped_to_capacity(self):
        manager = make_manager(capacity=100.0, headroom=200.0)
        assert manager.headroom == 100.0
        assert manager.holes == 0.0

    def test_invariant_holds_initially(self):
        manager = make_manager()
        assert manager.holes + manager.headroom + manager.total_occupancy == (
            pytest.approx(manager.capacity)
        )


class TestWithinReservation:
    def test_admitted_when_buffer_has_space(self):
        manager = make_manager()
        assert manager.try_admit(0, 300.0)

    def test_never_stricter_than_fixed_partition(self):
        # An in-profile packet is admitted exactly when it fits: fill the
        # holes entirely via another flow, headroom still serves flow 0.
        manager = make_manager(capacity=1000.0, thresholds={0: 300.0, 1: 0.0},
                               headroom=300.0)
        # Flow 1 has no reservation: it may take the holes (700).
        assert manager.try_admit(1, 700.0)
        assert manager.holes == 0.0
        # Flow 0 within reservation is served from headroom.
        assert manager.try_admit(0, 300.0)
        assert manager.headroom == 0.0

    def test_dropped_when_nothing_left(self):
        manager = make_manager(capacity=1000.0, thresholds={0: 600.0, 1: 0.0},
                               headroom=300.0)
        manager.try_admit(1, 700.0)
        manager.try_admit(0, 300.0)
        assert not manager.try_admit(0, 100.0)  # within T but buffer full

    def test_holes_consumed_before_headroom(self):
        manager = make_manager(capacity=1000.0, thresholds={0: 500.0}, headroom=200.0)
        manager.try_admit(0, 300.0)
        assert manager.holes == 500.0
        assert manager.headroom == 200.0


class TestBeyondReservation:
    def test_excess_served_from_holes(self):
        manager = make_manager(capacity=1000.0, thresholds={0: 100.0}, headroom=200.0)
        manager.try_admit(0, 100.0)  # fills reservation
        assert manager.try_admit(0, 300.0)  # 300 excess <= holes (700)
        assert manager.holes == pytest.approx(400.0)
        assert manager.headroom == 200.0  # untouched

    def test_excess_capped_by_remaining_holes(self):
        # "the amount of additional buffer space that a flow can grab,
        # cannot exceed the amount of holes that are left"
        manager = make_manager(capacity=1000.0, thresholds={0: 100.0}, headroom=200.0)
        manager.try_admit(0, 100.0)
        assert manager.try_admit(0, 350.0)  # excess 350, holes 700 -> ok
        # Now holes = 350; flow's excess is 350; another 350 would make
        # excess 700 > holes 350 -> reject.
        assert not manager.try_admit(0, 350.0)

    def test_excess_never_touches_headroom(self):
        manager = make_manager(capacity=400.0, thresholds={0: 100.0}, headroom=300.0)
        manager.try_admit(0, 100.0)
        # holes = 100; a 200-byte excess packet needs 200 from holes.
        assert not manager.try_admit(0, 200.0)
        assert manager.headroom == 300.0

    def test_straddling_packet_treated_as_excess(self):
        manager = make_manager(capacity=1000.0, thresholds={0: 150.0}, headroom=200.0)
        manager.try_admit(0, 100.0)
        # occupancy 100 + 100 > T=150: above-threshold path, holes only.
        assert manager.try_admit(0, 100.0)
        assert manager.headroom == 200.0

    def test_unreserved_flow_uses_only_holes(self):
        manager = make_manager(capacity=1000.0, thresholds={}, headroom=400.0)
        assert manager.try_admit(9, 600.0)
        assert not manager.try_admit(9, 300.0)  # 900 > holes 600


class TestDepartures:
    def test_departure_refills_headroom_first(self):
        manager = make_manager(capacity=1000.0, thresholds={0: 500.0, 1: 0.0},
                               headroom=200.0)
        manager.try_admit(1, 800.0)  # holes 0, headroom 200
        manager.try_admit(0, 200.0)  # headroom -> 0
        manager.on_depart(0, 150.0)
        assert manager.headroom == 150.0
        assert manager.holes == 0.0

    def test_departure_overflow_becomes_holes(self):
        manager = make_manager(capacity=1000.0, thresholds={0: 500.0}, headroom=200.0)
        manager.try_admit(0, 500.0)  # holes 300, headroom 200
        manager.on_depart(0, 500.0)
        assert manager.headroom == 200.0  # capped at H
        assert manager.holes == 800.0

    def test_departure_with_headroom_already_at_cap_goes_to_holes(self):
        # Headroom sits exactly at H: the refill rule must route the
        # entire departure to holes without pushing headroom past cap.
        manager = make_manager(capacity=1000.0, thresholds={0: 500.0},
                               headroom=200.0)
        manager.try_admit(0, 400.0)  # holes 400, headroom 200 (at cap)
        manager.on_depart(0, 300.0)
        assert manager.headroom == 200.0
        assert manager.holes == 700.0
        assert manager.holes + manager.headroom + manager.total_occupancy == (
            pytest.approx(manager.capacity)
        )

    def test_departure_with_zero_headroom_cap_goes_to_holes(self):
        # H == 0 degenerates to complete sharing: there is no headroom
        # to refill, every departed byte becomes a hole.
        manager = SharedHeadroomManager(1000.0, {0: 500.0}, headroom=0.0)
        manager.try_admit(0, 500.0)
        manager.on_depart(0, 200.0)
        assert manager.headroom == 0.0
        assert manager.holes == 700.0
        assert manager.holes + manager.headroom + manager.total_occupancy == (
            pytest.approx(manager.capacity)
        )

    def test_departure_larger_than_headroom_deficit_splits(self):
        # Deficit below cap is 200; a 300-byte departure refills the
        # headroom to exactly H and the remaining 100 becomes holes.
        manager = make_manager(capacity=1000.0, thresholds={0: 400.0, 1: 0.0},
                               headroom=200.0)
        manager.try_admit(1, 800.0)  # holes 0, headroom 200
        manager.try_admit(0, 200.0)  # headroom 0: deficit 200
        manager.on_depart(1, 300.0)
        assert manager.headroom == 200.0
        assert manager.holes == 100.0
        assert manager.holes + manager.headroom + manager.total_occupancy == (
            pytest.approx(manager.capacity)
        )

    def test_invariant_after_mixed_operations(self):
        manager = make_manager()
        manager.try_admit(0, 250.0)
        manager.try_admit(1, 300.0)
        manager.on_depart(0, 250.0)
        manager.try_admit(1, 100.0)
        assert manager.holes + manager.headroom + manager.total_occupancy == (
            pytest.approx(manager.capacity)
        )


class TestZeroHeadroomAndValidation:
    def test_zero_headroom_means_full_sharing(self):
        manager = SharedHeadroomManager(1000.0, {0: 100.0}, headroom=0.0)
        assert manager.holes == 1000.0
        manager.try_admit(0, 100.0)
        assert manager.try_admit(0, 800.0)  # excess from holes freely

    def test_negative_headroom_rejected(self):
        with pytest.raises(ConfigurationError):
            SharedHeadroomManager(1000.0, {}, headroom=-1.0)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            SharedHeadroomManager(1000.0, {0: -5.0}, headroom=10.0)

    def test_headroom_equal_to_buffer_degenerates_to_fixed_partition(self):
        # With H >= B there are never holes, so above-threshold packets
        # are always dropped — exactly the fixed-partition behaviour.
        manager = SharedHeadroomManager(500.0, {0: 100.0}, headroom=500.0)
        assert manager.try_admit(0, 100.0)
        assert not manager.try_admit(0, 100.0)
