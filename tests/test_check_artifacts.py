"""Artifact schema audits (RPR205): drift, tampering, stream formats."""

import json
import pathlib

from repro.bench.baseline import BENCH_SCHEMA
from repro.check.artifacts import (
    GOLDENS_SCHEMA,
    KNOWN_SCHEMAS,
    check_artifact_file,
    schema_family,
)
from repro.experiments.sweep import (
    AGGREGATE_SCHEMA,
    CLAIM_SCHEMA,
    SHARD_SCHEMA,
    SWEEP_SPEC_SCHEMA,
    SweepSpec,
    try_claim,
)
from repro.obs.events import TRACE_SCHEMA
from repro.obs.telemetry import TELEMETRY_SCHEMA
from repro.obs.timeline import TIMELINE_SCHEMA, Timeline

BASELINE = pathlib.Path("benchmarks/baselines/BENCH_ci-reference.json")
GOLDENS = pathlib.Path("tests/data/equivalence_goldens.json")


def codes(findings):
    return [finding.rule_id for finding in findings]


class TestSchemaFamily:
    def test_versioned_tags_split_on_suffix(self):
        assert schema_family("repro-bench-v1") == "repro-bench"
        assert schema_family("repro-campaign-net-v3") == "repro-campaign-net"

    def test_unversioned_tags_have_no_family(self):
        assert schema_family("repro-bench") == ""
        assert schema_family("repro-bench-vNaN") == ""

    def test_every_known_tag_maps_back_to_its_family(self):
        for family, tag in KNOWN_SCHEMAS.items():
            assert schema_family(tag) == family


class TestCommittedArtifacts:
    def test_reference_baseline_is_current(self):
        assert check_artifact_file(BASELINE) == []

    def test_equivalence_goldens_are_current(self):
        assert check_artifact_file(GOLDENS) == []


class TestJsonArtifacts:
    def test_stale_schema_version_is_drift(self, tmp_path):
        target = tmp_path / "old.json"
        target.write_text(json.dumps({"schema": "repro-bench-v0"}), encoding="utf-8")
        findings = check_artifact_file(target)
        assert codes(findings) == ["RPR205"]
        assert "drift" in findings[0].message

    def test_unknown_schema_family(self, tmp_path):
        target = tmp_path / "alien.json"
        target.write_text(json.dumps({"schema": "other-tool-v1"}), encoding="utf-8")
        findings = check_artifact_file(target)
        assert codes(findings) == ["RPR205"]
        assert "unknown artifact schema family" in findings[0].message

    def test_missing_schema_tag(self, tmp_path):
        target = tmp_path / "untagged.json"
        target.write_text(json.dumps({"results": []}), encoding="utf-8")
        assert codes(check_artifact_file(target)) == ["RPR205"]

    def test_tampered_baseline_fails_integrity(self, tmp_path):
        raw = json.loads(BASELINE.read_text(encoding="utf-8"))
        case = next(iter(raw["cases"]))
        raw["cases"][case]["events"] = raw["cases"][case]["events"] + 1
        target = tmp_path / "BENCH_tampered.json"
        target.write_text(json.dumps(raw), encoding="utf-8")
        findings = check_artifact_file(target)
        assert codes(findings) == ["RPR205"]
        assert "baseline rejected" in findings[0].message

    def test_non_object_artifact(self, tmp_path):
        target = tmp_path / "list.json"
        target.write_text("[1, 2]", encoding="utf-8")
        assert codes(check_artifact_file(target)) == ["RPR205"]

    def test_goldens_tag_matches_equivalence_test_pin(self):
        assert json.loads(GOLDENS.read_text(encoding="utf-8"))["schema"] == GOLDENS_SCHEMA


class TestJsonlArtifacts:
    def test_current_trace_header_is_clean(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        target.write_text(
            json.dumps({"schema": TRACE_SCHEMA})
            + "\n"
            + json.dumps({"kind": "enqueue", "t": 0.1})
            + "\n",
            encoding="utf-8",
        )
        assert check_artifact_file(target) == []

    def test_stale_trace_header_is_drift(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        target.write_text(json.dumps({"schema": "repro-trace-v1"}) + "\n", encoding="utf-8")
        findings = check_artifact_file(target)
        assert codes(findings) == ["RPR205"]
        assert TRACE_SCHEMA in findings[0].message

    def test_untagged_first_line_is_flagged(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        target.write_text(json.dumps({"kind": "enqueue"}) + "\n", encoding="utf-8")
        assert codes(check_artifact_file(target)) == ["RPR205"]

    def test_telemetry_checks_every_line(self, tmp_path):
        target = tmp_path / "telemetry.jsonl"
        lines = [
            {"schema": TELEMETRY_SCHEMA, "wall_time": 0.2},
            {"schema": "repro-telemetry-v9", "wall_time": 0.3},
        ]
        target.write_text(
            "".join(json.dumps(line) + "\n" for line in lines), encoding="utf-8"
        )
        findings = check_artifact_file(target)
        assert codes(findings) == ["RPR205"]
        assert "inconsistent" in findings[0].message

    def test_unparsable_line_is_flagged(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        target.write_text("{broken\n", encoding="utf-8")
        assert codes(check_artifact_file(target)) == ["RPR205"]

    def test_bench_tag_constant_matches_registry(self):
        assert KNOWN_SCHEMAS["repro-bench"] == BENCH_SCHEMA


SWEEP_SPEC_DICT = {
    "schema": SWEEP_SPEC_SCHEMA,
    "name": "audit",
    "kind": "scenario",
    "axes": [
        {"name": "scheme", "values": ["FIFO_NONE"]},
        {"name": "seed", "values": [1, 2]},
    ],
    "constraints": [],
    "base": {"sim_time": 0.5, "warmup": 0.1},
    "metrics": ["utilization", "loss"],
}


class TestSweepArtifacts:
    def test_sweep_tags_are_registered(self):
        assert KNOWN_SCHEMAS["repro-sweep"] == AGGREGATE_SCHEMA
        assert KNOWN_SCHEMAS["repro-sweep-spec"] == SWEEP_SPEC_SCHEMA
        assert KNOWN_SCHEMAS["repro-sweep-shard"] == SHARD_SCHEMA
        assert KNOWN_SCHEMAS["repro-claim"] == CLAIM_SCHEMA

    def test_committed_ci_grid_is_clean(self):
        assert check_artifact_file(pathlib.Path("examples/sweeps/ci_grid.json")) == []

    def test_valid_spec_round_trips_clean(self, tmp_path):
        target = tmp_path / "sweep.json"
        target.write_text(json.dumps(SWEEP_SPEC_DICT), encoding="utf-8")
        assert check_artifact_file(target) == []

    def test_malformed_spec_is_rejected(self, tmp_path):
        raw = dict(SWEEP_SPEC_DICT, axes=[{"name": "scheme", "values": ["BOGUS"]}])
        target = tmp_path / "sweep.json"
        target.write_text(json.dumps(raw), encoding="utf-8")
        findings = check_artifact_file(target)
        assert codes(findings) == ["RPR205"]
        assert "sweep spec rejected" in findings[0].message

    def test_aggregate_with_matching_digest_is_clean(self, tmp_path):
        spec = SweepSpec.from_dict(SWEEP_SPEC_DICT)
        aggregate = {
            "schema": AGGREGATE_SCHEMA,
            "name": spec.name,
            "kind": spec.kind,
            "sweep_digest": spec.digest(),
            "sweep": spec.to_dict(),
            "cells": 2,
            "groups": [],
        }
        target = tmp_path / "agg.json"
        target.write_text(json.dumps(aggregate), encoding="utf-8")
        assert check_artifact_file(target) == []

    def test_aggregate_digest_mismatch_is_drift(self, tmp_path):
        spec = SweepSpec.from_dict(SWEEP_SPEC_DICT)
        aggregate = {
            "schema": AGGREGATE_SCHEMA,
            "sweep_digest": "f" * 64,
            "sweep": spec.to_dict(),
            "cells": 2,
            "groups": [],
        }
        target = tmp_path / "agg.json"
        target.write_text(json.dumps(aggregate), encoding="utf-8")
        findings = check_artifact_file(target)
        assert codes(findings) == ["RPR205"]
        assert "digest mismatch" in findings[0].message

    def test_aggregate_without_embedded_spec_is_flagged(self, tmp_path):
        target = tmp_path / "agg.json"
        target.write_text(
            json.dumps({"schema": AGGREGATE_SCHEMA, "groups": []}),
            encoding="utf-8",
        )
        findings = check_artifact_file(target)
        assert codes(findings) == ["RPR205"]
        assert "embedded sweep spec" in findings[0].message

    def test_shard_lines_are_checked_individually(self, tmp_path):
        target = tmp_path / "shard.jsonl"
        lines = [
            {"schema": SHARD_SCHEMA, "digest": "a" * 64, "metrics": {}},
            {"schema": "repro-sweep-shard-v9", "digest": "b" * 64},
        ]
        target.write_text(
            "".join(json.dumps(line) + "\n" for line in lines), encoding="utf-8"
        )
        findings = check_artifact_file(target)
        assert codes(findings) == ["RPR205"]
        assert "inconsistent" in findings[0].message

    def test_live_claim_file_is_clean(self, tmp_path):
        digest = "a" * 64
        path = try_claim(tmp_path, digest, "auditor")
        assert check_artifact_file(path) == []

    def test_claim_digest_mismatch_is_flagged(self, tmp_path):
        target = tmp_path / ("b" * 64 + ".claim")
        target.write_text(
            json.dumps({"schema": CLAIM_SCHEMA, "digest": "a" * 64, "owner": "x"}),
            encoding="utf-8",
        )
        findings = check_artifact_file(target)
        assert codes(findings) == ["RPR205"]
        assert "claim digest mismatch" in findings[0].message

    def test_stale_claim_schema_is_drift(self, tmp_path):
        target = tmp_path / ("c" * 64 + ".claim")
        target.write_text(
            json.dumps({"schema": "repro-claim-v0", "digest": "c" * 64}),
            encoding="utf-8",
        )
        assert codes(check_artifact_file(target)) == ["RPR205"]

    def test_corrupt_claim_is_flagged(self, tmp_path):
        target = tmp_path / ("d" * 64 + ".claim")
        target.write_text("{torn", encoding="utf-8")
        findings = check_artifact_file(target)
        assert codes(findings) == ["RPR205"]
        assert "not valid JSON" in findings[0].message

    def test_timeline_tag_constant_matches_registry(self):
        assert KNOWN_SCHEMAS["repro-timeline"] == TIMELINE_SCHEMA

    def test_written_timeline_export_is_clean(self, tmp_path):
        timeline = Timeline(interval=0.5)
        box = {"v": 0.0}
        timeline.probe("occupancy", lambda: box["v"])
        timeline.sample_now(0.5)
        timeline.sample_now(1.0)
        target = tmp_path / "timeline.jsonl"
        timeline.write_jsonl(target)
        assert check_artifact_file(target) == []

    def test_stale_timeline_header_is_drift(self, tmp_path):
        target = tmp_path / "timeline.jsonl"
        target.write_text(
            json.dumps({"kind": "header", "schema": "repro-timeline-v0"}) + "\n",
            encoding="utf-8",
        )
        findings = check_artifact_file(target)
        assert codes(findings) == ["RPR205"]
        assert "drift" in findings[0].message
        assert TIMELINE_SCHEMA in findings[0].message
