"""Replication statistics (mean ± 95% CI)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.metrics.stats import MeanCI, mean_ci, replicate


class TestMeanCI:
    def test_mean_of_samples(self):
        result = mean_ci([1.0, 2.0, 3.0])
        assert result.mean == pytest.approx(2.0)
        assert result.n == 3

    def test_single_sample_has_zero_halfwidth(self):
        result = mean_ci([5.0])
        assert result.mean == 5.0
        assert result.halfwidth == 0.0

    def test_identical_samples_have_zero_halfwidth(self):
        assert mean_ci([4.0, 4.0, 4.0]).halfwidth == pytest.approx(0.0)

    def test_known_t_interval(self):
        # n=2, samples 0 and 2: mean 1, s=sqrt(2), se=1, t_{0.975,1}=12.706.
        result = mean_ci([0.0, 2.0])
        assert result.mean == 1.0
        assert result.halfwidth == pytest.approx(12.706, rel=1e-3)

    def test_interval_narrows_with_more_samples(self):
        narrow = mean_ci([0.0, 2.0] * 10)
        wide = mean_ci([0.0, 2.0])
        assert narrow.halfwidth < wide.halfwidth

    def test_higher_confidence_is_wider(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert mean_ci(samples, confidence=0.99).halfwidth > mean_ci(
            samples, confidence=0.9
        ).halfwidth

    def test_bounds(self):
        result = mean_ci([1.0, 3.0, 5.0])
        assert result.low == pytest.approx(result.mean - result.halfwidth)
        assert result.high == pytest.approx(result.mean + result.halfwidth)

    def test_relative_halfwidth(self):
        result = MeanCI(mean=10.0, halfwidth=0.5, n=5)
        assert result.relative_halfwidth == pytest.approx(0.05)

    def test_relative_halfwidth_zero_mean(self):
        assert MeanCI(0.0, 1.0, 3).relative_halfwidth == math.inf
        assert MeanCI(0.0, 0.0, 3).relative_halfwidth == 0.0

    def test_str_mentions_n(self):
        assert "n=3" in str(mean_ci([1.0, 2.0, 3.0]))


class TestValidation:
    def test_empty_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_ci([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_ci([1.0], confidence=1.0)
        with pytest.raises(ConfigurationError):
            mean_ci([1.0], confidence=0.0)


class TestReplicate:
    def test_runs_once_per_seed(self):
        seen = []

        def run(seed):
            seen.append(seed)
            return float(seed)

        result = replicate(run, seeds=[1, 2, 3])
        assert seen == [1, 2, 3]
        assert result.mean == pytest.approx(2.0)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ConfigurationError):
            replicate(lambda seed: 0.0, seeds=[])
