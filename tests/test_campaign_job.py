"""ScenarioJob: digest stability, serialization, validation."""

import json
import pickle

import pytest

from repro.errors import ConfigurationError
from repro.experiments.campaign import CAMPAIGN_SCHEMA, ScenarioJob
from repro.experiments.schemes import Scheme
from repro.experiments.workloads import CASE1_GROUPS, table1_flows
from repro.units import mbytes

FLOWS = table1_flows()

# A pinned digest for a fully-pinned job.  If this test starts failing,
# either a job field changed meaning (bump CAMPAIGN_SCHEMA!) or digesting
# became platform-dependent (a bug: the cache must be shareable).
PINNED_JOB = dict(
    flows=FLOWS,
    scheme=Scheme.FIFO_THRESHOLD,
    buffer_size=mbytes(1),
    sim_time=2.0,
    warmup=0.25,
    seed=7,
)


def make_job(**overrides):
    kwargs = dict(PINNED_JOB)
    kwargs.update(overrides)
    return ScenarioJob(**kwargs)


class TestDigest:
    def test_digest_is_stable_across_instances(self):
        assert make_job().digest() == make_job().digest()

    def test_digest_is_hex_sha256(self):
        digest = make_job().digest()
        assert len(digest) == 64
        int(digest, 16)  # raises if not hex

    def test_list_and_tuple_flows_hash_equal(self):
        as_list = make_job(flows=list(FLOWS))
        as_tuple = make_job(flows=tuple(FLOWS))
        assert as_list == as_tuple
        assert as_list.digest() == as_tuple.digest()

    @pytest.mark.parametrize(
        "change",
        [
            {"scheme": Scheme.WFQ_THRESHOLD},
            {"buffer_size": mbytes(2)},
            {"link_rate": 7_000_000.0},
            {"sim_time": 3.0},
            {"warmup": 0.5},
            {"warmup": None},
            {"seed": 8},
            {"headroom": mbytes(1)},
            {"groups": CASE1_GROUPS},
            {"packet_size": 256.0},
            {"delay_histograms": True},
            {"max_events": 1_000_000},
            {"flows": FLOWS[:-1]},
        ],
    )
    def test_any_field_change_changes_digest(self, change):
        assert make_job(**change).digest() != make_job().digest()

    def test_schema_tag_participates(self):
        assert make_job().to_dict()["schema"] == CAMPAIGN_SCHEMA


class TestRoundTrips:
    def test_json_round_trip_preserves_job_and_digest(self):
        job = make_job(groups=CASE1_GROUPS, delay_histograms=True)
        rebuilt = ScenarioJob.from_dict(json.loads(json.dumps(job.to_dict())))
        assert rebuilt == job
        assert rebuilt.digest() == job.digest()

    def test_pickle_round_trip_preserves_job_and_digest(self):
        job = make_job(max_events=500_000)
        rebuilt = pickle.loads(pickle.dumps(job))
        assert rebuilt == job
        assert rebuilt.digest() == job.digest()

    def test_from_dict_rejects_wrong_schema(self):
        raw = make_job().to_dict()
        raw["schema"] = "repro-campaign-v0"
        with pytest.raises(ConfigurationError):
            ScenarioJob.from_dict(raw)

    def test_from_dict_rejects_unknown_scheme(self):
        raw = make_job().to_dict()
        raw["scheme"] = "QUANTUM_FAIRNESS"
        with pytest.raises(ConfigurationError):
            ScenarioJob.from_dict(raw)

    def test_job_is_hashable(self):
        assert len({make_job(), make_job(), make_job(seed=9)}) == 2


class TestValidation:
    def test_empty_flows_rejected(self):
        with pytest.raises(ConfigurationError):
            make_job(flows=())

    def test_non_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            make_job(scheme="FIFO_THRESHOLD")

    @pytest.mark.parametrize("field,value", [
        ("buffer_size", 0.0),
        ("link_rate", -1.0),
        ("sim_time", 0.0),
        ("warmup", 2.0),   # == sim_time
        ("max_events", 0),
    ])
    def test_bad_numeric_field_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            make_job(**{field: value})

    def test_for_scenario_rejects_unknown_kwargs(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            ScenarioJob.for_scenario(
                FLOWS, Scheme.FIFO_NONE, mbytes(1), sim_tiem=1.0
            )

    def test_for_scenario_matches_direct_construction(self):
        built = ScenarioJob.for_scenario(
            FLOWS, Scheme.FIFO_THRESHOLD, mbytes(1),
            sim_time=2.0, warmup=0.25, seed=7,
        )
        assert built == make_job()


class TestScenarioKwargs:
    def test_kwargs_cover_every_runner_parameter(self):
        kwargs = make_job(groups=CASE1_GROUPS).scenario_kwargs()
        assert kwargs["seed"] == 7
        assert kwargs["groups"] == CASE1_GROUPS
        assert set(kwargs) == {
            "link_rate", "sim_time", "warmup", "seed", "headroom",
            "groups", "packet_size", "delay_histograms", "max_events",
            "equeue",
        }
