"""The ``repro check`` CLI: classification, exit codes, repo gate."""

import json

import pytest

from repro.check.cli import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    check_paths,
    failing,
    main,
)
from repro.lint.findings import LintUsageError

REPO_TARGETS = [
    "examples/specs",
    "benchmarks/baselines",
    "tests/data/equivalence_goldens.json",
]


class TestRepoGate:
    def test_repo_specs_and_artifacts_audit_clean(self):
        """Tier-1 gate: the repo's own files carry no invariant findings."""
        findings = check_paths(REPO_TARGETS)
        assert [f for f in findings if f.severity == "error"] == []
        assert failing(findings) == []

    def test_cli_exits_clean_on_repo_files(self, capsys):
        assert main(REPO_TARGETS) == EXIT_CLEAN
        assert "clean" in capsys.readouterr().out


class TestExitCodes:
    def test_no_paths_is_usage_error(self, capsys):
        assert main([]) == EXIT_ERROR
        assert "no paths" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["does/not/exist.json"]) == EXIT_ERROR
        assert "no such file" in capsys.readouterr().err

    def test_error_finding_exits_one(self, tmp_path, capsys):
        target = tmp_path / "stale.json"
        target.write_text(json.dumps({"schema": "repro-bench-v0"}), encoding="utf-8")
        assert main([str(target)]) == EXIT_FINDINGS
        assert "RPR205" in capsys.readouterr().out

    def test_warning_alone_exits_clean_unless_strict(self, tmp_path, capsys):
        spec = {
            "name": "tight",
            "workload": "table1",
            "scheme": "FIFO_THRESHOLD",
            "buffer_mb": 0.02,
            "sim_time": 1.0,
            "seeds": [1],
            "metrics": ["utilization"],
        }
        target = tmp_path / "tight.json"
        target.write_text(json.dumps(spec), encoding="utf-8")
        assert main([str(target)]) == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "RPR201" in out and "warning" in out
        assert main(["--strict", str(target)]) == EXIT_FINDINGS

    def test_unrecognized_explicit_file_is_rpr203(self, tmp_path, capsys):
        target = tmp_path / "mystery.json"
        target.write_text(json.dumps({"stuff": 1}), encoding="utf-8")
        assert main([str(target)]) == EXIT_FINDINGS
        assert "RPR203" in capsys.readouterr().out

    def test_unrecognized_file_in_directory_is_skipped(self, tmp_path, capsys):
        (tmp_path / "mystery.json").write_text(json.dumps({"stuff": 1}), encoding="utf-8")
        assert main([str(tmp_path)]) == EXIT_CLEAN


class TestOutputs:
    def test_json_format_parses(self, tmp_path, capsys):
        target = tmp_path / "stale.json"
        target.write_text(json.dumps({"schema": "repro-trace-v1"}), encoding="utf-8")
        assert main(["--format", "json", str(target)]) == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "RPR205"

    def test_list_invariants_prints_catalog(self, capsys):
        assert main(["--list-invariants"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for code in ("RPR201", "RPR202", "RPR203", "RPR204", "RPR205", "RPR206"):
            assert code in out

    def test_help_exits_zero(self, capsys):
        assert main(["--help"]) == 0
        assert "invariant" in capsys.readouterr().out.lower()


class TestLibraryEntryPoint:
    def test_empty_directory_raises_usage(self, tmp_path):
        with pytest.raises(LintUsageError):
            check_paths([str(tmp_path)])

    def test_directory_discovery_recurses_and_dedups(self, tmp_path):
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        target = nested / "stale.json"
        target.write_text(json.dumps({"schema": "repro-bench-v0"}), encoding="utf-8")
        findings = check_paths([str(tmp_path), str(target)])
        assert [finding.rule_id for finding in findings] == ["RPR205"]

    def test_module_entrypoint_delegates(self, tmp_path):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "check", "--list-invariants"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0
        assert "RPR204" in result.stdout
