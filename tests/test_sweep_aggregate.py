"""Streaming aggregation: shards, torn lines, byte-identical folds."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.campaign.cache import ResultCache
from repro.experiments.campaign.runner import execute_job
from repro.experiments.sweep import (
    AGGREGATE_SCHEMA,
    SHARD_SCHEMA,
    SweepAxis,
    SweepSpec,
    aggregate_sweep,
    append_shard_row,
    default_aggregate_path,
    metric_row,
    read_shard_index,
    run_sweep_worker,
    shard_dir,
    shard_path,
    write_aggregate,
)

FAST = {"sim_time": 0.5, "warmup": 0.1}


def small_spec(**overrides):
    kwargs = dict(
        name="agg",
        axes=(
            SweepAxis("scheme", ("FIFO_NONE", "FIFO_THRESHOLD")),
            SweepAxis("seed", (1, 2)),
        ),
        base=FAST,
        metrics=("utilization", "loss"),
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


def run_serial(spec, root):
    cache = ResultCache(root)
    for _params, job in spec.jobs():
        record = cache.get(job.digest())
        if record is None:
            cache.put(execute_job(job))
    return cache


class TestMetricRow:
    def test_scenario_row_uses_declared_metrics(self):
        spec = small_spec()
        params, job = next(iter(spec.jobs()))
        record = execute_job(job)
        row = metric_row(spec, params, record)
        assert set(row) == {"utilization", "loss"}
        assert all(isinstance(v, float) for v in row.values())

    def test_network_row_uses_fixed_extractors(self):
        spec = SweepSpec(
            name="net",
            kind="network",
            axes=(SweepAxis("seed", (1,)),),
            base={"hops": 1, "sim_time": 0.5, "delay_histograms": False},
            metrics=("delivered", "blocking", "events"),
        )
        params, job = next(iter(spec.jobs()))
        record = execute_job(job)
        row = metric_row(spec, params, record)
        assert set(row) == {"delivered", "blocking", "events"}
        assert row["events"] > 0


class TestShardIO:
    def test_append_then_read_round_trip(self, tmp_path):
        spec = small_spec()
        path = append_shard_row(
            tmp_path, spec.digest(), "w1", "d" * 64,
            {"seed": 1}, {"utilization": 42.0},
        )
        assert path == shard_path(tmp_path, spec.digest(), "w1")
        assert path.parent == shard_dir(tmp_path)
        index = read_shard_index(tmp_path, spec.digest())
        assert index == {"d" * 64: {"utilization": 42.0}}
        line = json.loads(path.read_text().splitlines()[0])
        assert line["schema"] == SHARD_SCHEMA

    def test_owner_name_is_sanitized(self, tmp_path):
        path = shard_path(tmp_path, "a" * 64, "host/with:odd chars")
        assert "/" not in path.name and ":" not in path.name

    def test_torn_final_line_is_skipped(self, tmp_path):
        digest = small_spec().digest()
        path = append_shard_row(
            tmp_path, digest, "w1", "a" * 64, {"seed": 1}, {"m": 1.0}
        )
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": "repro-sweep-shard-v1", "dig')  # SIGKILL
        index = read_shard_index(tmp_path, digest)
        assert index == {"a" * 64: {"m": 1.0}}

    def test_foreign_sweeps_and_schemas_are_ignored(self, tmp_path):
        digest = small_spec().digest()
        append_shard_row(tmp_path, digest, "w1", "a" * 64, {}, {"m": 1.0})
        # A row from a different sweep whose file-name prefix collides.
        path = shard_path(tmp_path, digest, "w2")
        foreign = {
            "schema": SHARD_SCHEMA,
            "sweep": "f" * 64,
            "digest": "b" * 64,
            "params": {},
            "metrics": {"m": 9.0},
        }
        alien = {"schema": "other-v1", "digest": "c" * 64, "metrics": {}}
        path.write_text(
            json.dumps(foreign) + "\n" + json.dumps(alien) + "\n"
        )
        index = read_shard_index(tmp_path, digest)
        assert set(index) == {"a" * 64}

    def test_duplicate_digests_collapse(self, tmp_path):
        digest = small_spec().digest()
        for owner in ("w1", "w2"):
            append_shard_row(
                tmp_path, digest, owner, "a" * 64, {"seed": 1}, {"m": 2.5}
            )
        assert read_shard_index(tmp_path, digest) == {"a" * 64: {"m": 2.5}}

    def test_missing_shard_dir_is_empty_index(self, tmp_path):
        assert read_shard_index(tmp_path, "a" * 64) == {}


class TestAggregate:
    def test_incomplete_sweep_raises(self, tmp_path):
        spec = small_spec()
        with pytest.raises(ConfigurationError, match="incomplete"):
            aggregate_sweep(spec, ResultCache(tmp_path))

    def test_aggregate_shape_and_grouping(self, tmp_path):
        spec = small_spec()
        cache = run_serial(spec, tmp_path)
        aggregate = aggregate_sweep(spec, cache)
        assert aggregate["schema"] == AGGREGATE_SCHEMA
        assert aggregate["sweep_digest"] == spec.digest()
        assert aggregate["cells"] == 4
        assert len(aggregate["groups"]) == 2  # seed folded out
        for group in aggregate["groups"]:
            assert group["seeds"] == [1, 2]
            for metric in ("utilization", "loss"):
                cell = group["metrics"][metric]
                assert cell["n"] == 2
                assert cell["halfwidth"] >= 0.0

    def test_cache_replay_equals_shard_fed_aggregate(self, tmp_path):
        spec = small_spec()
        cache = ResultCache(tmp_path / "queue")
        run_sweep_worker(spec, cache, "w1", heartbeat_timeout=30.0)
        via_shards = aggregate_sweep(spec, cache)
        # Destroy the shards: aggregation must rebuild the identical
        # rows from the cached records alone (pure cache replay).
        for path in shard_dir(cache.root).glob("*.jsonl"):
            path.unlink()
        via_cache = aggregate_sweep(spec, cache)
        serial = aggregate_sweep(spec, run_serial(spec, tmp_path / "serial"))
        dumps = lambda agg: json.dumps(agg, sort_keys=True)
        assert dumps(via_shards) == dumps(via_cache) == dumps(serial)

    def test_shard_row_missing_metric_is_fatal(self, tmp_path):
        spec = small_spec()
        cache = run_serial(spec, tmp_path)
        [(params, job)] = list(spec.jobs())[:1]
        append_shard_row(
            cache.root, spec.digest(), "w1", job.digest(), params, {"loss": 0.0}
        )
        with pytest.raises(ConfigurationError, match="lacks metric"):
            aggregate_sweep(spec, cache)

    def test_write_aggregate_is_canonical_and_atomic(self, tmp_path):
        spec = small_spec()
        cache = run_serial(spec, tmp_path)
        aggregate = aggregate_sweep(spec, cache)
        out = default_aggregate_path(cache.root, spec)
        assert write_aggregate(aggregate, out) == out
        first = out.read_bytes()
        assert first.endswith(b"\n")
        write_aggregate(aggregate_sweep(spec, cache), out)
        assert out.read_bytes() == first
        assert not list(out.parent.glob("*.tmp.*"))

    def test_default_path_is_digest_keyed(self, tmp_path):
        spec = small_spec()
        path = default_aggregate_path(tmp_path, spec)
        assert path.name == f"{spec.digest()}.json"
        assert path.parent.name == "aggregates"
