"""Multi-node topology: routing, forwarding, delivery accounting."""

import pytest

from repro.core.tail_drop import TailDropManager
from repro.errors import ConfigurationError
from repro.metrics.collector import StatsCollector
from repro.net.topology import Network, per_hop_sigma
from repro.sched.fifo import FIFOScheduler
from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.traffic.sources import CBRSource

RATE = 100_000.0


def two_hop_network():
    sim = Simulator()
    net = Network(sim)
    for name in ("a", "b", "c"):
        net.add_node(name)
    net.add_link("a", "b", RATE, FIFOScheduler(), TailDropManager(50_000.0))
    net.add_link("b", "c", RATE, FIFOScheduler(), TailDropManager(50_000.0))
    net.set_route(1, ["a", "b", "c"])
    return sim, net


class TestForwarding:
    def test_packet_traverses_both_hops(self):
        sim, net = two_hop_network()
        net.entry(1).receive(Packet(1, 500.0, 0.0))
        sim.run()
        assert net.sink.packets[1] == 1
        assert net.sink.bytes[1] == 500.0

    def test_end_to_end_delay_sums_hop_delays(self):
        sim, net = two_hop_network()
        net.entry(1).receive(Packet(1, 500.0, 0.0))
        sim.run()
        # Two transmission times, no queueing: 2 * 500/100000.
        assert net.sink.mean_delay(1) == pytest.approx(0.01)

    def test_cbr_rate_preserved_through_hops(self):
        sim, net = two_hop_network()
        CBRSource(sim, 1, 20_000.0, net.entry(1), packet_size=500.0, until=10.0)
        sim.run(until=11.0)
        assert net.sink.throughput(1, 10.0) == pytest.approx(20_000.0, rel=0.02)

    def test_flow_ending_mid_network(self):
        sim, net = two_hop_network()
        net.set_route(2, ["a", "b"])  # delivered at b
        net.entry(2).receive(Packet(2, 500.0, 0.0))
        sim.run()
        assert net.sink.packets[2] == 1

    def test_congested_first_hop_limits_delivery_rate(self):
        # First hop at half rate: while the source is active, deliveries
        # cannot exceed the bottleneck rate; once it stops, the backlog
        # drains and everything is eventually delivered (conservation).
        sim = Simulator()
        net = Network(sim)
        for name in ("a", "b", "c"):
            net.add_node(name)
        net.add_link("a", "b", RATE / 2, FIFOScheduler(), TailDropManager(1e9))
        net.add_link("b", "c", RATE, FIFOScheduler(), TailDropManager(1e9))
        net.set_route(1, ["a", "b", "c"])
        source = CBRSource(sim, 1, RATE, net.entry(1), packet_size=500.0,
                           until=10.0)
        sim.run(until=10.0)
        assert net.sink.bytes[1] <= RATE / 2 * 10.0 + 1000.0
        sim.run()  # drain
        assert net.sink.bytes[1] == pytest.approx(source.emitted_bytes)


class TestSharedLinkContention:
    def build_diamond(self, per_flow_rate):
        # a --\
        #      c --> d     flows 1 (a-c-d) and 2 (b-c-d) merge at c.
        # b --/
        sim = Simulator()
        net = Network(sim)
        for name in ("a", "b", "c", "d"):
            net.add_node(name)
        net.add_link("a", "c", RATE, FIFOScheduler(), TailDropManager(50_000.0))
        net.add_link("b", "c", RATE, FIFOScheduler(), TailDropManager(50_000.0))
        collector = StatsCollector()
        net.add_link("c", "d", RATE, FIFOScheduler(), TailDropManager(20_000.0),
                     collector=collector)
        net.set_route(1, ["a", "c", "d"])
        net.set_route(2, ["b", "c", "d"])
        CBRSource(sim, 1, per_flow_rate, net.entry(1), packet_size=500.0,
                  until=10.0)
        CBRSource(sim, 2, per_flow_rate, net.entry(2), packet_size=500.0,
                  until=10.0)
        sim.run(until=12.0)
        return net, collector

    def test_underloaded_merge_is_lossless(self):
        net, collector = self.build_diamond(per_flow_rate=0.4 * RATE)
        for flow_id in (1, 2):
            assert collector.flows[flow_id].dropped_packets == 0
            assert net.sink.packets[flow_id] > 0

    def test_overloaded_merge_drops_at_the_shared_link(self):
        net, collector = self.build_diamond(per_flow_rate=0.7 * RATE)
        total_drops = sum(
            collector.flows[flow_id].dropped_packets for flow_id in (1, 2)
        )
        assert total_drops > 0
        delivered = net.sink.bytes[1] + net.sink.bytes[2]
        # The shared link caps aggregate delivery near its rate.
        assert delivered <= RATE * 10.0 + 25_000.0


class TestRoutingValidation:
    def test_unknown_flow_at_node_raises(self):
        sim, net = two_hop_network()
        with pytest.raises(ConfigurationError):
            net.nodes["a"].receive(Packet(99, 500.0, 0.0))

    def test_route_with_missing_link_rejected(self):
        sim, net = two_hop_network()
        with pytest.raises(ConfigurationError):
            net.set_route(3, ["a", "c"])  # no a->c link

    def test_looping_route_rejected(self):
        sim, net = two_hop_network()
        with pytest.raises(ConfigurationError):
            net.set_route(3, ["a", "b", "a"])

    def test_duplicate_node_rejected(self):
        sim, net = two_hop_network()
        with pytest.raises(ConfigurationError):
            net.add_node("a")

    def test_duplicate_link_rejected(self):
        sim, net = two_hop_network()
        with pytest.raises(ConfigurationError):
            net.add_link("a", "b", RATE, FIFOScheduler(), TailDropManager(1.0))

    def test_entry_requires_route(self):
        sim, net = two_hop_network()
        with pytest.raises(ConfigurationError):
            net.entry(42)

    def test_port_lookup(self):
        sim, net = two_hop_network()
        assert net.port("a", "b").rate == RATE
        with pytest.raises(ConfigurationError):
            net.port("c", "a")


class TestPerHopSigma:
    def test_first_hop_sees_source_sigma(self):
        assert per_hop_sigma(1000.0, 100.0, [0.5, 0.5])[0] == 1000.0

    def test_growth_by_rho_times_delay(self):
        sigmas = per_hop_sigma(1000.0, 100.0, [0.5, 0.25])
        assert sigmas[1] == pytest.approx(1000.0 + 100.0 * 0.5)

    def test_monotone_along_path(self):
        sigmas = per_hop_sigma(1000.0, 200.0, [0.1, 0.2, 0.3, 0.4])
        assert sigmas == sorted(sigmas)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            per_hop_sigma(-1.0, 100.0, [0.1])
        with pytest.raises(ConfigurationError):
            per_hop_sigma(100.0, 100.0, [-0.1])
