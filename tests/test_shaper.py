"""Leaky-bucket shaper and token-bucket meter."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.traffic.shaper import LeakyBucketShaper, TokenBucketMeter


class Recorder:
    def __init__(self, clock):
        self.clock = clock
        self.arrivals = []  # (time, size)

    def receive(self, packet):
        self.arrivals.append((self.clock(), packet.size))


def make_shaper(sigma=1000.0, rho=1000.0):
    sim = Simulator()
    sink = Recorder(lambda: sim.now)
    shaper = LeakyBucketShaper(sim, sigma, rho, sink)
    return sim, shaper, sink


class TestImmediateForwarding:
    def test_within_bucket_passes_through(self):
        sim, shaper, sink = make_shaper(sigma=1000.0)
        shaper.receive(Packet(0, 500.0, 0.0))
        assert sink.arrivals == [(0.0, 500.0)]
        assert shaper.backlog == 0

    def test_full_bucket_accepts_burst_of_sigma(self):
        sim, shaper, sink = make_shaper(sigma=1000.0)
        shaper.receive(Packet(0, 500.0, 0.0))
        shaper.receive(Packet(0, 500.0, 0.0))
        assert len(sink.arrivals) == 2


class TestDelaying:
    def test_excess_packet_delayed_until_tokens_accumulate(self):
        sim, shaper, sink = make_shaper(sigma=1000.0, rho=1000.0)
        for _ in range(3):
            shaper.receive(Packet(0, 500.0, 0.0))
        assert len(sink.arrivals) == 2
        sim.run()
        # Third packet needs 500 more tokens at 1000/s: leaves at 0.5s.
        assert sink.arrivals[2] == (pytest.approx(0.5), 500.0)

    def test_queued_packets_leave_at_token_rate(self):
        sim, shaper, sink = make_shaper(sigma=500.0, rho=1000.0)
        for _ in range(4):
            shaper.receive(Packet(0, 500.0, 0.0))
        sim.run()
        times = [t for t, _ in sink.arrivals]
        assert times == [pytest.approx(0.0), pytest.approx(0.5),
                         pytest.approx(1.0), pytest.approx(1.5)]

    def test_fifo_order_preserved(self):
        sim, shaper, sink = make_shaper(sigma=500.0, rho=1000.0)
        sizes = [500.0, 300.0, 200.0]
        for size in sizes:
            shaper.receive(Packet(0, size, 0.0))
        sim.run()
        assert [s for _, s in sink.arrivals] == sizes

    def test_tokens_replenish_during_idle(self):
        sim, shaper, sink = make_shaper(sigma=1000.0, rho=1000.0)
        shaper.receive(Packet(0, 1000.0, 0.0))  # drains bucket
        sim.schedule_at(2.0, shaper.receive, Packet(0, 1000.0, 2.0))
        sim.run()
        # Bucket refilled over 2 idle seconds (capped at sigma).
        assert sink.arrivals[1] == (pytest.approx(2.0), 1000.0)

    def test_counters(self):
        sim, shaper, sink = make_shaper(sigma=500.0, rho=1000.0)
        shaper.receive(Packet(0, 500.0, 0.0))
        shaper.receive(Packet(0, 500.0, 0.0))
        assert shaper.shaped_packets == 1
        assert shaper.delayed_packets == 1
        sim.run()
        assert shaper.shaped_packets == 2


class TestOutputConformance:
    def test_output_satisfies_envelope(self):
        # Blast 20 packets at t=0; output must satisfy eq. (2).
        sim, shaper, sink = make_shaper(sigma=1500.0, rho=2000.0)
        for _ in range(20):
            shaper.receive(Packet(0, 500.0, 0.0))
        sim.run()
        meter = TokenBucketMeter(1500.0 + 1e-6, 2000.0)
        assert all(meter.observe(t, s) for t, s in sink.arrivals)


class TestValidation:
    def test_oversized_packet_raises(self):
        sim, shaper, _ = make_shaper(sigma=400.0)
        with pytest.raises(SimulationError):
            shaper.receive(Packet(0, 500.0, 0.0))

    def test_bad_parameters_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            LeakyBucketShaper(sim, 0.0, 100.0, None)
        with pytest.raises(ConfigurationError):
            LeakyBucketShaper(sim, 100.0, 0.0, None)


class TestTokenBucketMeter:
    def test_conformant_stream_accepted(self):
        meter = TokenBucketMeter(1000.0, 1000.0)
        assert meter.observe(0.0, 1000.0)
        assert meter.observe(1.0, 1000.0)

    def test_burst_beyond_sigma_flagged(self):
        meter = TokenBucketMeter(1000.0, 1000.0)
        assert meter.observe(0.0, 1000.0)
        assert not meter.observe(0.0, 1.0)

    def test_violations_debit_the_bucket(self):
        meter = TokenBucketMeter(1000.0, 1000.0)
        meter.observe(0.0, 2000.0)  # non-conformant, tokens -> -1000
        # One second later tokens are back to 0 only; this 500-byte
        # arrival is still non-conformant and debits to -500.
        assert not meter.observe(1.0, 500.0)
        # The debt from that violation delays recovery: at t=2.0 tokens
        # are back to 500, exactly enough.
        assert meter.observe(2.0, 500.0)

    def test_burst_potential_caps_at_sigma(self):
        meter = TokenBucketMeter(1000.0, 1000.0)
        assert meter.burst_potential(100.0) == 1000.0

    def test_burst_potential_after_arrival(self):
        meter = TokenBucketMeter(1000.0, 500.0)
        meter.observe(0.0, 600.0)
        assert meter.burst_potential(0.0) == pytest.approx(400.0)
        assert meter.burst_potential(1.0) == pytest.approx(900.0)

    def test_time_going_backwards_raises(self):
        meter = TokenBucketMeter(1000.0, 1000.0)
        meter.observe(5.0, 100.0)
        with pytest.raises(SimulationError):
            meter.observe(4.0, 100.0)
