"""The buffer-invariant auditor: RPR201/202/204 and the severity model.

Scenarios without churn get ``warning`` findings restricted to the
conformant subpopulation (overload is the paper's own method); churn
scenarios mirror the fabric's pre-booking, which raises at run time, so
their findings carry ``error`` severity.
"""

import dataclasses

from repro.check.invariants import INVARIANT_CATALOG, check_scenario, check_spec_file
from repro.experiments.fabric.demo import demo_tandem
from repro.experiments.fabric.scenario import (
    ChurnSpec,
    LinkSpec,
    NetworkScenario,
    NodeSpec,
    RoutedFlow,
)
from repro.experiments.schemes import Scheme
from repro.traffic.profiles import FlowSpec
from repro.units import kbytes, mbps, mbytes


def flow(flow_id=0, bucket=kbytes(50.0), token_rate=mbps(2.0), conformant=True):
    return FlowSpec(
        flow_id=flow_id,
        peak_rate=mbps(80.0),
        avg_rate=mbps(1.0),
        bucket=bucket,
        token_rate=token_rate,
        conformant=conformant,
        mean_burst=bucket,
    )


def single(flows, buffer_size, scheme=Scheme.FIFO_THRESHOLD, link_rate=mbps(48.0)):
    return NetworkScenario.single_node(
        flows, scheme, buffer_size, link_rate=link_rate, sim_time=2.0
    )


def tandem(*, buffer_size=mbytes(1.0), scheme=Scheme.FIFO_THRESHOLD, churn=None,
           flows=(), link_rate=mbps(48.0)):
    return NetworkScenario(
        nodes=(
            NodeSpec(name="a", scheme=scheme, buffer_size=buffer_size),
            NodeSpec(name="b"),
        ),
        links=(LinkSpec("a", "b", link_rate),),
        flows=tuple(flows),
        churn=churn,
        sim_time=2.0,
    )


def churn_spec(template, routes=(("a", "b"),)):
    return ChurnSpec(
        arrival_rate=2.0, mean_holding=1.0, templates=(template,), routes=routes
    )


class TestCatalog:
    def test_catalog_covers_all_invariant_codes(self):
        assert sorted(INVARIANT_CATALOG) == [
            "RPR201",
            "RPR202",
            "RPR203",
            "RPR204",
            "RPR205",
            "RPR206",
        ]


class TestNonChurnWarnings:
    def test_fitting_population_is_clean(self):
        scenario = single([flow()], buffer_size=mbytes(1.0))
        assert check_scenario(scenario) == []

    def test_oversubscribed_buffer_is_rpr201_warning(self):
        scenario = single([flow(bucket=kbytes(50.0))], buffer_size=kbytes(10.0))
        findings = check_scenario(scenario)
        assert [finding.rule_id for finding in findings] == ["RPR201"]
        assert findings[0].severity == "warning"

    def test_rate_overflow_is_rpr202_warning(self):
        scenario = single(
            [flow(token_rate=mbps(60.0))],
            buffer_size=mbytes(4.0),
            link_rate=mbps(48.0),
        )
        findings = check_scenario(scenario)
        assert [finding.rule_id for finding in findings] == ["RPR202"]
        assert findings[0].severity == "warning"

    def test_non_conformant_overload_is_not_audited(self):
        # Overloading a port with non-conformant traffic is the paper's
        # experimental method; only conformant flows carry the lossless
        # guarantee the invariant protects.
        scenario = single(
            [flow(bucket=mbytes(5.0), conformant=False)], buffer_size=kbytes(100.0)
        )
        assert check_scenario(scenario) == []


class TestChurnErrors:
    def test_demo_tandem_is_clean(self):
        assert check_scenario(demo_tandem(hops=2)) == []

    def test_shrunken_buffers_fail_pre_booking_with_errors(self):
        scenario = demo_tandem(hops=2)
        scenario = dataclasses.replace(
            scenario,
            nodes=tuple(
                node
                if node.buffer_size is None
                else dataclasses.replace(node, buffer_size=2000.0)
                for node in scenario.nodes
            ),
        )
        findings = check_scenario(scenario)
        assert findings
        assert {finding.rule_id for finding in findings} == {"RPR201"}
        assert all(finding.severity == "error" for finding in findings)

    def test_non_fifo_scheme_at_churn_hop_is_rpr204(self):
        scenario = tandem(
            scheme=Scheme.WFQ_THRESHOLD, churn=churn_spec(flow(flow_id=1))
        )
        findings = check_scenario(scenario)
        assert [finding.rule_id for finding in findings] == ["RPR204"]
        assert "FIFO-family" in findings[0].message
        assert findings[0].severity == "error"

    def test_infeasible_churn_region_is_rpr204(self):
        # The static flow books cleanly, but every dynamic template is
        # too bursty to fit the residual region on any route.
        scenario = tandem(
            flows=[RoutedFlow(spec=flow(), route=("a", "b"))],
            churn=churn_spec(flow(flow_id=1, bucket=mbytes(4.0))),
        )
        findings = check_scenario(scenario)
        assert [finding.rule_id for finding in findings] == ["RPR204"]
        assert "infeasible" in findings[0].message

    def test_feasible_churn_is_clean(self):
        scenario = tandem(
            flows=[RoutedFlow(spec=flow(), route=("a", "b"))],
            churn=churn_spec(flow(flow_id=1)),
        )
        assert check_scenario(scenario) == []

    def test_named_findings_are_prefixed(self):
        scenario = single([flow(bucket=kbytes(50.0))], buffer_size=kbytes(10.0))
        findings = check_scenario(scenario, path="spec.json", name="fig1")
        assert findings[0].message.startswith("spec 'fig1': ")
        assert findings[0].path == "spec.json"


class TestSpecFiles:
    def test_shipped_example_specs_are_clean(self):
        assert check_spec_file("examples/specs/table1_thresholds.json") == []
        assert check_spec_file("examples/specs/tandem_churn.json") == []

    def test_unreadable_file_is_rpr203(self):
        findings = check_spec_file("examples/specs/does_not_exist.json")
        assert [finding.rule_id for finding in findings] == ["RPR203"]

    def test_invalid_json_is_rpr203(self, tmp_path):
        target = tmp_path / "broken.json"
        target.write_text("{not json", encoding="utf-8")
        findings = check_spec_file(target)
        assert [finding.rule_id for finding in findings] == ["RPR203"]

    def test_unknown_scheme_in_spec_is_rpr203(self, tmp_path):
        target = tmp_path / "spec.json"
        target.write_text(
            '{"name": "x", "workload": "table1", "scheme": "NO_SUCH", '
            '"buffer_mb": 1.0, "sim_time": 1.0, "seeds": [1], '
            '"metrics": ["utilization"]}',
            encoding="utf-8",
        )
        findings = check_spec_file(target)
        assert [finding.rule_id for finding in findings] == ["RPR203"]
        assert "'x'" in findings[0].message
