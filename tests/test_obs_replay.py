"""Trace replay: the stream reconstructs the collector's accounting.

The acceptance bar for the tracing layer: run a Figure-1-style scenario
with a JSONL sink attached and rebuild every flow's accepted / dropped /
departed counters from the trace alone — they must match the live
:class:`~repro.metrics.collector.StatsCollector` exactly.  If the replay
matches, the trace is the run.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import run_scenario
from repro.experiments.schemes import Scheme
from repro.experiments.workloads import table1_flows
from repro.obs import (
    JsonlSink,
    RingSink,
    filter_events,
    read_events,
    replay_flow_counts,
)
from repro.obs.events import DropEvent, EnqueueEvent, ThresholdCrossEvent


def traced_run(tmp_path, scheme, buffer_size, **kwargs):
    flows = table1_flows()[:8]
    path = tmp_path / "trace.jsonl"
    with JsonlSink(path) as sink:
        result = run_scenario(
            flows, scheme, buffer_size, sim_time=1.0, seed=3, sink=sink, **kwargs
        )
    return flows, path, result


@pytest.mark.parametrize(
    "scheme",
    [Scheme.FIFO_THRESHOLD, Scheme.FIFO_SHARING, Scheme.WFQ_THRESHOLD],
    ids=lambda s: s.name,
)
class TestReplayMatchesCollector:
    def test_per_flow_counts_match_exactly(self, tmp_path, scheme):
        _flows, path, result = traced_run(tmp_path, scheme, 12_000.0)
        replays = replay_flow_counts(read_events(path), warmup=result.warmup)
        assert any(stats.dropped_packets for stats in result.flow_stats.values())
        for flow_id, stats in result.flow_stats.items():
            replay = replays.get(flow_id)
            accepted = 0 if replay is None else replay.accepted_packets
            dropped = 0 if replay is None else replay.dropped_packets
            departed = 0 if replay is None else replay.departed_packets
            assert accepted == stats.accepted_packets, flow_id
            assert dropped == stats.dropped_packets, flow_id
            assert departed == stats.departed_packets, flow_id

    def test_per_flow_bytes_match_exactly(self, tmp_path, scheme):
        _flows, path, result = traced_run(tmp_path, scheme, 12_000.0)
        replays = replay_flow_counts(read_events(path), warmup=result.warmup)
        for flow_id, stats in result.flow_stats.items():
            replay = replays.get(flow_id)
            dropped = 0.0 if replay is None else replay.dropped_bytes
            departed = 0.0 if replay is None else replay.departed_bytes
            assert dropped == pytest.approx(stats.dropped_bytes)
            assert departed == pytest.approx(stats.departed_bytes)


class TestTraceContents:
    def test_hybrid_scheme_traces_once_per_packet(self, tmp_path):
        flows = table1_flows()[:8]
        ids = [flow.flow_id for flow in flows]
        groups = [ids[:4], ids[4:]]
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            result = run_scenario(
                flows,
                Scheme.HYBRID_SHARING,
                12_000.0,
                sim_time=1.0,
                seed=3,
                sink=sink,
                groups=groups,
            )
        enqueues = sum(
            1 for event in read_events(path) if isinstance(event, EnqueueEvent)
        )
        # One EnqueueEvent per admitted packet, despite the scheduler
        # wrapping an inner WFQ (only the outer layer is attached).
        admitted = sum(
            stats.accepted_packets for stats in result.flow_stats.values()
        )
        offered_before_warmup = enqueues - admitted
        assert offered_before_warmup >= 0  # warmup events traced, not counted

    def test_drop_reason_classifies_threshold(self, tmp_path):
        # Thresholds far below capacity: every drop is the policy's.
        flows = table1_flows()[:8]
        path = tmp_path / "trace.jsonl"
        from repro.core.fixed_threshold import FixedThresholdManager
        from repro.sched.fifo import FIFOScheduler
        from repro.sim.engine import Simulator
        from repro.sim.packet import Packet
        from repro.sim.port import OutputPort

        sim = Simulator()
        manager = FixedThresholdManager(
            capacity=1_000_000.0, thresholds={}, default_threshold=1000.0
        )
        port = OutputPort(sim, 1e6, FIFOScheduler(), manager)
        with JsonlSink(path) as sink:
            port.attach_trace(sink)
            for i in range(5):
                port.receive(Packet(flow_id=1, size=500.0, created=0.0))
        reasons = {
            event.reason
            for event in read_events(path)
            if isinstance(event, DropEvent)
        }
        assert reasons == {"threshold"}

    def test_threshold_cross_events_bracket_occupancy(self, tmp_path):
        from repro.core.fixed_threshold import FixedThresholdManager

        sink = RingSink()
        clock = [0.0]
        manager = FixedThresholdManager(
            capacity=10_000.0, thresholds={1: 1000.0}, default_threshold=1000.0
        )
        manager.attach_trace(sink, lambda: clock[0])
        for _ in range(2):
            assert manager.try_admit(1, 500.0)
        assert not manager.try_admit(1, 500.0)
        manager.on_depart(1, 500.0)
        crossings = [
            event for event in sink.events() if isinstance(event, ThresholdCrossEvent)
        ]
        assert [event.direction for event in crossings] == ["up", "down"]
        assert crossings[0].occupancy == 1000.0
        assert crossings[1].occupancy == 500.0

    def test_headroom_events_from_sharing_manager(self, tmp_path):
        _flows, path, _result = traced_run(tmp_path, Scheme.FIFO_SHARING, 12_000.0)
        kinds = {type(event).kind for event in read_events(path)}
        assert "headroom" in kinds

    def test_compact_event_from_engine(self):
        from repro.sim.engine import Simulator

        sink = RingSink()
        sim = Simulator()
        sim.attach_trace(sink)
        handles = [sim.schedule(1.0 + i * 1e-6, lambda: None) for i in range(200)]
        for handle in handles[:150]:
            handle.cancel()
        compacts = [
            event for event in sink.events() if type(event).kind == "compact"
        ]
        assert compacts, "cancelling >50% of a large heap must compact"
        assert compacts[0].removed > 0


class TestFilters:
    def events(self, tmp_path):
        _flows, path, _result = traced_run(tmp_path, Scheme.FIFO_THRESHOLD, 12_000.0)
        return list(read_events(path))

    def test_filter_by_flow(self, tmp_path):
        events = self.events(tmp_path)
        flow_id = events[0].flow_id
        selected = list(filter_events(events, flows=[flow_id]))
        assert selected
        assert all(event.flow_id == flow_id for event in selected)

    def test_filter_by_kind(self, tmp_path):
        events = self.events(tmp_path)
        selected = list(filter_events(events, kinds=["drop"]))
        assert selected
        assert all(type(event).kind == "drop" for event in selected)

    def test_filter_by_window_inclusive(self, tmp_path):
        events = self.events(tmp_path)
        selected = list(filter_events(events, since=0.2, until=0.4))
        assert selected
        assert all(0.2 <= event.time <= 0.4 for event in selected)

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            list(filter_events([], kinds=["martian"]))

    def test_flow_filter_excludes_flowless_events(self, tmp_path):
        _flows, path, _result = traced_run(tmp_path, Scheme.FIFO_SHARING, 12_000.0)
        selected = list(filter_events(read_events(path), flows=[0]))
        assert all(type(event).kind != "headroom" for event in selected)

    def fabric_events(self, tmp_path):
        from repro.experiments.fabric import run_fabric
        from repro.experiments.fabric.demo import demo_tandem
        from repro.obs import JsonlSink

        path = tmp_path / "net-trace.jsonl"
        scenario = demo_tandem(
            hops=2, seed=0, sim_time=1.0, churn=False, delay_histograms=False
        )
        with JsonlSink(path) as sink:
            run_fabric(scenario, sink=sink)
        return list(read_events(path))

    def test_filter_by_node(self, tmp_path):
        events = self.fabric_events(tmp_path)
        selected = list(filter_events(events, nodes=["n0->n1"]))
        assert selected
        assert all(event.node == "n0->n1" for event in selected)
        assert len(selected) < len(events)

    def test_node_filter_composes_with_kind(self, tmp_path):
        events = self.fabric_events(tmp_path)
        selected = list(
            filter_events(events, nodes=["n1->n2"], kinds=["enqueue"])
        )
        assert selected
        assert all(
            type(e).kind == "enqueue" and e.node == "n1->n2" for e in selected
        )

    def test_blank_node_selects_single_port_events(self, tmp_path):
        events = self.events(tmp_path)
        selected = list(filter_events(events, nodes=[""]))
        # Single-port runs label everything with the empty string —
        # except engine compact events, which carry no node at all.
        assert selected
        assert all(type(event).kind != "compact" for event in selected)
        labelled = [e for e in events if hasattr(e, "node")]
        assert len(selected) == len(labelled)
