"""Property-based tests: output-port conservation laws."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynamic_threshold import DynamicThresholdManager
from repro.core.fixed_threshold import FixedThresholdManager
from repro.core.tail_drop import TailDropManager
from repro.metrics.collector import StatsCollector
from repro.sched.fifo import FIFOScheduler
from repro.sched.wfq import WFQScheduler
from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.sim.port import OutputPort

arrivals_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.02, allow_nan=False),  # gap
        st.integers(min_value=0, max_value=3),                      # flow
        st.floats(min_value=10.0, max_value=1500.0, allow_nan=False),
    ),
    min_size=1,
    max_size=100,
)

manager_factories = st.sampled_from([
    lambda: TailDropManager(5_000.0),
    lambda: FixedThresholdManager(5_000.0, {0: 2_000.0, 1: 1_500.0, 2: 1_000.0,
                                            3: 500.0}),
    lambda: DynamicThresholdManager(5_000.0, alpha=1.0),
])

scheduler_factories = st.sampled_from(["fifo", "wfq"])


def run_port(arrivals, manager, scheduler_kind):
    sim = Simulator()
    if scheduler_kind == "fifo":
        scheduler = FIFOScheduler()
    else:
        scheduler = WFQScheduler(
            lambda: sim.now, 100_000.0, {0: 1.0, 1: 2.0, 2: 3.0, 3: 4.0}
        )
    collector = StatsCollector()
    port = OutputPort(sim, 100_000.0, scheduler, manager, collector)
    time = 0.0
    for gap, flow_id, size in arrivals:
        time += gap
        sim.schedule_at(time, port.receive, Packet(flow_id, size, time))
    sim.run()  # drain everything
    return port, collector


class TestConservation:
    @given(
        arrivals=arrivals_strategy,
        make_manager=manager_factories,
        scheduler_kind=scheduler_factories,
    )
    @settings(max_examples=60, deadline=None)
    def test_offered_equals_dropped_plus_departed(self, arrivals, make_manager,
                                                  scheduler_kind):
        port, collector = run_port(arrivals, make_manager(), scheduler_kind)
        for stats in collector.flows.values():
            assert stats.offered_packets == (
                stats.dropped_packets + stats.departed_packets
            )
            assert abs(
                stats.offered_bytes - stats.dropped_bytes - stats.departed_bytes
            ) < 1e-6

    @given(
        arrivals=arrivals_strategy,
        make_manager=manager_factories,
        scheduler_kind=scheduler_factories,
    )
    @settings(max_examples=60, deadline=None)
    def test_buffer_empty_after_drain(self, arrivals, make_manager, scheduler_kind):
        port, _ = run_port(arrivals, make_manager(), scheduler_kind)
        assert port.backlog_packets == 0
        assert not port.busy
        assert abs(port.manager.total_occupancy) < 1e-6

    @given(
        arrivals=arrivals_strategy,
        make_manager=manager_factories,
    )
    @settings(max_examples=60, deadline=None)
    def test_fifo_departures_in_admission_order(self, arrivals, make_manager):
        sim = Simulator()
        collector = StatsCollector()
        departed = []

        # OutputPort is slotted, so tracing hooks go in a subclass rather
        # than instance monkeypatching.
        class TracedPort(OutputPort):
            def _finish_transmission(self, packet):
                departed.append(packet.seq)
                super()._finish_transmission(packet)

        port = TracedPort(sim, 100_000.0, FIFOScheduler(), make_manager(), collector)
        time = 0.0
        admitted = []
        for gap, flow_id, size in arrivals:
            time += gap
            packet = Packet(flow_id, size, time)

            def offer(packet=packet):
                if port.receive(packet):
                    admitted.append(packet.seq)

            sim.schedule_at(time, offer)
        sim.run()
        assert departed == admitted

    @given(
        arrivals=arrivals_strategy,
        make_manager=manager_factories,
        scheduler_kind=scheduler_factories,
    )
    @settings(max_examples=40, deadline=None)
    def test_delays_nonnegative_and_bounded(self, arrivals, make_manager,
                                            scheduler_kind):
        port, collector = run_port(arrivals, make_manager(), scheduler_kind)
        if scheduler_kind == "fifo":
            # Any admitted packet waits at most buffer/rate + its own tx.
            bound = 5_000.0 / 100_000.0 + 1500.0 / 100_000.0
        else:
            # WFQ serves by virtual finish time, so a minimum-weight
            # flow's packet can wait while every other flow takes its
            # larger share of the backlog drain: the queueing term
            # scales by total/min weight (10/1 here).
            bound = (5_000.0 + 1500.0) * 10.0 / 100_000.0 + 1500.0 / 100_000.0
        for stats in collector.flows.values():
            assert stats.delay_max <= bound + 1e-9
            assert stats.delay_sum >= 0.0
