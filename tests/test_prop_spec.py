"""Property-based tests: scenario-spec parsing over random inputs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.spec import ScenarioSpec
from repro.units import kbytes, mbps, mbytes

flow_dicts = st.builds(
    lambda peak, ratio, bucket, token, conformant: {
        "peak_mbps": peak,
        "avg_mbps": peak * ratio,
        "bucket_kb": bucket,
        "token_mbps": token,
        "conformant": conformant,
    },
    peak=st.floats(min_value=1.0, max_value=40.0, allow_nan=False),
    ratio=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
    bucket=st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
    token=st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
    conformant=st.booleans(),
)

spec_dicts = st.builds(
    lambda flows, buffer_mb, seeds, headroom_mb: {
        "name": "prop",
        "scheme": "FIFO_THRESHOLD",
        "buffer_mb": buffer_mb,
        "workload": flows,
        "seeds": seeds,
        "headroom_mb": headroom_mb,
        "metrics": ["utilization", "loss:conformant"],
    },
    flows=st.lists(flow_dicts, min_size=1, max_size=6),
    buffer_mb=st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
    seeds=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                   max_size=3, unique=True),
    headroom_mb=st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
)


class TestSpecParsing:
    @given(raw=spec_dicts)
    @settings(max_examples=100, deadline=None)
    def test_units_convert_correctly(self, raw):
        spec = ScenarioSpec.from_dict(raw)
        assert spec.buffer_bytes == mbytes(raw["buffer_mb"])
        assert spec.headroom == mbytes(raw["headroom_mb"])
        for flow, flow_raw in zip(spec.flows, raw["workload"]):
            assert flow.peak_rate == mbps(flow_raw["peak_mbps"])
            assert flow.bucket == kbytes(flow_raw["bucket_kb"])
            assert flow.token_rate == mbps(flow_raw["token_mbps"])
            assert flow.conformant == flow_raw["conformant"]

    @given(raw=spec_dicts)
    @settings(max_examples=100, deadline=None)
    def test_flow_ids_sequential_and_conformant_set_consistent(self, raw):
        spec = ScenarioSpec.from_dict(raw)
        assert [flow.flow_id for flow in spec.flows] == list(range(len(spec.flows)))
        assert set(spec.conformant_ids) == {
            flow.flow_id for flow in spec.flows if flow.conformant
        }

    @given(raw=spec_dicts)
    @settings(max_examples=100, deadline=None)
    def test_parsing_is_idempotent(self, raw):
        first = ScenarioSpec.from_dict(raw)
        second = ScenarioSpec.from_dict(raw)
        assert first == second
