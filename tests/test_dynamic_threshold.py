"""Dynamic Threshold (Choudhury-Hahne) baseline."""

import pytest

from repro.core.dynamic_threshold import DynamicThresholdManager
from repro.errors import ConfigurationError


class TestAdmission:
    def test_empty_buffer_admits_up_to_half_with_alpha_one(self):
        # threshold = alpha * free = 1000 initially; packet <= 1000 ok.
        manager = DynamicThresholdManager(1000.0, alpha=1.0)
        assert manager.try_admit(0, 500.0)

    def test_threshold_shrinks_as_buffer_fills(self):
        manager = DynamicThresholdManager(1000.0, alpha=1.0)
        manager.try_admit(0, 400.0)
        assert manager.current_threshold() == pytest.approx(600.0)
        manager.try_admit(1, 300.0)
        assert manager.current_threshold() == pytest.approx(300.0)

    def test_single_greedy_flow_converges_to_half_buffer(self):
        # With alpha=1 a lone greedy flow stabilises near B/2: each accept
        # requires occupancy + L <= B - occupancy.
        manager = DynamicThresholdManager(1000.0, alpha=1.0)
        admitted = 0.0
        while manager.try_admit(0, 50.0):
            admitted += 50.0
        assert admitted <= 500.0
        assert admitted >= 450.0

    def test_two_greedy_flows_split_equally(self):
        manager = DynamicThresholdManager(900.0, alpha=1.0)
        blocked = set()
        while len(blocked) < 2:
            for flow in (0, 1):
                if not manager.try_admit(flow, 10.0):
                    blocked.add(flow)
        assert manager.occupancy(0) == pytest.approx(manager.occupancy(1), abs=10.0)

    def test_capacity_still_binds(self):
        manager = DynamicThresholdManager(1000.0, alpha=4.0)
        manager.try_admit(0, 900.0)
        assert not manager.try_admit(1, 200.0)

    def test_departures_reopen_threshold(self):
        manager = DynamicThresholdManager(1000.0, alpha=1.0)
        while manager.try_admit(0, 100.0):
            pass
        occupancy = manager.occupancy(0)
        manager.on_depart(0, 100.0)
        assert manager.current_threshold() > manager.capacity - occupancy


class TestAlpha:
    def test_small_alpha_is_conservative(self):
        manager = DynamicThresholdManager(1000.0, alpha=0.25)
        admitted = 0.0
        while manager.try_admit(0, 10.0):
            admitted += 10.0
        # Fixed point: q = alpha (B - q) -> q = B/5.
        assert admitted <= 200.0

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            DynamicThresholdManager(1000.0, alpha=0.0)


class TestReprovisionContract:
    def test_reprovision_is_a_validating_no_op(self):
        # The dynamic rule has no per-flow state to resize; the call
        # validates and returns so churn can treat managers uniformly.
        manager = DynamicThresholdManager(1000.0, alpha=1.0)
        manager.reprovision(3, 250.0)
        assert type(manager).has_flow_thresholds is False
        with pytest.raises(ConfigurationError):
            manager.reprovision(3, -1.0)

    def test_retire_reclaims_drained_occupancy_entry(self):
        manager = DynamicThresholdManager(1000.0, alpha=1.0)
        manager.try_admit(3, 100.0)
        manager.retire(3)
        manager.on_depart(3, 100.0)
        assert 3 not in manager._occupancy
