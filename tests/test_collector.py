"""Statistics collection."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics.collector import FlowStats, StatsCollector


class TestFlowStats:
    def test_loss_fraction(self):
        stats = FlowStats(offered_packets=10, offered_bytes=1000.0,
                          dropped_packets=2, dropped_bytes=200.0)
        assert stats.loss_fraction == pytest.approx(0.2)

    def test_loss_fraction_idle_flow(self):
        assert FlowStats().loss_fraction == 0.0

    def test_mean_delay(self):
        stats = FlowStats(departed_packets=4, delay_sum=2.0)
        assert stats.mean_delay == pytest.approx(0.5)

    def test_mean_delay_no_departures(self):
        assert FlowStats().mean_delay == 0.0

    def test_accepted_packets(self):
        stats = FlowStats(offered_packets=10, dropped_packets=3)
        assert stats.accepted_packets == 7


class TestCollector:
    def test_counters_accumulate(self):
        collector = StatsCollector()
        collector.on_offered(0, 500.0, 1.0)
        collector.on_drop(0, 500.0, 1.0)
        collector.on_offered(0, 500.0, 2.0)
        collector.on_depart(0, 500.0, 0.01, 2.5)
        stats = collector.flows[0]
        assert stats.offered_packets == 2
        assert stats.dropped_packets == 1
        assert stats.departed_packets == 1
        assert stats.delay_max == 0.01

    def test_warmup_filters_events(self):
        collector = StatsCollector(warmup=10.0)
        collector.on_offered(0, 500.0, 5.0)
        collector.on_offered(0, 500.0, 15.0)
        assert collector.flows[0].offered_packets == 1

    def test_negative_warmup_rejected(self):
        with pytest.raises(ConfigurationError):
            StatsCollector(warmup=-1.0)

    def test_flow_ids_sorted(self):
        collector = StatsCollector()
        collector.on_offered(5, 1.0, 0.0)
        collector.on_offered(1, 1.0, 0.0)
        assert collector.flow_ids() == [1, 5]


class TestDelayHistograms:
    def test_disabled_by_default(self):
        collector = StatsCollector()
        with pytest.raises(ConfigurationError):
            collector.delay_histogram(0)

    def test_records_departure_delays(self):
        collector = StatsCollector(delay_histograms=True)
        collector.on_depart(0, 500.0, 0.010, 1.0)
        collector.on_depart(0, 500.0, 0.020, 2.0)
        histogram = collector.delay_histogram(0)
        assert histogram.count == 2
        assert histogram.mean == pytest.approx(0.015)

    def test_warmup_also_filters_histogram(self):
        collector = StatsCollector(warmup=10.0, delay_histograms=True)
        collector.on_depart(0, 500.0, 0.010, 5.0)
        assert collector.delay_histogram(0).count == 0

    def test_percentile_available(self):
        collector = StatsCollector(delay_histograms=True)
        for i in range(100):
            collector.on_depart(0, 500.0, 0.001 * (i + 1), 1.0)
        p50 = collector.delay_histogram(0).percentile(50)
        assert p50 == pytest.approx(0.05, rel=0.3)


class TestAggregation:
    def make_collector(self):
        collector = StatsCollector()
        collector.on_offered(0, 1000.0, 0.0)
        collector.on_depart(0, 800.0, 0.1, 1.0)
        collector.on_offered(1, 1000.0, 0.0)
        collector.on_drop(1, 500.0, 0.0)
        collector.on_depart(1, 500.0, 0.1, 1.0)
        return collector

    def test_total_departed_all_flows(self):
        assert self.make_collector().total_departed_bytes() == 1300.0

    def test_total_departed_subset(self):
        assert self.make_collector().total_departed_bytes([1]) == 500.0

    def test_subset_with_unknown_flow(self):
        assert self.make_collector().total_departed_bytes([1, 42]) == 500.0

    def test_throughput(self):
        assert self.make_collector().throughput(duration=2.0) == pytest.approx(650.0)

    def test_throughput_requires_positive_duration(self):
        with pytest.raises(ConfigurationError):
            self.make_collector().throughput(0.0)

    def test_loss_fraction_all(self):
        assert self.make_collector().loss_fraction() == pytest.approx(500.0 / 2000.0)

    def test_loss_fraction_subset(self):
        assert self.make_collector().loss_fraction([0]) == 0.0
        assert self.make_collector().loss_fraction([1]) == pytest.approx(0.5)

    def test_loss_fraction_idle(self):
        assert StatsCollector().loss_fraction() == 0.0
