"""Byte-identity of the hot-path optimisations, pinned by goldens.

``tests/data/equivalence_goldens.json`` was captured from the simulator
*before* the engine fast path (``schedule_fast``, pop-once run loop),
the packet freelist, and the source emission rewrite.  Each golden pins:

* the campaign job digest (the scenario description is unchanged),
* the SHA-256 of the canonical JSON of the full
  :class:`~repro.experiments.campaign.ScenarioRecord` (every per-flow
  byte counter, threshold, and delay percentile is unchanged),
* the event count and per-flow packet counts (readable diagnostics when
  the record digest does drift).

One golden per scheme family, using the same scenario definitions as
the quick macro benchmark cases, so the workloads whose speed we track
are exactly the workloads whose outputs are pinned.

Regenerate (only after an *intentional* behaviour change) by running
this file's ``_golden_entry`` over the suite and rewriting the JSON.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.bench.suite import MACRO, default_suite
from repro.experiments.campaign import ScenarioJob, ScenarioRecord
from repro.experiments.runner import run_scenario
from repro.sim.engine import Simulator
from repro.traffic.sources import OnOffSource
from repro.units import mbps

GOLDENS_PATH = Path(__file__).parent / "data" / "equivalence_goldens.json"


def _load_goldens() -> dict:
    raw = json.loads(GOLDENS_PATH.read_text(encoding="utf-8"))
    assert raw["schema"] == "repro-equivalence-v1"
    return raw


def _quick_macro_cases() -> dict:
    """Quick macro cases that run the classic single-port pipeline.

    Network-fabric macro cases (``NetworkJob``) are covered by their own
    determinism tests; the goldens pin the single-port path only.
    """
    return {
        case.name: case
        for case in default_suite(quick=True)
        if case.kind == MACRO and isinstance(case.job, ScenarioJob)
    }


def _record_digest(record: ScenarioRecord) -> str:
    canonical = json.dumps(
        record.to_dict(), sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _golden_entry(case) -> dict:
    job = case.job
    result = run_scenario(
        list(job.flows), job.scheme, job.buffer_size, **job.scenario_kwargs()
    )
    record = ScenarioRecord.from_result(result, job.digest())
    return {
        "job_digest": job.digest(),
        "record_digest": _record_digest(record),
        "events_processed": record.events_processed,
        "flow_counts": {
            str(fid): [fs.offered_packets, fs.dropped_packets, fs.departed_packets]
            for fid, fs in sorted(record.flow_stats.items())
        },
    }


class TestGoldenEquivalence:
    """The optimised hot path reproduces the pre-change outputs exactly."""

    @pytest.fixture(scope="class")
    def goldens(self):
        return _load_goldens()

    def test_goldens_cover_every_scheme_family(self, goldens):
        assert set(goldens["goldens"]) == set(_quick_macro_cases())

    @pytest.mark.parametrize(
        "name",
        ["fifo-threshold", "shared-headroom", "wfq-threshold", "hybrid-sharing"],
    )
    def test_scenario_byte_identical(self, goldens, name):
        case = _quick_macro_cases()[name]
        golden = goldens["goldens"][name]
        # The scenario *description* must be the one the golden pinned …
        assert case.job.digest() == golden["job_digest"], (
            f"{name}: scenario definition drifted; the golden no longer "
            "pins the workload it was captured from"
        )
        fresh = _golden_entry(case)
        # … and cheap counters first, for a readable failure …
        assert fresh["events_processed"] == golden["events_processed"]
        assert fresh["flow_counts"] == golden["flow_counts"]
        # … then the full record: every byte of output is unchanged.
        assert fresh["record_digest"] == golden["record_digest"]


class TestScheduleFastEquivalence:
    """schedule_fast orders identically to schedule at equal timestamps."""

    def test_interleaved_ordering_matches_schedule(self):
        fired_mixed, fired_plain = [], []
        sim_a, sim_b = Simulator(), Simulator()
        for i in range(50):
            # Same timestamps, alternating scheduling APIs on sim_a.
            delay = (i % 7) * 0.125
            if i % 2:
                sim_a.schedule_fast(delay, fired_mixed.append, i)
            else:
                sim_a.schedule(delay, fired_mixed.append, i)
            sim_b.schedule(delay, fired_plain.append, i)
        sim_a.run()
        sim_b.run()
        assert fired_mixed == fired_plain


class TestRngBatchInvariance:
    """Batched draws are deterministic and independent of the block size."""

    @staticmethod
    def _emissions(rng_batch):
        times = []

        class Sink:
            def receive(self, packet):
                times.append((sim.now, packet.flow_id, packet.size))

        sim = Simulator()
        OnOffSource(
            sim,
            flow_id=3,
            peak_rate=mbps(48.0),
            avg_rate=mbps(12.0),
            mean_burst=8_000.0,
            sink=Sink(),
            rng=np.random.default_rng(21),
            until=3.0,
            rng_batch=rng_batch,
        )
        sim.run(until=3.0)
        assert times, "source emitted nothing"
        return times

    def test_block_size_does_not_change_the_stream(self):
        reference = self._emissions(4)
        assert self._emissions(64) == reference
        assert self._emissions(1024) == reference

    def test_batched_stream_is_reproducible(self):
        assert self._emissions(256) == self._emissions(256)
