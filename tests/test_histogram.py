"""Logarithmic delay histogram."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics.histogram import LogHistogram


class TestRecording:
    def test_count_mean_max(self):
        hist = LogHistogram()
        for value in (0.001, 0.002, 0.003):
            hist.record(value)
        assert hist.count == 3
        assert hist.mean == pytest.approx(0.002)
        assert hist.max_value == 0.003

    def test_empty_histogram(self):
        hist = LogHistogram()
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.percentile(50) == 0.0

    def test_negative_value_rejected(self):
        with pytest.raises(ConfigurationError):
            LogHistogram().record(-1.0)

    def test_underflow_and_overflow_counted(self):
        hist = LogHistogram(lo=1e-3, hi=1.0)
        hist.record(1e-6)   # underflow
        hist.record(100.0)  # overflow
        assert hist.count == 2


class TestPercentiles:
    def test_single_value(self):
        hist = LogHistogram(lo=1e-4, hi=1.0)
        hist.record(0.01)
        estimate = hist.percentile(50)
        # Geometric-midpoint estimate within one bin width (26%).
        assert estimate == pytest.approx(0.01, rel=0.3)

    def test_median_of_uniform_sample(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(0.001, 0.1, size=5000)
        hist = LogHistogram(lo=1e-4, hi=1.0, bins_per_decade=20)
        for value in values:
            hist.record(value)
        assert hist.percentile(50) == pytest.approx(np.median(values), rel=0.15)

    def test_p99_of_exponential_sample(self):
        rng = np.random.default_rng(2)
        values = rng.exponential(0.01, size=20_000)
        hist = LogHistogram(lo=1e-5, hi=10.0, bins_per_decade=20)
        for value in values:
            hist.record(value)
        assert hist.percentile(99) == pytest.approx(
            float(np.percentile(values, 99)), rel=0.2
        )

    def test_percentiles_monotone(self):
        rng = np.random.default_rng(3)
        hist = LogHistogram(lo=1e-5, hi=10.0)
        for value in rng.lognormal(-4, 1, size=2000):
            hist.record(value)
        estimates = [hist.percentile(q) for q in (10, 50, 90, 99, 100)]
        assert estimates == sorted(estimates)

    def test_p100_is_max(self):
        hist = LogHistogram(lo=1e-4, hi=1.0)
        for value in (0.001, 0.05, 0.3):
            hist.record(value)
        assert hist.percentile(100) == pytest.approx(0.3, rel=0.3)

    def test_q_out_of_range(self):
        with pytest.raises(ConfigurationError):
            LogHistogram().percentile(101)

    def test_p0_is_low_edge_of_first_occupied_bin(self):
        hist = LogHistogram(lo=1e-3, hi=1.0, bins_per_decade=10)
        hist.record(0.05)
        hist.record(0.5)
        low, high = hist.bin_bounds(hist._bin_index(0.05))
        assert low <= 0.05 < high
        assert hist.percentile(0) == pytest.approx(low)

    def test_p0_underflow_bin_returns_zero(self):
        hist = LogHistogram(lo=1e-3, hi=1.0)
        hist.record(1e-6)  # lands in the underflow bin, low edge 0.0
        assert hist.percentile(0) == 0.0

    def test_p100_is_exact_max(self):
        hist = LogHistogram(lo=1e-4, hi=1.0)
        for value in (0.001, 0.05, 0.3):
            hist.record(value)
        # Exactly the recorded max, not a bin-midpoint estimate.
        assert hist.percentile(100) == 0.3

    def test_p0_p100_bracket_all_estimates(self):
        rng = np.random.default_rng(4)
        hist = LogHistogram(lo=1e-5, hi=10.0)
        values = rng.lognormal(-4, 1, size=1000)
        for value in values:
            hist.record(value)
        p0, p100 = hist.percentile(0), hist.percentile(100)
        assert p0 <= float(values.min())
        assert p100 == pytest.approx(float(values.max()))
        for q in (1, 25, 50, 75, 99):
            assert p0 <= hist.percentile(q) <= p100


class TestMerge:
    def test_merge_equals_single_histogram(self):
        rng = np.random.default_rng(5)
        values = rng.exponential(0.01, size=4000)
        merged = LogHistogram(lo=1e-5, hi=1.0, bins_per_decade=20)
        shards = [
            LogHistogram(lo=1e-5, hi=1.0, bins_per_decade=20) for _ in range(4)
        ]
        reference = LogHistogram(lo=1e-5, hi=1.0, bins_per_decade=20)
        for i, value in enumerate(values):
            shards[i % 4].record(value)
            reference.record(value)
        for shard in shards:
            merged.merge(shard)
        assert merged.count == reference.count
        assert merged.total == pytest.approx(reference.total)
        assert merged.max_value == reference.max_value
        assert merged._counts == reference._counts
        for q in (0, 50, 95, 99, 100):
            assert merged.percentile(q) == pytest.approx(reference.percentile(q))

    def test_merge_empty_other_is_noop(self):
        hist = LogHistogram()
        hist.record(0.01)
        hist.merge(LogHistogram())
        assert hist.count == 1
        assert hist.max_value == 0.01

    def test_merge_rejects_binning_mismatch(self):
        base = LogHistogram(lo=1e-6, hi=10.0, bins_per_decade=10)
        for other in (
            LogHistogram(lo=1e-5, hi=10.0, bins_per_decade=10),
            LogHistogram(lo=1e-6, hi=1.0, bins_per_decade=10),
            LogHistogram(lo=1e-6, hi=10.0, bins_per_decade=20),
        ):
            with pytest.raises(ConfigurationError):
                base.merge(other)


class TestConfiguration:
    def test_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            LogHistogram(lo=1.0, hi=0.5)
        with pytest.raises(ConfigurationError):
            LogHistogram(lo=0.0, hi=1.0)

    def test_bad_resolution(self):
        with pytest.raises(ConfigurationError):
            LogHistogram(bins_per_decade=0)

    def test_bin_bounds_cover_range(self):
        hist = LogHistogram(lo=1e-3, hi=1.0, bins_per_decade=3)
        low, high = hist.bin_bounds(1)
        assert low == pytest.approx(1e-3)
        _, top = hist.bin_bounds(hist.n_bins)
        assert top >= 1.0 - 1e-9
