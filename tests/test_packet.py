"""Packet object semantics."""

from repro.sim.packet import Packet


class TestPacket:
    def test_attributes(self):
        packet = Packet(flow_id=7, size=500.0, created=1.25)
        assert packet.flow_id == 7
        assert packet.size == 500.0
        assert packet.created == 1.25

    def test_enqueued_starts_unset(self):
        assert Packet(0, 500.0, 0.0).enqueued is None

    def test_seq_is_unique_and_increasing(self):
        first = Packet(0, 500.0, 0.0)
        second = Packet(0, 500.0, 0.0)
        assert second.seq > first.seq

    def test_slots_prevent_arbitrary_attributes(self):
        packet = Packet(0, 500.0, 0.0)
        try:
            packet.color = "green"
            assert False, "Packet should use __slots__"
        except AttributeError:
            pass
