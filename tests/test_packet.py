"""Packet object semantics."""

from repro.sim.packet import Packet


class TestPacket:
    def test_attributes(self):
        packet = Packet(flow_id=7, size=500.0, created=1.25)
        assert packet.flow_id == 7
        assert packet.size == 500.0
        assert packet.created == 1.25

    def test_enqueued_starts_unset(self):
        assert Packet(0, 500.0, 0.0).enqueued is None

    def test_seq_is_unique_and_increasing(self):
        first = Packet(0, 500.0, 0.0)
        second = Packet(0, 500.0, 0.0)
        assert second.seq > first.seq

    def test_slots_prevent_arbitrary_attributes(self):
        packet = Packet(0, 500.0, 0.0)
        try:
            packet.color = "green"
            assert False, "Packet should use __slots__"
        except AttributeError:
            pass


class TestFreelist:
    """acquire/release recycling keeps packet semantics intact."""

    def test_acquire_matches_constructor(self):
        packet = Packet.acquire(3, 500.0, 1.5)
        assert (packet.flow_id, packet.size, packet.created) == (3, 500.0, 1.5)
        assert packet.enqueued is None

    def test_release_then_acquire_reuses_the_object(self):
        packet = Packet.acquire(0, 500.0, 0.0)
        packet.release()
        again = Packet.acquire(9, 100.0, 2.0)
        assert again is packet
        assert (again.flow_id, again.size, again.created) == (9, 100.0, 2.0)
        assert again.enqueued is None

    def test_recycled_packet_gets_a_fresh_sequence_number(self):
        # WFQ tie-breaking and FIFO ordering lean on seq monotonicity;
        # recycling must never resurrect an old sequence number.
        packet = Packet.acquire(0, 500.0, 0.0)
        old_seq = packet.seq
        packet.release()
        again = Packet.acquire(0, 500.0, 0.0)
        assert again.seq > old_seq

    def test_double_release_is_idempotent(self):
        packet = Packet.acquire(0, 500.0, 0.0)
        packet.release()
        packet.release()  # must not enter the pool twice
        first = Packet.acquire(1, 500.0, 0.0)
        second = Packet.acquire(2, 500.0, 0.0)
        assert first is not second

    def test_stale_state_cleared_on_reuse(self):
        packet = Packet.acquire(0, 500.0, 0.0)
        packet.enqueued = 1.25
        packet.release()
        again = Packet.acquire(0, 500.0, 2.0)
        assert again.enqueued is None
