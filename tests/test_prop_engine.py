"""Property-based tests: event-engine ordering and determinism."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator

delays = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=200,
)


class TestOrdering:
    @given(delays=delays)
    @settings(max_examples=100, deadline=None)
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(delays=delays)
    @settings(max_examples=100, deadline=None)
    def test_ties_break_by_schedule_order(self, delays):
        sim = Simulator()
        fired = []
        for index, delay in enumerate(delays):
            sim.schedule(delay, fired.append, (delay, index))
        sim.run()
        # Stable sort of (time, schedule index).
        assert fired == sorted(fired)

    @given(delays=delays, until_fraction=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_run_until_is_a_clean_prefix(self, delays, until_fraction):
        horizon = max(delays) * until_fraction
        sim_full = Simulator()
        full = []
        for index, delay in enumerate(delays):
            sim_full.schedule(delay, full.append, index)
        sim_full.run()

        sim_split = Simulator()
        split = []
        for index, delay in enumerate(delays):
            sim_split.schedule(delay, split.append, index)
        sim_split.run(until=horizon)
        prefix_length = len(split)
        sim_split.run()
        # Splitting a run at any point never changes the event sequence.
        assert split == full
        assert all(delays[i] <= horizon for i in split[:prefix_length])

    @given(delays=delays)
    @settings(max_examples=60, deadline=None)
    def test_cancelled_events_are_exactly_the_missing_ones(self, delays):
        sim = Simulator()
        fired = []
        events = [sim.schedule(delay, fired.append, i) for i, delay in enumerate(delays)]
        cancelled = set(range(0, len(events), 3))
        for index in cancelled:
            events[index].cancel()
        sim.run()
        assert set(fired) == set(range(len(delays))) - cancelled

    @given(delays=delays)
    @settings(max_examples=60, deadline=None)
    def test_clock_never_goes_backwards(self, delays):
        sim = Simulator()
        observed = []
        for delay in delays:
            sim.schedule(delay, lambda: observed.append(sim.now))
        last = -1.0
        while sim.step():
            assert sim.now >= last
            last = sim.now
