"""Network jobs in the campaign pipeline: digests, records, cache, pools."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.campaign import (
    NETWORK_SCHEMA,
    CampaignRunner,
    NetworkJob,
    NetworkRecord,
    ResultCache,
    execute_job,
)
from repro.experiments.fabric.demo import TARGET_FLOW_ID, demo_tandem


def small_job(seed=1, churn=True):
    return NetworkJob(demo_tandem(hops=2, sim_time=3.0, seed=seed, churn=churn))


@pytest.fixture(scope="module")
def executed():
    """One executed job/record pair shared by the read-only tests."""
    job = small_job()
    return job, execute_job(job)


class TestDigest:
    def test_digest_is_stable(self):
        assert small_job().digest() == small_job().digest()

    def test_digest_covers_the_seed(self):
        assert small_job(seed=1).digest() != small_job(seed=2).digest()

    def test_digest_covers_churn(self):
        assert small_job(churn=True).digest() != small_job(churn=False).digest()

    def test_job_round_trips(self):
        job = small_job()
        assert NetworkJob.from_dict(job.to_dict()) == job

    def test_schema_mismatch_rejected(self):
        raw = small_job().to_dict()
        raw["schema"] = "repro-campaign-v1"
        with pytest.raises(ConfigurationError, match="schema"):
            NetworkJob.from_dict(raw)


class TestExecuteJob:
    def test_returns_a_network_record_with_telemetry(self, executed):
        job, record = executed
        assert isinstance(record, NetworkRecord)
        assert record.job_digest == job.digest()
        assert record.telemetry is not None
        assert record.telemetry.cache_hit is False
        assert record.telemetry.events == record.events_processed

    def test_record_carries_the_fabric_measurements(self, executed):
        _job, record = executed
        assert set(record.links) == {"n0->n1", "n1->n2"}
        assert record.delivery_packets[TARGET_FLOW_ID] > 0
        assert record.churn is not None
        assert 0.0 <= record.blocking_probability() <= 1.0
        assert record.delay_percentile(TARGET_FLOW_ID, 50.0) > 0.0

    def test_record_round_trips(self, executed):
        _job, record = executed
        raw = record.to_dict()
        assert raw["schema"] == NETWORK_SCHEMA
        assert NetworkRecord.from_dict(raw) == record


class TestResultCache:
    def test_put_get_round_trip(self, executed, tmp_path):
        job, record = executed
        cache = ResultCache(tmp_path)
        cache.put(record)
        cached = cache.get(job.digest())
        assert isinstance(cached, NetworkRecord)
        assert cached == record

    def test_runner_replays_network_jobs_from_cache(self, tmp_path):
        jobs = [small_job(seed=seed) for seed in (1, 2)]
        cold = CampaignRunner(cache=ResultCache(tmp_path))
        first = cold.run(jobs)
        assert cold.last_stats.executed == 2
        warm = CampaignRunner(cache=ResultCache(tmp_path))
        second = warm.run(jobs)
        assert warm.last_stats.cache_hits == 2
        assert warm.last_stats.executed == 0
        assert second == first
        assert all(record.telemetry.cache_hit for record in second)


class TestParallelism:
    def test_parallel_run_matches_serial_blocking_probabilities(self):
        # Acceptance criterion: the same seeded churn jobs produce
        # identical records — blocking probabilities included — whether
        # simulated in-process or across a process pool.
        jobs = [small_job(seed=seed) for seed in (1, 2, 3)]
        serial = CampaignRunner(workers=1).run(jobs)
        parallel = CampaignRunner(workers=2).run(jobs)
        assert serial == parallel
        assert [r.blocking_probability() for r in serial] == [
            r.blocking_probability() for r in parallel
        ]

    def test_duplicate_jobs_simulate_once(self):
        runner = CampaignRunner()
        records = runner.run([small_job(seed=7), small_job(seed=7)])
        assert runner.last_stats.submitted == 2
        assert runner.last_stats.unique == 1
        assert records[0] is records[1]
