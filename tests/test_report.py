"""ASCII report rendering."""

from repro.experiments.figures import FigureResult
from repro.experiments.report import ascii_chart, format_figure, format_table
from repro.metrics.stats import MeanCI


class TestFormatTable:
    def test_headers_and_rows_rendered(self):
        text = format_table(["a", "b"], [["1", "2"], ["3", "4"]])
        lines = text.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert lines[1].startswith("-")
        assert "1" in lines[2] and "4" in lines[3]

    def test_columns_aligned(self):
        text = format_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = text.splitlines()
        # All data lines padded to the same width.
        assert len(lines[2]) <= len(lines[3])

    def test_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text


class TestFormatFigure:
    def make_result(self, halfwidth=0.5):
        return FigureResult(
            name="Figure 99",
            title="A test figure",
            xlabel="buffer (MB)",
            ylabel="utilization (%)",
            x=[0.5, 1.0],
            series={
                "scheme A": [MeanCI(90.0, halfwidth, 5), MeanCI(95.0, halfwidth, 5)],
            },
        )

    def test_caption_and_axes(self):
        text = format_figure(self.make_result())
        assert "Figure 99" in text
        assert "A test figure" in text
        assert "utilization (%)" in text
        assert "buffer (MB)" in text

    def test_ci_rendered_when_nonzero(self):
        assert "±" in format_figure(self.make_result(halfwidth=0.5))

    def test_ci_omitted_when_zero(self):
        assert "±" not in format_figure(self.make_result(halfwidth=0.0))

    def test_one_row_per_x(self):
        text = format_figure(self.make_result())
        data_lines = text.splitlines()[4:]
        assert len(data_lines) == 2

    def test_chart_appended_on_request(self):
        plain = format_figure(self.make_result())
        with_chart = format_figure(self.make_result(), chart=True)
        assert len(with_chart) > len(plain)
        assert "o=scheme A" in with_chart


class TestAsciiChart:
    def make_result(self, series=None):
        if series is None:
            series = {
                "up": [MeanCI(10.0, 0.0, 1), MeanCI(20.0, 0.0, 1),
                       MeanCI(30.0, 0.0, 1)],
                "down": [MeanCI(30.0, 0.0, 1), MeanCI(20.0, 0.0, 1),
                         MeanCI(10.0, 0.0, 1)],
            }
        return FigureResult(
            name="Figure X", title="chart", xlabel="buffer", ylabel="y",
            x=[1.0, 2.0, 3.0], series=series,
        )

    def test_axis_labels_show_extremes(self):
        chart = ascii_chart(self.make_result())
        assert "30" in chart
        assert "10" in chart

    def test_each_series_gets_a_symbol(self):
        chart = ascii_chart(self.make_result())
        assert "o=up" in chart and "x=down" in chart
        assert chart.count("o") >= 3

    def test_monotone_series_renders_monotone_rows(self):
        chart = ascii_chart(self.make_result(series={
            "up": [MeanCI(0.0, 0.0, 1), MeanCI(50.0, 0.0, 1),
                   MeanCI(100.0, 0.0, 1)],
        }), height=5)
        lines = chart.splitlines()[:5]
        rows = {}
        for row_index, line in enumerate(lines):
            for col, char in enumerate(line):
                if char == "o":
                    rows[col] = row_index
        columns = sorted(rows)
        heights = [rows[c] for c in columns]
        assert heights == sorted(heights, reverse=True)

    def test_flat_series_does_not_crash(self):
        chart = ascii_chart(self.make_result(series={
            "flat": [MeanCI(5.0, 0.0, 1)] * 3,
        }))
        assert "flat" in chart

    def test_empty_series(self):
        result = FigureResult("F", "t", "x", "y", x=[], series={})
        assert ascii_chart(result) == "(no data)"
