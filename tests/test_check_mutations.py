"""Mutation smoke: every invariant class catches its seeded violation.

Each test plants exactly one defect — an oversubscribed buffer, a rate
overflow, a broken route, an infeasible churn region, a stale schema
tag, a leaky buffer-pool trace, an orphan RNG stream, an unregistered
trace event, a hot-loop time accumulation — and asserts the
auditor/linter reports the matching
finding code.  This is the proof that the checks detect, not just that
they stay quiet on clean input.
"""

import dataclasses
import json
import textwrap

from repro.check.cli import check_paths, failing
from repro.check.invariants import check_scenario, check_scenario_dict
from repro.obs.events import TRACE_SCHEMA
from repro.experiments.fabric.demo import demo_tandem
from repro.lint import lint_paths


def seeded_codes(findings):
    return sorted({finding.rule_id for finding in findings})


def mutated_tandem(**overrides):
    return dataclasses.replace(demo_tandem(hops=2), **overrides)


class TestInvariantMutations:
    def test_oversubscribed_buffer_raises_rpr201(self):
        scenario = mutated_tandem()
        scenario = dataclasses.replace(
            scenario,
            nodes=tuple(
                node
                if node.buffer_size is None
                else dataclasses.replace(node, buffer_size=2000.0)
                for node in scenario.nodes
            ),
        )
        assert seeded_codes(check_scenario(scenario)) == ["RPR201"]

    def test_rate_overflow_raises_rpr202(self):
        scenario = mutated_tandem()
        scenario = dataclasses.replace(
            scenario,
            links=tuple(
                dataclasses.replace(link, rate=link.rate / 1000.0)
                for link in scenario.links
            ),
        )
        assert "RPR202" in seeded_codes(check_scenario(scenario))

    def test_broken_route_raises_rpr203(self):
        raw = demo_tandem(hops=2).to_dict()
        raw["flows"][0]["route"] = ["n0", "n2"]  # skips the n0->n1 hop
        assert seeded_codes(check_scenario_dict(raw)) == ["RPR203"]

    def test_infeasible_churn_raises_rpr204(self):
        scenario = demo_tandem(hops=2)
        churn = scenario.churn
        churn = dataclasses.replace(
            churn,
            templates=tuple(
                dataclasses.replace(template, bucket=4_000_000.0, mean_burst=4_000_000.0)
                for template in churn.templates
            ),
        )
        assert seeded_codes(
            check_scenario(dataclasses.replace(scenario, churn=churn))
        ) == ["RPR204"]

    def test_stale_schema_tag_raises_rpr205(self, tmp_path):
        target = tmp_path / "BENCH_old.json"
        target.write_text(json.dumps({"schema": "repro-bench-v0"}), encoding="utf-8")
        findings = check_paths([str(target)])
        assert seeded_codes(findings) == ["RPR205"]
        assert failing(findings)  # error severity: fails the gate

    def test_leaky_pool_trace_raises_rpr206(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        header = {"schema": TRACE_SCHEMA}
        leaky = {
            "kind": "pool",
            "time": 1.0,
            "reserved": 400.0,
            "headroom": 100.0,
            "holes": 400.0,  # 400 + 100 + 400 != 1000
            "capacity": 1000.0,
            "flows": 1,
            "node": "n0->n1",
        }
        target.write_text(
            json.dumps(header) + "\n" + json.dumps(leaky) + "\n", encoding="utf-8"
        )
        findings = check_paths([str(target)])
        assert seeded_codes(findings) == ["RPR206"]
        assert failing(findings)


def lint_codes(tmp_path, relpath, source):
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return seeded_codes(lint_paths([str(tmp_path / "src")]))


class TestProgramRuleMutations:
    def test_orphan_rng_raises_rpr107(self, tmp_path):
        assert "RPR107" in lint_codes(
            tmp_path,
            "src/repro/analysis/streams.py",
            """
            import numpy as np

            def make():
                return np.random.default_rng()
            """,
        )

    def test_unregistered_event_raises_rpr108(self, tmp_path):
        assert "RPR108" in lint_codes(
            tmp_path,
            "src/repro/obs/ev.py",
            """
            class Enqueue:
                kind = "enqueue"

            class Rogue:
                kind = "rogue"

            EVENT_TYPES = {cls.kind: cls for cls in (Enqueue,)}
            """,
        )

    def test_hot_loop_accumulation_raises_rpr109(self, tmp_path):
        assert "RPR109" in lint_codes(
            tmp_path,
            "src/repro/sim/clock.py",
            """
            def drain(self, step):
                while self.pending:
                    self._next_time += step
            """,
        )
