"""Tandem networks: end-to-end guarantees across multiple hops."""

import pytest

from repro.core.fixed_threshold import FixedThresholdManager
from repro.core.tail_drop import TailDropManager
from repro.core.thresholds import flow_threshold
from repro.errors import ConfigurationError
from repro.metrics.collector import StatsCollector
from repro.net.tandem import build_tandem
from repro.net.topology import per_hop_sigma
from repro.sim.engine import Simulator
from repro.traffic.shaper import LeakyBucketShaper
from repro.traffic.sources import CBRSource, GreedySource, OnOffSource

import numpy as np

LINK = 1_000_000.0
PKT = 500.0
HOP_BUFFER = 60_000.0


class TestBuildTandem:
    def test_node_and_link_count(self):
        sim = Simulator()
        net, names = build_tandem(
            sim, [LINK] * 3, [lambda: TailDropManager(HOP_BUFFER)] * 3
        )
        assert names == ["n0", "n1", "n2", "n3"]
        assert len(net.links) == 3

    def test_mismatched_managers_rejected(self):
        with pytest.raises(ConfigurationError):
            build_tandem(Simulator(), [LINK], [])

    def test_empty_tandem_rejected(self):
        with pytest.raises(ConfigurationError):
            build_tandem(Simulator(), [], [])


class TestTandemWarmup:
    """Auto-created hop collectors honour the warmup window."""

    def run_cbr(self, warmup):
        sim = Simulator()
        net, names = build_tandem(
            sim, [LINK], [lambda: TailDropManager(HOP_BUFFER)], warmup=warmup
        )
        net.set_route(1, names)
        CBRSource(sim, 1, 100_000.0, net.entry(1), packet_size=PKT, until=10.0)
        sim.run(until=12.0)
        return net.links[("n0", "n1")].collector.flows[1]

    def test_pre_warmup_packets_excluded(self):
        # 200 pkt/s CBR for 10 s: a 5 s warmup must drop roughly the
        # first half of the offered packets from the hop statistics.
        full = self.run_cbr(warmup=0.0)
        windowed = self.run_cbr(warmup=5.0)
        assert full.offered_packets == pytest.approx(2000, abs=2)
        assert windowed.offered_packets == pytest.approx(1000, abs=2)
        assert windowed.offered_packets < full.offered_packets

    def test_explicit_collectors_keep_their_own_warmup(self):
        sim = Simulator()
        collector = StatsCollector(warmup=2.0)
        net, names = build_tandem(
            sim,
            [LINK],
            [lambda: TailDropManager(HOP_BUFFER)],
            collectors=[collector],
            warmup=5.0,  # must be ignored: the collector carries its own
        )
        net.set_route(1, names)
        CBRSource(sim, 1, 100_000.0, net.entry(1), packet_size=PKT, until=10.0)
        sim.run(until=12.0)
        assert net.links[("n0", "n1")].collector is collector
        assert collector.flows[1].offered_packets == pytest.approx(1600, abs=2)

    def test_negative_warmup_rejected(self):
        with pytest.raises(ConfigurationError):
            build_tandem(
                Simulator(), [LINK], [lambda: TailDropManager(HOP_BUFFER)],
                warmup=-1.0,
            )


class TestEndToEndGuarantee:
    def build(self, with_thresholds, hops=3):
        """Tandem where independent greedy cross-traffic hits each hop."""
        sim = Simulator()
        rho = 250_000.0
        sigma = 10_000.0
        hop_delay = HOP_BUFFER / LINK
        sigmas = per_hop_sigma(sigma, rho, [hop_delay] * hops)
        collectors = [StatsCollector() for _ in range(hops)]

        def manager_factory_for(hop):
            def factory():
                if not with_thresholds:
                    return TailDropManager(HOP_BUFFER)
                threshold = flow_threshold(
                    sigmas[hop], rho, HOP_BUFFER, LINK
                ) + PKT
                cross_id = 100 + hop
                return FixedThresholdManager(
                    HOP_BUFFER, {1: threshold, cross_id: HOP_BUFFER - threshold}
                )
            return factory

        net, names = build_tandem(
            sim, [LINK] * hops,
            [manager_factory_for(hop) for hop in range(hops)],
            collectors=collectors,
        )
        # Route for the flow of interest: full path.
        net.set_route(1, names)
        # Cross traffic: enters at hop i, leaves at the next node.
        for hop in range(hops):
            cross_id = 100 + hop
            net.set_route(cross_id, [names[hop], names[hop + 1]])
            GreedySource(sim, cross_id, LINK, net.entry(cross_id),
                         packet_size=PKT, until=20.0)
        shaper = LeakyBucketShaper(sim, sigma, rho, net.entry(1))
        OnOffSource(
            sim, 1, peak_rate=800_000.0, avg_rate=rho, mean_burst=sigma,
            sink=shaper, rng=np.random.default_rng(17), packet_size=PKT,
            until=20.0,
        )
        sim.run(until=25.0)
        total_drops = sum(
            collector.flows[1].dropped_packets
            for collector in collectors
            if 1 in collector.flows
        )
        delivered = net.sink.bytes.get(1, 0.0)
        return total_drops, delivered, net, collectors

    def test_thresholds_protect_across_every_hop(self):
        drops, delivered, _, _ = self.build(with_thresholds=True)
        assert drops == 0
        assert delivered > 0

    def test_no_management_loses_somewhere(self):
        drops, _, _, _ = self.build(with_thresholds=False)
        assert drops > 0

    def test_end_to_end_rate_close_to_reservation(self):
        _, delivered, _, _ = self.build(with_thresholds=True)
        # 20 s of source activity at 250 kB/s average.
        assert delivered / 20.0 == pytest.approx(250_000.0, rel=0.25)

    def test_per_hop_delay_bounded_by_buffer_over_rate(self):
        # Network queueing obeys the per-hop B/R bound at every hop (the
        # end-to-end sink delay additionally includes the access shaper's
        # hold time, which is unbounded for an avg-rate-equals-rho flow).
        _, _, _, collectors = self.build(with_thresholds=True)
        hop_bound = HOP_BUFFER / LINK + PKT / LINK
        for collector in collectors:
            if 1 in collector.flows:
                assert collector.flows[1].delay_max <= hop_bound + 1e-9
