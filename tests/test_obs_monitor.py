"""Live conformance monitor: bounds honoured in vivo, violated in vitro.

Two acceptance runs frame the unit tests: the reference tandem with
churn **and** live reclamation must finish with a clean report (the
paper's guarantees hold under the most dynamic configuration we can
build), while the deliberately undersized tandem must produce
conformant-drop errors and a failing report.  The unit tests then pin
each check in isolation with synthetic events.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.fabric import run_fabric
from repro.experiments.fabric.demo import demo_tandem, undersized_tandem
from repro.obs.events import DepartEvent, DropEvent, ReprovisionEvent
from repro.obs.monitor import (
    CHECKS,
    ConformanceMonitor,
    MonitorReport,
    Violation,
)
from repro.obs.sink import RingSink
from repro.sim.engine import Simulator


def sample_violation(**overrides):
    base = dict(
        check="hop-delay",
        severity="error",
        time=1.25,
        flow_id=3,
        node="n0->n1",
        observed=0.2,
        bound=0.1,
        window=0.05,
        message="per-hop delay exceeded analytic bound",
    )
    base.update(overrides)
    return Violation(**base)


class TestAcceptance:
    def test_monitored_churn_reclamation_tandem_is_conformant(self):
        monitor = ConformanceMonitor()
        scenario = demo_tandem(
            hops=2, seed=0, churn=True, reclamation=True, delay_histograms=False
        )
        result = run_fabric(scenario, monitor=monitor)
        report = result.monitor_report
        assert report is not None
        assert report.ok, report.render()
        # Every check family actually fired — a clean report from a
        # monitor that evaluated nothing would prove nothing.
        for name in CHECKS:
            assert report.checks.get(name, 0) > 0, name
        assert report.sweeps > 0

    def test_undersized_tandem_violates_conformant_drop(self):
        monitor = ConformanceMonitor()
        result = run_fabric(undersized_tandem(hops=2, seed=0), monitor=monitor)
        report = result.monitor_report
        assert not report.ok
        drops = [v for v in report.violations if v.check == "conformant-drop"]
        assert drops
        assert all(v.severity == "error" for v in drops)
        assert report.error_count >= len(drops)


class TestValidation:
    def test_interval_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ConformanceMonitor(interval=0.0)

    def test_tolerance_must_be_non_negative(self):
        with pytest.raises(ConfigurationError):
            ConformanceMonitor(tolerance=-1e-9)

    def test_max_violations_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ConformanceMonitor(max_violations=0)

    def test_hop_bound_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ConformanceMonitor().set_hop_bound("n0->n1", 0.0)

    def test_double_install_rejected(self):
        monitor = ConformanceMonitor()
        sim = Simulator()
        monitor.install(sim, 1.0)
        with pytest.raises(ConfigurationError):
            monitor.install(sim, 1.0)

    def test_install_until_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ConformanceMonitor().install(Simulator(), -1.0)


class TestEventChecks:
    def test_drop_on_watched_flow_is_a_violation(self):
        monitor = ConformanceMonitor()
        monitor.watch_flow(7)
        monitor.emit(DropEvent(time=0.5, flow_id=7, size=500.0, reason="threshold"))
        assert len(monitor.violations) == 1
        violation = monitor.violations[0]
        assert violation.check == "conformant-drop"
        assert violation.severity == "error"
        assert "threshold" in violation.message

    def test_drop_on_unwatched_flow_is_counted_not_flagged(self):
        monitor = ConformanceMonitor()
        monitor.watch_flow(7)
        monitor.unwatch_flow(7)
        monitor.emit(DropEvent(time=0.5, flow_id=7, size=500.0, reason="threshold"))
        assert monitor.violations == []
        assert monitor.finalize().checks["conformant-drop"] == 1

    def test_hop_delay_checked_against_bound(self):
        monitor = ConformanceMonitor()
        monitor.set_hop_bound("n0->n1", 0.1)
        ok = DepartEvent(time=1.0, flow_id=2, size=500.0, delay=0.1, node="n0->n1")
        bad = DepartEvent(time=2.0, flow_id=2, size=500.0, delay=0.2, node="n0->n1")
        elsewhere = DepartEvent(time=3.0, flow_id=2, size=500.0, delay=9.0, node="x")
        for event in (ok, bad, elsewhere):
            monitor.emit(event)
        assert [v.check for v in monitor.violations] == ["hop-delay"]
        assert monitor.violations[0].observed == 0.2
        # Only departures at bounded hops are evaluated.
        assert monitor.finalize().checks["hop-delay"] == 2

    def test_occupancy_sweep_flags_excess(self):
        monitor = ConformanceMonitor()
        state = {"occ": 900.0}
        monitor.add_occupancy_check("n0->n1", 1, lambda: state["occ"], lambda: 1000.0)
        monitor.sweep_once(0.5)
        assert monitor.violations == []
        state["occ"] = 1100.0
        monitor.sweep_once(1.0)
        assert [v.check for v in monitor.violations] == ["occupancy-threshold"]
        assert monitor.violations[0].window == monitor.interval

    def test_reprovision_shrink_tolerated_while_draining(self):
        monitor = ConformanceMonitor()
        state = {"occ": 1800.0, "thr": 1000.0}
        monitor.add_occupancy_check(
            "n0->n1", 1, lambda: state["occ"], lambda: state["thr"]
        )
        # Live shrink 2000 -> 1000 while occupancy sits at 1800: the
        # old threshold becomes a drain cap, not a violation.
        monitor.emit(
            ReprovisionEvent(
                time=0.4, flow_id=1, threshold=1000.0, previous=2000.0, node="n0->n1"
            )
        )
        monitor.sweep_once(0.5)
        assert monitor.violations == []
        # The cap ratchets down with the observed drain: rising back
        # above the last observation is a genuine violation.
        state["occ"] = 1500.0
        monitor.sweep_once(0.6)
        assert monitor.violations == []
        state["occ"] = 1700.0
        monitor.sweep_once(0.7)
        assert [v.check for v in monitor.violations] == ["occupancy-threshold"]

    def test_drop_occupancy_checks_releases_flow(self):
        monitor = ConformanceMonitor()
        monitor.add_occupancy_check("n0->n1", 1, lambda: 9999.0, lambda: 1.0)
        monitor.drop_occupancy_checks(1)
        monitor.sweep_once(0.5)
        assert monitor.violations == []

    def test_e2e_delay_uses_per_hop_maxima_for_shaped_flows(self):
        monitor = ConformanceMonitor()
        route = ("n0->n1", "n1->n2")
        monitor.watch_flow(5, shaped=True, route=route)
        for node in route:
            monitor.set_hop_bound(node, 0.1)
        for node in route:
            monitor.emit(
                DepartEvent(time=1.0, flow_id=5, size=500.0, delay=0.15, node=node)
            )
        report = monitor.finalize()
        e2e = [v for v in report.violations if v.check == "e2e-delay"]
        assert len(e2e) == 1
        assert e2e[0].observed == pytest.approx(0.3)
        assert e2e[0].bound == pytest.approx(0.2)

    def test_max_violations_suppresses_overflow(self):
        monitor = ConformanceMonitor(max_violations=3)
        monitor.watch_flow(1)
        for i in range(10):
            monitor.emit(
                DropEvent(time=float(i), flow_id=1, size=100.0, reason="threshold")
            )
        assert len(monitor.violations) == 3
        assert monitor.suppressed == 7
        # The check counter keeps the true magnitude either way.
        assert monitor.finalize().checks["conformant-drop"] == 10

    def test_attach_trace_mirrors_violations(self):
        ring = RingSink()
        monitor = ConformanceMonitor()
        monitor.attach_trace(ring)
        monitor.watch_flow(1)
        monitor.emit(DropEvent(time=0.5, flow_id=1, size=100.0, reason="threshold"))
        mirrored = [e for e in ring.events() if type(e).kind == "violation"]
        assert len(mirrored) == 1
        assert mirrored[0].check == "conformant-drop"
        assert mirrored[0].flow_id == 1


class TestReport:
    def test_violation_round_trip(self):
        violation = sample_violation()
        assert Violation.from_dict(violation.to_dict()) == violation

    def test_violation_render(self):
        text = sample_violation().render()
        assert "hop-delay" in text and "[error]" in text
        assert "node=n0->n1" in text and "flow=3" in text
        anonymous = sample_violation(flow_id=-1, node="", message="")
        assert "flow=-" in anonymous.render()
        assert "node=-" in anonymous.render()

    def test_report_round_trip(self):
        report = MonitorReport(
            violations=[sample_violation()],
            events_seen=42,
            sweeps=7,
            checks={"hop-delay": 5},
        )
        clone = MonitorReport.from_dict(report.to_dict())
        assert clone == report
        assert not clone.ok
        assert clone.error_count == 1 and clone.warning_count == 0

    def test_report_render(self):
        ok = MonitorReport(events_seen=10, sweeps=2)
        assert "conformance: OK" in ok.render()
        bad = MonitorReport(violations=[sample_violation()])
        assert "1 violation(s)" in bad.render()
        assert "hop-delay" in bad.render()
