"""Property-based tests: buffer-manager invariants under random workloads.

Every manager must preserve, for any admissible operation sequence:

* total occupancy == sum of per-flow occupancies,
* total occupancy never exceeds capacity,
* rejected packets change nothing,
* (sharing) holes + headroom + occupancy == capacity, headroom <= H.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynamic_threshold import DynamicThresholdManager
from repro.core.fixed_threshold import FixedThresholdManager
from repro.core.fred import FREDManager
from repro.core.red import REDManager
from repro.core.shared_headroom import SharedHeadroomManager
from repro.core.tail_drop import TailDropManager

# An operation is (flow_id, size, depart_fraction); we admit, and later
# depart queued packets driven by the fraction.
operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),
        st.floats(min_value=1.0, max_value=2000.0, allow_nan=False),
        st.booleans(),
    ),
    min_size=1,
    max_size=120,
)

thresholds_strategy = st.dictionaries(
    st.integers(min_value=0, max_value=4),
    st.floats(min_value=0.0, max_value=5000.0, allow_nan=False),
    min_size=0,
    max_size=5,
)


def drive(manager, ops):
    """Feed an op sequence through a manager, departing FIFO on demand."""
    queued = []  # (flow_id, size) currently in the buffer
    for flow_id, size, depart_first in ops:
        if depart_first and queued:
            gone_flow, gone_size = queued.pop(0)
            manager.on_depart(gone_flow, gone_size)
        if manager.try_admit(flow_id, size):
            queued.append((flow_id, size))
        check_core_invariants(manager, queued)
    # Drain and re-check.
    while queued:
        gone_flow, gone_size = queued.pop(0)
        manager.on_depart(gone_flow, gone_size)
        check_core_invariants(manager, queued)


def check_core_invariants(manager, queued):
    assert manager.total_occupancy <= manager.capacity + 1e-6
    by_flow = {}
    for flow_id, size in queued:
        by_flow[flow_id] = by_flow.get(flow_id, 0.0) + size
    for flow_id, occupancy in by_flow.items():
        assert abs(manager.occupancy(flow_id) - occupancy) < 1e-6
    assert abs(manager.total_occupancy - sum(by_flow.values())) < 1e-6


class TestTailDropInvariants:
    @given(ops=operations)
    @settings(max_examples=60, deadline=None)
    def test_invariants(self, ops):
        drive(TailDropManager(10_000.0), ops)


class TestFixedThresholdInvariants:
    @given(ops=operations, thresholds=thresholds_strategy)
    @settings(max_examples=60, deadline=None)
    def test_invariants(self, ops, thresholds):
        drive(FixedThresholdManager(10_000.0, thresholds), ops)

    @given(ops=operations, thresholds=thresholds_strategy)
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_threshold(self, ops, thresholds):
        manager = FixedThresholdManager(10_000.0, thresholds)
        queued = []
        for flow_id, size, depart_first in ops:
            if depart_first and queued:
                gone = queued.pop(0)
                manager.on_depart(*gone)
            if manager.try_admit(flow_id, size):
                queued.append((flow_id, size))
            assert manager.occupancy(flow_id) <= manager.threshold(flow_id) + 1e-6


class TestSharedHeadroomInvariants:
    @given(
        ops=operations,
        thresholds=thresholds_strategy,
        headroom=st.floats(min_value=0.0, max_value=12_000.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_counter_invariant(self, ops, thresholds, headroom):
        manager = SharedHeadroomManager(10_000.0, thresholds, headroom)
        queued = []
        for flow_id, size, depart_first in ops:
            if depart_first and queued:
                gone = queued.pop(0)
                manager.on_depart(*gone)
            if manager.try_admit(flow_id, size):
                queued.append((flow_id, size))
            free = manager.capacity - manager.total_occupancy
            assert abs(manager.holes + manager.headroom - free) < 1e-3
            assert manager.headroom <= manager.headroom_cap + 1e-9
            assert manager.holes >= -1e-9
        while queued:
            manager.on_depart(*queued.pop(0))
        assert abs(
            manager.holes + manager.headroom - manager.capacity
        ) < 1e-3

    @given(ops=operations, thresholds=thresholds_strategy)
    @settings(max_examples=40, deadline=None)
    def test_sharing_never_stricter_than_fixed_partition(self, ops, thresholds):
        # Any packet the fixed-partition manager admits, the sharing
        # manager (same thresholds, any headroom) admits too.
        fixed = FixedThresholdManager(10_000.0, thresholds)
        sharing = SharedHeadroomManager(10_000.0, thresholds, headroom=3_000.0)
        queued = []  # (flow, size, in_fixed, in_sharing)
        for flow_id, size, depart_first in ops:
            if depart_first and queued:
                gone_flow, gone_size, in_fixed, in_sharing = queued.pop(0)
                if in_fixed:
                    fixed.on_depart(gone_flow, gone_size)
                if in_sharing:
                    sharing.on_depart(gone_flow, gone_size)
            before_states_match = (
                sharing.total_occupancy == fixed.total_occupancy
                and sharing.occupancy(flow_id) == fixed.occupancy(flow_id)
            )
            admitted_sharing = sharing.try_admit(flow_id, size)
            admitted_fixed = fixed.try_admit(flow_id, size)
            if admitted_fixed and before_states_match:
                # From identical occupancy states, sharing admits a
                # superset of what the fixed partition admits.
                assert admitted_sharing
            if admitted_fixed or admitted_sharing:
                queued.append((flow_id, size, admitted_fixed, admitted_sharing))


class TestDynamicThresholdInvariants:
    @given(
        ops=operations,
        alpha=st.floats(min_value=0.1, max_value=4.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_invariants(self, ops, alpha):
        drive(DynamicThresholdManager(10_000.0, alpha=alpha), ops)

    @given(ops=operations)
    @settings(max_examples=60, deadline=None)
    def test_admission_respects_dynamic_threshold(self, ops):
        manager = DynamicThresholdManager(10_000.0, alpha=1.0)
        for flow_id, size, _ in ops:
            before_free = manager.capacity - manager.total_occupancy
            before_occ = manager.occupancy(flow_id)
            if manager.try_admit(flow_id, size):
                assert before_occ + size <= 1.0 * before_free + 1e-6


class TestREDInvariants:
    @given(ops=operations)
    @settings(max_examples=40, deadline=None)
    def test_invariants(self, ops):
        clock_value = [0.0]
        manager = REDManager(
            10_000.0, 2_000.0, 8_000.0, np.random.default_rng(0),
            lambda: clock_value[0],
        )
        drive(manager, ops)

    @given(ops=operations)
    @settings(max_examples=40, deadline=None)
    def test_average_stays_finite_and_nonnegative(self, ops):
        clock_value = [0.0]
        manager = REDManager(
            10_000.0, 2_000.0, 8_000.0, np.random.default_rng(1),
            lambda: clock_value[0],
        )
        for flow_id, size, _ in ops:
            clock_value[0] += 0.001
            manager.try_admit(flow_id, size)
            assert 0.0 <= manager.avg <= manager.capacity


class TestFREDInvariants:
    @given(ops=operations)
    @settings(max_examples=40, deadline=None)
    def test_invariants(self, ops):
        clock_value = [0.0]
        manager = FREDManager(
            10_000.0, 2_000.0, 8_000.0, np.random.default_rng(2),
            lambda: clock_value[0], minq=500.0, maxq=4_000.0,
        )
        drive(manager, ops)
