"""End-to-end behaviour of the buffer-sharing scheme (Section 3.3)."""

import pytest

from repro.core.shared_headroom import SharedHeadroomManager
from repro.core.thresholds import flow_threshold
from repro.metrics.collector import StatsCollector
from repro.sched.fifo import FIFOScheduler
from repro.sim.engine import Simulator
from repro.sim.port import OutputPort
from repro.traffic.sources import CBRSource, GreedySource

LINK = 1_000_000.0
PKT = 500.0


def build(manager, warmup=5.0):
    sim = Simulator()
    collector = StatsCollector(warmup=warmup)
    port = OutputPort(sim, LINK, FIFOScheduler(), manager, collector)
    return sim, port, collector


class TestUtilisationRecovery:
    def test_sharing_fills_idle_reservations(self):
        # One reserved flow is silent; under fixed partitioning its buffer
        # share is wasted, under sharing a greedy flow may borrow it.
        buffer_size = 50_000.0
        thresholds = {
            1: flow_threshold(0.0, 600_000.0, buffer_size, LINK),  # silent
            2: flow_threshold(0.0, 200_000.0, buffer_size, LINK),
        }
        shared = SharedHeadroomManager(buffer_size, thresholds, headroom=5_000.0)
        sim, port, collector = build(shared)
        GreedySource(sim, 2, LINK, port, packet_size=PKT, until=30.0)
        sim.run(until=30.0)
        throughput = collector.flows[2].departed_bytes / 25.0
        # Flow 2 alone saturates the link thanks to borrowed holes.
        assert throughput == pytest.approx(LINK, rel=0.02)

    def test_borrowed_space_returned_when_owner_wakes_up(self):
        buffer_size = 50_000.0
        rho1 = 600_000.0
        thresholds = {
            1: flow_threshold(0.0, rho1, buffer_size, LINK) + PKT,
            2: flow_threshold(0.0, 200_000.0, buffer_size, LINK),
        }
        shared = SharedHeadroomManager(buffer_size, thresholds, headroom=10_000.0)
        sim, port, collector = build(shared, warmup=20.0)
        GreedySource(sim, 2, LINK, port, packet_size=PKT, until=40.0)
        # Flow 1 starts sending its reserved rate mid-run.
        CBRSource(sim, 1, rho1, port, packet_size=PKT, start=10.0, until=40.0)
        sim.run(until=40.0)
        rate1 = collector.flows[1].departed_bytes / 20.0
        # After the transient, flow 1 receives (close to) its guarantee;
        # the borrower cannot lock it out because fresh excess admissions
        # are capped by the shrinking holes.
        assert rate1 > 0.9 * rho1


class TestHeadroomProtection:
    def test_headroom_shields_reserved_flow_through_transient(self):
        # With zero headroom, a reserved flow waking up can find the
        # buffer entirely borrowed; a healthy headroom guarantees room.
        buffer_size = 50_000.0
        rho1 = 400_000.0
        thresholds = {1: flow_threshold(0.0, rho1, buffer_size, LINK) + PKT}
        drops = {}
        for headroom in (0.0, 20_000.0):
            shared = SharedHeadroomManager(
                buffer_size, thresholds, headroom=headroom
            )
            sim, port, collector = build(shared, warmup=0.0)
            GreedySource(sim, 9, LINK, port, packet_size=PKT, until=30.0)
            CBRSource(sim, 1, rho1, port, packet_size=PKT, start=5.0, until=30.0)
            sim.run(until=30.0)
            drops[headroom] = collector.flows[1].dropped_packets
        assert drops[20_000.0] <= drops[0.0]
        assert drops[20_000.0] == 0
