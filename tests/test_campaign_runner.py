"""CampaignRunner: ordering, deduplication, caching, parallel == serial."""

import json
import pickle

import pytest

from repro.errors import ConfigurationError
from repro.experiments.campaign import (
    CampaignRunner,
    ResultCache,
    ScenarioJob,
    execute_job,
)
from repro.experiments.schemes import Scheme
from repro.experiments.workloads import table1_flows
from repro.units import mbytes

FLOWS = table1_flows()
FAST = dict(sim_time=0.5, warmup=0.1)


def sweep_jobs():
    """A miniature Figure-1-style sweep: schemes x buffers x seeds."""
    return [
        ScenarioJob(
            flows=FLOWS, scheme=scheme, buffer_size=buffer, seed=seed, **FAST
        )
        for scheme in (Scheme.FIFO_NONE, Scheme.FIFO_THRESHOLD)
        for buffer in (mbytes(0.5), mbytes(1))
        for seed in (1, 2)
    ]


def canonical(record):
    return json.dumps(record.to_dict(), sort_keys=True)


class TestSerialExecution:
    def test_records_align_with_jobs(self):
        jobs = sweep_jobs()
        records = CampaignRunner().run(jobs)
        assert len(records) == len(jobs)
        for job, record in zip(jobs, records):
            assert record.job_digest == job.digest()
            assert record.scheme is job.scheme
            assert record.seed == job.seed

    def test_record_matches_direct_execution(self):
        job = sweep_jobs()[0]
        [record] = CampaignRunner().run([job])
        assert canonical(record) == canonical(execute_job(job))

    def test_duplicate_jobs_simulated_once(self):
        job = sweep_jobs()[0]
        runner = CampaignRunner()
        records = runner.run([job, job, job])
        assert records[0] is records[1] is records[2]
        stats = runner.last_stats
        assert stats.submitted == 3
        assert stats.unique == 1
        assert stats.executed == 1

    def test_empty_batch(self):
        runner = CampaignRunner()
        assert runner.run([]) == []
        assert runner.last_stats.submitted == 0


class TestParallelExecution:
    def test_workers_two_matches_serial_byte_for_byte(self):
        jobs = sweep_jobs()
        serial = CampaignRunner(workers=1).run(jobs)
        parallel = CampaignRunner(workers=2).run(jobs)
        assert [canonical(r) for r in serial] == [canonical(r) for r in parallel]

    def test_chunked_dispatch_matches_too(self):
        jobs = sweep_jobs()[:4]
        serial = CampaignRunner().run(jobs)
        chunked = CampaignRunner(workers=2, chunk_size=3).run(jobs)
        assert [canonical(r) for r in serial] == [canonical(r) for r in chunked]

    def test_records_survive_pickling(self):
        # Records cross process boundaries; the round trip must be exact.
        [record] = CampaignRunner().run(sweep_jobs()[:1])
        clone = pickle.loads(pickle.dumps(record))
        assert canonical(clone) == canonical(record)
        assert clone == record


class TestCaching:
    def test_second_run_is_all_hits(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        jobs = sweep_jobs()
        runner = CampaignRunner(cache=cache)

        cold = runner.run(jobs)
        assert runner.last_stats.cache_hits == 0
        assert runner.last_stats.executed == runner.last_stats.unique

        warm = runner.run(jobs)
        assert runner.last_stats.cache_hits == runner.last_stats.unique
        assert runner.last_stats.executed == 0
        assert runner.last_stats.hit_fraction == 1.0
        assert [canonical(r) for r in warm] == [canonical(r) for r in cold]

    def test_changed_input_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = CampaignRunner(cache=cache)
        job = sweep_jobs()[0]
        runner.run([job])

        changed = ScenarioJob(
            flows=job.flows, scheme=job.scheme,
            buffer_size=job.buffer_size, seed=job.seed + 100, **FAST
        )
        runner.run([changed])
        assert runner.last_stats.cache_hits == 0
        assert runner.last_stats.executed == 1

    def test_cache_shared_between_runners(self, tmp_path):
        cache_dir = tmp_path / "cache"
        jobs = sweep_jobs()[:2]
        CampaignRunner(cache=ResultCache(cache_dir)).run(jobs)
        second = CampaignRunner(cache=ResultCache(cache_dir))
        second.run(jobs)
        assert second.last_stats.cache_hits == 2


class TestValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            CampaignRunner(workers=0)

    def test_chunk_size_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            CampaignRunner(chunk_size=0)


class TestPreflight:
    """The invariant audit that runs before any simulation time is spent."""

    def _network_job(self, *, buffer_size=None):
        import dataclasses

        from repro.experiments.campaign.network import NetworkJob
        from repro.experiments.fabric.demo import demo_tandem

        scenario = demo_tandem(hops=2, sim_time=0.5, delay_histograms=False)
        if buffer_size is not None:
            scenario = dataclasses.replace(
                scenario,
                nodes=tuple(
                    node
                    if node.buffer_size is None
                    else dataclasses.replace(node, buffer_size=buffer_size)
                    for node in scenario.nodes
                ),
            )
        return NetworkJob(scenario=scenario)

    def test_clean_scenario_passes_preflight(self):
        job = self._network_job()
        [record] = CampaignRunner(preflight=True).run([job])
        assert record.job_digest == job.digest()

    def test_infeasible_scenario_rejected_before_execution(self):
        runner = CampaignRunner(preflight=True)
        with pytest.raises(ConfigurationError, match="pre-flight"):
            runner.run([self._network_job(buffer_size=2000.0)])
        assert runner.last_stats is None  # nothing executed

    def test_preflight_off_by_default(self):
        # The fabric itself still raises at churn start, so the batch
        # fails either way — but without preflight the error comes from
        # the run, not the auditor.
        runner = CampaignRunner()
        with pytest.raises(ConfigurationError) as excinfo:
            runner.run([self._network_job(buffer_size=2000.0)])
        assert "pre-flight" not in str(excinfo.value)

    def test_single_port_jobs_skip_preflight(self):
        [record] = CampaignRunner(preflight=True).run([sweep_jobs()[0]])
        assert record.events_processed > 0


class TestMonitoredJobs:
    """``REPRO_MONITOR`` attaches per-job observability to every record."""

    def test_monitor_off_by_default(self):
        record = execute_job(sweep_jobs()[0])
        assert record.timeline_summary is None
        assert record.monitor is None

    def test_monitor_env_attaches_timeline_and_report(self, monkeypatch):
        monkeypatch.setenv("REPRO_MONITOR", "1")
        record = execute_job(sweep_jobs()[0])
        assert record.timeline_summary is not None
        assert record.timeline_summary.ticks > 0
        assert record.monitor is not None
        assert record.monitor.events_seen > 0

    def test_falsey_env_values_stay_off(self, monkeypatch):
        for value in ("", "0", "false", "no"):
            monkeypatch.setenv("REPRO_MONITOR", value)
            record = execute_job(sweep_jobs()[0])
            assert record.timeline_summary is None

    def test_obs_fields_excluded_from_dict_and_equality(self, monkeypatch):
        job = sweep_jobs()[0]
        plain = execute_job(job)
        monkeypatch.setenv("REPRO_MONITOR", "1")
        monitored = execute_job(job)
        # The attachments never appear in the serialized record, and the
        # measurements are untouched — the only trace of monitoring is
        # the sampler/sweep events in the engine's event counter.
        monitored_dict = monitored.to_dict()
        plain_dict = plain.to_dict()
        assert "timeline_summary" not in monitored_dict
        assert "monitor" not in monitored_dict
        assert monitored_dict.pop("events_processed") > plain_dict.pop(
            "events_processed"
        )
        assert monitored_dict == plain_dict

    def test_monitored_network_job_reports_conformance(self, monkeypatch):
        from repro.experiments.campaign.network import NetworkJob
        from repro.experiments.fabric.demo import demo_tandem

        monkeypatch.setenv("REPRO_MONITOR", "1")
        scenario = demo_tandem(
            hops=2, sim_time=0.5, churn=False, delay_histograms=False
        )
        record = execute_job(NetworkJob(scenario=scenario))
        assert record.monitor is not None
        assert record.monitor.ok, record.monitor.render()
        assert record.timeline_summary.series
