"""Every example script runs end to end and prints its report.

These are smoke tests with assertions on the printed take-aways; the
examples double as executable documentation, so breaking them breaks the
README's promises.
"""

import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "FIFO (no mgmt)" in out
        assert "FIFO + thresholds" in out
        assert "Take-away" in out

    def test_sla_protection(self, capsys):
        out = run_example("sla_protection.py", capsys)
        # The script itself asserts zero premium drops.
        assert "premium drops" in out
        assert "FIFO + threshold (paper)" in out

    def test_excess_sharing(self, capsys):
        out = run_example("excess_sharing.py", capsys)
        assert "ratio 8/6" in out
        assert "WFQ sharing H=2MB" in out

    def test_hybrid_scaling(self, capsys):
        out = run_example("hybrid_scaling.py", capsys)
        assert "alpha_i" in out
        assert "3-queue hybrid + sharing" in out
        assert "lossless buffer, single FIFO" in out

    def test_admission_control(self, capsys):
        out = run_example("admission_control.py", capsys)
        assert "bandwidth-limited" in out
        assert "buffer-limited" in out

    def test_multihop_backbone(self, capsys):
        out = run_example("multihop_backbone.py", capsys)
        assert "per-hop thresholds (paper)" in out
        assert "SLA-flow drops" in out

    def test_every_example_is_covered(self):
        scripts = {path.name for path in EXAMPLES.glob("*.py")}
        tested = {
            "quickstart.py", "sla_protection.py", "excess_sharing.py",
            "hybrid_scaling.py", "admission_control.py",
            "multihop_backbone.py",
        }
        assert scripts == tested
