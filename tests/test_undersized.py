"""Undersized-threshold analysis and its simulation validation."""

import pytest

from repro.analysis.undersized import (
    degradation_fraction,
    effective_rate,
    required_threshold,
)
from repro.core.fixed_threshold import FixedThresholdManager
from repro.errors import ConfigurationError
from repro.metrics.collector import StatsCollector
from repro.sched.fifo import FIFOScheduler
from repro.sim.engine import Simulator
from repro.sim.port import OutputPort
from repro.traffic.sources import CBRSource, GreedySource

LINK = 1_000_000.0
BUFFER = 100_000.0
PKT = 500.0


class TestFormulas:
    def test_inverse_of_proposition1(self):
        # T = rho B / R -> effective rate rho.
        rho = 250_000.0
        threshold = required_threshold(rho, BUFFER, LINK)
        assert effective_rate(threshold, BUFFER, LINK) == pytest.approx(rho)

    def test_half_threshold_half_rate(self):
        rho = 250_000.0
        threshold = required_threshold(rho, BUFFER, LINK)
        assert effective_rate(threshold / 2, BUFFER, LINK) == pytest.approx(rho / 2)

    def test_sigma_portion_carries_no_rate(self):
        sigma = 20_000.0
        threshold = required_threshold(200_000.0, BUFFER, LINK, sigma=sigma)
        assert effective_rate(threshold, BUFFER, LINK, sigma=sigma) == (
            pytest.approx(200_000.0)
        )
        # Threshold made of sigma alone guarantees no sustained rate.
        assert effective_rate(sigma, BUFFER, LINK, sigma=sigma) == 0.0

    def test_effective_rate_clamped_at_link_rate(self):
        assert effective_rate(10 * BUFFER, BUFFER, LINK) == LINK

    def test_degradation_fraction(self):
        rho = 250_000.0
        threshold = required_threshold(rho, BUFFER, LINK)
        assert degradation_fraction(threshold, rho, BUFFER, LINK) == pytest.approx(1.0)
        assert degradation_fraction(0.6 * threshold, rho, BUFFER, LINK) == (
            pytest.approx(0.6)
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            effective_rate(-1.0, BUFFER, LINK)
        with pytest.raises(ConfigurationError):
            required_threshold(2 * LINK, BUFFER, LINK)
        with pytest.raises(ConfigurationError):
            degradation_fraction(1.0, 0.0, BUFFER, LINK)


class TestSimulationValidation:
    def run_with_threshold_fraction(self, fraction):
        """CBR flow at rho with a scaled threshold vs a greedy flow."""
        rho = 250_000.0
        full_threshold = required_threshold(rho, BUFFER, LINK) + PKT
        threshold = fraction * full_threshold
        manager = FixedThresholdManager(
            BUFFER, {1: threshold, 2: BUFFER - threshold}
        )
        sim = Simulator()
        collector = StatsCollector(warmup=10.0)
        port = OutputPort(sim, LINK, FIFOScheduler(), manager, collector)
        CBRSource(sim, 1, rho, port, packet_size=PKT, until=40.0)
        GreedySource(sim, 2, LINK, port, packet_size=PKT, until=40.0)
        sim.run(until=40.0)
        measured = collector.flows[1].departed_bytes / 30.0
        predicted = effective_rate(threshold, BUFFER, LINK)
        return measured, predicted

    @pytest.mark.parametrize("fraction", [0.25, 0.5, 0.75])
    def test_undersized_threshold_delivers_predicted_rate(self, fraction):
        measured, predicted = self.run_with_threshold_fraction(fraction)
        assert measured == pytest.approx(predicted, rel=0.08)

    def test_full_threshold_delivers_reservation(self):
        measured, _ = self.run_with_threshold_fraction(1.0)
        assert measured == pytest.approx(250_000.0, rel=0.03)
