"""repro — Scalable QoS Provision Through Buffer Management (SIGCOMM 1998).

A complete reproduction of Guérin, Kamat, Peris and Rajan's buffer-
management approach to per-flow rate guarantees, including:

* the threshold rule ``T_i = sigma_i + rho_i B / R`` and the buffer-
  sharing (headroom/holes) variant, with FIFO, WFQ and hybrid
  schedulers (:mod:`repro.core`, :mod:`repro.sched`);
* the discrete-event simulator and traffic models used to evaluate them
  (:mod:`repro.sim`, :mod:`repro.traffic`);
* the paper's closed-form analysis — buffer sizing, fluid dynamics,
  hybrid rate optimisation, admission control (:mod:`repro.analysis`);
* the full experiment harness regenerating every figure
  (:mod:`repro.experiments`).

Quickstart::

    from repro import Scheme, run_scenario, table1_flows
    from repro.units import mbytes

    result = run_scenario(table1_flows(), Scheme.FIFO_THRESHOLD, mbytes(2))
    print(f"utilization: {result.utilization():.1%}")
"""

from repro.analysis import (
    FIFOAdmission,
    QueueRequirement,
    WFQAdmission,
    buffer_savings,
    buffer_vs_utilization,
    fifo_min_buffer,
    hybrid_total_buffer,
    optimal_alphas,
    queue_rates,
    two_flow_fluid,
    wfq_min_buffer,
)
from repro.core import (
    DynamicThresholdManager,
    FixedThresholdManager,
    FREDManager,
    HybridBufferManager,
    REDManager,
    SharedHeadroomManager,
    TailDropManager,
    compute_thresholds,
    flow_threshold,
)
from repro.experiments import (
    LINK_RATE,
    CampaignRunner,
    ResultCache,
    ScenarioJob,
    ScenarioRecord,
    Scheme,
    build_scheme,
    run_replications,
    run_scenario,
    table1_flows,
    table2_flows,
)
from repro.metrics import FlowStats, MeanCI, StatsCollector, mean_ci
from repro.sched import FIFOScheduler, HybridScheduler, WFQScheduler
from repro.sim import OutputPort, Packet, Simulator
from repro.traffic import (
    CBRSource,
    FlowSpec,
    GreedySource,
    LeakyBucketShaper,
    OnOffSource,
    TokenBucketMeter,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # simulation substrate
    "Simulator", "Packet", "OutputPort",
    # traffic
    "FlowSpec", "OnOffSource", "CBRSource", "GreedySource",
    "LeakyBucketShaper", "TokenBucketMeter",
    # schedulers
    "FIFOScheduler", "WFQScheduler", "HybridScheduler",
    # buffer management
    "TailDropManager", "FixedThresholdManager", "SharedHeadroomManager",
    "DynamicThresholdManager", "REDManager", "FREDManager",
    "HybridBufferManager", "flow_threshold", "compute_thresholds",
    # analysis
    "wfq_min_buffer", "fifo_min_buffer", "buffer_vs_utilization",
    "two_flow_fluid", "QueueRequirement", "optimal_alphas", "queue_rates",
    "hybrid_total_buffer", "buffer_savings", "WFQAdmission", "FIFOAdmission",
    # metrics
    "FlowStats", "StatsCollector", "MeanCI", "mean_ci",
    # experiments
    "LINK_RATE", "Scheme", "build_scheme", "run_scenario",
    "run_replications", "table1_flows", "table2_flows",
    # campaigns
    "ScenarioJob", "ScenarioRecord", "CampaignRunner", "ResultCache",
]
