"""Unit conversions used throughout the library.

The paper quotes link and flow rates in Mbit/s and buffer / burst sizes in
KBytes or MBytes.  Internally the library uses a single canonical system:

* sizes in **bytes** (floats are allowed for fluid quantities),
* rates in **bytes per second**,
* time in **seconds**.

Decimal prefixes are used (1 KByte = 1000 bytes, 1 MByte = 10**6 bytes).
The qualitative results of the paper do not depend on this choice; it keeps
round paper numbers round.
"""

from __future__ import annotations

BITS_PER_BYTE = 8

#: Bytes in one KByte (decimal convention, see module docstring).
KBYTE = 1_000
#: Bytes in one MByte.
MBYTE = 1_000_000


def mbps(rate_mbits_per_s: float) -> float:
    """Convert a rate in Mbit/s (as quoted in the paper) to bytes/second."""
    # repro: noqa RPR102 — this *is* the canonical conversion definition
    return rate_mbits_per_s * 1e6 / BITS_PER_BYTE


def to_mbps(rate_bytes_per_s: float) -> float:
    """Convert a rate in bytes/second back to Mbit/s for reporting."""
    # repro: noqa RPR102 — this *is* the canonical conversion definition
    return rate_bytes_per_s * BITS_PER_BYTE / 1e6


def kbytes(size_kbytes: float) -> float:
    """Convert a size in KBytes to bytes."""
    return size_kbytes * KBYTE


def mbytes(size_mbytes: float) -> float:
    """Convert a size in MBytes to bytes."""
    return size_mbytes * MBYTE


def to_kbytes(size_bytes: float) -> float:
    """Convert a size in bytes to KBytes for reporting."""
    return size_bytes / KBYTE


def to_mbytes(size_bytes: float) -> float:
    """Convert a size in bytes to MBytes for reporting."""
    return size_bytes / MBYTE


def to_millis(time_seconds: float) -> float:
    """Convert a time in seconds to milliseconds for reporting."""
    # repro: noqa RPR102 — this *is* the canonical conversion definition
    return time_seconds * 1_000.0
