"""Rotating Priority Queues (Wrege and Liebeherr, INFOCOM 1997).

Related work [10]: the paper describes its FIFO-plus-thresholds design
as taking the RPQ idea — avoid per-packet sorting altogether — "to its
extreme configuration".  RPQ approximates Earliest-Deadline-First with a
small set of FIFO queues whose priorities rotate every ``delta``
seconds: a packet with relative deadline ``d`` is placed ``ceil(d /
delta)`` positions down the rotation, so sorting is replaced by O(1)
bucket selection at a granularity of ``delta``.

The implementation uses the calendar-queue formulation: bucket id =
``current epoch + deadline class``; service always drains the smallest
non-empty bucket FIFO.  Epochs advance with the clock
(``epoch = floor(now / delta)``), which is exactly the queue rotation.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Callable, Mapping

from repro.errors import ConfigurationError
from repro.obs.events import EnqueueEvent
from repro.sched.base import Scheduler
from repro.sim.packet import Packet

__all__ = ["RPQScheduler"]


class RPQScheduler(Scheduler):
    """Coarse EDF via rotating FIFO priority buckets.

    Args:
        clock: zero-argument callable returning the simulation time.
        delta: rotation period in seconds (the deadline granularity).
        class_of: mapping flow id -> deadline class, a non-negative
            integer; a packet of class ``c`` arriving in epoch ``e`` is
            served with bucket priority ``e + c`` (class 0 = most
            urgent).
        default_class: class for flows absent from ``class_of``; None
            (default) rejects unknown flows.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        delta: float,
        class_of: Mapping[int, int],
        default_class: int | None = None,
    ) -> None:
        if delta <= 0:
            raise ConfigurationError(f"delta must be positive, got {delta}")
        for flow_id, klass in class_of.items():
            if klass < 0:
                raise ConfigurationError(
                    f"deadline class for flow {flow_id} must be >= 0, got {klass}"
                )
        if default_class is not None and default_class < 0:
            raise ConfigurationError(
                f"default class must be >= 0, got {default_class}"
            )
        self._clock = clock
        self.delta = float(delta)
        self.class_of = dict(class_of)
        self.default_class = default_class
        self._buckets: dict[int, deque[Packet]] = {}
        self._order: list[int] = []  # heap of non-empty bucket ids
        self._count = 0
        self._bytes = 0.0

    def _epoch(self) -> int:
        return int(math.floor(self._clock() / self.delta))

    def _class_for(self, flow_id: int) -> int:
        klass = self.class_of.get(flow_id, self.default_class)
        if klass is None:
            raise ConfigurationError(f"no deadline class for flow {flow_id}")
        return klass

    def enqueue(self, packet: Packet) -> None:
        bucket_id = self._epoch() + self._class_for(packet.flow_id)
        bucket = self._buckets.get(bucket_id)
        if bucket is None:
            bucket = deque()
            self._buckets[bucket_id] = bucket
            heapq.heappush(self._order, bucket_id)
        bucket.append(packet)
        self._count += 1
        self._bytes += packet.size
        if self._sink is not None:
            self._sink.emit(
                EnqueueEvent(
                    time=self._clock(),
                    flow_id=packet.flow_id,
                    size=packet.size,
                    backlog=self._count,
                    node=self._node,
                )
            )

    def dequeue(self) -> Packet | None:
        while self._order:
            bucket_id = self._order[0]
            bucket = self._buckets.get(bucket_id)
            if not bucket:
                heapq.heappop(self._order)
                self._buckets.pop(bucket_id, None)
                continue
            packet = bucket.popleft()
            self._count -= 1
            self._bytes -= packet.size
            if not bucket:
                heapq.heappop(self._order)
                self._buckets.pop(bucket_id, None)
            return packet
        return None

    def __len__(self) -> int:
        return self._count

    @property
    def backlog_bytes(self) -> float:
        return self._bytes

    def bucket_count(self) -> int:
        """Number of currently non-empty buckets."""
        return sum(1 for bucket in self._buckets.values() if bucket)
