"""Hybrid scheduler: WFQ across a small number of FIFO class queues.

Section 4 of the paper replaces the single FIFO queue with ``k`` FIFO
queues served by a WFQ scheduler.  Each queue aggregates a group of flows
and is guaranteed an aggregate rate ``R_i`` (eq. 16); inside each queue the
buffer-management technique provides per-flow guarantees.

Scheduling-wise this is exactly WFQ where the "flows" are the classes, so
the implementation wraps :class:`repro.sched.wfq.WFQScheduler` with a
packet-to-class classifier.  Packets of the same class are served FIFO
because WFQ keeps a FIFO queue per key.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.obs.events import EnqueueEvent
from repro.sched.base import Scheduler
from repro.sched.wfq import WFQScheduler
from repro.sim.packet import Packet

__all__ = ["HybridScheduler", "validate_grouping"]


def validate_grouping(groups: Sequence[Sequence[int]]) -> dict[int, int]:
    """Check a flow grouping and return the flow-to-class map.

    Every flow id must appear in exactly one group and every group must be
    non-empty.
    """
    if not groups:
        raise ConfigurationError("grouping must contain at least one group")
    class_of: dict[int, int] = {}
    for class_id, group in enumerate(groups):
        if not group:
            raise ConfigurationError(f"group {class_id} is empty")
        for flow_id in group:
            if flow_id in class_of:
                raise ConfigurationError(f"flow {flow_id} appears in more than one group")
            class_of[flow_id] = class_id
    return class_of


class HybridScheduler(Scheduler):
    """WFQ over ``k`` FIFO queues, one per flow group.

    Args:
        clock: zero-argument callable returning the current time.
        link_rate: output link rate in bytes/second.
        groups: sequence of flow-id groups; group ``i`` forms class ``i``.
        class_rates: rate ``R_i`` (bytes/second) guaranteed to each class;
            used as the WFQ weight of the class.  Must align with
            ``groups``.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        link_rate: float,
        groups: Sequence[Sequence[int]],
        class_rates: Sequence[float],
    ) -> None:
        if len(class_rates) != len(groups):
            raise ConfigurationError(
                f"got {len(class_rates)} class rates for {len(groups)} groups"
            )
        self.class_of: Mapping[int, int] = validate_grouping(groups)
        self.groups = [tuple(group) for group in groups]
        self.class_rates = tuple(float(rate) for rate in class_rates)
        weights = {class_id: rate for class_id, rate in enumerate(self.class_rates)}
        self._wfq = WFQScheduler(
            clock,
            link_rate,
            weights,
            classifier=lambda packet: self.class_of[packet.flow_id],
        )

    def enqueue(self, packet: Packet) -> None:
        if packet.flow_id not in self.class_of:
            raise ConfigurationError(f"flow {packet.flow_id} not assigned to any class")
        self._wfq.enqueue(packet)
        # The inner WFQ is never attached, so the packet is traced exactly
        # once — here, at the port-facing layer.
        if self._sink is not None:
            self._sink.emit(
                EnqueueEvent(
                    time=self._clock(),
                    flow_id=packet.flow_id,
                    size=packet.size,
                    backlog=len(self._wfq),
                    node=self._node,
                )
            )

    def dequeue(self) -> Packet | None:
        return self._wfq.dequeue()

    def __len__(self) -> int:
        return len(self._wfq)

    @property
    def backlog_bytes(self) -> float:
        return self._wfq.backlog_bytes

    def class_queue_length(self, class_id: int) -> int:
        """Number of packets queued in the given class queue."""
        return self._wfq.queue_length(class_id)
