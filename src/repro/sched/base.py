"""Scheduler interface.

A scheduler owns the queued packets of an output port and decides the
transmission order.  It does **not** decide admission — that is the buffer
manager's job (see :mod:`repro.core`) — and it does not model transmission
time, which the port handles.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import ConfigurationError
from repro.sim.packet import Packet

__all__ = ["Scheduler"]


class Scheduler(ABC):
    """Order of service for packets already admitted to the buffer.

    Schedulers are the emission point for
    :class:`~repro.obs.events.EnqueueEvent`: every admitted packet passes
    through exactly one ``enqueue`` call, so the trace's enqueue count is
    the admission count.  The class-level ``_sink = None`` default keeps
    untraced instances on the fast path — concrete ``enqueue``
    implementations guard emission with one ``is not None`` check.
    """

    #: Trace sink and clock; class-level None means "tracing disabled".
    _sink = None
    _clock = None
    #: Node label stamped on emitted events ('' for single-port runs).
    _node = ""

    def attach_trace(self, sink, clock, node: str = "") -> None:
        """Emit enqueue events into ``sink``, stamped via ``clock``.

        Pass ``sink=None`` to detach.  ``node`` labels emitted events
        with the owning hop in multi-node runs.  Composite schedulers
        (e.g. :class:`~repro.sched.hybrid.HybridScheduler`) attach only
        their outer layer, so a packet is traced once per port, not once
        per wrapped queue.
        """
        if sink is not None and clock is None:
            raise ConfigurationError("attach_trace needs a clock with its sink")
        self._sink = sink
        self._clock = clock
        self._node = node

    @abstractmethod
    def enqueue(self, packet: Packet) -> None:
        """Add an admitted packet to the queue."""

    @abstractmethod
    def dequeue(self) -> Packet | None:
        """Remove and return the next packet to transmit, or ``None``."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of packets currently queued."""

    @property
    def backlog_bytes(self) -> float:
        """Total bytes queued; subclasses track this incrementally."""
        raise NotImplementedError
