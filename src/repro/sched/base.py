"""Scheduler interface.

A scheduler owns the queued packets of an output port and decides the
transmission order.  It does **not** decide admission — that is the buffer
manager's job (see :mod:`repro.core`) — and it does not model transmission
time, which the port handles.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.sim.packet import Packet

__all__ = ["Scheduler"]


class Scheduler(ABC):
    """Order of service for packets already admitted to the buffer."""

    @abstractmethod
    def enqueue(self, packet: Packet) -> None:
        """Add an admitted packet to the queue."""

    @abstractmethod
    def dequeue(self) -> Packet | None:
        """Remove and return the next packet to transmit, or ``None``."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of packets currently queued."""

    @property
    def backlog_bytes(self) -> float:
        """Total bytes queued; subclasses track this incrementally."""
        raise NotImplementedError
