"""Self-Clocked Fair Queueing (Golestani, 1994).

A cheaper relative of WFQ, included for the scheduler-cost comparison the
paper motivates (its Section 1 discusses reducing the sorting cost, e.g.
the leap-forward virtual clock of [8]).  SCFQ avoids simulating the GPS
reference: the system virtual time is simply the finish tag of the packet
*currently in service*, so maintaining it is O(1) — the per-packet cost
is only the priority-queue operation.

Packet tags: ``F = max(F_prev, V_service) + L / w``; service order is by
increasing tag.  SCFQ's rate guarantees are slightly looser than WFQ's
(its delay bound grows with the number of flows), which is exactly the
complexity/guarantee trade-off axis the paper explores from the other
end.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Mapping

from repro.errors import ConfigurationError, SimulationError
from repro.obs.events import EnqueueEvent
from repro.sched.base import Scheduler
from repro.sim.packet import Packet

__all__ = ["SCFQScheduler"]


class _FlowState:
    __slots__ = ("weight", "queue", "tags", "last_tag")

    def __init__(self, weight: float):
        self.weight = weight
        self.queue: deque[Packet] = deque()
        self.tags: deque[float] = deque()
        self.last_tag = 0.0


class SCFQScheduler(Scheduler):
    """Self-clocked fair queueing over a fixed set of flows.

    Args:
        weights: mapping flow id -> weight (reserved rate, bytes/second).
    """

    def __init__(self, weights: Mapping[int, float]) -> None:
        if not weights:
            raise ConfigurationError("SCFQ requires at least one flow weight")
        for key, weight in weights.items():
            if weight <= 0:
                raise ConfigurationError(
                    f"weight for flow {key} must be positive, got {weight}"
                )
        self._flows = {key: _FlowState(float(w)) for key, w in weights.items()}
        self._hol: list[tuple[float, int, int, Packet]] = []
        self._vtime = 0.0  # tag of the packet in service (self-clocking)
        self._count = 0
        self._bytes = 0.0

    @property
    def virtual_time(self) -> float:
        """The self-clocked virtual time (last served packet's tag)."""
        return self._vtime

    def enqueue(self, packet: Packet) -> None:
        flow = self._flows.get(packet.flow_id)
        if flow is None:
            raise ConfigurationError(f"unknown SCFQ flow {packet.flow_id}")
        start = max(self._vtime, flow.last_tag)
        tag = start + packet.size / flow.weight
        flow.last_tag = tag
        was_empty = not flow.queue
        flow.queue.append(packet)
        flow.tags.append(tag)
        if was_empty:
            heapq.heappush(self._hol, (tag, packet.seq, packet.flow_id, packet))
        self._count += 1
        self._bytes += packet.size
        if self._sink is not None:
            self._sink.emit(
                EnqueueEvent(
                    time=self._clock(),
                    flow_id=packet.flow_id,
                    size=packet.size,
                    backlog=self._count,
                    node=self._node,
                )
            )

    def dequeue(self) -> Packet | None:
        if not self._hol:
            return None
        tag, _seq, flow_id, packet = heapq.heappop(self._hol)
        flow = self._flows[flow_id]
        if not flow.queue or flow.queue[0] is not packet:
            raise SimulationError("SCFQ head-of-line heap out of sync")
        flow.queue.popleft()
        flow.tags.popleft()
        self._vtime = tag  # self-clocking: V := tag of packet entering service
        if flow.queue:
            heapq.heappush(
                self._hol, (flow.tags[0], flow.queue[0].seq, flow_id, flow.queue[0])
            )
        self._count -= 1
        self._bytes -= packet.size
        if self._count == 0:
            # New busy period: reset the clock so idle flows do not carry
            # stale credit or debt across idle gaps.
            self._vtime = 0.0
            for flow_state in self._flows.values():
                flow_state.last_tag = 0.0
        return packet

    def __len__(self) -> int:
        return self._count

    @property
    def backlog_bytes(self) -> float:
        return self._bytes

    def queue_length(self, flow_id: int) -> int:
        """Number of packets queued for the given flow."""
        return len(self._flows[flow_id].queue)
