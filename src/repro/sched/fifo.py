"""FIFO scheduler — the paper's target service discipline.

Constant-time enqueue/dequeue; all differentiation between flows happens in
the buffer manager, which is the paper's central point.
"""

from __future__ import annotations

from collections import deque

from repro.obs.events import EnqueueEvent
from repro.sched.base import Scheduler
from repro.sim.packet import Packet

__all__ = ["FIFOScheduler"]


class FIFOScheduler(Scheduler):
    """Serve packets strictly in arrival order."""

    def __init__(self) -> None:
        self._queue: deque[Packet] = deque()
        self._bytes: float = 0.0

    def enqueue(self, packet: Packet) -> None:
        self._queue.append(packet)
        self._bytes += packet.size
        if self._sink is not None:
            self._sink.emit(
                EnqueueEvent(
                    time=self._clock(),
                    flow_id=packet.flow_id,
                    size=packet.size,
                    backlog=len(self._queue),
                    node=self._node,
                )
            )

    def dequeue(self) -> Packet | None:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size
        return packet

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def backlog_bytes(self) -> float:
        return self._bytes
