"""Weighted Fair Queueing (packetized GPS approximation).

This is the paper's benchmark scheduler.  The implementation is the
standard virtual-time realisation:

* each backlogged flow has a FIFO queue of its own packets;
* system virtual time ``V`` advances at rate ``R / sum(w_j)`` over the set
  of currently backlogged flows (weights ``w_j`` are the reserved rates in
  bytes/second, so ``dV/dt >= 1`` whenever the reserved utilisation is at
  most one);
* a packet of length ``L`` arriving for flow ``i`` is stamped with finish
  time ``F = max(V, F_i_prev) + L / w_i``;
* the scheduler always serves the head-of-line packet with the smallest
  finish stamp.

This tracks the backlogged set of the *packet* system rather than the
exact GPS reference system, which is the usual simulator approximation; it
preserves the rate-guarantee and proportional-sharing properties the paper
relies on.

A ``classifier`` hook lets the same machinery schedule *classes* instead of
flows, which is how the Section-4 hybrid system is built (WFQ across a
small number of FIFO queues).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Mapping

from repro.errors import ConfigurationError, SimulationError
from repro.obs.events import EnqueueEvent
from repro.sched.base import Scheduler
from repro.sim.packet import Packet

__all__ = ["WFQScheduler"]


class _FlowState:
    __slots__ = ("weight", "queue", "finishes", "last_finish")

    def __init__(self, weight: float):
        self.weight = weight
        self.queue: deque[Packet] = deque()
        self.finishes: deque[float] = deque()
        self.last_finish = 0.0


class WFQScheduler(Scheduler):
    """Virtual-time weighted fair queueing over a fixed set of flows.

    Args:
        clock: zero-argument callable returning the current simulation
            time (typically ``lambda: sim.now``).
        link_rate: output link rate in bytes/second.
        weights: mapping from flow id to weight.  Weights are reserved
            rates in bytes/second; they need not sum to ``link_rate``.
        classifier: optional function mapping a packet to the scheduling
            key used for queue selection.  Defaults to ``packet.flow_id``.
            Keys produced by the classifier must appear in ``weights``.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        link_rate: float,
        weights: Mapping[int, float],
        classifier: Callable[[Packet], int] | None = None,
    ) -> None:
        if link_rate <= 0:
            raise ConfigurationError(f"link_rate must be positive, got {link_rate}")
        if not weights:
            raise ConfigurationError("WFQ requires at least one flow weight")
        for key, weight in weights.items():
            if weight <= 0:
                raise ConfigurationError(f"weight for key {key} must be positive, got {weight}")
        self._clock = clock
        self._rate = link_rate
        self._classify = classifier or (lambda packet: packet.flow_id)
        self._flows = {key: _FlowState(float(w)) for key, w in weights.items()}
        self._hol: list[tuple[float, int, int, Packet]] = []
        self._vtime = 0.0
        self._last_update = clock()
        self._active_weight = 0.0
        self._count = 0
        self._bytes = 0.0

    @property
    def virtual_time(self) -> float:
        """Current system virtual time (after catching up to the clock)."""
        self._advance_vtime()
        return self._vtime

    def _advance_vtime(self) -> None:
        now = self._clock()
        if now > self._last_update:
            if self._active_weight > 0:
                self._vtime += (now - self._last_update) * self._rate / self._active_weight
            self._last_update = now

    def enqueue(self, packet: Packet) -> None:
        key = self._classify(packet)
        flow = self._flows.get(key)
        if flow is None:
            raise ConfigurationError(f"packet classified to unknown WFQ key {key}")
        self._advance_vtime()
        start = max(self._vtime, flow.last_finish)
        finish = start + packet.size / flow.weight
        flow.last_finish = finish
        was_empty = not flow.queue
        flow.queue.append(packet)
        flow.finishes.append(finish)
        if was_empty:
            self._active_weight += flow.weight
            heapq.heappush(self._hol, (finish, packet.seq, key, packet))
        self._count += 1
        self._bytes += packet.size
        if self._sink is not None:
            self._sink.emit(
                EnqueueEvent(
                    time=self._clock(),
                    flow_id=packet.flow_id,
                    size=packet.size,
                    backlog=self._count,
                    node=self._node,
                )
            )

    def dequeue(self) -> Packet | None:
        if not self._hol:
            return None
        self._advance_vtime()
        _finish, _seq, key, packet = heapq.heappop(self._hol)
        flow = self._flows[key]
        if not flow.queue or flow.queue[0] is not packet:
            raise SimulationError("WFQ head-of-line heap out of sync with flow queue")
        flow.queue.popleft()
        flow.finishes.popleft()
        if flow.queue:
            heapq.heappush(
                self._hol, (flow.finishes[0], flow.queue[0].seq, key, flow.queue[0])
            )
        else:
            self._active_weight -= flow.weight
            if self._active_weight < 1e-9:
                self._active_weight = 0.0
        self._count -= 1
        self._bytes -= packet.size
        if self._count == 0:
            self._reset_busy_period()
        return packet

    def _reset_busy_period(self) -> None:
        # When the queue drains, a new busy period starts from a clean
        # slate: without this, finish stamps from the previous busy period
        # would penalise (or credit) flows across idle gaps.
        self._vtime = 0.0
        self._last_update = self._clock()
        self._active_weight = 0.0
        for flow in self._flows.values():
            flow.last_finish = 0.0

    def __len__(self) -> int:
        return self._count

    @property
    def backlog_bytes(self) -> float:
        return self._bytes

    def queue_length(self, key: int) -> int:
        """Number of packets queued under the given scheduling key."""
        return len(self._flows[key].queue)
