"""Link schedulers: FIFO, WFQ and the Section-4 hybrid."""

from repro.sched.base import Scheduler
from repro.sched.fifo import FIFOScheduler
from repro.sched.hybrid import HybridScheduler, validate_grouping
from repro.sched.rpq import RPQScheduler
from repro.sched.scfq import SCFQScheduler
from repro.sched.wfq import WFQScheduler

__all__ = [
    "Scheduler",
    "FIFOScheduler",
    "WFQScheduler",
    "SCFQScheduler",
    "RPQScheduler",
    "HybridScheduler",
    "validate_grouping",
]
