"""Reading, filtering and replaying JSONL traces.

A trace is *replayable*: the structured events carry enough information
to reconstruct the per-flow accounting a live
:class:`~repro.metrics.collector.StatsCollector` would have produced
(see :func:`replay_flow_counts` and ``tests/test_obs_replay.py``), which
is what makes a trace trustworthy as a debugging artifact — if the
replay matches, the trace is the run.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.errors import ConfigurationError
from repro.obs.events import (
    TRACE_SCHEMA,
    DepartEvent,
    DropEvent,
    EnqueueEvent,
    EVENT_TYPES,
    event_from_dict,
)

__all__ = ["read_events", "filter_events", "replay_flow_counts", "FlowReplay"]


def read_events(path: str | os.PathLike) -> Iterator:
    """Yield the typed events of a JSONL trace file, in file order.

    The header line is validated (schema tag) and consumed; blank lines
    are tolerated.  Raises :class:`~repro.errors.ConfigurationError` on a
    missing/mismatched header or an unparsable line.
    """
    trace_path = pathlib.Path(path)
    with trace_path.open("r", encoding="utf-8") as fh:
        header_line = fh.readline()
        try:
            header = json.loads(header_line)
        except ValueError:
            raise ConfigurationError(
                f"{trace_path}: first line is not a JSON header"
            ) from None
        if not isinstance(header, dict) or header.get("kind") != "header":
            raise ConfigurationError(f"{trace_path}: missing trace header line")
        schema = header.get("schema")
        if schema != TRACE_SCHEMA:
            raise ConfigurationError(
                f"{trace_path}: trace schema mismatch: got {schema!r}, "
                f"expected {TRACE_SCHEMA!r}"
            )
        for line_no, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
            except ValueError:
                raise ConfigurationError(
                    f"{trace_path}:{line_no}: unparsable trace line"
                ) from None
            yield event_from_dict(raw)


def filter_events(
    events: Iterable,
    flows: Sequence[int] | None = None,
    kinds: Sequence[str] | None = None,
    nodes: Sequence[str] | None = None,
    since: float | None = None,
    until: float | None = None,
) -> Iterator:
    """Select events by flow id, kind tag, node label, and time window.

    Events without a ``flow_id`` field (headroom, compact) are excluded
    whenever a flow filter is given; likewise events without a ``node``
    field (compact) whenever a node filter is given.  Single-port runs
    label their events with the empty string, so ``nodes=[""]`` selects
    them explicitly.  ``since``/``until`` bound ``event.time``
    inclusively on both ends.
    """
    if kinds is not None:
        unknown = set(kinds) - set(EVENT_TYPES)
        if unknown:
            raise ConfigurationError(
                f"unknown event kinds {sorted(unknown)}; valid: {sorted(EVENT_TYPES)}"
            )
        kind_set = frozenset(kinds)
    flow_set = None if flows is None else frozenset(flows)
    node_set = None if nodes is None else frozenset(nodes)
    for event in events:
        if kinds is not None and type(event).kind not in kind_set:
            continue
        if flow_set is not None and getattr(event, "flow_id", None) not in flow_set:
            continue
        if node_set is not None and getattr(event, "node", None) not in node_set:
            continue
        time = event.time
        if since is not None and time < since:
            continue
        if until is not None and time > until:
            continue
        yield event


@dataclass
class FlowReplay:
    """Per-flow counters reconstructed from a trace stream."""

    accepted_packets: int = 0
    accepted_bytes: float = 0.0
    dropped_packets: int = 0
    dropped_bytes: float = 0.0
    departed_packets: int = 0
    departed_bytes: float = 0.0
    drop_reasons: dict = field(default_factory=dict)

    @property
    def offered_packets(self) -> int:
        """Arrivals seen at the port: admissions plus drops."""
        return self.accepted_packets + self.dropped_packets


def replay_flow_counts(events: Iterable, warmup: float = 0.0) -> dict[int, FlowReplay]:
    """Reconstruct per-flow accounting from enqueue/drop/depart events.

    Events strictly before ``warmup`` are ignored, mirroring
    :class:`~repro.metrics.collector.StatsCollector`'s measurement
    window, so the replay of a traced run matches the collector exactly.
    """
    replays: dict[int, FlowReplay] = {}
    for event in events:
        if event.time < warmup:
            continue
        if isinstance(event, EnqueueEvent):
            replay = replays.setdefault(event.flow_id, FlowReplay())
            replay.accepted_packets += 1
            replay.accepted_bytes += event.size
        elif isinstance(event, DropEvent):
            replay = replays.setdefault(event.flow_id, FlowReplay())
            replay.dropped_packets += 1
            replay.dropped_bytes += event.size
            replay.drop_reasons[event.reason] = (
                replay.drop_reasons.get(event.reason, 0) + 1
            )
        elif isinstance(event, DepartEvent):
            replay = replays.setdefault(event.flow_id, FlowReplay())
            replay.departed_packets += 1
            replay.departed_bytes += event.size
    return replays
