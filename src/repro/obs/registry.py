"""Named metrics: counters, gauges and histograms with labels.

The registry is the export surface for component state that used to live
in ad-hoc attributes (``Simulator.compactions``,
``OutputPort.dropped_packets``, ...).  Components *register into* a
registry (:meth:`~repro.sim.engine.Simulator.register_metrics` and
friends); callers take a :meth:`MetricsRegistry.snapshot` — a plain,
JSON-friendly dict — whenever they want a consistent view.

Two instrument families:

* **owned instruments** (:class:`Counter`, :class:`Gauge`,
  histogram via :meth:`MetricsRegistry.histogram`) hold their own value
  and are updated by whoever created them;
* **callback gauges** (:meth:`MetricsRegistry.gauge_callback`) sample an
  existing attribute at snapshot time, so hot paths that already
  maintain a plain ``int`` pay nothing extra for being observable.

Registries :meth:`merge`, which is how per-worker metrics (including
per-worker :class:`~repro.metrics.histogram.LogHistogram`\\ s) aggregate
into one campaign-level view.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.metrics.histogram import LogHistogram

__all__ = ["Counter", "Gauge", "MetricsRegistry"]

#: Percentiles included in histogram snapshots.
_SNAPSHOT_PERCENTILES = (50.0, 95.0, 99.0)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_key(name: str, label_key: tuple) -> str:
    if not label_key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in label_key)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing named value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount


class Gauge:
    """Named value that can move in both directions."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class MetricsRegistry:
    """Get-or-create store of named, labelled instruments.

    An instrument is identified by ``(name, labels)``; asking twice
    returns the same object, and asking for the same identity as a
    different instrument family raises
    :class:`~repro.errors.ConfigurationError` (a name cannot be a
    counter in one place and a gauge in another).
    """

    __slots__ = ("_counters", "_gauges", "_histograms", "_callbacks")

    def __init__(self) -> None:
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, LogHistogram] = {}
        self._callbacks: dict[tuple, Callable[[], float]] = {}

    # -- instrument creation --------------------------------------------

    def _check_unique(self, key: tuple, family: dict) -> None:
        for other in (self._counters, self._gauges, self._histograms, self._callbacks):
            if other is not family and key in other:
                raise ConfigurationError(
                    f"metric {_render_key(key[0], key[1])!r} already registered "
                    "as a different instrument family"
                )

    def counter(self, name: str, **labels) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            self._check_unique(key, self._counters)
            instrument = Counter(name, key[1])
            self._counters[key] = instrument
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            self._check_unique(key, self._gauges)
            instrument = Gauge(name, key[1])
            self._gauges[key] = instrument
        return instrument

    def histogram(
        self,
        name: str,
        lo: float = 1e-6,
        hi: float = 100.0,
        bins_per_decade: int = 10,
        **labels,
    ) -> LogHistogram:
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            self._check_unique(key, self._histograms)
            instrument = LogHistogram(lo=lo, hi=hi, bins_per_decade=bins_per_decade)
            self._histograms[key] = instrument
        return instrument

    def gauge_callback(self, name: str, fn: Callable[[], float], **labels) -> None:
        """Register a zero-argument callable sampled at snapshot time.

        Re-registering the same identity replaces the callable (a new
        Simulator can take over the ``sim.*`` names of a finished one).
        """
        key = (name, _label_key(labels))
        self._check_unique(key, self._callbacks)
        self._callbacks[key] = fn

    # -- read side ------------------------------------------------------

    def snapshot(self) -> dict:
        """One consistent, JSON-friendly view of every instrument.

        Keys render as ``name`` or ``name{label=value,...}``; counter and
        gauge values are floats, histograms collapse to a dict of count /
        mean / max / p50 / p95 / p99.
        """
        out: dict = {}
        for key, counter in sorted(self._counters.items()):
            out[_render_key(*key)] = counter.value
        for key, gauge in sorted(self._gauges.items()):
            out[_render_key(*key)] = gauge.value
        for key, fn in sorted(self._callbacks.items()):
            out[_render_key(*key)] = float(fn())
        for key, histogram in sorted(self._histograms.items()):
            out[_render_key(*key)] = {
                "count": histogram.count,
                "mean": histogram.mean,
                "max": histogram.max_value,
                **{
                    f"p{q:g}": histogram.percentile(q)
                    for q in _SNAPSHOT_PERCENTILES
                },
            }
        return out

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry (e.g. a worker's) into this one.

        Counters add, histograms merge bin-wise (via
        :meth:`~repro.metrics.histogram.LogHistogram.merge`), gauges take
        the other registry's latest value.  Callback gauges are *not*
        merged: they sample live objects that only exist in their own
        process.
        """
        for key, counter in other._counters.items():
            self.counter(key[0], **dict(key[1])).inc(counter.value)
        for key, gauge in other._gauges.items():
            self.gauge(key[0], **dict(key[1])).set(gauge.value)
        for key, histogram in other._histograms.items():
            mine = self._histograms.get(key)
            if mine is None:
                self._check_unique(key, self._histograms)
                mine = LogHistogram(
                    lo=histogram.lo,
                    hi=histogram.hi,
                    bins_per_decade=histogram.bins_per_decade,
                )
                self._histograms[key] = mine
            mine.merge(histogram)
