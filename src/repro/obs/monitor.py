"""Online conformance monitor: observed state vs. the paper's bounds.

``repro.check`` audits guarantees *statically* (RPR201–206); this layer
checks them **while the run executes**.  A :class:`ConformanceMonitor`
is itself a :class:`~repro.obs.sink.TraceSink` — attach it (alone, or
teed with a recording sink) and it continuously compares observed state
against the closed-form references:

* **conformant-drop** — a flow provisioned per Prop. 2 must never lose
  a packet (eq. 5/9 region); any :class:`DropEvent` for a watched flow
  is an error.
* **occupancy-threshold** — a flow's buffer occupancy must stay within
  its provisioned threshold.  The bound is re-read live from the
  manager at every sweep, so footnote-5 rescales (reclamation) move the
  reference with the run; drain-safe shrinks are tracked through the
  ``reprovision`` events and tolerated while the flow drains down.
* **hop-delay** — every departure's queueing delay at a FIFO hop is
  bounded by B/R (:func:`repro.analysis.delay.worst_case_fifo_delay`);
  per-queue bounds apply for WFQ-family schemes.
* **e2e-delay** — a watched flow's end-to-end network delay must stay
  within the sum of its per-hop bounds.  Shaped (conformant) flows are
  checked as the sum of observed per-hop maxima, because delivery
  timestamps include leaky-bucket holding time, which is not part of
  the network bound.

Violations are structured :class:`Violation` findings — severity,
sim-time (plus detection window for sweep checks), flow/node, observed
vs. bound — collected into a :class:`MonitorReport` and optionally
mirrored into the trace stream as ``violation`` events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigurationError
from repro.obs.events import (
    DepartEvent,
    DropEvent,
    ReprovisionEvent,
    ViolationEvent,
)

__all__ = [
    "DEFAULT_TOLERANCE",
    "Violation",
    "MonitorReport",
    "ConformanceMonitor",
]

#: Relative slack applied to every bound comparison — the bounds are
#: exact in the fluid model, but observed values go through float
#: arithmetic in a different order than the closed forms.
DEFAULT_TOLERANCE = 1e-9

#: Absolute slack in the bound's own units (bytes or seconds).
_ABS_SLACK = 1e-9

#: The guarantee families the monitor evaluates.
CHECKS = ("conformant-drop", "occupancy-threshold", "hop-delay", "e2e-delay")


@dataclass(frozen=True, slots=True)
class Violation:
    """One observed contradiction of a provisioned guarantee."""

    check: str
    severity: str
    time: float
    flow_id: int
    node: str
    observed: float
    bound: float
    #: Width of the detection window in simulated seconds: 0 for
    #: event-exact findings, the sweep interval for sampled checks.
    window: float = 0.0
    message: str = ""

    def to_dict(self) -> dict:
        return {
            "check": self.check,
            "severity": self.severity,
            "time": self.time,
            "flow_id": self.flow_id,
            "node": self.node,
            "observed": self.observed,
            "bound": self.bound,
            "window": self.window,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "Violation":
        return cls(
            check=raw["check"],
            severity=raw["severity"],
            time=float(raw["time"]),
            flow_id=int(raw["flow_id"]),
            node=raw["node"],
            observed=float(raw["observed"]),
            bound=float(raw["bound"]),
            window=float(raw.get("window", 0.0)),
            message=raw.get("message", ""),
        )

    def render(self) -> str:
        flow = "-" if self.flow_id < 0 else str(self.flow_id)
        node = self.node if self.node else "-"
        text = (
            f"[{self.severity}] t={self.time:.6g} {self.check} "
            f"node={node} flow={flow} observed={self.observed:.6g} "
            f"bound={self.bound:.6g}"
        )
        if self.message:
            text += f" ({self.message})"
        return text


@dataclass
class MonitorReport:
    """Aggregated monitor outcome for one run."""

    violations: list = field(default_factory=list)
    events_seen: int = 0
    sweeps: int = 0
    #: Number of individual bound evaluations performed, per check.
    checks: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def error_count(self) -> int:
        return sum(1 for v in self.violations if v.severity == "error")

    @property
    def warning_count(self) -> int:
        return sum(1 for v in self.violations if v.severity == "warning")

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "events_seen": self.events_seen,
            "sweeps": self.sweeps,
            "checks": dict(self.checks),
            "violations": [v.to_dict() for v in self.violations],
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "MonitorReport":
        return cls(
            violations=[Violation.from_dict(v) for v in raw.get("violations", ())],
            events_seen=int(raw.get("events_seen", 0)),
            sweeps=int(raw.get("sweeps", 0)),
            checks=dict(raw.get("checks", ())),
        )

    def render(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        evaluated = ", ".join(
            f"{name}={self.checks.get(name, 0)}" for name in CHECKS
        )
        lines = [
            f"conformance: {verdict} "
            f"({self.events_seen} events, {self.sweeps} sweeps)",
            f"  checks evaluated: {evaluated}",
        ]
        for violation in self.violations:
            lines.append("  " + violation.render())
        return "\n".join(lines)


class ConformanceMonitor:
    """Live checker comparing a run against its analytic references.

    Implements the ``TraceSink`` protocol: attach it wherever a sink
    attaches (use :class:`~repro.obs.sink.TeeSink` to also record the
    trace).  Event-exact checks (drops, per-hop delay) ride the event
    stream; occupancy checks are swept periodically via :meth:`install`
    — their ``threshold`` callables are re-read at every sweep, so live
    reprovisioning moves the reference automatically.

    Args:
        interval: sweep cadence for the sampled occupancy checks.
        tolerance: relative slack on every bound comparison.
        max_violations: hard cap on retained findings (an undersized
            scenario can violate per-packet; the count keeps climbing
            in the check counters either way).
    """

    __slots__ = (
        "interval",
        "tolerance",
        "max_violations",
        "violations",
        "events_seen",
        "sweeps",
        "suppressed",
        "last_report",
        "_checks",
        "_sink",
        "_sim",
        "_last_time",
        "_hop_bounds",
        "_watched",
        "_shaped",
        "_routes",
        "_occ_checks",
        "_drain_caps",
        "_hop_delay_max",
    )

    def __init__(
        self,
        interval: float = 0.05,
        tolerance: float = DEFAULT_TOLERANCE,
        max_violations: int = 1000,
    ) -> None:
        if interval <= 0.0:
            raise ConfigurationError(f"interval must be > 0, got {interval}")
        if tolerance < 0.0:
            raise ConfigurationError(f"tolerance must be >= 0, got {tolerance}")
        if max_violations < 1:
            raise ConfigurationError(
                f"max_violations must be >= 1, got {max_violations}"
            )
        self.interval = interval
        self.tolerance = tolerance
        self.max_violations = max_violations
        self.violations: list[Violation] = []
        self.events_seen = 0
        self.sweeps = 0
        self.suppressed = 0
        self.last_report: MonitorReport | None = None
        self._checks: dict[str, int] = {name: 0 for name in CHECKS}
        self._sink = None
        self._sim = None
        self._last_time = 0.0
        self._hop_bounds: dict[str, float] = {}
        self._watched: set[int] = set()
        self._shaped: set[int] = set()
        self._routes: dict[int, tuple[str, ...]] = {}
        self._occ_checks: dict[
            tuple[str, int],
            tuple[Callable[[], float], Callable[[], float]],
        ] = {}
        self._drain_caps: dict[tuple[str, int], float] = {}
        self._hop_delay_max: dict[tuple[str, int], float] = {}

    # -- configuration -------------------------------------------------

    def watch_flow(
        self, flow_id: int, *, shaped: bool = False, route: tuple = ()
    ) -> None:
        """Declare ``flow_id`` conformant: drops are violations.

        ``shaped`` marks leaky-bucket-shaped flows (their delivery
        timestamps include shaper holding time); ``route`` lists the
        hop labels the flow traverses, enabling the end-to-end check.
        """
        self._watched.add(flow_id)
        if shaped:
            self._shaped.add(flow_id)
        if route:
            self._routes[flow_id] = tuple(route)

    def unwatch_flow(self, flow_id: int) -> None:
        """Stop treating ``flow_id`` as conformant (churn departure)."""
        self._watched.discard(flow_id)
        self._shaped.discard(flow_id)
        self._routes.pop(flow_id, None)

    def set_hop_bound(self, node: str, bound: float) -> None:
        """Per-hop worst-case queueing delay for departures at ``node``."""
        if bound <= 0.0:
            raise ConfigurationError(f"hop bound must be > 0, got {bound}")
        self._hop_bounds[node] = bound

    def add_occupancy_check(
        self,
        node: str,
        flow_id: int,
        occupancy: Callable[[], float],
        threshold: Callable[[], float],
    ) -> None:
        """Sweep-check ``occupancy() <= threshold()`` for a flow at a hop.

        Both sides are callables read at sweep time — ``threshold``
        should consult the live manager so reprovisioned values are
        honoured.
        """
        self._occ_checks[(node, flow_id)] = (occupancy, threshold)

    def drop_occupancy_checks(self, flow_id: int) -> None:
        """Remove every occupancy check for ``flow_id`` (churn departure)."""
        stale = [key for key in self._occ_checks if key[1] == flow_id]
        for key in stale:
            del self._occ_checks[key]
            self._drain_caps.pop(key, None)

    def attach_trace(self, sink) -> None:
        """Mirror each finding into ``sink`` as a ``violation`` event."""
        self._sink = sink

    # -- the event path (TraceSink protocol) ---------------------------

    def emit(self, event) -> None:
        self.events_seen += 1
        time = getattr(event, "time", None)
        if time is not None and time > self._last_time:
            self._last_time = time
        if isinstance(event, DropEvent):
            self._checks["conformant-drop"] += 1
            if event.flow_id in self._watched:
                self._record(
                    Violation(
                        check="conformant-drop",
                        severity="error",
                        time=event.time,
                        flow_id=event.flow_id,
                        node=event.node,
                        observed=event.size,
                        bound=0.0,
                        message=f"conformant flow dropped ({event.reason})",
                    )
                )
        elif isinstance(event, DepartEvent):
            bound = self._hop_bounds.get(event.node)
            if bound is not None:
                self._checks["hop-delay"] += 1
                if event.delay > bound * (1.0 + self.tolerance) + _ABS_SLACK:
                    self._record(
                        Violation(
                            check="hop-delay",
                            severity="error",
                            time=event.time,
                            flow_id=event.flow_id,
                            node=event.node,
                            observed=event.delay,
                            bound=bound,
                            message="per-hop delay exceeded analytic bound",
                        )
                    )
                if event.flow_id in self._watched:
                    key = (event.node, event.flow_id)
                    previous = self._hop_delay_max.get(key, 0.0)
                    if event.delay > previous:
                        self._hop_delay_max[key] = event.delay
        elif isinstance(event, ReprovisionEvent):
            # A drain-safe shrink: occupancy may sit above the new
            # threshold until departures bring it down.  Remember the
            # old value as a temporary cap for the occupancy check.
            if event.threshold < event.previous:
                key = (event.node, event.flow_id)
                cap = self._drain_caps.get(key, 0.0)
                if event.previous > cap:
                    self._drain_caps[key] = event.previous

    # -- the sweep path ------------------------------------------------

    def install(self, sim, until: float) -> None:
        """Schedule the periodic occupancy sweep on ``sim``."""
        if self._sim is not None:
            raise ConfigurationError("monitor is already installed")
        if until <= 0.0:
            raise ConfigurationError(f"until must be > 0, got {until}")
        self._sim = sim
        sim.schedule_fast(self.interval, self._sweep, until)

    def _sweep(self, until: float) -> None:
        sim = self._sim
        now = sim.now
        if now > self._last_time:
            self._last_time = now
        self.sweeps += 1
        self.sweep_once(now)
        if now + self.interval <= until:
            sim.schedule_fast(self.interval, self._sweep, until)

    def sweep_once(self, now: float) -> None:
        """Evaluate every registered occupancy check at sim-time ``now``."""
        for key, (occ_fn, thr_fn) in list(self._occ_checks.items()):
            node, flow_id = key
            occupancy = float(occ_fn())
            threshold = float(thr_fn())
            self._checks["occupancy-threshold"] += 1
            limit = threshold * (1.0 + self.tolerance) + _ABS_SLACK
            if occupancy <= limit:
                # Back within the provisioned region: any drain
                # allowance from a live shrink is spent.
                self._drain_caps.pop(key, None)
                continue
            cap = self._drain_caps.get(key)
            if cap is not None and occupancy <= cap * (1.0 + self.tolerance) + _ABS_SLACK:
                # Draining after a reprovision shrink.  Admission is
                # blocked above threshold, so occupancy can only fall:
                # ratchet the cap down to what we just observed.
                self._drain_caps[key] = occupancy
                continue
            self._record(
                Violation(
                    check="occupancy-threshold",
                    severity="error",
                    time=now,
                    flow_id=flow_id,
                    node=node,
                    observed=occupancy,
                    bound=threshold,
                    window=self.interval,
                    message="occupancy above provisioned threshold",
                )
            )

    # -- finalization --------------------------------------------------

    def finalize(self, delivery=None) -> MonitorReport:
        """Run the end-to-end checks and build the report.

        ``delivery`` is an optional
        :class:`~repro.net.topology.DeliverySink`; its per-flow maximum
        delays feed the end-to-end check for *unshaped* watched flows.
        Shaped flows use the sum of observed per-hop maxima instead,
        because delivery delay includes shaper holding time.
        """
        now = self._last_time if self._sim is None else max(self._sim.now, self._last_time)
        for flow_id in sorted(self._routes):
            route = self._routes[flow_id]
            bounds = [self._hop_bounds.get(node) for node in route]
            if any(bound is None for bound in bounds):
                continue
            bound = sum(bounds)
            if flow_id not in self._shaped and delivery is not None:
                observed = delivery.delay_max.get(flow_id, 0.0)
                source = "delivery max delay"
            else:
                observed = sum(
                    self._hop_delay_max.get((node, flow_id), 0.0) for node in route
                )
                source = "sum of observed per-hop maxima"
            self._checks["e2e-delay"] += 1
            if observed > bound * (1.0 + self.tolerance) + _ABS_SLACK:
                self._record(
                    Violation(
                        check="e2e-delay",
                        severity="error",
                        time=now,
                        flow_id=flow_id,
                        node="",
                        observed=observed,
                        bound=bound,
                        message=f"end-to-end delay ({source}) exceeded bound",
                    )
                )
        report = MonitorReport(
            violations=list(self.violations),
            events_seen=self.events_seen,
            sweeps=self.sweeps,
            checks=dict(self._checks),
        )
        self.last_report = report
        return report

    # -- internals -----------------------------------------------------

    def _record(self, violation: Violation) -> None:
        if len(self.violations) >= self.max_violations:
            self.suppressed += 1
            return
        self.violations.append(violation)
        if self._sink is not None:
            self._sink.emit(
                ViolationEvent(
                    time=violation.time,
                    check=violation.check,
                    severity=violation.severity,
                    observed=violation.observed,
                    bound=violation.bound,
                    flow_id=violation.flow_id,
                    node=violation.node,
                )
            )
