"""Typed trace events.

Each event is a frozen, slotted dataclass with a class-level ``kind``
tag; the tag is what trace files, filters and the CLI use to name the
event type.  All times are simulation seconds, all sizes are bytes —
the library's canonical units.

The schema is versioned by :data:`TRACE_SCHEMA`: readers reject trace
files written under a different tag instead of misinterpreting them.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar

from repro.errors import ConfigurationError

__all__ = [
    "TRACE_SCHEMA",
    "EVENT_TYPES",
    "EnqueueEvent",
    "DropEvent",
    "DepartEvent",
    "ThresholdCrossEvent",
    "HeadroomEvent",
    "ReprovisionEvent",
    "PoolEvent",
    "HeapCompactEvent",
    "BucketResizeEvent",
    "SampleEvent",
    "ViolationEvent",
    "event_to_dict",
    "event_from_dict",
]

#: Version tag written into every JSONL trace header.  Bump whenever an
#: event gains/loses a field or changes meaning.
#:
#: v2: packet- and buffer-level events carry a ``node`` label so traces
#: of multi-node scenarios (:mod:`repro.net`, the experiments fabric)
#: attribute every event to the hop that produced it.  Single-port runs
#: leave it empty.
#:
#: v3: live reprovisioning adds ``reprovision`` (a flow's threshold was
#: changed or withdrawn at run time) and ``pool`` (a node's buffer-pool
#: split changed), making the pool-consistency invariant (RPR206)
#: auditable from a trace.
#:
#: v4: the telemetry/conformance layer adds ``sample`` (one periodic
#: sim-time measurement mirrored from a :mod:`repro.obs.timeline`
#: sampler) and ``violation`` (a :mod:`repro.obs.monitor` finding: an
#: observed quantity exceeded its closed-form bound).
#:
#: v5: the pluggable event-queue engine core adds ``bucket-resize`` (the
#: calendar-queue backend re-bucketed itself after observing an
#: occupancy drift; see :mod:`repro.sim.equeue`).
TRACE_SCHEMA = "repro-trace-v5"


@dataclass(frozen=True, slots=True)
class EnqueueEvent:
    """A packet was admitted and handed to the scheduler.

    Emitted by the scheduler (:meth:`~repro.sched.base.Scheduler.enqueue`),
    so ``backlog`` is the queue length *after* the insert.  ``node``
    identifies the emitting hop in multi-node runs ('' for single-port).
    """

    kind: ClassVar[str] = "enqueue"
    time: float
    flow_id: int
    size: float
    backlog: int
    node: str = ""


@dataclass(frozen=True, slots=True)
class DropEvent:
    """The buffer manager rejected a packet.

    ``reason`` classifies the rejection: ``buffer-full`` (no space at
    all), ``threshold`` (fixed per-flow threshold), ``dynamic-threshold``,
    ``shared-buffer`` (holes/headroom exhausted for this flow), ``red`` /
    ``fred`` (probabilistic early drop), or ``policy`` for managers that
    do not classify further.  ``node`` names the dropping hop in
    multi-node runs ('' for single-port).
    """

    kind: ClassVar[str] = "drop"
    time: float
    flow_id: int
    size: float
    reason: str
    node: str = ""


@dataclass(frozen=True, slots=True)
class DepartEvent:
    """A packet finished transmission and left the buffer."""

    kind: ClassVar[str] = "depart"
    time: float
    flow_id: int
    size: float
    delay: float
    node: str = ""


@dataclass(frozen=True, slots=True)
class ThresholdCrossEvent:
    """A flow's occupancy crossed its admission threshold.

    ``direction`` is ``up`` when an admission brought the occupancy up
    to (or past) the threshold and ``down`` when a departure dropped it
    back below — admission caps occupancy at exactly the threshold, so
    "reached" counts as crossed.  ``occupancy`` is the value *after* the
    transition.
    """

    kind: ClassVar[str] = "threshold"
    time: float
    flow_id: int
    occupancy: float
    threshold: float
    direction: str
    node: str = ""


@dataclass(frozen=True, slots=True)
class HeadroomEvent:
    """The sharing scheme's headroom/holes split changed (Section 3.3)."""

    kind: ClassVar[str] = "headroom"
    time: float
    headroom: float
    holes: float
    node: str = ""


@dataclass(frozen=True, slots=True)
class ReprovisionEvent:
    """A flow's buffer threshold changed while the run was live.

    Emitted by managers with per-flow thresholds when
    ``reprovision``/``retire`` is called on them (churn reclamation,
    online rescale).  ``threshold`` is the value now in force —
    ``0.0`` after a retirement — and ``previous`` the value it
    replaced.  The change is drain-safe: packets already queued above
    a shrunken threshold depart normally and are never retro-dropped.
    """

    kind: ClassVar[str] = "reprovision"
    time: float
    flow_id: int
    threshold: float
    previous: float
    node: str = ""


@dataclass(frozen=True, slots=True)
class PoolEvent:
    """A node's buffer-pool split changed (reserve/retire/reprovision).

    Snapshot of the :class:`~repro.core.pool.BufferPool` accounting
    after the transition.  The pool-consistency invariant (RPR206)
    requires ``reserved + headroom + holes == capacity`` at every such
    point, which is what makes reclamation auditable from a trace.
    """

    kind: ClassVar[str] = "pool"
    time: float
    reserved: float
    headroom: float
    holes: float
    capacity: float
    flows: int
    node: str = ""


@dataclass(frozen=True, slots=True)
class HeapCompactEvent:
    """The engine rebuilt its event structure to purge cancelled events.

    Emitted by both event-queue backends (:mod:`repro.sim.equeue`): the
    binary heap re-heapifies in place, the calendar queue redistributes
    its surviving entries over fresh buckets.  The trigger rule and the
    counters are shared, so equivalent runs compact at equivalent
    points — up to the calendar backend deferring a mid-drain compaction
    to the next bucket boundary.
    """

    kind: ClassVar[str] = "compact"
    time: float
    removed: int
    remaining: int


@dataclass(frozen=True, slots=True)
class BucketResizeEvent:
    """The calendar-queue backend changed its bucket width.

    Emitted when the observed per-bucket occupancy drifts outside the
    backend's target band and the whole structure is re-bucketed (see
    :class:`~repro.sim.equeue.CalendarEventQueue`).  ``width`` is the
    new bucket width in simulation seconds, ``previous`` the width it
    replaced, and ``pending`` the number of entries redistributed.
    Housekeeping cadence is backend-specific: traces recorded under the
    heap backend never contain this event.
    """

    kind: ClassVar[str] = "bucket-resize"
    time: float
    width: float
    previous: float
    pending: int


@dataclass(frozen=True, slots=True)
class SampleEvent:
    """One periodic sim-time measurement of a named series.

    Mirrored into the trace stream by a
    :class:`~repro.obs.timeline.Timeline` sampler when a sink is
    attached to it, so a single trace file can interleave packet events
    with the coarser telemetry cadence.  ``series`` names the measured
    quantity (e.g. ``occupancy``, ``pool.headroom``); ``node`` is the
    link label ('' for single-port runs).
    """

    kind: ClassVar[str] = "sample"
    time: float
    series: str
    value: float
    node: str = ""


@dataclass(frozen=True, slots=True)
class ViolationEvent:
    """A monitored quantity exceeded its closed-form bound.

    Emitted by the :class:`~repro.obs.monitor.ConformanceMonitor` when
    an observed value contradicts the paper's guarantees: a conformant
    flow was dropped, a flow's occupancy exceeded its provisioned
    threshold (eq. 5/9), or a delay exceeded the analytic bound.
    ``check`` names the violated guarantee; ``observed``/``bound`` give
    the numbers.  ``flow_id`` is ``-1`` for node-level findings.
    """

    kind: ClassVar[str] = "violation"
    time: float
    check: str
    severity: str
    observed: float
    bound: float
    flow_id: int = -1
    node: str = ""


#: kind tag -> event class, the vocabulary of a trace stream.
EVENT_TYPES: dict[str, type] = {
    cls.kind: cls
    for cls in (
        EnqueueEvent,
        DropEvent,
        DepartEvent,
        ThresholdCrossEvent,
        HeadroomEvent,
        ReprovisionEvent,
        PoolEvent,
        HeapCompactEvent,
        BucketResizeEvent,
        SampleEvent,
        ViolationEvent,
    )
}

#: Per-class field-name cache so serialization avoids dataclasses.asdict
#: (which deep-copies) on the trace hot path.
_FIELD_NAMES: dict[type, tuple[str, ...]] = {
    cls: tuple(f.name for f in fields(cls)) for cls in EVENT_TYPES.values()
}


def event_to_dict(event) -> dict:
    """JSON-friendly form of any trace event (``kind`` key first)."""
    names = _FIELD_NAMES.get(type(event))
    if names is None:
        raise ConfigurationError(f"not a trace event: {event!r}")
    payload = {"kind": type(event).kind}
    for name in names:
        payload[name] = getattr(event, name)
    return payload


def event_from_dict(raw: dict):
    """Rebuild a typed event from :func:`event_to_dict` output."""
    kind = raw.get("kind")
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ConfigurationError(
            f"unknown event kind {kind!r}; valid: {sorted(EVENT_TYPES)}"
        )
    kwargs = {name: raw[name] for name in _FIELD_NAMES[cls]}
    return cls(**kwargs)
