"""Trace sinks: where emitted events go.

Components never know which sink they feed — anything with an
``emit(event)`` method works (:class:`TraceSink` is a structural
protocol).  Two implementations cover the practical cases:

* :class:`RingSink` — bounded in-memory ring; keeps the most recent
  ``capacity`` events.  For tests, debugging and "what just happened"
  queries without unbounded memory growth.
* :class:`JsonlSink` — streams events to a JSON-Lines file, one object
  per line, with a schema header line.  For replayable traces and the
  ``repro obs trace`` CLI.

The disabled path is *no sink at all*: components default to
``_sink = None`` and guard emission with one ``is not None`` check, so
tracing costs nothing when off (see ``benchmarks/bench_micro_obs.py``).
"""

from __future__ import annotations

import json
import os
import pathlib
from collections import deque
from typing import Protocol, runtime_checkable

from repro.errors import ConfigurationError
from repro.obs.events import TRACE_SCHEMA, event_to_dict

__all__ = ["TraceSink", "RingSink", "JsonlSink", "TeeSink"]


@runtime_checkable
class TraceSink(Protocol):
    """Structural interface: anything accepting emitted events."""

    def emit(self, event) -> None:
        """Record one trace event."""


class RingSink:
    """Keep the most recent ``capacity`` events in memory.

    Args:
        capacity: maximum events retained; older events are discarded
            silently (``emitted`` still counts them).
    """

    __slots__ = ("_ring", "emitted")

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self._ring: deque = deque(maxlen=capacity)
        self.emitted = 0

    def emit(self, event) -> None:
        self._ring.append(event)
        self.emitted += 1

    def events(self) -> list:
        """The retained events, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def clear(self) -> None:
        self._ring.clear()


class TeeSink:
    """Fan one event stream out to several sinks, in argument order.

    Lets a live consumer (e.g. a
    :class:`~repro.obs.monitor.ConformanceMonitor`) ride alongside a
    recording sink on the same attachment point — components still see a
    single sink and keep their one ``is not None`` guard.

    Args:
        *sinks: downstream sinks; at least one is required.
    """

    __slots__ = ("sinks", "emitted")

    def __init__(self, *sinks) -> None:
        if not sinks:
            raise ConfigurationError("TeeSink needs at least one downstream sink")
        self.sinks = tuple(sinks)
        self.emitted = 0

    def emit(self, event) -> None:
        for sink in self.sinks:
            sink.emit(event)
        self.emitted += 1


class JsonlSink:
    """Stream events to a JSON-Lines trace file.

    The first line is a header object (``{"schema": ..., "kind":
    "header"}``); every subsequent line is one event.  Usable as a
    context manager; :meth:`close` is idempotent.

    Args:
        path: trace file location; parent directories are created.
    """

    __slots__ = ("path", "emitted", "_fh")

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w", encoding="utf-8")
        self.emitted = 0
        self._fh.write(
            json.dumps({"kind": "header", "schema": TRACE_SCHEMA}) + "\n"
        )

    def emit(self, event) -> None:
        if self._fh is None:
            raise ConfigurationError(f"sink for {self.path} is closed")
        self._fh.write(json.dumps(event_to_dict(event)) + "\n")
        self.emitted += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
