"""Run telemetry: what the campaign pipeline did, and how fast.

Every executed :class:`~repro.experiments.campaign.job.ScenarioJob`
yields one :class:`JobTelemetry` — wall time, simulated event count,
cache hit/miss, worker id.  A batch of telemetries aggregates into a
:class:`CampaignReport`, which keeps one wall-time
:class:`~repro.metrics.histogram.LogHistogram` *per worker* and merges
them (:meth:`~repro.metrics.histogram.LogHistogram.merge`) for the
campaign-wide percentiles — the same aggregation a sharded deployment
would do.

Telemetry is observability data, not measurement data: it never enters a
record's digest, cache entry, or serialized form, so byte-identical
results stay byte-identical whether a run was cached, serial or
parallel.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.metrics.histogram import LogHistogram

__all__ = [
    "TELEMETRY_SCHEMA",
    "DEFAULT_TELEMETRY_DIR",
    "JobTelemetry",
    "CampaignReport",
    "batch_digest",
    "write_telemetry",
    "read_telemetry_dir",
]

#: Version tag on every telemetry line; readers skip other versions.
TELEMETRY_SCHEMA = "repro-telemetry-v1"

#: Default location, next to the result cache it reports on.
DEFAULT_TELEMETRY_DIR = pathlib.Path("results") / "telemetry"

#: Binning of the per-worker wall-time histograms (seconds).  All workers
#: must share it or the merge in :meth:`CampaignReport.wall_histogram`
#: would be rejected.
_WALL_LO = 1e-4
_WALL_HI = 1e4
_WALL_BINS_PER_DECADE = 5


@dataclass(frozen=True)
class JobTelemetry:
    """Execution accounting for one job of one campaign run.

    Attributes:
        job_digest: content digest of the job this telemetry describes.
        wall_time: wall-clock seconds spent producing the record (cache
            hits report the lookup time, essentially zero).
        events: simulation events processed by the run (from the record,
            so cached jobs report the original run's count).
        cache_hit: True when the record came from the result cache.
        worker: OS process id that produced the record; distinguishes
            pool workers from the coordinating process.
        equeue: event-queue backend that executed the job (``"heap"`` /
            ``"calendar"``); empty for cache hits, where no engine ran
            and the original run's backend is unknown.
        cancelled_pending: cancelled events still queued at end of run.
        compactions: queue rebuilds performed to purge cancelled events.

    The engine fields are additive to the v1 schema: old telemetry
    lines deserialize with the defaults below, so mixed-generation
    telemetry directories keep aggregating.
    """

    job_digest: str
    wall_time: float
    events: int
    cache_hit: bool
    worker: int
    equeue: str = ""
    cancelled_pending: int = 0
    compactions: int = 0

    def to_dict(self) -> dict:
        return {
            "schema": TELEMETRY_SCHEMA,
            "job_digest": self.job_digest,
            "wall_time": float(self.wall_time),
            "events": int(self.events),
            "cache_hit": bool(self.cache_hit),
            "worker": int(self.worker),
            "equeue": str(self.equeue),
            "cancelled_pending": int(self.cancelled_pending),
            "compactions": int(self.compactions),
        }

    @staticmethod
    def from_dict(raw: dict) -> "JobTelemetry":
        schema = raw.get("schema")
        if schema != TELEMETRY_SCHEMA:
            raise ConfigurationError(
                f"telemetry schema mismatch: got {schema!r}, "
                f"expected {TELEMETRY_SCHEMA!r}"
            )
        return JobTelemetry(
            job_digest=str(raw["job_digest"]),
            wall_time=float(raw["wall_time"]),
            events=int(raw["events"]),
            cache_hit=bool(raw["cache_hit"]),
            worker=int(raw["worker"]),
            equeue=str(raw.get("equeue", "")),
            cancelled_pending=int(raw.get("cancelled_pending", 0)),
            compactions=int(raw.get("compactions", 0)),
        )


class CampaignReport:
    """Aggregate view of a batch (or several batches) of job telemetry."""

    __slots__ = (
        "jobs",
        "cache_hits",
        "executed",
        "total_wall_time",
        "total_events",
        "_worker_histograms",
        "_backends",
    )

    def __init__(self) -> None:
        self.jobs = 0
        self.cache_hits = 0
        self.executed = 0
        self.total_wall_time = 0.0
        self.total_events = 0
        self._worker_histograms: dict[int, LogHistogram] = {}
        #: Per-backend engine accounting over *executed* jobs (cache
        #: hits report no backend): backend name -> dict of jobs /
        #: events / wall_time / cancelled_pending / compactions sums.
        self._backends: dict[str, dict] = {}

    @staticmethod
    def from_telemetry(entries: Iterable[JobTelemetry]) -> "CampaignReport":
        report = CampaignReport()
        for entry in entries:
            report.add(entry)
        return report

    def add(self, entry: JobTelemetry) -> None:
        self.jobs += 1
        if entry.cache_hit:
            self.cache_hits += 1
        else:
            self.executed += 1
        self.total_wall_time += entry.wall_time
        self.total_events += entry.events
        histogram = self._worker_histograms.get(entry.worker)
        if histogram is None:
            histogram = LogHistogram(
                lo=_WALL_LO, hi=_WALL_HI, bins_per_decade=_WALL_BINS_PER_DECADE
            )
            self._worker_histograms[entry.worker] = histogram
        histogram.record(max(entry.wall_time, 0.0))
        if entry.equeue:
            stats = self._backends.get(entry.equeue)
            if stats is None:
                stats = {
                    "jobs": 0,
                    "events": 0,
                    "wall_time": 0.0,
                    "cancelled_pending": 0,
                    "compactions": 0,
                }
                self._backends[entry.equeue] = stats
            stats["jobs"] += 1
            stats["events"] += entry.events
            stats["wall_time"] += entry.wall_time
            stats["cancelled_pending"] += entry.cancelled_pending
            stats["compactions"] += entry.compactions

    @property
    def backends(self) -> dict[str, dict]:
        """Per-backend engine accounting, keyed by backend name.

        Covers executed jobs only (a cache hit runs no engine).  Each
        value sums ``jobs``, ``events``, ``wall_time``,
        ``cancelled_pending`` and ``compactions`` over the jobs that
        backend executed.
        """
        return {name: dict(stats) for name, stats in sorted(self._backends.items())}

    @property
    def workers(self) -> list[int]:
        """Worker ids that contributed, sorted."""
        return sorted(self._worker_histograms)

    @property
    def hit_fraction(self) -> float:
        if self.jobs == 0:
            return 0.0
        return self.cache_hits / self.jobs

    def wall_histogram(self) -> LogHistogram:
        """All per-worker wall-time histograms merged into one."""
        merged = LogHistogram(
            lo=_WALL_LO, hi=_WALL_HI, bins_per_decade=_WALL_BINS_PER_DECADE
        )
        for worker in self.workers:
            merged.merge(self._worker_histograms[worker])
        return merged

    def to_dict(self) -> dict:
        histogram = self.wall_histogram()
        return {
            "jobs": self.jobs,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "hit_fraction": self.hit_fraction,
            "total_wall_time": self.total_wall_time,
            "total_events": self.total_events,
            "workers": self.workers,
            "wall_time_p50": histogram.percentile(50.0),
            "wall_time_p95": histogram.percentile(95.0),
            "wall_time_max": histogram.max_value,
            "backends": self.backends,
        }

    def render(self) -> str:
        """Human-readable summary for the ``repro obs report`` CLI."""
        histogram = self.wall_histogram()
        lines = [
            f"jobs            : {self.jobs}",
            f"executed        : {self.executed}",
            f"cache hits      : {self.cache_hits} ({100.0 * self.hit_fraction:.1f}%)",
            f"workers         : {len(self.workers)}",
            f"events simulated: {self.total_events}",
            f"wall time total : {self.total_wall_time:.3f} s",
            f"wall time p50   : {histogram.percentile(50.0):.4f} s",
            f"wall time p95   : {histogram.percentile(95.0):.4f} s",
            f"wall time max   : {histogram.max_value:.4f} s",
        ]
        for name, stats in self.backends.items():
            lines.append(
                f"engine [{name}] : {stats['jobs']} job(s), "
                f"{stats['events']} events in {stats['wall_time']:.3f} s, "
                f"{stats['compactions']} compaction(s), "
                f"{stats['cancelled_pending']} cancelled pending"
            )
        return "\n".join(lines)


def batch_digest(job_digests: Sequence[str]) -> str:
    """Stable short id for a batch: hash of its job digests, in order."""
    joined = "\n".join(job_digests)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:16]


def write_telemetry(
    directory: str | os.PathLike,
    entries: Sequence[JobTelemetry],
) -> pathlib.Path:
    """Write one JSONL telemetry file for a batch of jobs.

    The file name derives from the batch's job digests, so re-running the
    same batch overwrites its own telemetry instead of accumulating
    duplicates.  Returns the file path.
    """
    root = pathlib.Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    name = batch_digest([entry.job_digest for entry in entries])
    path = root / f"campaign-{name}.jsonl"
    payload = "".join(json.dumps(entry.to_dict()) + "\n" for entry in entries)
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(payload, encoding="utf-8")
    os.replace(tmp, path)
    return path


def read_telemetry_dir(directory: str | os.PathLike) -> list[JobTelemetry]:
    """Load every telemetry entry under a directory, file order.

    Unparsable lines and foreign-schema entries are skipped, not fatal:
    like the result cache, telemetry must never be able to fail a
    campaign (or its report).
    """
    root = pathlib.Path(directory)
    if not root.is_dir():
        return []
    entries: list[JobTelemetry] = []
    for path in sorted(root.glob("*.jsonl")):
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
                entries.append(JobTelemetry.from_dict(raw))
            except (ValueError, KeyError, TypeError, ConfigurationError):
                continue
    return entries
