"""repro.obs — structured observability for the simulator and campaigns.

Three cooperating layers, all opt-in and zero-cost when disabled:

* **event tracing** (:mod:`repro.obs.events`, :mod:`repro.obs.sink`) —
  typed, structured events emitted by the engine, port, buffer managers
  and schedulers into a :class:`~repro.obs.sink.TraceSink`.  Components
  hold ``_sink = None`` by default and guard every emission with a single
  ``if self._sink is not None`` check, so untraced runs pay one pointer
  comparison per hook point and nothing else.
* **metrics** (:mod:`repro.obs.registry`) — a named registry of
  counters, gauges and log-histograms (with labels) that components
  register into; snapshots are plain dicts and registries merge, so
  per-worker metrics aggregate cleanly.
* **run telemetry** (:mod:`repro.obs.telemetry`) — per-job wall time,
  event counts, cache hits and worker ids recorded by the campaign
  pipeline and aggregated into a :class:`~repro.obs.telemetry.CampaignReport`.
* **sim-time timelines** (:mod:`repro.obs.timeline`) — a deterministic
  periodic sampler recording occupancy/headroom/pool/churn series into
  bounded rings, with JSONL/CSV export (``repro-timeline-v1``) and
  windowed reductions.
* **conformance monitoring** (:mod:`repro.obs.monitor`) — a live
  checker comparing observed drops, occupancy and delays against the
  paper's closed-form bounds, emitting structured
  :class:`~repro.obs.monitor.Violation` findings.

See ``docs/observability.md`` for the event schema and overhead numbers.
"""

from repro.obs.events import (
    EVENT_TYPES,
    DepartEvent,
    DropEvent,
    EnqueueEvent,
    HeadroomEvent,
    HeapCompactEvent,
    PoolEvent,
    ReprovisionEvent,
    SampleEvent,
    ThresholdCrossEvent,
    ViolationEvent,
    event_from_dict,
    event_to_dict,
)
from repro.obs.monitor import ConformanceMonitor, MonitorReport, Violation
from repro.obs.reader import filter_events, read_events, replay_flow_counts
from repro.obs.registry import MetricsRegistry
from repro.obs.sink import JsonlSink, RingSink, TeeSink, TraceSink
from repro.obs.telemetry import CampaignReport, JobTelemetry
from repro.obs.timeline import (
    TIMELINE_SCHEMA,
    SeriesStats,
    Timeline,
    TimelineSeries,
    TimelineSummary,
    read_timeline,
)

__all__ = [
    "EVENT_TYPES",
    "TIMELINE_SCHEMA",
    "CampaignReport",
    "ConformanceMonitor",
    "DepartEvent",
    "DropEvent",
    "EnqueueEvent",
    "HeadroomEvent",
    "HeapCompactEvent",
    "JobTelemetry",
    "JsonlSink",
    "MetricsRegistry",
    "MonitorReport",
    "PoolEvent",
    "ReprovisionEvent",
    "RingSink",
    "SampleEvent",
    "SeriesStats",
    "ThresholdCrossEvent",
    "TeeSink",
    "Timeline",
    "TimelineSeries",
    "TimelineSummary",
    "TraceSink",
    "Violation",
    "ViolationEvent",
    "event_from_dict",
    "event_to_dict",
    "filter_events",
    "read_events",
    "read_timeline",
    "replay_flow_counts",
]
