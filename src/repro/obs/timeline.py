"""Sim-time telemetry series: a periodic sampler with bounded storage.

The trace layer records *every* transition; at million-flow scale that
is the wrong observable.  A :class:`Timeline` instead samples live
component state (occupancy, headroom, pool split, churn counts) at a
fixed **simulation-time** cadence — the tick is an ordinary engine
event scheduled with :meth:`~repro.sim.engine.Simulator.schedule_fast`,
so sampling is deterministic, wall-clock-free, and draws no randomness.
Two runs of the same scenario produce byte-identical series.

Samples land in bounded ring storage (:class:`TimelineSeries`), export
to JSONL/CSV under the ``repro-timeline-v1`` schema, and reduce to
windowed statistics (min/mean/max, time-above-threshold).  The layer
follows the observability contract established in PR 3: a timeline
that is constructed but never installed adds **zero** code to the hot
path — probes are pull-based, components are never modified.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError
from repro.obs.events import SampleEvent

__all__ = [
    "TIMELINE_SCHEMA",
    "DEFAULT_INTERVAL",
    "SeriesStats",
    "TimelineSeries",
    "TimelineSummary",
    "Timeline",
    "read_timeline",
]

#: Version tag written into every timeline JSONL header.  Registered in
#: ``repro.check.artifacts.KNOWN_SCHEMAS`` so RPR205 audits these files.
TIMELINE_SCHEMA = "repro-timeline-v1"

#: Default sampling cadence in simulation seconds.
DEFAULT_INTERVAL = 0.05

#: Default per-series ring capacity (samples retained).
DEFAULT_CAPACITY = 4096

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


@dataclass(frozen=True, slots=True)
class SeriesStats:
    """Windowed reduction of one series: count, min/mean/max, last value."""

    count: int
    minimum: float
    mean: float
    maximum: float
    last: float

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "min": self.minimum,
            "mean": self.mean,
            "max": self.maximum,
            "last": self.last,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "SeriesStats":
        return cls(
            count=int(raw["count"]),
            minimum=float(raw["min"]),
            mean=float(raw["mean"]),
            maximum=float(raw["max"]),
            last=float(raw["last"]),
        )


class TimelineSeries:
    """One named, bounded column of ``(sim_time, value)`` samples.

    The ring keeps the most recent ``capacity`` samples; ``dropped``
    counts evictions so truncation is visible rather than silent.
    Values are treated as piecewise-constant between samples (each
    sample holds until the next one) for the windowed reductions.
    """

    __slots__ = ("name", "node", "capacity", "dropped", "_times", "_values")

    def __init__(self, name: str, node: str = "", capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ConfigurationError(f"series capacity must be >= 1, got {capacity}")
        self.name = name
        self.node = node
        self.capacity = capacity
        self.dropped = 0
        self._times: list[float] = []
        self._values: list[float] = []

    @property
    def key(self) -> str:
        """Qualified series name: ``node/name``, or ``name`` single-port."""
        return f"{self.node}/{self.name}" if self.node else self.name

    def append(self, time: float, value: float) -> None:
        if len(self._times) >= self.capacity:
            del self._times[0]
            del self._values[0]
            self.dropped += 1
        self._times.append(time)
        self._values.append(value)

    def times(self) -> list[float]:
        return list(self._times)

    def values(self) -> list[float]:
        return list(self._values)

    def __len__(self) -> int:
        return len(self._times)

    def _window(self, since: float | None, until: float | None) -> range:
        lo = 0
        hi = len(self._times)
        if since is not None:
            while lo < hi and self._times[lo] < since:
                lo += 1
        if until is not None:
            while hi > lo and self._times[hi - 1] > until:
                hi -= 1
        return range(lo, hi)

    def stats(
        self, since: float | None = None, until: float | None = None
    ) -> SeriesStats | None:
        """Min/mean/max/last over the (inclusive) window; None if empty."""
        window = self._window(since, until)
        if not len(window):
            return None
        values = self._values[window.start : window.stop]
        return SeriesStats(
            count=len(values),
            minimum=min(values),
            mean=sum(values) / len(values),
            maximum=max(values),
            last=values[-1],
        )

    def time_above(
        self,
        threshold: float,
        since: float | None = None,
        until: float | None = None,
    ) -> float:
        """Simulated seconds the series spent strictly above ``threshold``.

        Piecewise-constant semantics: each sample's value holds until
        the next sample.  The final sample extends to ``until`` when
        given, otherwise it contributes nothing (its holding interval
        is unknown).
        """
        window = self._window(since, until)
        total = 0.0
        for i in window:
            if self._values[i] <= threshold:
                continue
            start = self._times[i]
            if since is not None and start < since:
                start = since
            if i + 1 < len(self._times):
                end = self._times[i + 1]
                if until is not None and end > until:
                    end = until
            elif until is not None:
                end = until
            else:
                continue
            if end > start:
                total += end - start
        return total

    def sparkline(self, width: int = 32) -> str:
        """Unicode block-character rendering of the series shape."""
        if not self._values:
            return ""
        buckets = _downsample(self._values, width)
        lo = min(buckets)
        hi = max(buckets)
        span = hi - lo
        if span <= 0.0:
            return _SPARK_BLOCKS[0] * len(buckets)
        top = len(_SPARK_BLOCKS) - 1
        return "".join(
            _SPARK_BLOCKS[min(top, int((v - lo) / span * top + 0.5))] for v in buckets
        )


def _downsample(values: list[float], width: int) -> list[float]:
    """Mean-pool ``values`` into at most ``width`` buckets."""
    if width < 1:
        raise ConfigurationError(f"sparkline width must be >= 1, got {width}")
    n = len(values)
    if n <= width:
        return list(values)
    buckets = []
    for b in range(width):
        lo = b * n // width
        hi = (b + 1) * n // width
        chunk = values[lo:hi] or [values[lo]]
        buckets.append(sum(chunk) / len(chunk))
    return buckets


@dataclass(frozen=True)
class TimelineSummary:
    """Serializable digest of a timeline: cadence plus per-series stats.

    This is what campaign records carry (one summary per job) instead
    of the raw rings; keys are :attr:`TimelineSeries.key` strings.
    """

    interval: float
    ticks: int
    series: dict

    def to_dict(self) -> dict:
        return {
            "schema": TIMELINE_SCHEMA,
            "interval": self.interval,
            "ticks": self.ticks,
            "series": {key: stats.to_dict() for key, stats in self.series.items()},
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "TimelineSummary":
        schema = raw.get("schema")
        if schema != TIMELINE_SCHEMA:
            raise ConfigurationError(
                f"timeline schema mismatch: got {schema!r}, "
                f"expected {TIMELINE_SCHEMA!r}"
            )
        return cls(
            interval=float(raw["interval"]),
            ticks=int(raw["ticks"]),
            series={
                key: SeriesStats.from_dict(value)
                for key, value in raw["series"].items()
            },
        )

    def render(self) -> str:
        """Human-readable table: one line per series."""
        lines = [f"timeline: {self.ticks} ticks @ {self.interval:g}s"]
        width = max((len(key) for key in self.series), default=0)
        for key in sorted(self.series):
            s = self.series[key]
            lines.append(
                f"  {key.ljust(width)}  n={s.count:<5d} "
                f"min={s.minimum:<12.6g} mean={s.mean:<12.6g} "
                f"max={s.maximum:<12.6g} last={s.last:.6g}"
            )
        return "\n".join(lines)


class Timeline:
    """A deterministic sim-time sampler over pull-based probes.

    Register probes (``name``, zero-arg callable, optional node label)
    before the run, then :meth:`install` onto the simulator: every
    ``interval`` simulated seconds the sampler reads each probe and
    appends to the matching :class:`TimelineSeries`.  The tick is an
    ordinary handle-free engine event — no wall clock, no RNG — so the
    cadence is exactly reproducible and the sampled run's packet-level
    behaviour is unchanged (probes only *read* live attributes).

    Args:
        interval: sampling cadence in simulated seconds.
        capacity: per-series ring capacity.
        flows: flow ids whose per-flow occupancy the fabric should tag
            (consumed by ``run_fabric`` when wiring probes).
    """

    __slots__ = (
        "interval",
        "capacity",
        "flows",
        "ticks",
        "_series",
        "_probes",
        "_sink",
        "_sim",
    )

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        capacity: int = DEFAULT_CAPACITY,
        flows: tuple = (),
    ) -> None:
        if interval <= 0.0:
            raise ConfigurationError(f"interval must be > 0, got {interval}")
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.interval = interval
        self.capacity = capacity
        self.flows = tuple(flows)
        self.ticks = 0
        self._series: dict[tuple[str, str], TimelineSeries] = {}
        self._probes: dict[tuple[str, str], Callable[[], float]] = {}
        self._sink = None
        self._sim = None

    def series(self, name: str, node: str = "") -> TimelineSeries:
        """Get or create the series for ``(node, name)``."""
        key = (node, name)
        series = self._series.get(key)
        if series is None:
            series = TimelineSeries(name, node, self.capacity)
            self._series[key] = series
        return series

    def all_series(self) -> list[TimelineSeries]:
        """Every registered series, in registration order."""
        return list(self._series.values())

    def probe(self, name: str, fn: Callable[[], float], node: str = "") -> None:
        """Register a pull-based probe sampled at every tick."""
        key = (node, name)
        if key in self._probes:
            raise ConfigurationError(
                f"probe {name!r} already registered for node {node!r}"
            )
        self._probes[key] = fn
        self.series(name, node)

    def attach_trace(self, sink) -> None:
        """Mirror every sample into ``sink`` as a ``SampleEvent``."""
        self._sink = sink

    def install(self, sim, until: float) -> None:
        """Schedule the periodic tick on ``sim`` up to sim-time ``until``."""
        if self._sim is not None:
            raise ConfigurationError("timeline is already installed")
        if until <= 0.0:
            raise ConfigurationError(f"until must be > 0, got {until}")
        self._sim = sim
        sim.schedule_fast(self.interval, self._tick, until)

    def _tick(self, until: float) -> None:
        sim = self._sim
        now = sim.now
        sink = self._sink
        for (node, name), fn in self._probes.items():
            value = float(fn())
            self._series[(node, name)].append(now, value)
            if sink is not None:
                sink.emit(SampleEvent(time=now, series=name, value=value, node=node))
        self.ticks += 1
        if now + self.interval <= until:
            sim.schedule_fast(self.interval, self._tick, until)

    def sample_now(self, time: float) -> None:
        """Take one out-of-band sample at ``time`` (e.g. a final flush)."""
        sink = self._sink
        for (node, name), fn in self._probes.items():
            value = float(fn())
            self._series[(node, name)].append(time, value)
            if sink is not None:
                sink.emit(SampleEvent(time=time, series=name, value=value, node=node))
        self.ticks += 1

    def summary(
        self, since: float | None = None, until: float | None = None
    ) -> TimelineSummary:
        """Reduce every series to :class:`SeriesStats` over the window."""
        reduced = {}
        for series in self._series.values():
            stats = series.stats(since, until)
            if stats is not None:
                reduced[series.key] = stats
        return TimelineSummary(interval=self.interval, ticks=self.ticks, series=reduced)

    def _merged_rows(self) -> tuple[list[str], dict[float, dict[str, float]]]:
        """Series keys (sorted) plus samples grouped by exact tick time."""
        keys = sorted(series.key for series in self._series.values())
        rows: dict[float, dict[str, float]] = {}
        for series in self._series.values():
            for time, value in zip(series._times, series._values):
                rows.setdefault(time, {})[series.key] = value
        return keys, rows

    def write_jsonl(self, path: str | os.PathLike) -> pathlib.Path:
        """Write the retained samples as schema-tagged JSONL, time-ordered."""
        out = pathlib.Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        keys, rows = self._merged_rows()
        with out.open("w", encoding="utf-8") as fh:
            fh.write(
                json.dumps(
                    {
                        "kind": "header",
                        "schema": TIMELINE_SCHEMA,
                        "interval": self.interval,
                        "ticks": self.ticks,
                        "series": keys,
                    }
                )
                + "\n"
            )
            for time in sorted(rows):
                for series in self._series.values():
                    value = rows[time].get(series.key)
                    if value is None:
                        continue
                    fh.write(
                        json.dumps(
                            {
                                "kind": "sample",
                                "time": time,
                                "series": series.name,
                                "node": series.node,
                                "value": value,
                            }
                        )
                        + "\n"
                    )
        return out

    def write_csv(self, path: str | os.PathLike) -> pathlib.Path:
        """Write a wide CSV: one ``time`` column plus one column per series."""
        out = pathlib.Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        keys, rows = self._merged_rows()
        with out.open("w", encoding="utf-8") as fh:
            fh.write(",".join(["time", *keys]) + "\n")
            for time in sorted(rows):
                cells = [f"{time:.9g}"]
                row = rows[time]
                for key in keys:
                    value = row.get(key)
                    cells.append("" if value is None else f"{value:.9g}")
                fh.write(",".join(cells) + "\n")
        return out

    def render(self, width: int = 40) -> str:
        """Sparkline view: one line per series with its reduction."""
        lines = [f"timeline: {self.ticks} ticks @ {self.interval:g}s"]
        series_list = sorted(self._series.values(), key=lambda s: s.key)
        label_width = max((len(s.key) for s in series_list), default=0)
        for series in series_list:
            stats = series.stats()
            if stats is None:
                continue
            spark = series.sparkline(width)
            suffix = f" (+{series.dropped} evicted)" if series.dropped else ""
            lines.append(
                f"  {series.key.ljust(label_width)}  {spark}  "
                f"min={stats.minimum:.6g} mean={stats.mean:.6g} "
                f"max={stats.maximum:.6g} last={stats.last:.6g}{suffix}"
            )
        return "\n".join(lines)


def read_timeline(path: str | os.PathLike) -> tuple[dict, list[dict]]:
    """Read a timeline JSONL file back: ``(header, sample_rows)``.

    Validates the ``repro-timeline-v1`` header the same way trace
    readers validate theirs.
    """
    src = pathlib.Path(path)
    with src.open("r", encoding="utf-8") as fh:
        header_line = fh.readline()
        try:
            header = json.loads(header_line)
        except ValueError:
            raise ConfigurationError(
                f"{src}: first line is not a JSON header"
            ) from None
        if not isinstance(header, dict) or header.get("kind") != "header":
            raise ConfigurationError(f"{src}: missing timeline header line")
        schema = header.get("schema")
        if schema != TIMELINE_SCHEMA:
            raise ConfigurationError(
                f"{src}: timeline schema mismatch: got {schema!r}, "
                f"expected {TIMELINE_SCHEMA!r}"
            )
        samples = []
        for line_no, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
            except ValueError:
                raise ConfigurationError(
                    f"{src}:{line_no}: unparsable timeline line"
                ) from None
            samples.append(raw)
    return header, samples
