"""Analysis driver: parse files, run rules, apply suppressions.

The engine is deliberately pure: it maps source text to a sorted list of
:class:`~repro.lint.findings.Finding` objects and leaves presentation and
exit codes to :mod:`repro.lint.reporters` / :mod:`repro.lint.cli`.  File
discovery sorts paths so the pass is deterministic — the same invariant
the linter enforces on the simulator.

Since the whole-program upgrade the pass has two stages: every file is
parsed exactly **once** into a :class:`~repro.lint.registry.LintContext`
(whose node index is shared across all per-file rules), then the parsed
contexts are assembled into a :class:`repro.check.project.ProjectContext`
for the cross-module :class:`~repro.lint.registry.ProjectRule` checks
(RNG lineage, trace-event registration, ...).  Suppression pragmas are
tracked per rule id; on a full-rule run any pragma id that never shielded
a finding is reported as an **RPR002** stale-suppression meta-finding.
"""

from __future__ import annotations

import ast
import pathlib
from typing import Iterable, Sequence

from repro.lint.findings import Finding, LintParseError, LintUsageError
from repro.lint.registry import LintContext, ProjectRule, resolve_rule_ids
from repro.lint.suppressions import SuppressionTable, scan_suppressions

# Imports for the side effect of registering the shipped rules.
from repro.lint import rules as _rules  # noqa: F401  (registration import)
from repro.check import program_rules as _program_rules  # noqa: F401  (registration import)

__all__ = ["lint_source", "lint_file", "lint_paths", "unsuppressed"]


def _apply_suppression(finding: Finding, table: SuppressionTable) -> None:
    if table.covers(finding.line, finding.rule_id):
        finding.suppressed = True
        finding.suppress_reason = table.reason(finding.line, finding.rule_id)
        table.mark_used(finding.line, finding.rule_id)


def _stale_pragma_findings(path: str, table: SuppressionTable) -> list[Finding]:
    """RPR002 meta-findings for pragma ids that never shielded anything."""
    findings: list[Finding] = []
    for pragma in table.pragmas:
        unused = pragma.unused_ids()
        if not unused:
            continue
        ids = ", ".join(unused)
        findings.append(
            Finding(
                "RPR002",
                f"stale suppression: {ids} never fired here — remove the "
                "pragma (or the dead rule id) so it cannot mask the next "
                "real violation on this line",
                path,
                pragma.line,
                pragma.col,
            )
        )
    return findings


def _analyze(contexts: Sequence[LintContext], select: Iterable[str] | None) -> list[Finding]:
    """Run the full two-stage pass over already-parsed files."""
    rules = resolve_rule_ids(select)
    file_rules = [rule for rule in rules if not isinstance(rule, ProjectRule)]
    project_rules = [rule for rule in rules if isinstance(rule, ProjectRule)]
    findings: list[Finding] = []
    tables: dict[str, SuppressionTable] = {}
    for ctx in contexts:
        table, meta = scan_suppressions(ctx.source, ctx.path)
        tables[ctx.path] = table
        findings.extend(meta)
        for rule in file_rules:
            if rule.library_only and not ctx.is_library:
                continue
            for finding in rule.check(ctx):
                _apply_suppression(finding, table)
                findings.append(finding)
    if project_rules:
        from repro.check.project import build_project

        project = build_project(contexts)
        for rule in project_rules:
            for finding in rule.check_project(project):
                table = tables.get(finding.path)
                if table is not None:
                    _apply_suppression(finding, table)
                findings.append(finding)
    if select is None:
        # Stale-pragma detection only makes sense when every rule ran:
        # a restricted --select pass leaves most pragmas legitimately
        # unexercised.  RPR001/RPR002 meta-findings are not suppressible.
        for path in sorted(tables):
            findings.extend(_stale_pragma_findings(path, tables[path]))
    findings.sort(key=Finding.sort_key)
    return findings


def _parse(source: str, path: str) -> LintContext:
    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError) as exc:
        raise LintParseError(f"{path}: {exc}") from exc
    return LintContext(path, source, tree)


def lint_source(
    source: str,
    path: str = "src/repro/<snippet>.py",
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Analyze one unit of source text (a single-file project).

    Args:
        source: Python source to analyze.
        path: path used for scoping decisions (library vs. test code,
            ``repro/sim`` / ``repro/core`` slots scope) and in findings.
        select: optional iterable of rule ids to restrict the run to.

    Returns:
        All findings sorted by location, suppressed ones included (with
        ``suppressed=True``).  RPR001/RPR002 suppression meta-findings
        are never themselves suppressible.

    Raises:
        LintParseError: the source is not valid Python.
    """
    return _analyze([_parse(source, path)], select)


def _read(path: pathlib.Path) -> str:
    try:
        return path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintUsageError(f"cannot read {path}: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise LintParseError(f"{path}: not valid UTF-8 ({exc})") from exc


def lint_file(path: pathlib.Path, select: Iterable[str] | None = None) -> list[Finding]:
    """Analyze one file on disk."""
    return _analyze([_parse(_read(path), str(path))], select)


def _discover(paths: Sequence[str]) -> list[pathlib.Path]:
    files: set[pathlib.Path] = set()
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.is_file():
            files.add(path)
        else:
            raise LintUsageError(f"no such file or directory: {raw}")
    return sorted(files)


def lint_paths(
    paths: Sequence[str], select: Iterable[str] | None = None
) -> list[Finding]:
    """Analyze files and directories (recursing into ``*.py``).

    All files are parsed first (each exactly once), then the per-file
    and whole-program rules run over the shared parse results.

    Raises:
        LintUsageError: a path does not exist or no files were found.
        LintParseError: some file is not parseable Python.
    """
    files = _discover(paths)
    if not files:
        raise LintUsageError(f"no Python files found under: {', '.join(paths)}")
    select_list = sorted(select) if select is not None else None
    contexts = [_parse(_read(file_path), str(file_path)) for file_path in files]
    return _analyze(contexts, select_list)


def unsuppressed(findings: Iterable[Finding]) -> list[Finding]:
    """The findings that count toward a nonzero exit code."""
    return [finding for finding in findings if not finding.suppressed]
