"""Analysis driver: parse files, run rules, apply suppressions.

The engine is deliberately pure: it maps source text to a sorted list of
:class:`~repro.lint.findings.Finding` objects and leaves presentation and
exit codes to :mod:`repro.lint.reporters` / :mod:`repro.lint.cli`.  File
discovery sorts paths so the pass is deterministic — the same invariant
the linter enforces on the simulator.
"""

from __future__ import annotations

import ast
import pathlib
from typing import Iterable, Sequence

from repro.lint.findings import Finding, LintParseError, LintUsageError
from repro.lint.registry import LintContext, Rule, resolve_rule_ids
from repro.lint.suppressions import scan_suppressions

# Import for the side effect of registering the shipped rules.
from repro.lint import rules as _rules  # noqa: F401  (registration import)

__all__ = ["lint_source", "lint_file", "lint_paths", "unsuppressed"]


def lint_source(
    source: str,
    path: str = "src/repro/<snippet>.py",
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Analyze one unit of source text.

    Args:
        source: Python source to analyze.
        path: path used for scoping decisions (library vs. test code,
            ``repro/sim`` / ``repro/core`` slots scope) and in findings.
        select: optional iterable of rule ids to restrict the run to.

    Returns:
        All findings sorted by location, suppressed ones included (with
        ``suppressed=True``).  RPR001 suppression meta-findings are never
        themselves suppressible.

    Raises:
        LintParseError: the source is not valid Python.
    """
    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError) as exc:
        raise LintParseError(f"{path}: {exc}") from exc
    ctx = LintContext(path, source, tree)
    table, findings = scan_suppressions(source, path)
    for rule in resolve_rule_ids(select):
        if rule.library_only and not ctx.is_library:
            continue
        for finding in rule.check(ctx):
            if table.covers(finding.line, finding.rule_id):
                finding.suppressed = True
                finding.suppress_reason = table.reason(finding.line, finding.rule_id)
            findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings


def lint_file(path: pathlib.Path, select: Iterable[str] | None = None) -> list[Finding]:
    """Analyze one file on disk."""
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintUsageError(f"cannot read {path}: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise LintParseError(f"{path}: not valid UTF-8 ({exc})") from exc
    return lint_source(source, str(path), select)


def _discover(paths: Sequence[str]) -> list[pathlib.Path]:
    files: set[pathlib.Path] = set()
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.is_file():
            files.add(path)
        else:
            raise LintUsageError(f"no such file or directory: {raw}")
    return sorted(files)


def lint_paths(
    paths: Sequence[str], select: Iterable[str] | None = None
) -> list[Finding]:
    """Analyze files and directories (recursing into ``*.py``).

    Raises:
        LintUsageError: a path does not exist or no files were found.
        LintParseError: some file is not parseable Python.
    """
    files = _discover(paths)
    if not files:
        raise LintUsageError(f"no Python files found under: {', '.join(paths)}")
    findings: list[Finding] = []
    select_list = sorted(select) if select is not None else None
    for file_path in files:
        findings.extend(lint_file(file_path, select_list))
    findings.sort(key=Finding.sort_key)
    return findings


def unsuppressed(findings: Iterable[Finding]) -> list[Finding]:
    """The findings that count toward a nonzero exit code."""
    return [finding for finding in findings if not finding.suppressed]
