"""Parsing of ``# repro: noqa RPR###`` suppression comments.

The suppression syntax, checked by this module:

* ``# repro: noqa RPR102`` — suppress RPR102 on this line;
* ``# repro: noqa RPR102, RPR105 — reason text`` — several rules, with a
  human-readable justification after an em-dash / hyphen / colon;
* a comment that is alone on its line suppresses the **next** line too,
  so class- and function-level findings can carry a suppression above the
  ``class``/``def`` statement.

A comment that *looks* like a suppression (``repro: noqa``) but names no
valid rule id is itself reported as an **RPR001** meta-finding: a silent
typo in a suppression would otherwise re-enable the violation it was
meant to acknowledge.  Blanket suppressions without an explicit rule list
are rejected for the same reason.

Well-formed pragmas are tracked per rule id: the engine marks each
(line, rule) pair that actually shielded a finding, and any rule id a
pragma names that never fired becomes an **RPR002** meta-finding.  Stale
suppressions otherwise rot silently and hide the *next* violation on
that line.

Comments are located with :mod:`tokenize`, so the pattern inside a string
literal (e.g. in the linter's own test-suite) is never treated as a
suppression.
"""

from __future__ import annotations

import io
import re
import tokenize

from repro.lint.findings import Finding

__all__ = ["Pragma", "SuppressionTable", "scan_suppressions"]

#: Marker that makes a comment a suppression candidate.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\b(?P<rest>.*)", re.IGNORECASE)
#: Well-formed rule identifier.
_RULE_ID_RE = re.compile(r"\bRPR\d{3}\b")
#: Separators starting the free-text reason (em-dash, hyphen, or colon).
_REASON_SPLIT_RE = re.compile(r"\s+[—:-]+\s+|\s*—\s*")


class Pragma:
    """One well-formed suppression comment and its usage state."""

    __slots__ = ("line", "col", "rule_ids", "reason", "covered_lines", "used_ids")

    def __init__(
        self,
        line: int,
        col: int,
        rule_ids: tuple[str, ...],
        reason: str,
        covered_lines: tuple[int, ...],
    ) -> None:
        self.line = line
        self.col = col
        self.rule_ids = rule_ids
        self.reason = reason
        self.covered_lines = covered_lines
        self.used_ids: set[str] = set()

    def unused_ids(self) -> list[str]:
        return [rule_id for rule_id in self.rule_ids if rule_id not in self.used_ids]


class SuppressionTable:
    """Maps source lines to the pragmas suppressing rules on them."""

    __slots__ = ("_by_line", "pragmas")

    def __init__(self) -> None:
        self._by_line: dict[int, dict[str, Pragma]] = {}
        self.pragmas: list[Pragma] = []

    def add(self, pragma: Pragma) -> None:
        self.pragmas.append(pragma)
        for line in pragma.covered_lines:
            entry = self._by_line.setdefault(line, {})
            for rule_id in pragma.rule_ids:
                entry[rule_id] = pragma

    def covers(self, line: int, rule_id: str) -> bool:
        return rule_id in self._by_line.get(line, {})

    def reason(self, line: int, rule_id: str) -> str:
        pragma = self._by_line.get(line, {}).get(rule_id)
        return pragma.reason if pragma is not None else ""

    def mark_used(self, line: int, rule_id: str) -> None:
        pragma = self._by_line.get(line, {}).get(rule_id)
        if pragma is not None:
            pragma.used_ids.add(rule_id)

    def __len__(self) -> int:
        return len(self._by_line)


def _parse_comment(text: str) -> tuple[list[str], str] | None:
    """Return (rule_ids, reason) for a suppression comment, or None.

    An empty rule-id list means the comment is malformed.
    """
    match = _NOQA_RE.search(text)
    if match is None:
        return None
    rest = match.group("rest")
    split = _REASON_SPLIT_RE.split(rest, maxsplit=1)
    id_part = split[0]
    reason = split[1].strip() if len(split) > 1 else ""
    rule_ids = _RULE_ID_RE.findall(id_part)
    # Reject id sections containing junk that is neither a rule id nor a
    # list separator: "RPR10" or "RPR101x" must not silently half-work.
    residue = _RULE_ID_RE.sub("", id_part).replace(",", "").strip()
    if residue:
        return [], reason
    return sorted(set(rule_ids)), reason


def scan_suppressions(source: str, path: str) -> tuple[SuppressionTable, list[Finding]]:
    """Extract the suppression table and RPR001 meta-findings of a file."""
    table = SuppressionTable()
    meta: list[Finding] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The caller reports the parse failure; no suppressions apply.
        return table, meta
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        parsed = _parse_comment(token.string)
        if parsed is None:
            continue
        rule_ids, reason = parsed
        line, col = token.start
        if not rule_ids:
            meta.append(
                Finding(
                    "RPR001",
                    "malformed suppression: expected '# repro: noqa RPR###"
                    " — reason' with one or more explicit rule ids",
                    path,
                    line,
                    col,
                )
            )
            continue
        standalone = token.line[:col].strip() == ""
        covered = (line, line + 1) if standalone else (line,)
        table.add(Pragma(line, col, tuple(rule_ids), reason, covered))
    return table, meta
