"""Rule registry and per-file analysis context.

Rules are small classes with a stable ``RPR###`` id; registering a class
makes it discoverable by the engine and the CLI's ``--list-rules``.  Each
rule receives a :class:`LintContext` (parsed AST plus source metadata)
and yields :class:`~repro.lint.findings.Finding` objects.

All shipped rules are *library rules*: they encode invariants of the
simulator library itself, so the engine skips them for test, benchmark,
and example files (where ``assert``, wall-clock timing, or ad-hoc numbers
are legitimate).  The suppression scanner still runs everywhere.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from typing import Iterable, Iterator

from repro.lint.findings import Finding, LintUsageError

__all__ = [
    "LintContext",
    "Rule",
    "ProjectRule",
    "register",
    "all_rules",
    "resolve_rule_ids",
    "RULE_REGISTRY",
]

#: Path components / filename prefixes marking non-library code.
_NON_LIBRARY_DIRS = frozenset({"tests", "benchmarks", "examples"})
_NON_LIBRARY_PREFIXES = ("test_", "bench_", "conftest")


class LintContext:
    """Everything a rule may inspect about one source file.

    The AST is walked **once** and indexed by exact node type; rules ask
    for the node kinds they care about via :meth:`select` instead of
    re-walking the whole tree per rule.
    """

    __slots__ = ("path", "source", "tree", "lines", "is_library", "_node_index")

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.is_library = _is_library_path(path)
        self._node_index: dict[type, list[ast.AST]] | None = None

    def select(self, *node_types: type) -> list[ast.AST]:
        """All nodes of the given exact types, in one shared walk.

        Matching is by ``type(node)``, not ``isinstance``: callers name
        every concrete class they want (``select(ast.FunctionDef,
        ast.AsyncFunctionDef)``).
        """
        index = self._node_index
        if index is None:
            index = {}
            for node in ast.walk(self.tree):
                index.setdefault(type(node), []).append(node)
            self._node_index = index
        if len(node_types) == 1:
            return index.get(node_types[0], [])
        nodes: list[ast.AST] = []
        for node_type in node_types:
            nodes.extend(index.get(node_type, []))
        return nodes

    def finding(self, rule_id: str, message: str, node: ast.AST) -> Finding:
        """Build a finding anchored at ``node``'s location."""
        return Finding(
            rule_id,
            message,
            self.path,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
        )


def _is_library_path(path: str) -> bool:
    normalized = path.replace("\\", "/")
    parts = [part for part in normalized.split("/") if part]
    basename = parts[-1] if parts else ""
    if any(part in _NON_LIBRARY_DIRS for part in parts):
        return False
    return not basename.startswith(_NON_LIBRARY_PREFIXES)


class Rule(ABC):
    """Base class for analysis rules.

    Class attributes:
        id: stable ``RPR###`` identifier used in reports and suppressions.
        name: short kebab-case name.
        description: one-line summary shown by ``--list-rules``.
        library_only: when True (the default) the engine skips the rule
            for test/benchmark/example files.
    """

    id: str = ""
    name: str = ""
    description: str = ""
    library_only: bool = True

    @abstractmethod
    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Yield findings for one file."""


class ProjectRule(Rule):
    """A rule that sees the whole program at once.

    Project rules run after every file has been parsed and indexed; they
    receive a :class:`repro.check.project.ProjectContext` (module symbol
    tables + import graph) and may anchor findings in any file.  For
    ``library_only`` project rules the per-file scoping cannot be applied
    by the engine, so the rule itself must skip non-library modules.
    """

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        return iter(())

    @abstractmethod
    def check_project(self, project) -> Iterator[Finding]:
        """Yield findings across the whole parsed project."""


RULE_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id or RULE_REGISTRY.get(cls.id, cls) is not cls:
        raise LintUsageError(f"rule id {cls.id!r} is missing or already registered")
    RULE_REGISTRY[cls.id] = cls
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, ordered by id."""
    return [RULE_REGISTRY[rule_id]() for rule_id in sorted(RULE_REGISTRY)]


def resolve_rule_ids(selected: Iterable[str] | None) -> list[Rule]:
    """Instantiate the selected rules (all of them when ``selected`` is None)."""
    if selected is None:
        return all_rules()
    rules: list[Rule] = []
    for rule_id in sorted(set(selected)):
        if rule_id not in RULE_REGISTRY:
            known = ", ".join(sorted(RULE_REGISTRY))
            raise LintUsageError(f"unknown rule id {rule_id!r} (known: {known})")
        rules.append(RULE_REGISTRY[rule_id]())
    return rules
