"""Rendering of findings: compiler-style text and machine-readable JSON."""

from __future__ import annotations

import json
from typing import Iterable

from repro.lint.findings import Finding

__all__ = ["render_text", "render_json", "summarize"]


def summarize(findings: Iterable[Finding]) -> dict[str, int]:
    """Per-rule counts of unsuppressed findings plus totals."""
    by_rule: dict[str, int] = {}
    total = 0
    suppressed = 0
    for finding in findings:
        if finding.suppressed:
            suppressed += 1
            continue
        total += 1
        by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
    counts = {rule_id: by_rule[rule_id] for rule_id in sorted(by_rule)}
    counts["total"] = total
    counts["suppressed"] = suppressed
    return counts


def render_text(findings: list[Finding], show_suppressed: bool = False) -> str:
    """Human-readable report, one ``path:line:col: RPR### message`` per line."""
    lines: list[str] = []
    active = [finding for finding in findings if not finding.suppressed]
    for finding in active:
        marker = "warning: " if finding.severity == "warning" else ""
        lines.append(
            f"{finding.location()}: {finding.rule_id} {marker}{finding.message}"
        )
    hidden = [finding for finding in findings if finding.suppressed]
    if show_suppressed and hidden:
        lines.append("")
        lines.append(f"suppressed ({len(hidden)}):")
        for finding in hidden:
            reason = finding.suppress_reason or "no reason given"
            lines.append(
                f"  {finding.location()}: {finding.rule_id} {finding.message} "
                f"[noqa: {reason}]"
            )
    counts = summarize(findings)
    if active:
        per_rule = ", ".join(
            f"{rule_id}={count}"
            for rule_id, count in counts.items()
            if rule_id not in ("total", "suppressed")
        )
        lines.append("")
        lines.append(
            f"{counts['total']} finding(s) ({per_rule}); "
            f"{counts['suppressed']} suppressed"
        )
    else:
        lines.append(f"clean: 0 findings; {counts['suppressed']} suppressed")
    return "\n".join(lines)


def render_json(findings: list[Finding], show_suppressed: bool = False) -> str:
    """JSON report: counts plus finding records (stable field order)."""
    payload = {
        "counts": summarize(findings),
        "findings": [
            finding.to_dict() for finding in findings if not finding.suppressed
        ],
    }
    if show_suppressed:
        payload["suppressed_findings"] = [
            finding.to_dict() for finding in findings if finding.suppressed
        ]
    return json.dumps(payload, indent=2, sort_keys=False)
