"""Domain-aware static analysis for the repro simulator.

The reproduction's correctness claims rest on invariants Python's type
system cannot express: bit-for-bit deterministic runs for a given seed,
a single canonical bytes/seconds unit system (:mod:`repro.units`), eager
:class:`~repro.errors.ReproError` failures instead of silent drift, exact
handling of float simulation times, and slotted hot-path objects.  This
package enforces them mechanically:

========  ====================================================
RPR001    malformed ``# repro: noqa`` suppression comment
RPR002    stale suppression (pragma id that never fires)
RPR101    determinism (no wall clock, global random, id()-order)
RPR102    units (no magic-number conversions; use repro.units)
RPR103    error discipline (ReproError, not bare built-ins)
RPR104    sim-time safety (no float ``==`` on times)
RPR105    hot-path hygiene (__slots__, no mutable defaults)
RPR106    port encapsulation (OutputPort via the fabric only)
RPR107    RNG lineage (seeded roots, spawn() per consumer)
RPR108    trace-event registration (EVENT_TYPES completeness)
RPR109    hot-loop time accumulation (no ``+=`` on sim times)
========  ====================================================

RPR107–109 are whole-program rules living in :mod:`repro.check`; they
run as part of every full lint pass.  The buffer-invariant auditor
(``repro check``, RPR2xx) is documented in ``docs/checking.md``.

Run it with ``python -m repro.lint src/ tests/`` or the ``repro-lint``
console script; see :mod:`repro.lint.cli` for the exit-code contract and
``docs/lint.md`` for rule rationale with good/bad examples.  Deliberate
exceptions are annotated in place::

    return rate * 1e6 / 8  # repro: noqa RPR102 — canonical definition
"""

from __future__ import annotations

from repro.lint.engine import lint_file, lint_paths, lint_source, unsuppressed
from repro.lint.findings import Finding, LintParseError, LintUsageError
from repro.lint.registry import RULE_REGISTRY, Rule, all_rules
from repro.lint.reporters import render_json, render_text, summarize

__all__ = [
    "Finding",
    "LintParseError",
    "LintUsageError",
    "Rule",
    "RULE_REGISTRY",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
    "summarize",
    "unsuppressed",
]
