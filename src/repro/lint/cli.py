"""Command-line interface for the static-analysis pass.

Usage::

    python -m repro.lint src/ tests/          # or the repro-lint script
    python -m repro.lint --format json src/
    python -m repro.lint --select RPR101,RPR104 src/repro/sim
    python -m repro.lint --list-rules

Exit codes (documented contract, relied on by CI):

* **0** — clean: no unsuppressed findings;
* **1** — at least one unsuppressed finding (including RPR001
  malformed-suppression meta-findings);
* **2** — usage or parse error: unknown rule id, missing path, no Python
  files found, or a target file that is not valid Python.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.lint.engine import lint_paths, unsuppressed
from repro.lint.findings import LintParseError, LintUsageError
from repro.lint.registry import all_rules
from repro.lint.reporters import render_json, render_text

__all__ = ["main", "build_parser", "EXIT_CLEAN", "EXIT_FINDINGS", "EXIT_ERROR"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Domain-aware static analysis for the repro simulator: "
            "determinism, canonical units, error discipline, sim-time "
            "safety, hot-path hygiene."
        ),
        epilog="exit codes: 0 clean, 1 findings, 2 usage/parse error",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (directories recurse into *.py)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RPR###[,RPR###...]",
        help="comma-separated rule ids to run (default: all rules)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list findings silenced by '# repro: noqa' comments",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.id} {rule.name}: {rule.description}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    try:
        options = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors and 0 on --help; pass through.
        return int(exc.code or 0)
    if options.list_rules:
        print(_list_rules())
        return EXIT_CLEAN
    if not options.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no paths given", file=sys.stderr)
        return EXIT_ERROR
    select = None
    if options.select:
        select = [rule_id.strip() for rule_id in options.select.split(",") if rule_id.strip()]
    try:
        findings = lint_paths(options.paths, select)
    except (LintUsageError, LintParseError) as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    if options.format == "json":
        print(render_json(findings, show_suppressed=options.show_suppressed))
    else:
        print(render_text(findings, show_suppressed=options.show_suppressed))
    return EXIT_FINDINGS if unsuppressed(findings) else EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
