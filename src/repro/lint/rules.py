"""The domain rules: simulator invariants the type system cannot see.

Each rule encodes one invariant the reproduction's correctness argument
rests on (see ``docs/lint.md`` for the rationale and examples):

* **RPR101** — determinism: no wall-clock or process-global entropy
  sources, no ordering derived from ``id()`` or raw ``set`` iteration.
* **RPR102** — units: quantities stay in the canonical bytes/seconds
  system; conversions go through :mod:`repro.units`, not magic numbers.
* **RPR103** — error discipline: library code raises the eager
  :class:`~repro.errors.ReproError` hierarchy, never bare built-ins or
  ``assert`` (stripped under ``python -O``).
* **RPR104** — sim-time safety: no float ``==`` on simulation times, no
  scheduling with negative literal delays.
* **RPR105** — hot-path hygiene: classes in ``repro.sim``/``repro.core``
  declare ``__slots__``; no mutable default arguments anywhere.
* **RPR106** — port encapsulation: ``OutputPort`` is constructed only by
  the port layers (``repro.sim``, ``repro.net``,
  ``repro.experiments.fabric``); everything else goes through the
  scenario fabric, which enforces the recycling/labelling invariants.
* **RPR110** — event-queue encapsulation: ``heapq`` is imported only by
  the engine backends (``repro.sim.equeue``) and the packet-level
  schedulers (``repro.sched``); simulation events are scheduled through
  the :class:`~repro.sim.equeue.EventQueue` interface so backends stay
  interchangeable.

The checks are deliberately syntactic: they over-approximate in known,
documented ways and rely on ``# repro: noqa`` for the rare deliberate
exception, trading completeness for zero false negatives on the patterns
that have actually bitten simulator reproductions.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import LintContext, Rule, register

__all__ = [
    "DeterminismRule",
    "UnitsRule",
    "ErrorDisciplineRule",
    "SimTimeRule",
    "HotPathRule",
    "PortEncapsulationRule",
    "EventQueueEncapsulationRule",
]


def _dotted_name(node: ast.AST) -> str:
    """Best-effort dotted name of a Name/Attribute chain ('' otherwise)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


@register
class DeterminismRule(Rule):
    """RPR101: ban nondeterministic entropy and ordering sources."""

    id = "RPR101"
    name = "determinism"
    description = (
        "no module-level random state, wall-clock reads, id()-based "
        "ordering, or raw set iteration in simulator code"
    )

    #: Calls that read wall-clock time or process-global entropy.
    _BANNED_CALLS = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "os.urandom",
            "uuid.uuid1",
            "uuid.uuid4",
        }
    )
    #: datetime constructors that embed "now".
    _BANNED_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})
    _ORDERING_CALLS = frozenset({"sorted", "min", "max", "sort"})

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ctx.select(ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield ctx.finding(
                        self.id,
                        "import of stdlib 'random' (module-level global "
                        "state); use a seeded numpy Generator passed in "
                        "explicitly",
                        node,
                    )
        for node in ctx.select(ast.ImportFrom):
            if node.module == "random":
                yield ctx.finding(
                    self.id,
                    "import from stdlib 'random' (module-level global "
                    "state); use a seeded numpy Generator passed in "
                    "explicitly",
                    node,
                )
        for node in ctx.select(ast.Call):
            yield from self._check_call(ctx, node)
        for node in ctx.select(ast.For, ast.comprehension):
            iter_node = node.iter
            if self._is_set_expression(iter_node):
                yield ctx.finding(
                    self.id,
                    "iteration over an unordered set; sort it before "
                    "letting it feed scheduling or accounting decisions",
                    iter_node,
                )

    def _check_call(self, ctx: LintContext, node: ast.Call) -> Iterator[Finding]:
        dotted = _dotted_name(node.func)
        if dotted in self._BANNED_CALLS:
            yield ctx.finding(
                self.id,
                f"call to {dotted}() reads wall-clock/process entropy; "
                "simulation state must derive from Simulator.now and seeds",
                node,
            )
        elif isinstance(node.func, ast.Attribute) and (
            node.func.attr in self._BANNED_DATETIME_ATTRS
            and any(part in ("datetime", "date") for part in dotted.split("."))
        ):
            yield ctx.finding(
                self.id,
                f"call to {dotted}() embeds wall-clock time; simulation "
                "timestamps must come from Simulator.now",
                node,
            )
        # id()-derived ordering: sorted(xs, key=id) or key=lambda x: id(x).
        callee = dotted.rsplit(".", maxsplit=1)[-1]
        if callee in self._ORDERING_CALLS:
            for keyword in node.keywords:
                if keyword.arg == "key" and self._key_uses_id(keyword.value):
                    yield ctx.finding(
                        self.id,
                        "ordering keyed on id(); object addresses vary "
                        "between runs — key on a sequence number instead",
                        keyword.value,
                    )

    @staticmethod
    def _key_uses_id(key: ast.AST) -> bool:
        if isinstance(key, ast.Name) and key.id == "id":
            return True
        if isinstance(key, ast.Lambda):
            return any(
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "id"
                for sub in ast.walk(key.body)
            )
        return False

    @staticmethod
    def _is_set_expression(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )


@register
class UnitsRule(Rule):
    """RPR102: conversions must go through repro.units helpers."""

    id = "RPR102"
    name = "units"
    description = (
        "no raw magic-number unit conversions (1e6, 1000, 125000...); "
        "use repro.units (mbps, kbytes, ...) helpers"
    )

    #: Multiplicative factors that only appear in rate/size conversions
    #: under the library's decimal bytes/seconds convention.
    _CONVERSION_FACTORS = frozenset(
        {1_000, 1_000_000, 1_000_000_000, 125_000, 125_000_000, 8_000_000}
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        chain_roots = self._multiplicative_chain_roots(ctx)
        for root in chain_roots:
            constants, others = self._chain_leaves(root)
            if not others:
                continue  # constant folding, not a conversion of a quantity
            factors = sorted(
                {value for value in constants if value in self._CONVERSION_FACTORS}
            )
            if factors:
                pretty = ", ".join(str(factor) for factor in factors)
                yield ctx.finding(
                    self.id,
                    f"raw unit-conversion factor ({pretty}) in arithmetic; "
                    "use the repro.units helpers so bytes/seconds stay "
                    "canonical",
                    root,
                )

    @staticmethod
    def _multiplicative_chain_roots(ctx: LintContext) -> list[ast.BinOp]:
        """Top-most Mult/Div BinOps (each chain reported once)."""
        binops = [
            node
            for node in ctx.select(ast.BinOp)
            if isinstance(node.op, (ast.Mult, ast.Div))
        ]
        children_of_chains: set[int] = set()
        for node in binops:
            for side in (node.left, node.right):
                if isinstance(side, ast.BinOp) and isinstance(
                    side.op, (ast.Mult, ast.Div)
                ):
                    children_of_chains.add(id(side))
        return [node for node in binops if id(node) not in children_of_chains]

    @classmethod
    def _chain_leaves(cls, node: ast.AST) -> tuple[list[float], list[ast.AST]]:
        """Split a Mult/Div chain into numeric-constant and other leaves."""
        constants: list[float] = []
        others: list[ast.AST] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, ast.BinOp) and isinstance(
                current.op, (ast.Mult, ast.Div)
            ):
                stack.append(current.left)
                stack.append(current.right)
            elif isinstance(current, ast.Constant) and isinstance(
                current.value, (int, float)
            ):
                constants.append(float(current.value))
            else:
                others.append(current)
        return constants, others


@register
class ErrorDisciplineRule(Rule):
    """RPR103: library errors must be ReproError subclasses, not built-ins."""

    id = "RPR103"
    name = "error-discipline"
    description = (
        "library code must raise ReproError subclasses; bare built-in "
        "exceptions and assert statements are banned"
    )

    _BANNED_EXCEPTIONS = frozenset(
        {
            "ValueError",
            "TypeError",
            "RuntimeError",
            "KeyError",
            "IndexError",
            "ArithmeticError",
            "AssertionError",
            "Exception",
            "BaseException",
        }
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ctx.select(ast.Assert):
            yield ctx.finding(
                self.id,
                "assert in library code is stripped under 'python -O'; "
                "raise SimulationError/ConfigurationError explicitly",
                node,
            )
        for node in ctx.select(ast.Raise):
            if node.exc is None:
                continue
            exc = node.exc
            name = ""
            if isinstance(exc, ast.Call):
                name = _dotted_name(exc.func)
            elif isinstance(exc, (ast.Name, ast.Attribute)):
                name = _dotted_name(exc)
            if name.rsplit(".", maxsplit=1)[-1] in self._BANNED_EXCEPTIONS:
                yield ctx.finding(
                    self.id,
                    f"raise of bare {name}; internal inconsistencies "
                    "must surface as a ReproError subclass "
                    "(SimulationError, ConfigurationError, ...)",
                    node,
                )


@register
class SimTimeRule(Rule):
    """RPR104: float simulation times compare with tolerances, not ``==``."""

    id = "RPR104"
    name = "sim-time-safety"
    description = (
        "no float ==/!= on simulation times; no scheduling with negative "
        "literal delays"
    )

    #: Identifier fragments marking a value as a simulation timestamp.
    _TIME_NAME_RE = re.compile(
        r"(?:^|_)(?:time|now|enqueued|deadline|timestamp)(?:_|$)|_at$"
    )
    _SCHEDULE_CALLS = frozenset({"schedule", "schedule_at", "call_later"})

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ctx.select(ast.Compare):
            yield from self._check_compare(ctx, node)
        for node in ctx.select(ast.Call):
            yield from self._check_schedule(ctx, node)

    def _check_compare(self, ctx: LintContext, node: ast.Compare) -> Iterator[Finding]:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                name = _dotted_name(side).rsplit(".", maxsplit=1)[-1]
                if name and self._TIME_NAME_RE.search(name):
                    yield ctx.finding(
                        self.id,
                        f"float equality on simulation time ({name!r}); "
                        "compare with an explicit tolerance or ordering",
                        node,
                    )
                    break

    def _check_schedule(self, ctx: LintContext, node: ast.Call) -> Iterator[Finding]:
        callee = _dotted_name(node.func).rsplit(".", maxsplit=1)[-1]
        if callee not in self._SCHEDULE_CALLS or not node.args:
            return
        first = node.args[0]
        if (
            isinstance(first, ast.UnaryOp)
            and isinstance(first.op, ast.USub)
            and isinstance(first.operand, ast.Constant)
            and isinstance(first.operand.value, (int, float))
            and first.operand.value > 0
        ):
            yield ctx.finding(
                self.id,
                f"{callee}() with a negative literal delay; events cannot "
                "be scheduled in the past (SimulationError at runtime)",
                node,
            )


@register
class HotPathRule(Rule):
    """RPR105: hot-path classes use __slots__; no mutable default args."""

    id = "RPR105"
    name = "hot-path-hygiene"
    description = (
        "classes in repro.sim/repro.core must declare __slots__; mutable "
        "default arguments are banned everywhere"
    )

    _SLOTS_DIRS = (("repro", "sim"), ("repro", "core"))
    #: Base-class names whose subclasses get no benefit from __slots__.
    _EXEMPT_BASE_SUFFIXES = ("Error", "Exception", "Warning")
    _EXEMPT_BASES = frozenset({"Protocol", "Enum", "IntEnum", "NamedTuple", "TypedDict"})

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if self._in_slots_scope(ctx.path):
            for node in ctx.select(ast.ClassDef):
                if self._needs_slots(node):
                    yield ctx.finding(
                        self.id,
                        f"class {node.name} in a hot-path package lacks "
                        "__slots__; per-instance dicts dominate memory at "
                        "millions of packets",
                        node,
                    )
        for node in ctx.select(ast.FunctionDef, ast.AsyncFunctionDef):
            yield from self._check_defaults(ctx, node)

    @classmethod
    def _in_slots_scope(cls, path: str) -> bool:
        parts = tuple(part for part in path.replace("\\", "/").split("/") if part)
        return any(
            parts[i : i + 2] == scoped
            for scoped in cls._SLOTS_DIRS
            for i in range(len(parts) - 1)
        )

    @classmethod
    def _needs_slots(cls, node: ast.ClassDef) -> bool:
        if node.decorator_list:
            return False  # dataclasses etc. manage their own layout
        for base in node.bases:
            base_name = _dotted_name(base).rsplit(".", maxsplit=1)[-1]
            if base_name in cls._EXEMPT_BASES or base_name.endswith(
                cls._EXEMPT_BASE_SUFFIXES
            ):
                return False
        for statement in node.body:
            targets: list[ast.expr] = []
            if isinstance(statement, ast.Assign):
                targets = statement.targets
            elif isinstance(statement, ast.AnnAssign):
                targets = [statement.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return False
        return True

    def _check_defaults(
        self, ctx: LintContext, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        defaults = [*node.args.defaults, *node.args.kw_defaults]
        for default in defaults:
            if default is None:
                continue
            if isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set", "bytearray")
            ):
                yield ctx.finding(
                    self.id,
                    f"mutable default argument in {node.name}(); the object "
                    "is shared across calls — default to None instead",
                    default,
                )


@register
class PortEncapsulationRule(Rule):
    """RPR106: OutputPort construction is reserved for the port layers."""

    id = "RPR106"
    name = "port-encapsulation"
    description = (
        "no direct OutputPort construction outside repro.sim, repro.net, "
        "and repro.experiments.fabric; build topologies through the "
        "scenario fabric"
    )

    #: Path-component sequences allowed to construct ports.  These are
    #: the layers that uphold the port invariants: a recycling port
    #: never feeds a downstream hop, and multi-port runs carry node
    #: labels on their trace events.
    _ALLOWED_DIRS = (
        ("repro", "sim"),
        ("repro", "net"),
        ("repro", "experiments", "fabric"),
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if self._is_port_layer(ctx.path):
            return
        for node in ctx.select(ast.Call):
            if _dotted_name(node.func).rsplit(".", maxsplit=1)[-1] == "OutputPort":
                yield ctx.finding(
                    self.id,
                    "direct OutputPort construction outside the port "
                    "layers; build the topology through "
                    "repro.experiments.fabric (or repro.net) so recycling "
                    "and node-labelling invariants are enforced",
                    node,
                )

    @classmethod
    def _is_port_layer(cls, path: str) -> bool:
        parts = tuple(part for part in path.replace("\\", "/").split("/") if part)
        return any(
            parts[i : i + len(scoped)] == scoped
            for scoped in cls._ALLOWED_DIRS
            for i in range(len(parts))
        )


@register
class EventQueueEncapsulationRule(Rule):
    """RPR110: heapq stays behind the EventQueue interface."""

    id = "RPR110"
    name = "equeue-encapsulation"
    description = (
        "no heapq use outside repro.sim.equeue and the packet-level "
        "schedulers in repro.sched; schedule simulation events through "
        "the Simulator / EventQueue interface"
    )

    #: Path-component sequences allowed to use heapq directly: the
    #: event-queue backends themselves, and the packet-level priority
    #: queues inside the schedulers (WFQ/SCFQ/RPQ order *packets* by
    #: virtual finish time — a different data structure with different
    #: invariants from the event calendar).
    _ALLOWED = (
        ("repro", "sim", "equeue.py"),
        ("repro", "sched"),
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if self._is_allowed(ctx.path):
            return
        for node in ctx.select(ast.Import):
            for alias in node.names:
                if alias.name == "heapq" or alias.name.startswith("heapq."):
                    yield self._finding(ctx, node)
        for node in ctx.select(ast.ImportFrom):
            if node.module == "heapq":
                yield self._finding(ctx, node)

    def _finding(self, ctx: LintContext, node: ast.AST) -> Finding:
        return ctx.finding(
            self.id,
            "heapq import outside the event-queue backends; schedule "
            "through Simulator / repro.sim.equeue so every engine "
            "backend sees the same event stream",
            node,
        )

    @classmethod
    def _is_allowed(cls, path: str) -> bool:
        parts = tuple(part for part in path.replace("\\", "/").split("/") if part)
        return any(
            parts[i : i + len(scoped)] == scoped
            for scoped in cls._ALLOWED
            for i in range(len(parts))
        )
