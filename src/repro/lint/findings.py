"""Finding objects produced by the static-analysis pass.

A :class:`Finding` pins one rule violation to a file and line.  Findings
are plain slotted objects (a big tree produces thousands) and sort by
location so reports are deterministic regardless of rule execution order.
"""

from __future__ import annotations

from repro.errors import ReproError

__all__ = ["Finding", "LintParseError", "LintUsageError"]


class LintParseError(ReproError):
    """A target file could not be parsed as Python (CLI exit code 2)."""


class LintUsageError(ReproError):
    """The analyzer was invoked with unusable arguments (CLI exit code 2)."""


class Finding:
    """One rule violation at a specific source location.

    Attributes:
        rule_id: the ``RPR###`` identifier of the violated rule.
        message: human-readable explanation of the violation.
        path: path of the offending file as given to the analyzer.
        line: 1-based line number.
        col: 0-based column offset.
        suppressed: True when a ``# repro: noqa`` comment covers the
            finding; suppressed findings never affect the exit code.
        suppress_reason: free-text reason attached to the suppression
            comment (empty string when none was given).
        severity: ``"error"`` (default) or ``"warning"``.  Lint rules
            only emit errors; the invariant auditor (:mod:`repro.check`)
            downgrades guarantee-not-assured diagnostics to warnings,
            which do not affect the exit code unless ``--strict``.
    """

    __slots__ = (
        "rule_id",
        "message",
        "path",
        "line",
        "col",
        "suppressed",
        "suppress_reason",
        "severity",
    )

    def __init__(
        self,
        rule_id: str,
        message: str,
        path: str,
        line: int,
        col: int = 0,
        suppressed: bool = False,
        suppress_reason: str = "",
        severity: str = "error",
    ) -> None:
        self.rule_id = rule_id
        self.message = message
        self.path = path
        self.line = line
        self.col = col
        self.suppressed = suppressed
        self.suppress_reason = suppress_reason
        self.severity = severity

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule_id)

    def location(self) -> str:
        """``path:line:col`` in the familiar compiler format (col 1-based)."""
        return f"{self.path}:{self.line}:{self.col + 1}"

    def to_dict(self) -> dict:
        """JSON-serialisable representation (used by the JSON reporter)."""
        return {
            "rule": self.rule_id,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "suppressed": self.suppressed,
            "suppress_reason": self.suppress_reason,
        }

    def __repr__(self) -> str:
        flag = " [suppressed]" if self.suppressed else ""
        return f"Finding({self.rule_id} at {self.location()}{flag})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Finding):
            return NotImplemented
        return self.sort_key() == other.sort_key() and self.message == other.message

    def __hash__(self) -> int:
        return hash((self.sort_key(), self.message))
