"""Flow traffic profiles.

A :class:`FlowSpec` carries everything the experiments need to know about
one flow: how it *behaves* (peak rate, average rate, mean burst length)
and what it *reserved* (token bucket ``sigma`` and token rate ``rho``).
Conformant flows are additionally run through a leaky-bucket regulator so
their traffic matches the reservation; non-conformant flows are fed to the
network unshaped — the paper's Tables 1 and 2 are built exactly this way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["FlowSpec"]


@dataclass(frozen=True)
class FlowSpec:
    """Traffic behaviour and reservation of one flow.

    Attributes:
        flow_id: unique integer id.
        peak_rate: on-state emission rate, bytes/second.
        avg_rate: long-run average emission rate, bytes/second.
        bucket: reserved token-bucket size ``sigma``, bytes.
        token_rate: reserved token rate ``rho``, bytes/second.
        conformant: whether the flow is shaped to ``(sigma, rho)`` before
            entering the network.
        mean_burst: mean bytes emitted per on-period.  For conformant
            flows this is conventionally the bucket size; the paper's
            non-conformant flows use larger values (e.g. 5x the bucket).
    """

    flow_id: int
    peak_rate: float
    avg_rate: float
    bucket: float
    token_rate: float
    conformant: bool
    mean_burst: float

    def __post_init__(self) -> None:
        if self.peak_rate <= 0:
            raise ConfigurationError(f"flow {self.flow_id}: peak rate must be positive")
        if not 0 < self.avg_rate <= self.peak_rate:
            raise ConfigurationError(
                f"flow {self.flow_id}: need 0 < avg_rate <= peak_rate, "
                f"got avg={self.avg_rate}, peak={self.peak_rate}"
            )
        if self.bucket <= 0:
            raise ConfigurationError(f"flow {self.flow_id}: bucket must be positive")
        if self.token_rate <= 0:
            raise ConfigurationError(f"flow {self.flow_id}: token rate must be positive")
        if self.mean_burst <= 0:
            raise ConfigurationError(f"flow {self.flow_id}: mean burst must be positive")

    @property
    def profile(self) -> tuple[float, float]:
        """The reserved ``(sigma, rho)`` pair in (bytes, bytes/second)."""
        return (self.bucket, self.token_rate)

    @property
    def overload_factor(self) -> float:
        """Offered average rate relative to the reservation."""
        return self.avg_rate / self.token_rate
