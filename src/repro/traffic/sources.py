"""Packet sources.

All sources emit :class:`repro.sim.packet.Packet` objects into a ``sink``
(an output port or a shaper) via ``sink.receive(packet)``.

* :class:`OnOffSource` — the paper's workload: a Markov-modulated on-off
  source that transmits maximum-size packets at its peak rate while ON.
* :class:`CBRSource` — constant bit rate; used for peak-rate-conformant
  flows (Proposition 1) and as a building block in tests.
* :class:`GreedySource` — a CBR source faster than the link; emulates the
  "greedy" flow of Example 1 that always keeps its buffer share full.
* :class:`TraceSource` — replays an explicit (time, size) schedule;
  handy for deterministic tests.

Sources schedule their per-packet callbacks through
:meth:`~repro.sim.engine.Simulator.schedule_fast` (emissions are never
cancelled) and draw packets from the :class:`Packet` freelist, so the
steady-state emission path allocates no event handles and, in recycling
pipelines, no packet objects.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.packet import Packet

__all__ = ["OnOffSource", "CBRSource", "GreedySource", "TraceSource"]

#: The paper's packet size: "maximum size (500 bytes) packets".
DEFAULT_PACKET_SIZE = 500.0


class OnOffSource:
    """Markov-modulated on-off source.

    While ON the source emits ``packet_size`` packets back-to-back at
    ``peak_rate``; burst lengths are geometric in packets with mean
    ``mean_burst / packet_size`` (a discretised exponential ON period),
    and OFF periods are exponential with mean chosen so the long-run
    average rate equals ``avg_rate``:

        mean_off = (mean_burst / peak) * (peak / avg - 1)

    Args:
        sim: simulation engine.
        flow_id: id stamped on emitted packets.
        peak_rate: ON-state rate, bytes/second.
        avg_rate: long-run average rate, bytes/second (< peak for on-off
            behaviour; == peak degenerates to CBR).
        mean_burst: mean bytes per ON period.
        sink: downstream ``receive(packet)`` target.
        rng: numpy random generator (one per source for reproducibility).
        packet_size: bytes per packet.
        start: time of the first burst decision.
        until: stop emitting at this time (None = never stop).
        rng_batch: when set (>= 1), pre-draw burst lengths and OFF gaps
            in vectorised blocks of this size from two child streams
            spawned off ``rng``.  The batched stream is deterministic
            given the seed and *independent of the block size* (blocks
            refill per distribution from dedicated child generators), but
            it is a different stream than the default scalar draws —
            the default ``None`` preserves the legacy per-call draws
            byte-for-byte.
    """

    def __init__(
        self,
        sim: Simulator,
        flow_id: int,
        peak_rate: float,
        avg_rate: float,
        mean_burst: float,
        sink,
        rng: np.random.Generator,
        packet_size: float = DEFAULT_PACKET_SIZE,
        start: float = 0.0,
        until: float | None = None,
        rng_batch: int | None = None,
    ) -> None:
        if not 0 < avg_rate <= peak_rate:
            raise ConfigurationError(
                f"need 0 < avg_rate <= peak_rate, got ({avg_rate}, {peak_rate})"
            )
        if mean_burst < packet_size:
            raise ConfigurationError(
                f"mean burst {mean_burst} smaller than one packet ({packet_size})"
            )
        if rng_batch is not None and rng_batch < 1:
            raise ConfigurationError(f"rng_batch must be >= 1, got {rng_batch}")
        self.sim = sim
        self.flow_id = flow_id
        self.peak_rate = float(peak_rate)
        self.avg_rate = float(avg_rate)
        self.mean_burst = float(mean_burst)
        self.sink = sink
        self.rng = rng
        self.packet_size = float(packet_size)
        self.until = until
        self.emitted_packets = 0
        self.emitted_bytes = 0.0
        self._spacing = self.packet_size / self.peak_rate
        self._mean_burst_packets = self.mean_burst / self.packet_size
        # Geometric number of packets with mean mean_burst_packets (>= 1).
        self._burst_p = min(1.0, 1.0 / max(self._mean_burst_packets, 1.0))
        mean_on = self.mean_burst / self.peak_rate
        self._mean_off = mean_on * (self.peak_rate / self.avg_rate - 1.0)
        self._batch = rng_batch
        if rng_batch is not None:
            # Dedicated child streams per distribution: refilling one
            # block never shifts the other stream, which is what makes
            # the batched draws independent of the block size.
            self._burst_rng, self._off_rng = rng.spawn(2)
            self._bursts: np.ndarray = np.empty(0, dtype=np.int64)
            self._burst_i = 0
            self._offs: np.ndarray = np.empty(0)
            self._off_i = 0
        # Randomise the initial phase so simultaneous sources do not
        # synchronise their first bursts.
        initial_delay = 0.0
        if self._mean_off > 0:
            initial_delay = self._next_off()
        sim.schedule_at(start + initial_delay, self._begin_burst)

    # -- random draws -----------------------------------------------------

    def _next_burst_packets(self) -> int:
        """Next ON-period length in packets (geometric, mean >= 1)."""
        if self._batch is None:
            return int(self.rng.geometric(self._burst_p))
        if self._burst_i >= len(self._bursts):
            self._bursts = self._burst_rng.geometric(self._burst_p, size=self._batch)
            self._burst_i = 0
        value = self._bursts[self._burst_i]
        self._burst_i += 1
        return int(value)

    def _next_off(self) -> float:
        """Next OFF-period duration in seconds (exponential)."""
        if self._batch is None:
            return float(self.rng.exponential(self._mean_off))
        if self._off_i >= len(self._offs):
            self._offs = self._off_rng.exponential(self._mean_off, size=self._batch)
            self._off_i = 0
        value = self._offs[self._off_i]
        self._off_i += 1
        return float(value)

    # -- emission ---------------------------------------------------------

    def stop(self) -> None:
        """Silence the source from the current instant onwards.

        Dynamic-flow teardown (:mod:`repro.experiments.fabric`) calls
        this when a churning flow departs: pending emission callbacks
        were scheduled through the handle-free fast path and cannot be
        cancelled, so they fire and see the stop condition instead.
        """
        self.until = self.sim.now

    def _stopped(self) -> bool:
        return self.until is not None and self.sim.now >= self.until

    def _begin_burst(self) -> None:
        if self._stopped():
            return
        self._emit(self._next_burst_packets())

    def _emit(self, remaining: int) -> None:
        if self._stopped():
            return
        packet = Packet.acquire(self.flow_id, self.packet_size, self.sim.now)
        self.emitted_packets += 1
        self.emitted_bytes += packet.size
        self.sink.receive(packet)
        if remaining > 1:
            self.sim.schedule_fast(self._spacing, self._emit, remaining - 1)
        else:
            # The last packet of the burst "occupies" one spacing at peak
            # rate before the OFF period starts, so the ON-state rate is
            # exactly the peak rate.
            off = self._spacing
            if self._mean_off > 0:
                off += self._next_off()
            self.sim.schedule_fast(off, self._begin_burst)


class CBRSource:
    """Constant-bit-rate source: one packet every ``packet_size / rate``."""

    def __init__(
        self,
        sim: Simulator,
        flow_id: int,
        rate: float,
        sink,
        packet_size: float = DEFAULT_PACKET_SIZE,
        start: float = 0.0,
        until: float | None = None,
    ) -> None:
        if rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate}")
        self.sim = sim
        self.flow_id = flow_id
        self.rate = float(rate)
        self.sink = sink
        self.packet_size = float(packet_size)
        self.until = until
        self.emitted_packets = 0
        self.emitted_bytes = 0.0
        self._spacing = self.packet_size / self.rate
        sim.schedule_at(start, self._emit)

    def stop(self) -> None:
        """Silence the source from the current instant onwards."""
        self.until = self.sim.now

    def _emit(self) -> None:
        if self.until is not None and self.sim.now >= self.until:
            return
        packet = Packet.acquire(self.flow_id, self.packet_size, self.sim.now)
        self.emitted_packets += 1
        self.emitted_bytes += packet.size
        self.sink.receive(packet)
        self.sim.schedule_fast(self._spacing, self._emit)


class GreedySource(CBRSource):
    """A source that offers more than the link can carry.

    Example 1 of the paper analyses a flow that "seeks to greedily always
    occupy its maximum allowed buffer share"; offering a constant rate at
    or above the link rate achieves exactly that against any admission
    policy, since every departure is immediately replaced.
    """

    def __init__(
        self,
        sim: Simulator,
        flow_id: int,
        link_rate: float,
        sink,
        overdrive: float = 1.25,
        packet_size: float = DEFAULT_PACKET_SIZE,
        start: float = 0.0,
        until: float | None = None,
    ) -> None:
        if overdrive < 1.0:
            raise ConfigurationError(f"overdrive must be >= 1, got {overdrive}")
        super().__init__(
            sim, flow_id, link_rate * overdrive, sink,
            packet_size=packet_size, start=start, until=until,
        )


class TraceSource:
    """Replay an explicit arrival schedule of ``(time, size)`` pairs."""

    def __init__(
        self,
        sim: Simulator,
        flow_id: int,
        schedule: Iterable[tuple[float, float]] | Sequence[tuple[float, float]],
        sink,
    ) -> None:
        self.sim = sim
        self.flow_id = flow_id
        self.sink = sink
        self.emitted_packets = 0
        self.emitted_bytes = 0.0
        last = -1.0
        for time, size in schedule:
            if time < last:
                raise ConfigurationError("trace schedule must be time-ordered")
            last = time
            sim.schedule_at(time, self._emit, size)

    def _emit(self, size: float) -> None:
        packet = Packet.acquire(self.flow_id, size, self.sim.now)
        self.emitted_packets += 1
        self.emitted_bytes += size
        self.sink.receive(packet)
