"""Traffic models: flow profiles, sources and leaky-bucket regulation."""

from repro.traffic.adversarial import FillThenBurstSource, ThresholdFillingSource
from repro.traffic.profiles import FlowSpec
from repro.traffic.shaper import LeakyBucketShaper, TokenBucketMeter
from repro.traffic.sources import (
    DEFAULT_PACKET_SIZE,
    CBRSource,
    GreedySource,
    OnOffSource,
    TraceSource,
)

__all__ = [
    "FlowSpec",
    "FillThenBurstSource",
    "ThresholdFillingSource",
    "LeakyBucketShaper",
    "TokenBucketMeter",
    "OnOffSource",
    "CBRSource",
    "GreedySource",
    "TraceSource",
    "DEFAULT_PACKET_SIZE",
]
