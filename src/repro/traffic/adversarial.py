"""Adversarial traffic patterns from the paper's analysis.

Two worst-case behaviours drive the necessity arguments of Section 2:

* :class:`ThresholdFillingSource` — Example 1's greedy flow: it reacts
  to its own departures so that its buffer occupancy sits at its
  threshold at all times ("its arrival process is such that
  Q_2(t) = B_2 for all t >= 0").  Unlike a plain overdriven CBR source,
  it offers exactly what the buffer will accept, so drop counters stay
  meaningful.
* :class:`FillThenBurstSource` — the Prop-2 necessity construction: send
  at the token rate (never spending the burst allowance) until the
  ``rho B / R`` share of the buffer is full, then dump the entire
  ``sigma`` burst instantaneously.  Conformant by construction, and the
  worst case for the ``sigma + rho B / R`` threshold.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.sim.port import OutputPort

__all__ = ["ThresholdFillingSource", "FillThenBurstSource"]


class ThresholdFillingSource:
    """Keep a flow's buffer occupancy pinned at a target level.

    Polls the port's manager at a fine period and tops the flow's
    occupancy back up to ``target`` whenever departures open space.  The
    polling period should be at most one packet transmission time for a
    faithful rendition of the fluid model.

    Args:
        sim: simulation engine.
        flow_id: the greedy flow's id.
        port: output port whose manager is observed and fed.
        target: occupancy level in bytes to maintain.
        packet_size: granularity of the topping-up packets.
        period: polling period in seconds.
        until: stop at this time.
    """

    def __init__(
        self,
        sim: Simulator,
        flow_id: int,
        port: OutputPort,
        target: float,
        packet_size: float = 500.0,
        period: float | None = None,
        until: float | None = None,
    ) -> None:
        if target <= 0:
            raise ConfigurationError(f"target must be positive, got {target}")
        if packet_size <= 0:
            raise ConfigurationError(f"packet size must be positive, got {packet_size}")
        self.sim = sim
        self.flow_id = flow_id
        self.port = port
        self.target = float(target)
        self.packet_size = float(packet_size)
        self.period = period if period is not None else packet_size / port.rate
        self.until = until
        self.offered_packets = 0
        sim.schedule(0.0, self._top_up)

    def _top_up(self) -> None:
        if self.until is not None and self.sim.now >= self.until:
            return
        occupancy = self.port.manager.occupancy(self.flow_id)
        while occupancy + self.packet_size <= self.target:
            packet = Packet(self.flow_id, self.packet_size, self.sim.now)
            self.offered_packets += 1
            if not self.port.receive(packet):
                break
            occupancy = self.port.manager.occupancy(self.flow_id)
        self.sim.schedule(self.period, self._top_up)


class FillThenBurstSource:
    """The Proposition-2 necessity adversary (conformant worst case).

    Phase 1: CBR at the token rate ``rho`` until ``burst_at``; the token
    bucket stays full because the flow never exceeds ``rho``.
    Phase 2: at ``burst_at``, dump ``sigma`` bytes instantaneously.
    Phase 3: continue at ``rho`` until ``until``.

    The emitted stream is ``(sigma, rho)``-conformant, and with
    ``burst_at`` chosen so that the flow's steady-state share
    ``rho B / R`` of the buffer is occupied, it exactly attains the
    ``sigma + rho B / R`` threshold of Proposition 2.
    """

    def __init__(
        self,
        sim: Simulator,
        flow_id: int,
        sigma: float,
        rho: float,
        sink,
        burst_at: float,
        packet_size: float = 500.0,
        until: float | None = None,
    ) -> None:
        if sigma < packet_size:
            raise ConfigurationError(
                f"sigma ({sigma}) must cover at least one packet ({packet_size})"
            )
        if rho <= 0:
            raise ConfigurationError(f"rho must be positive, got {rho}")
        if burst_at < 0:
            raise ConfigurationError(f"burst_at must be non-negative, got {burst_at}")
        self.sim = sim
        self.flow_id = flow_id
        self.sigma = float(sigma)
        self.rho = float(rho)
        self.sink = sink
        self.packet_size = float(packet_size)
        self.until = until
        self.burst_fired = False
        self.emitted_bytes = 0.0
        self._spacing = self.packet_size / self.rho
        sim.schedule(0.0, self._emit_cbr)
        sim.schedule_at(burst_at, self._dump_burst)

    def _stopped(self) -> bool:
        return self.until is not None and self.sim.now >= self.until

    def _emit(self, size: float) -> None:
        packet = Packet(self.flow_id, size, self.sim.now)
        self.emitted_bytes += size
        self.sink.receive(packet)

    def _emit_cbr(self) -> None:
        if self._stopped():
            return
        self._emit(self.packet_size)
        self.sim.schedule(self._spacing, self._emit_cbr)

    def _dump_burst(self) -> None:
        if self._stopped() or self.burst_fired:
            return
        self.burst_fired = True
        # The CBR phase leaves the bucket one in-flight packet short of
        # full, so a dump of sigma - packet_size is the largest burst
        # that keeps the stream strictly conformant.
        for _ in range(int((self.sigma - self.packet_size) // self.packet_size)):
            self._emit(self.packet_size)
