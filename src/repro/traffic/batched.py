"""Batched pipeline: on-off generation and shaping in numpy blocks.

The scalar pipeline spends most of its source-side time in per-packet
Python bookkeeping: every emission is a callback that draws from the
burst state machine, and every conformant flow adds a
:class:`~repro.traffic.shaper.LeakyBucketShaper` whose refills and
release events double the event count on the shaping path.  This module
trades that for block computation:

* :func:`onoff_arrival_times` expands whole *blocks* of bursts — drawn
  from the same two spawned child streams as ``OnOffSource``'s
  ``rng_batch`` mode — into per-packet emission times with three numpy
  ops (``repeat`` + ``arange`` + ``cumsum``);
* :func:`shaped_release_times` is the leaky bucket solved in closed
  form: the token-bucket recursion with a capped bucket reduces, after a
  change of variable, to one ``cummax`` scan (see the function
  docstring), so a conformant flow's entire release schedule is
  computed without simulating a single shaper event;
* :class:`BatchedOnOffSource` replays the (optionally shaped) stream
  into a sink, one handle-free event per packet but zero per-packet
  draws, branches, or token arithmetic.

The batched path is **gated off by default**.  Like ``rng_batch`` it is
deterministic given the seed and independent of the block size, but it
is a *different* random stream than the scalar pipeline — enabling it
changes measurement values (never their statistics), so the equivalence
goldens only cover the scalar path.  Set ``REPRO_BATCHED=1`` to switch
:func:`~repro.experiments.fabric.run_fabric`'s single-port pipeline
over; see ``docs/engine.md`` for the applicability limits.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.traffic.sources import DEFAULT_PACKET_SIZE

__all__ = [
    "BATCHED_ENV_VAR",
    "batched_pipeline_enabled",
    "onoff_arrival_times",
    "shaped_release_times",
    "BatchedOnOffSource",
]

#: Environment switch for the batched single-port pipeline.
BATCHED_ENV_VAR = "REPRO_BATCHED"

#: Bursts expanded per generation block.  Large enough that the numpy
#: fixed costs amortise, small enough that short horizons do not draw
#: orders of magnitude more randomness than they replay.
DEFAULT_BLOCK_BURSTS = 512


def batched_pipeline_enabled() -> bool:
    """True when ``REPRO_BATCHED`` asks for the block pipeline."""
    return os.environ.get(BATCHED_ENV_VAR, "").strip() not in ("", "0", "false", "no")


def onoff_arrival_times(
    rng: np.random.Generator,
    *,
    peak_rate: float,
    avg_rate: float,
    mean_burst: float,
    until: float,
    packet_size: float = DEFAULT_PACKET_SIZE,
    start: float = 0.0,
    block_bursts: int = DEFAULT_BLOCK_BURSTS,
) -> np.ndarray:
    """Emission times of a Markov-modulated on-off stream on ``[start, until)``.

    Same process as :class:`~repro.traffic.sources.OnOffSource`:
    geometric bursts of back-to-back maximum-size packets at the peak
    rate, exponential OFF gaps sized for the long-run average rate, and
    a randomised initial phase.  Bursts and gaps come from two child
    streams spawned off ``rng`` (the ``rng_batch`` layout), so the
    result is deterministic given the seed and independent of
    ``block_bursts`` — but it is not the scalar source's stream.

    Returns a sorted float array of emission times, one per packet.
    """
    if not 0 < avg_rate <= peak_rate:
        raise ConfigurationError(
            f"need 0 < avg_rate <= peak_rate, got ({avg_rate}, {peak_rate})"
        )
    if mean_burst < packet_size:
        raise ConfigurationError(
            f"mean burst {mean_burst} smaller than one packet ({packet_size})"
        )
    if until <= start:
        return np.empty(0)
    if block_bursts < 1:
        raise ConfigurationError(f"block_bursts must be >= 1, got {block_bursts}")
    spacing = packet_size / peak_rate
    burst_p = min(1.0, packet_size / max(mean_burst, packet_size))
    mean_off = (mean_burst / peak_rate) * (peak_rate / avg_rate - 1.0)
    burst_rng, off_rng = rng.spawn(2)

    clock = start
    if mean_off > 0:
        clock += float(off_rng.exponential(mean_off))
    # Draw burst/gap blocks until the horizon is covered.  Burst i
    # starts one full burst + trailing spacing + gap after burst i-1
    # (the last packet "occupies" one spacing at peak rate before the
    # OFF period, exactly like the scalar source).  All arithmetic on
    # the emission times runs over the *concatenated* arrays below, so
    # float rounding — and therefore the result — is independent of
    # ``block_bursts``; the per-block running total here only decides
    # when to stop drawing, and any over-draw is filtered at the end.
    burst_blocks: list[np.ndarray] = []
    off_blocks: list[np.ndarray] = []
    bursts = offs = strides = np.empty(0)
    while clock + (float(strides.sum()) if strides.size else 0.0) < until:
        burst_blocks.append(burst_rng.geometric(burst_p, size=block_bursts))
        if mean_off > 0:
            off_blocks.append(off_rng.exponential(mean_off, size=block_bursts))
        else:
            off_blocks.append(np.zeros(block_bursts))
        # Recomputed over the concatenation each round (cheap next to
        # the draws): summing the same array always rounds the same
        # way, where a per-block running total would not.
        bursts = np.concatenate(burst_blocks)
        offs = np.concatenate(off_blocks)
        strides = bursts * spacing + offs
    if not burst_blocks:
        return np.empty(0)
    starts = clock + np.concatenate(([0.0], np.cumsum(strides)[:-1]))
    total = int(bursts.sum())
    burst_base = np.repeat(starts, bursts)
    within = np.arange(total) - np.repeat(np.cumsum(bursts) - bursts, bursts)
    times = burst_base + within * spacing
    return times[times < until]


def shaped_release_times(
    times: np.ndarray,
    sizes: np.ndarray | float,
    sigma: float,
    rho: float,
    *,
    start: float = 0.0,
) -> np.ndarray:
    """Exact leaky-bucket release schedule, one ``cummax`` scan.

    Solves the same system as
    :class:`~repro.traffic.shaper.LeakyBucketShaper` — a ``(sigma,
    rho)`` token bucket that starts full at ``start``, refills
    continuously, caps at ``sigma``, and releases FIFO as early as the
    tokens allow.  The per-packet recursion over release time ``d_i``
    and bucket-empty time ``X_i``

        d_i = max(a_i, X_{i-1} + s_i / rho)
        X_i = max(d_i - (sigma - s_i) / rho,  X_{i-1} + s_i / rho)

    becomes, after substituting ``Y_i = X_i - cumsum(s)_i / rho``,

        Y_i = max(a_i - (sigma - s_i) / rho - cumsum(s)_i / rho,  Y_{i-1})

    — a plain running maximum, which numpy evaluates as
    ``np.maximum.accumulate`` over the whole stream at once.  Unlike
    the from-zero formula ``(cumsum(s) - sigma) / rho`` this keeps the
    bucket *cap*: credit earned during an idle period saturates at
    ``sigma`` instead of accumulating without bound.
    """
    if sigma <= 0 or rho <= 0:
        raise ConfigurationError(
            f"sigma and rho must be positive, got ({sigma}, {rho})"
        )
    times = np.asarray(times, dtype=float)
    if times.size == 0:
        return np.empty(0)
    sizes = np.broadcast_to(np.asarray(sizes, dtype=float), times.shape)
    if float(sizes.max()) > sigma:
        raise ConfigurationError(
            f"packet of {float(sizes.max())} bytes can never conform to "
            f"sigma={sigma}"
        )
    cum = np.cumsum(sizes)
    y = np.maximum.accumulate(times - (sigma - sizes) / rho - cum / rho)
    # Y_{i-1} with the initial state Y_{-1} = start - sigma/rho (a full
    # bucket at the start instant).
    y_prev = np.empty_like(y)
    y_prev[0] = start - sigma / rho
    y_prev[1:] = y[:-1]
    return np.maximum(times, y_prev + cum / rho)


class BatchedOnOffSource:
    """Replay a block-precomputed (optionally shaped) on-off stream.

    A drop-in source for finite-horizon runs: emits the same *process*
    as ``OnOffSource`` (different stream, see module docstring), and
    with ``shaping=(sigma, rho)`` emits the already-shaped release
    schedule directly — the chain ``source -> shaper -> port`` collapses
    to ``replay -> port`` with zero shaper events.

    The replay costs one handle-free event per packet (packets must
    still interleave with the port at their true sim times), but the
    callback is a bare array walk: no draws, no token arithmetic, no
    burst branching.

    Args:
        sim: simulation engine.
        flow_id: id stamped on emitted packets.
        peak_rate / avg_rate / mean_burst: the on-off process, as for
            :class:`~repro.traffic.sources.OnOffSource`.
        sink: downstream ``receive(packet)`` target.
        rng: numpy generator; two child streams are spawned off it.
        until: end of the horizon — required, the whole schedule is
            materialised up front (the batched pipeline's one structural
            limit; see ``docs/engine.md``).
        shaping: optional ``(sigma, rho)`` leaky-bucket envelope applied
            via :func:`shaped_release_times`.
        packet_size: bytes per packet.
        start: time of the first burst decision.
        block_bursts: generation block size (result-invariant).
    """

    __slots__ = (
        "sim",
        "flow_id",
        "sink",
        "packet_size",
        "until",
        "emitted_packets",
        "emitted_bytes",
        "shaped_packets",
        "_times",
        "_i",
    )

    def __init__(
        self,
        sim: Simulator,
        flow_id: int,
        peak_rate: float,
        avg_rate: float,
        mean_burst: float,
        sink,
        rng: np.random.Generator,
        until: float,
        shaping: tuple[float, float] | None = None,
        packet_size: float = DEFAULT_PACKET_SIZE,
        start: float = 0.0,
        block_bursts: int = DEFAULT_BLOCK_BURSTS,
    ) -> None:
        if until is None:
            raise ConfigurationError(
                "BatchedOnOffSource needs a finite horizon (until=...)"
            )
        self.sim = sim
        self.flow_id = flow_id
        self.sink = sink
        self.packet_size = float(packet_size)
        self.until: float | None = float(until)
        self.emitted_packets = 0
        self.emitted_bytes = 0.0
        times = onoff_arrival_times(
            rng,
            peak_rate=peak_rate,
            avg_rate=avg_rate,
            mean_burst=mean_burst,
            until=until,
            packet_size=packet_size,
            start=start,
            block_bursts=block_bursts,
        )
        if shaping is not None:
            sigma, rho = shaping
            times = shaped_release_times(
                times, self.packet_size, sigma, rho, start=start
            )
            times = times[times < until]
        self.shaped_packets = int(times.size) if shaping is not None else 0
        self._times = times
        self._i = 0
        if times.size:
            sim.schedule_at(float(times[0]), self._emit)

    @property
    def scheduled_packets(self) -> int:
        """Packets in the materialised schedule (emitted + pending)."""
        return int(self._times.size)

    def stop(self) -> None:
        """Silence the source from the current instant onwards."""
        self.until = self.sim.now

    def _emit(self) -> None:
        if self.until is not None and self.sim.now >= self.until:
            return
        packet = Packet.acquire(self.flow_id, self.packet_size, self.sim.now)
        self.emitted_packets += 1
        self.emitted_bytes += packet.size
        self.sink.receive(packet)
        i = self._i + 1
        self._i = i
        if i < self._times.size:
            self.sim.schedule_fast(float(self._times[i]) - self.sim.now, self._emit)
