"""Leaky-bucket regulation: shaping and conformance metering.

Two related components:

* :class:`LeakyBucketShaper` — a delay element placed between a source and
  the network.  Packets leave only when the ``(sigma, rho)`` token bucket
  has enough tokens, so the *output* stream satisfies
  ``A(t) - A(s) <= sigma + rho (t - s)`` (eq. 2 of the paper).  This is
  how the paper's conformant flows are produced.
* :class:`TokenBucketMeter` — a pure observer that tags each arrival as
  conformant or not and exposes the remaining *burst potential*
  ``sigma(t)`` of eq. (3).  Used by the analysis and the tests.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigurationError, SimulationError
from repro.sim.engine import Simulator
from repro.sim.packet import Packet

__all__ = ["LeakyBucketShaper", "TokenBucketMeter"]

#: Byte-scale tolerance for token comparisons.  Token refills accumulate
#: float error; without a tolerance, a deficit of ~1e-11 bytes produces a
#: release delay smaller than one ulp of the clock and the release event
#: re-fires at the same timestamp forever.
_EPSILON_BYTES = 1e-6


class LeakyBucketShaper:
    """Shape a packet stream to a ``(sigma, rho)`` envelope by delaying.

    Packets are never dropped; an unbounded shaping queue holds packets
    until the token bucket can pay for them.  The bucket starts full.

    Args:
        sim: simulation engine (for scheduling releases).
        sigma: bucket depth in bytes; must be at least the largest packet.
        rho: token rate in bytes/second.
        sink: downstream object with a ``receive(packet)`` method.
    """

    def __init__(self, sim: Simulator, sigma: float, rho: float, sink) -> None:
        if sigma <= 0:
            raise ConfigurationError(f"sigma must be positive, got {sigma}")
        if rho <= 0:
            raise ConfigurationError(f"rho must be positive, got {rho}")
        self.sim = sim
        self.sigma = float(sigma)
        self.rho = float(rho)
        self.sink = sink
        self._tokens = float(sigma)
        self._last_update = sim.now
        self._queue: deque[Packet] = deque()
        self._release_pending = False
        self.shaped_packets = 0
        self.delayed_packets = 0

    @property
    def backlog(self) -> int:
        """Packets currently waiting in the shaping queue."""
        return len(self._queue)

    def tokens(self) -> float:
        """Current token level (after catching up to the clock)."""
        self._refill()
        return self._tokens

    def _refill(self) -> None:
        now = self.sim.now
        if now > self._last_update:
            self._tokens = min(self.sigma, self._tokens + self.rho * (now - self._last_update))
            self._last_update = now

    def receive(self, packet: Packet) -> None:
        """Accept a packet from the source; forward now or later."""
        if packet.size > self.sigma:
            raise SimulationError(
                f"packet of {packet.size} bytes can never conform to sigma={self.sigma}"
            )
        self._refill()
        if not self._queue and self._tokens + _EPSILON_BYTES >= packet.size:
            self._tokens = max(self._tokens - packet.size, 0.0)
            self.shaped_packets += 1
            self.sink.receive(packet)
            return
        self.delayed_packets += 1
        self._queue.append(packet)
        self._schedule_release()

    def _schedule_release(self) -> None:
        if self._release_pending or not self._queue:
            return
        self._refill()
        deficit = self._queue[0].size - self._tokens
        delay = max(deficit, 0.0) / self.rho
        self._release_pending = True
        # Releases are gated by _release_pending, never cancelled, so the
        # handle-free scheduling path is safe.
        self.sim.schedule_fast(delay, self._release)

    def _release(self) -> None:
        self._release_pending = False
        self._refill()
        while self._queue and self._tokens + _EPSILON_BYTES >= self._queue[0].size:
            packet = self._queue.popleft()
            self._tokens = max(self._tokens - packet.size, 0.0)
            self.shaped_packets += 1
            self.sink.receive(packet)
        self._schedule_release()


class TokenBucketMeter:
    """Passive ``(sigma, rho)`` conformance meter.

    ``observe(time, size)`` returns whether the arrival is conformant and
    debits the bucket either way (so a burst of violations does not earn
    later credit).  ``burst_potential(time)`` is the token level — the
    process ``sigma_i(t)`` of eq. (3), i.e. the largest burst the flow
    could still emit instantaneously while remaining conformant.
    """

    def __init__(self, sigma: float, rho: float, start: float = 0.0) -> None:
        if sigma <= 0 or rho <= 0:
            raise ConfigurationError(f"sigma and rho must be positive, got ({sigma}, {rho})")
        self.sigma = float(sigma)
        self.rho = float(rho)
        self._tokens = float(sigma)
        self._last = float(start)

    def _advance(self, time: float) -> None:
        if time < self._last - 1e-12:
            raise SimulationError(f"meter observed time going backwards: {time} < {self._last}")
        self._tokens = min(self.sigma, self._tokens + self.rho * (time - self._last))
        self._last = max(time, self._last)

    def burst_potential(self, time: float) -> float:
        """Token level ``sigma(t)`` at the given time (clamped at >= 0)."""
        self._advance(time)
        return max(self._tokens, 0.0)

    def observe(self, time: float, size: float) -> bool:
        """Record an arrival; True iff it fits the envelope."""
        self._advance(time)
        # Byte-scale tolerance: event times accumulate float error, so a
        # stream emitted exactly at rho can refill fractionally short.
        conformant = self._tokens >= size - _EPSILON_BYTES
        self._tokens -= size
        return conformant
