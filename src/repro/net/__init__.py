"""Multi-node topologies: routed flows over buffer-managed links."""

from repro.net.tandem import build_tandem
from repro.net.topology import DeliverySink, Network, Node, per_hop_sigma

__all__ = ["Network", "Node", "DeliverySink", "build_tandem", "per_hop_sigma"]
