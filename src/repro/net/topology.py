"""Multi-node topologies: routed flows across buffer-managed links.

The paper analyses one output link; in a deployment the mechanism runs
at *every* node ("per node" provisioning, cf. its reference [4]).  This
module wires several :class:`~repro.sim.port.OutputPort` instances into
a network with static per-flow routes so end-to-end behaviour — e.g. a
conformant flow crossing three congested hops, each protecting it only
with thresholds — can be studied.

Model:

* a :class:`Node` holds one output port per outgoing link and a routing
  table ``flow_id -> next node``;
* packets entering a node are immediately offered to the egress port for
  their flow (forwarding is instantaneous; only links cost time);
* at the route's last node the packet is *delivered*: end-to-end
  statistics land in :class:`DeliverySink`.

Note on envelopes: a ``(sigma, rho)`` flow does not stay
``(sigma, rho)``-constrained after crossing a FIFO hop — multiplexing
adds jitter.  Per network calculus its burstiness grows by at most
``rho * D`` per hop, where ``D`` is the hop's worst-case delay, so
downstream thresholds must budget ``sigma_i + rho_i * sum(D_hops)``;
:func:`per_hop_sigma` computes that inflation and the tests verify it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.metrics.collector import StatsCollector
from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.sim.port import OutputPort

__all__ = ["DeliverySink", "Node", "Network", "per_hop_sigma"]


def per_hop_sigma(sigma: float, rho: float, hop_delays: list[float]) -> list[float]:
    """Burst envelope of a flow at the entry of each hop along a path.

    Hop 0 sees the original ``sigma``; after traversing a hop with
    worst-case delay ``D`` the burst grows by at most ``rho * D``
    (network-calculus output-burstiness bound for a FIFO element with
    bounded delay).

    Args:
        sigma: source burst size in bytes.
        rho: sustained rate in bytes/second.
        hop_delays: worst-case delay of each hop, seconds (typically
            ``B_hop / R_hop``).

    Returns:
        ``len(hop_delays)`` sigmas: the envelope at each hop's entry.
    """
    if sigma < 0 or rho < 0:
        raise ConfigurationError(f"sigma and rho must be non-negative, got ({sigma}, {rho})")
    sigmas = []
    current = sigma
    for delay in hop_delays:
        if delay < 0:
            raise ConfigurationError(f"hop delays must be non-negative, got {delay}")
        sigmas.append(current)
        current += rho * delay
    return sigmas


@dataclass
class DeliverySink:
    """End-to-end statistics for packets leaving the network.

    Args:
        collector: optional :class:`StatsCollector` fed one ``on_depart``
            per delivered packet with the *end-to-end* delay (creation to
            delivery), so its delay histograms and warmup window apply to
            whole-path latency rather than a single hop.
        recycle: release delivered packets back to the :class:`Packet`
            freelist.  The sink is the only safe place to recycle in a
            multi-node run — mid-path ports refuse ``recycle=True`` — and
            it must stay off when callers retain packet references.
    """

    packets: dict[int, int] = field(default_factory=dict)
    bytes: dict[int, float] = field(default_factory=dict)
    delay_sum: dict[int, float] = field(default_factory=dict)
    delay_max: dict[int, float] = field(default_factory=dict)
    collector: StatsCollector | None = None
    recycle: bool = False

    def record(self, packet: Packet, now: float) -> None:
        flow_id = packet.flow_id
        self.packets[flow_id] = self.packets.get(flow_id, 0) + 1
        self.bytes[flow_id] = self.bytes.get(flow_id, 0.0) + packet.size
        delay = now - packet.created
        self.delay_sum[flow_id] = self.delay_sum.get(flow_id, 0.0) + delay
        if delay > self.delay_max.get(flow_id, 0.0):
            self.delay_max[flow_id] = delay
        if self.collector is not None:
            self.collector.on_depart(flow_id, packet.size, delay, now)
        if self.recycle:
            packet.release()

    def mean_delay(self, flow_id: int) -> float:
        count = self.packets.get(flow_id, 0)
        return self.delay_sum.get(flow_id, 0.0) / count if count else 0.0

    def throughput(self, flow_id: int, duration: float) -> float:
        if duration <= 0:
            raise ConfigurationError(f"duration must be positive, got {duration}")
        return self.bytes.get(flow_id, 0.0) / duration


class Node:
    """A forwarding element: routing table plus per-link output ports."""

    def __init__(self, name: str, network: "Network"):
        self.name = name
        self.network = network
        self.ports: dict[str, OutputPort] = {}
        self.next_hop: dict[int, str | None] = {}

    def receive(self, packet: Packet) -> None:
        """Forward a packet: egress port for transit, sink at the end."""
        if packet.flow_id not in self.next_hop:
            raise ConfigurationError(
                f"node {self.name}: no route for flow {packet.flow_id}"
            )
        destination = self.next_hop[packet.flow_id]
        if destination is None:
            self.network.sink.record(packet, self.network.sim.now)
            return
        port = self.ports.get(destination)
        if port is None:
            raise ConfigurationError(
                f"node {self.name}: no link towards {destination}"
            )
        port.receive(packet)


class Network:
    """A set of nodes, directed links and static per-flow routes.

    Usage::

        net = Network(sim)
        net.add_node("a"); net.add_node("b"); net.add_node("c")
        net.add_link("a", "b", rate, FIFOScheduler(), manager_ab)
        net.add_link("b", "c", rate, FIFOScheduler(), manager_bc)
        net.set_route(flow_id=1, path=["a", "b", "c"])
        entry = net.entry(1)          # plug sources into this
        ...
        net.sink.mean_delay(1)        # end-to-end results
    """

    def __init__(self, sim: Simulator, sink: DeliverySink | None = None):
        self.sim = sim
        self.nodes: dict[str, Node] = {}
        self.links: dict[tuple[str, str], OutputPort] = {}
        self.sink = DeliverySink() if sink is None else sink
        self._entries: dict[int, str] = {}

    def add_node(self, name: str) -> Node:
        if name in self.nodes:
            raise ConfigurationError(f"duplicate node name {name!r}")
        node = Node(name, self)
        self.nodes[name] = node
        return node

    def add_link(
        self,
        src: str,
        dst: str,
        rate: float,
        scheduler,
        manager,
        collector: StatsCollector | None = None,
    ) -> OutputPort:
        """Create a directed link; returns its output port."""
        if src not in self.nodes or dst not in self.nodes:
            raise ConfigurationError(f"unknown endpoint in link {src}->{dst}")
        if (src, dst) in self.links:
            raise ConfigurationError(f"duplicate link {src}->{dst}")
        port = OutputPort(
            self.sim, rate, scheduler, manager,
            collector=collector, downstream=self.nodes[dst],
            label=f"{src}->{dst}",
        )
        self.links[(src, dst)] = port
        self.nodes[src].ports[dst] = port
        return port

    def set_route(self, flow_id: int, path: list[str]) -> None:
        """Install a loop-free path (list of node names) for a flow."""
        if len(path) < 1:
            raise ConfigurationError("route must contain at least one node")
        if len(set(path)) != len(path):
            raise ConfigurationError(f"route for flow {flow_id} contains a loop")
        for src, dst in zip(path, path[1:]):
            if (src, dst) not in self.links:
                raise ConfigurationError(f"route uses missing link {src}->{dst}")
        for index, name in enumerate(path):
            next_name = path[index + 1] if index + 1 < len(path) else None
            self.nodes[name].next_hop[flow_id] = next_name
        self._entries[flow_id] = path[0]

    def attach_trace(self, sink) -> None:
        """Wire one trace sink through every link in the network.

        Each port stamps its ``"src->dst"`` label on the events it emits,
        so a single merged event stream stays attributable per hop.  Pass
        ``None`` to detach everywhere.
        """
        self.sim.attach_trace(sink)
        for port in self.links.values():
            port.attach_trace(sink)

    def register_metrics(self, registry) -> None:
        """Register engine gauges once and each link under its own labels.

        The engine's counters are global to the run, so they are
        registered unlabelled exactly once; per-port and per-manager
        gauges get ``node`` (source node) and ``link`` labels so the same
        instrument names coexist across hops.
        """
        self.sim.register_metrics(registry)
        for (src, dst), port in self.links.items():
            port.register_metrics(
                registry, engine=False, node=src, link=f"{src}->{dst}"
            )

    def entry(self, flow_id: int) -> Node:
        """The ingress node of a routed flow (plug sources into this)."""
        if flow_id not in self._entries:
            raise ConfigurationError(f"no route installed for flow {flow_id}")
        return self.nodes[self._entries[flow_id]]

    def port(self, src: str, dst: str) -> OutputPort:
        """Look up a link's output port."""
        try:
            return self.links[(src, dst)]
        except KeyError:
            raise ConfigurationError(f"no link {src}->{dst}") from None
