"""Tandem (linear) topologies: the canonical multi-hop validation rig.

A tandem of ``n`` hops is the standard setting for end-to-end QoS
analysis: the flow of interest traverses every hop while independent
cross-traffic enters and leaves at each hop, congesting it locally.
:func:`build_tandem` assembles that topology from per-hop buffer
managers, returning the network plus the conventional node names
``n0 -> n1 -> ... -> n<k>``.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import ConfigurationError
from repro.metrics.collector import StatsCollector
from repro.net.topology import Network
from repro.sched.fifo import FIFOScheduler
from repro.sim.engine import Simulator

__all__ = ["build_tandem"]


def build_tandem(
    sim: Simulator,
    rates: Sequence[float],
    manager_factories: Sequence[Callable[[], object]],
    collectors: Sequence[StatsCollector] | None = None,
    scheduler_factory: Callable[[], object] | None = None,
    warmup: float = 0.0,
) -> tuple[Network, list[str]]:
    """Build an ``len(rates)``-hop linear network.

    Args:
        sim: simulation engine.
        rates: link rate (bytes/second) for each hop, in path order.
        manager_factories: one buffer-manager factory per hop.
        collectors: optional per-hop statistics sinks.  When omitted, one
            :class:`StatsCollector` is created per hop with the given
            ``warmup`` so every hop measures over the same steady-state
            window.
        scheduler_factory: scheduler per hop; defaults to FIFO (the
            paper's discipline).
        warmup: measurement warmup (seconds) for the auto-created
            collectors; events before this time are excluded from hop
            statistics.  Ignored when explicit ``collectors`` are passed
            (they carry their own warmup).

    Returns:
        ``(network, node_names)`` where node_names has ``len(rates)+1``
        entries, ``n0`` the ingress.
    """
    if not rates:
        raise ConfigurationError("a tandem needs at least one hop")
    if len(manager_factories) != len(rates):
        raise ConfigurationError(
            f"got {len(manager_factories)} managers for {len(rates)} hops"
        )
    if collectors is not None and len(collectors) != len(rates):
        raise ConfigurationError(
            f"got {len(collectors)} collectors for {len(rates)} hops"
        )
    if warmup < 0:
        raise ConfigurationError(f"warmup must be non-negative, got {warmup}")
    if collectors is None:
        collectors = [StatsCollector(warmup=warmup) for _ in rates]
    if scheduler_factory is None:
        scheduler_factory = FIFOScheduler

    network = Network(sim)
    names = [f"n{i}" for i in range(len(rates) + 1)]
    for name in names:
        network.add_node(name)
    for index, rate in enumerate(rates):
        network.add_link(
            names[index],
            names[index + 1],
            rate,
            scheduler_factory(),
            manager_factories[index](),
            collector=collectors[index] if collectors is not None else None,
        )
    return network, names
