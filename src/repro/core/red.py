"""Random Early Detection (Floyd and Jacobson, 1993).

Related-work baseline [3] of the paper.  RED keeps an exponentially
weighted moving average of the queue size and drops arriving packets with
a probability that rises from 0 at ``min_th`` to ``max_p`` at ``max_th``
(and 1 beyond).  It manages the *aggregate* queue: there is no per-flow
state, so it cannot provide the per-flow rate guarantees the paper is
after — which is exactly the contrast the paper draws.

The implementation follows the 1993 paper: the average is updated on every
arrival; when the queue is empty, the average decays as if ``idle /
mean_tx_time`` small packets had been transmitted; the drop probability is
adjusted by the count of packets since the last drop so that drops are
roughly uniformly spaced.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.occupancy import BufferManager
from repro.errors import ConfigurationError

__all__ = ["REDManager"]


class REDManager(BufferManager):
    """RED over a shared buffer, thresholds expressed in bytes.

    Args:
        capacity: physical buffer size in bytes (hard drop when full).
        min_th: average-queue size (bytes) below which all packets pass.
        max_th: average-queue size (bytes) above which all packets drop.
        max_p: drop probability at ``max_th``.
        weight: EWMA weight ``w_q`` for the average queue size.
        rng: random generator used for probabilistic drops.
        clock: simulation-time callable; needed to decay the average over
            idle periods.
        mean_tx_time: transmission time of a typical packet, used by the
            idle-decay rule.
    """

    DROP_REASON = "red"

    __slots__ = (
        "min_th",
        "max_th",
        "max_p",
        "weight",
        "mean_tx_time",
        "_rng",
        "_clock",
        "avg",
        "_count",
        "_idle_since",
    )

    def __init__(
        self,
        capacity: float,
        min_th: float,
        max_th: float,
        rng: np.random.Generator,
        clock: Callable[[], float],
        max_p: float = 0.02,
        weight: float = 0.002,
        mean_tx_time: float = 1e-3,
    ) -> None:
        super().__init__(capacity)
        if not 0 < min_th < max_th:
            raise ConfigurationError(
                f"need 0 < min_th < max_th, got ({min_th}, {max_th})"
            )
        if not 0 < max_p <= 1:
            raise ConfigurationError(f"max_p must be in (0, 1], got {max_p}")
        if not 0 < weight <= 1:
            raise ConfigurationError(f"weight must be in (0, 1], got {weight}")
        if mean_tx_time <= 0:
            raise ConfigurationError(f"mean_tx_time must be positive, got {mean_tx_time}")
        self.min_th = float(min_th)
        self.max_th = float(max_th)
        self.max_p = float(max_p)
        self.weight = float(weight)
        self.mean_tx_time = float(mean_tx_time)
        self._rng = rng
        self._clock = clock
        self.avg = 0.0
        self._count = -1  # packets since last drop; -1 = no recent drop
        self._idle_since: float | None = clock()

    def _update_average(self) -> None:
        if self._idle_since is not None:
            idle = max(self._clock() - self._idle_since, 0.0)
            slots = idle / self.mean_tx_time
            self.avg *= (1.0 - self.weight) ** slots
            self._idle_since = None
        self.avg += self.weight * (self._total - self.avg)

    def _admits(self, flow_id: int, size: float) -> bool:
        self._update_average()
        if self._total + size > self.capacity:
            self._count = 0
            return False
        if self.avg < self.min_th:
            self._count = -1
            return True
        if self.avg >= self.max_th:
            self._count = 0
            return False
        prob = self.max_p * (self.avg - self.min_th) / (self.max_th - self.min_th)
        self._count += 1
        if self._count * prob < 1.0:
            prob = prob / (1.0 - self._count * prob)
        else:
            prob = 1.0
        if self._rng.random() < prob:
            self._count = 0
            return False
        return True

    def _on_release(self, flow_id: int, size: float) -> None:
        if self._total <= 0:
            self._idle_since = self._clock()
