"""Flow Random Early Drop (Lin and Morris, SIGCOMM 1997).

Related-work baseline [5] of the paper.  FRED adds per-active-flow
accounting to RED so that non-adaptive flows cannot monopolise the queue:

* ``minq`` / ``maxq``: per-flow queue bounds (bytes here);
* ``avgcq``: average per-flow backlog over the currently active flows;
* a per-flow ``strike`` count penalises flows that repeatedly exceed
  ``maxq`` — such flows are then held to the average backlog.

This is the published algorithm restated over byte counts; the RED
machinery (EWMA average, probabilistic drop between ``min_th`` and
``max_th``) is inherited from :class:`repro.core.red.REDManager`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.red import REDManager
from repro.errors import ConfigurationError

__all__ = ["FREDManager"]


class FREDManager(REDManager):
    """FRED: RED plus per-flow protection state.

    Args:
        minq: per-flow backlog (bytes) always allowed when avg < max_th.
        maxq: per-flow backlog cap (bytes).
        (remaining arguments as for :class:`REDManager`)
    """

    DROP_REASON = "fred"

    __slots__ = ("minq", "maxq", "_strikes")

    def __init__(
        self,
        capacity: float,
        min_th: float,
        max_th: float,
        rng: np.random.Generator,
        clock: Callable[[], float],
        minq: float,
        maxq: float,
        max_p: float = 0.02,
        weight: float = 0.002,
        mean_tx_time: float = 1e-3,
    ) -> None:
        super().__init__(
            capacity, min_th, max_th, rng, clock,
            max_p=max_p, weight=weight, mean_tx_time=mean_tx_time,
        )
        if not 0 < minq <= maxq:
            raise ConfigurationError(f"need 0 < minq <= maxq, got ({minq}, {maxq})")
        self.minq = float(minq)
        self.maxq = float(maxq)
        self._strikes: dict[int, int] = {}

    def active_flows(self) -> int:
        """Number of flows with a non-zero backlog."""
        return sum(1 for occupancy in self._occupancy.values() if occupancy > 0)

    def average_per_flow_backlog(self) -> float:
        """``avgcq``: average backlog over active flows (>= one packet)."""
        active = self.active_flows()
        if active == 0:
            return max(self.avg, 1.0)
        return max(self.avg / active, 1.0)

    def _admits(self, flow_id: int, size: float) -> bool:
        self._update_average()
        if self._total + size > self.capacity:
            self._count = 0
            return False
        occupancy = self.occupancy(flow_id)
        avgcq = self.average_per_flow_backlog()
        strikes = self._strikes.get(flow_id, 0)
        # Identify and bound non-adaptive flows.
        if (
            occupancy + size > self.maxq
            or (self.avg >= self.max_th and occupancy + size > 2 * avgcq)
            or (strikes > 1 and occupancy + size > avgcq)
        ):
            self._strikes[flow_id] = strikes + 1
            return False
        if self.avg < self.min_th:
            self._count = -1
            return True
        # Between the thresholds: always accept a flow below minq (this is
        # FRED's protection of fragile, low-bandwidth flows), otherwise use
        # RED's probabilistic drop.
        if occupancy + size <= self.minq:
            return True
        if self.avg >= self.max_th:
            self._count = 0
            return False
        prob = self.max_p * (self.avg - self.min_th) / (self.max_th - self.min_th)
        self._count += 1
        if self._count * prob < 1.0:
            prob = prob / (1.0 - self._count * prob)
        else:
            prob = 1.0
        if self._rng.random() < prob:
            self._count = 0
            return False
        return True
