"""Buffer management — the paper's primary contribution.

The schemes here decide, in constant time per packet, whether an arriving
packet may enter a shared buffer:

* :class:`TailDropManager` — no management (benchmark);
* :class:`FixedThresholdManager` — per-flow thresholds
  ``sigma_i + rho_i B / R`` providing rate guarantees on a FIFO link
  (Sections 2, 3.2);
* :class:`SharedHeadroomManager` — thresholds plus headroom/holes sharing
  of unused space (Section 3.3);
* :class:`DynamicThresholdManager`, :class:`REDManager`,
  :class:`FREDManager` — related-work baselines;
* :class:`HybridBufferManager` — per-class composition for the Section-4
  hybrid architecture;
* :class:`BufferPool` — live per-node reservation/headroom/holes
  accounting behind runtime threshold reclamation.
"""

from repro.core.adaptive import AdaptiveSharingManager
from repro.core.dynamic_threshold import DynamicThresholdManager
from repro.core.fixed_threshold import FixedThresholdManager
from repro.core.fred import FREDManager
from repro.core.hybrid import HybridBufferManager
from repro.core.occupancy import BufferManager
from repro.core.pool import BufferPool
from repro.core.red import REDManager
from repro.core.shared_headroom import SharedHeadroomManager
from repro.core.tail_drop import TailDropManager
from repro.core.thresholds import (
    compute_thresholds,
    flow_threshold,
    hybrid_flow_threshold,
    scale_to_partition,
)

__all__ = [
    "AdaptiveSharingManager",
    "BufferManager",
    "BufferPool",
    "TailDropManager",
    "FixedThresholdManager",
    "SharedHeadroomManager",
    "DynamicThresholdManager",
    "REDManager",
    "FREDManager",
    "HybridBufferManager",
    "flow_threshold",
    "compute_thresholds",
    "scale_to_partition",
    "hybrid_flow_threshold",
]
