"""Per-flow buffer occupancy accounting.

Every buffer-management policy in the paper admits or drops packets based
on two pieces of state: the flow's own occupancy and some global quantity
(total occupancy, free space, hole count...).  :class:`BufferManager`
centralises that accounting so each policy only implements its admission
predicate plus any extra counters.

The contract with the output port is:

* ``try_admit(flow_id, size)`` — called on packet arrival; returns True
  and charges the occupancy if the packet is accepted, returns False (and
  changes nothing) if it must be dropped;
* ``on_depart(flow_id, size)`` — called when the packet finishes
  transmission and its buffer space is released.

Both are O(1) for every policy here, which is the paper's scalability
argument: admission needs constant state and constant work per packet.

Runtime reprovisioning extends the contract for dynamic-provisioning
scenarios (churn with reclamation, see :mod:`repro.core.pool`):

* ``reprovision(flow_id, threshold)`` — change a flow's admission
  threshold while the run is live.  Only policies with per-flow
  thresholds support it (``has_flow_thresholds`` is True); the base
  class refuses.
* ``retire(flow_id)`` — the flow is gone for good: withdraw its
  threshold (subclasses) and schedule its occupancy entry for cleanup
  once its queued packets drain.

Both are **drain-safe**: occupancy above a shrunken (or withdrawn)
threshold is never evicted — admission predicates only bind *future*
arrivals, and departures never consult the threshold, so in-flight
packets depart normally.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar

from repro.errors import ConfigurationError, SimulationError
from repro.obs.events import ReprovisionEvent, ThresholdCrossEvent

__all__ = ["BufferManager"]


class BufferManager(ABC):
    """Base class for buffer-admission policies over a shared buffer.

    Args:
        capacity: total buffer size ``B`` in bytes.  Must be positive.
    """

    __slots__ = (
        "capacity",
        "_occupancy",
        "_total",
        "_sink",
        "_clock",
        "_node",
        "_retired",
    )

    #: How :meth:`drop_reason` labels policy (non-capacity) rejections;
    #: subclasses override with their mechanism name.
    DROP_REASON = "policy"

    #: Whether the policy keeps a per-flow threshold that
    #: :meth:`reprovision` can change at run time.  Replaces the old
    #: duck-typed ``getattr(manager, "thresholds", None)`` probing.
    has_flow_thresholds: ClassVar[bool] = False

    #: Whether the per-flow threshold is a *hard* occupancy cap — a
    #: flow's occupancy can never exceed ``threshold(flow_id)`` outside
    #: a drain-safe reprovision window.  True only for strict
    #: partitioning (Prop. 2): sharing schemes deliberately let flows
    #: borrow past their threshold, and dynamic thresholds move under a
    #: flow's feet.  The live conformance monitor only arms its
    #: occupancy-vs-threshold check when this is True.
    enforces_thresholds: ClassVar[bool] = False

    def __init__(self, capacity: float):
        if capacity <= 0:
            raise ConfigurationError(f"buffer capacity must be positive, got {capacity}")
        self.capacity = float(capacity)
        self._occupancy: dict[int, float] = {}
        self._total = 0.0
        self._sink = None
        self._clock = None
        self._node = ""
        self._retired: set[int] | None = None

    @property
    def total_occupancy(self) -> float:
        """Bytes currently held in the buffer across all flows."""
        return self._total

    @property
    def free_space(self) -> float:
        """Unused buffer bytes."""
        return self.capacity - self._total

    def occupancy(self, flow_id: int) -> float:
        """Bytes currently buffered for ``flow_id``."""
        return self._occupancy.get(flow_id, 0.0)

    # -- observability ---------------------------------------------------

    def attach_trace(self, sink, clock, node: str = "") -> None:
        """Emit threshold-cross (and subclass) events into ``sink``.

        Args:
            sink: a :class:`~repro.obs.sink.TraceSink`, or ``None`` to
                detach.
            clock: zero-argument callable returning simulation time
                (managers have no engine reference of their own).
            node: hop label stamped on emitted events in multi-node runs.
        """
        if sink is not None and clock is None:
            raise ConfigurationError("attach_trace needs a clock with its sink")
        self._sink = sink
        self._clock = clock
        self._node = node

    def register_metrics(self, registry, **labels) -> None:
        """Expose occupancy accounting through a metrics registry."""
        registry.gauge_callback(
            "buffer.total_occupancy", lambda: self._total, **labels
        )
        registry.gauge_callback(
            "buffer.free_space", lambda: self.capacity - self._total, **labels
        )
        registry.gauge_callback(
            "buffer.active_flows",
            lambda: sum(1 for value in self._occupancy.values() if value > 0),
            **labels,
        )

    def drop_reason(self, flow_id: int, size: float) -> str:
        """Classify the rejection :meth:`try_admit` just returned.

        Called by the port only on the traced drop path, never during
        admission itself.  The default distinguishes a genuinely full
        buffer from the policy's own predicate; subclasses set
        :attr:`DROP_REASON` (or override) to name their mechanism.
        """
        if self._total + size > self.capacity:
            return "buffer-full"
        return self.DROP_REASON

    def _reference_threshold(self, flow_id: int) -> float | None:
        """The admission threshold traced for ``flow_id``, if any.

        ``None`` (the default) means the policy has no per-flow threshold
        to cross, so no :class:`ThresholdCrossEvent` is ever emitted.
        """
        return None

    def _trace_occupancy_step(self, flow_id: int, before: float, after: float) -> None:
        """Emit a ThresholdCrossEvent when [before, after] straddles T.

        "Up" means the flow *reached or exceeded* its threshold
        (``before < T <= after``) — admission caps occupancy at exactly
        ``T``, so a strict-exceed predicate would never fire.  "Down"
        mirrors it: the flow fell back below ``T``.
        """
        threshold = self._reference_threshold(flow_id)
        if threshold is None:
            return
        if before < threshold <= after:
            self._sink.emit(
                ThresholdCrossEvent(
                    time=self._clock(),
                    flow_id=flow_id,
                    occupancy=after,
                    threshold=threshold,
                    direction="up",
                    node=self._node,
                )
            )
        elif after < threshold <= before:
            self._sink.emit(
                ThresholdCrossEvent(
                    time=self._clock(),
                    flow_id=flow_id,
                    occupancy=after,
                    threshold=threshold,
                    direction="down",
                    node=self._node,
                )
            )

    # -- runtime reprovisioning -------------------------------------------

    def reprovision(self, flow_id: int, threshold: float) -> None:
        """Change ``flow_id``'s admission threshold while live.

        The base class has no per-flow thresholds to change; policies
        that do (``has_flow_thresholds``) override this.  The change is
        drain-safe by construction: thresholds only gate admission, so
        occupancy above a shrunken value simply drains.
        """
        raise ConfigurationError(
            f"{type(self).__name__} has no per-flow thresholds to reprovision"
        )

    def retire(self, flow_id: int) -> None:
        """The flow departed for good: release its accounting state.

        The occupancy entry is dropped immediately when the flow has no
        queued bytes, otherwise once its last packet departs — queued
        packets are never stranded or retro-dropped.  Subclasses with
        per-flow thresholds also withdraw the threshold.
        """
        if self._occupancy.get(flow_id, 0.0) <= 0.0:
            self._occupancy.pop(flow_id, None)
        else:
            if self._retired is None:
                self._retired = set()
            self._retired.add(flow_id)

    def _trace_reprovision(self, flow_id: int, threshold: float, previous: float) -> None:
        """Emit a ReprovisionEvent when a sink is attached."""
        if self._sink is not None and threshold != previous:
            self._sink.emit(
                ReprovisionEvent(
                    time=self._clock(),
                    flow_id=flow_id,
                    threshold=threshold,
                    previous=previous,
                    node=self._node,
                )
            )

    # -- admission contract ----------------------------------------------

    def try_admit(self, flow_id: int, size: float) -> bool:
        """Admit the packet if the policy allows it; charge occupancy."""
        if size <= 0:
            raise SimulationError(f"packet size must be positive, got {size}")
        if not self._admits(flow_id, size):
            return False
        self._charge(flow_id, size)
        if self._sink is not None:
            after = self._occupancy.get(flow_id, 0.0)
            self._trace_occupancy_step(flow_id, after - size, after)
        return True

    def on_depart(self, flow_id: int, size: float) -> None:
        """Release the buffer space of a departing packet."""
        occupancy = self._occupancy.get(flow_id, 0.0) - size
        if occupancy < -1e-6:
            raise SimulationError(
                f"flow {flow_id} occupancy went negative ({occupancy}); "
                "departure without matching admission"
            )
        self._occupancy[flow_id] = max(occupancy, 0.0)
        self._total = max(self._total - size, 0.0)
        self._on_release(flow_id, size)
        if self._sink is not None:
            after = max(occupancy, 0.0)
            self._trace_occupancy_step(flow_id, after + size, after)
        # A retired flow's entry is reclaimed the moment it drains; the
        # empty-set guard keeps the cost off the common (no-churn) path.
        if self._retired and flow_id in self._retired and occupancy <= 1e-9:
            self._occupancy.pop(flow_id, None)
            self._retired.discard(flow_id)

    def _charge(self, flow_id: int, size: float) -> None:
        new_total = self._total + size
        if new_total > self.capacity + 1e-6:
            raise SimulationError(
                f"policy {type(self).__name__} admitted beyond capacity "
                f"({new_total} > {self.capacity})"
            )
        self._occupancy[flow_id] = self._occupancy.get(flow_id, 0.0) + size
        self._total = new_total
        self._on_accept(flow_id, size)

    @abstractmethod
    def _admits(self, flow_id: int, size: float) -> bool:
        """Policy predicate: may this packet enter the buffer?"""

    def _on_accept(self, flow_id: int, size: float) -> None:
        """Hook for policies with extra counters (holes, headroom...)."""

    def _on_release(self, flow_id: int, size: float) -> None:
        """Hook mirroring :meth:`_on_accept` on departures."""
