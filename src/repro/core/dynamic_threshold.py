"""Dynamic Threshold buffer sharing (Choudhury and Hahne, INFOCOM 1996).

Related-work baseline [1] of the paper.  Every flow shares a single
adaptive threshold proportional to the *remaining free space*: a packet of
flow ``i`` is admitted iff

    occupancy_i + L <= alpha * (B - total_occupancy)

With ``alpha = 1`` an overloaded buffer converges to each of ``n`` equally
greedy flows holding ``B / (n + 1)`` bytes while ``B / (n + 1)`` stays
free — the scheme deliberately wastes a fraction of the buffer to keep
space available for newly active flows.  Unlike the paper's scheme it has
no notion of per-flow reservations, which is why it cannot provide
heterogeneous rate guarantees.
"""

from __future__ import annotations

from repro.core.occupancy import BufferManager
from repro.errors import ConfigurationError

__all__ = ["DynamicThresholdManager"]


class DynamicThresholdManager(BufferManager):
    """Admit iff flow occupancy stays below ``alpha`` times free space.

    Args:
        capacity: total buffer size in bytes.
        alpha: proportionality constant (> 0); Choudhury-Hahne analyse
            powers of two, with 1 the canonical choice.
    """

    __slots__ = ("alpha",)

    DROP_REASON = "dynamic-threshold"

    def __init__(self, capacity: float, alpha: float = 1.0) -> None:
        super().__init__(capacity)
        if alpha <= 0:
            raise ConfigurationError(f"alpha must be positive, got {alpha}")
        self.alpha = float(alpha)

    def current_threshold(self) -> float:
        """The shared dynamic threshold ``alpha * (B - Q(t))``."""
        return self.alpha * (self.capacity - self._total)

    def reprovision(self, flow_id: int, threshold: float) -> None:
        """Validating no-op: the shared threshold adapts by itself.

        Dynamic Threshold has no per-flow reservations to resize — the
        single threshold tracks free space, so a departing flow's space
        is redistributed automatically.  Accepting (and validating) the
        call keeps the manager usable behind the uniform reprovisioning
        contract.
        """
        if threshold < 0:
            raise ConfigurationError(
                f"threshold for flow {flow_id} must be non-negative, got {threshold}"
            )

    def _reference_threshold(self, flow_id: int) -> float | None:
        # The shared threshold moves with total occupancy; crossings are
        # traced against its value at the moment of the transition.
        return self.current_threshold()

    def _admits(self, flow_id: int, size: float) -> bool:
        if self._total + size > self.capacity:
            return False
        return self.occupancy(flow_id) + size <= self.current_threshold()
