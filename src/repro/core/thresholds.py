"""Threshold computation rules from Sections 2 and 3.2 of the paper.

The central formula: a flow with leaky-bucket profile ``(sigma_i, rho_i)``
multiplexed into a FIFO buffer of size ``B`` drained at rate ``R`` is
guaranteed lossless service if its buffer-occupancy threshold is

    T_i = sigma_i + rho_i * B / R        (Proposition 2)

(``sigma_i = 0`` recovers the peak-rate result of Proposition 1).  When the
total buffer exceeds the sum of these thresholds, footnote 5 scales all
thresholds up proportionally so the buffer is fully partitioned.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ConfigurationError

__all__ = [
    "flow_threshold",
    "compute_thresholds",
    "scale_to_partition",
    "hybrid_flow_threshold",
]


def flow_threshold(sigma: float, rho: float, buffer_size: float, link_rate: float) -> float:
    """Reserved threshold ``sigma + rho * B / R`` for one flow (Prop. 2).

    Args:
        sigma: token-bucket (burst) size in bytes.
        rho: token (reserved) rate in bytes/second.
        buffer_size: total buffer ``B`` in bytes.
        link_rate: link rate ``R`` in bytes/second.
    """
    if sigma < 0 or rho < 0:
        raise ConfigurationError(f"sigma and rho must be non-negative, got ({sigma}, {rho})")
    if buffer_size <= 0 or link_rate <= 0:
        raise ConfigurationError(
            f"buffer size and link rate must be positive, got ({buffer_size}, {link_rate})"
        )
    return sigma + rho * buffer_size / link_rate


def compute_thresholds(
    profiles: Mapping[int, tuple[float, float]],
    buffer_size: float,
    link_rate: float,
    fully_partition: bool = True,
) -> dict[int, float]:
    """Per-flow thresholds for a shared buffer (Section 3.2).

    Args:
        profiles: mapping flow id -> ``(sigma_bytes, rho_bytes_per_s)``.
        buffer_size: total buffer ``B`` in bytes.
        link_rate: link rate ``R`` in bytes/second.
        fully_partition: apply the footnote-5 scale-up when the thresholds
            sum to less than ``B``.

    Returns:
        Mapping flow id -> threshold in bytes.
    """
    thresholds = {
        flow_id: flow_threshold(sigma, rho, buffer_size, link_rate)
        for flow_id, (sigma, rho) in profiles.items()
    }
    if fully_partition:
        thresholds = scale_to_partition(thresholds, buffer_size)
    return thresholds


def scale_to_partition(thresholds: Mapping[int, float], buffer_size: float) -> dict[int, float]:
    """Scale thresholds up so they sum to at least ``buffer_size``.

    Implements footnote 5: "When the total number of buffers is larger than
    the sum of these thresholds, then all thresholds are appropriately
    scaled up so as to fully partition the buffer."  Thresholds that
    already (over-)subscribe the buffer are returned unchanged.
    """
    total = sum(thresholds.values())
    if total <= 0 or total >= buffer_size:
        return dict(thresholds)
    factor = buffer_size / total
    return {flow_id: threshold * factor for flow_id, threshold in thresholds.items()}


def hybrid_flow_threshold(
    sigma: float, rho: float, queue_rate_sum: float, queue_buffer: float
) -> float:
    """Threshold of a flow inside a hybrid-system queue (Section 4.2).

    Flow ``j`` in queue ``i`` is allocated ``sigma_j + (rho_j / rho_hat_i)
    * B_i`` where ``rho_hat_i`` is the sum of the token rates of the flows
    grouped into queue ``i`` and ``B_i`` the buffer partition of the queue.
    """
    if queue_rate_sum <= 0:
        raise ConfigurationError(f"queue rate sum must be positive, got {queue_rate_sum}")
    if queue_buffer <= 0:
        raise ConfigurationError(f"queue buffer must be positive, got {queue_buffer}")
    return sigma + (rho / queue_rate_sum) * queue_buffer


def normalized_shares(rhos: Sequence[float], link_rate: float) -> list[float]:
    """Buffer shares ``rho_i / R`` used by the peak-rate rule (Prop. 1)."""
    if link_rate <= 0:
        raise ConfigurationError(f"link rate must be positive, got {link_rate}")
    return [rho / link_rate for rho in rhos]
