"""Fixed-partition threshold policy (Sections 2 and 3.2).

The buffer is *logically* partitioned: each flow has an occupancy
threshold and a packet is admitted iff

* it fits in the remaining buffer space, and
* it would not raise its flow's occupancy above the flow's threshold.

Enforcing the policy takes a constant number of operations per packet —
the property that makes the scheme scale to backbone flow counts.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.occupancy import BufferManager
from repro.errors import ConfigurationError

__all__ = ["FixedThresholdManager"]


class FixedThresholdManager(BufferManager):
    """Per-flow occupancy thresholds over a shared buffer.

    Args:
        capacity: total buffer size ``B`` in bytes.
        thresholds: mapping flow id -> occupancy threshold in bytes
            (typically from :func:`repro.core.thresholds.compute_thresholds`).
        default_threshold: threshold applied to flows absent from
            ``thresholds``; defaults to 0 (unknown flows are dropped),
            which is the safe choice for guaranteed-service buffers.
    """

    __slots__ = ("thresholds", "default_threshold")

    DROP_REASON = "threshold"

    has_flow_thresholds = True

    # Admission enforces occupancy + size <= threshold, so the
    # threshold is a hard cap the conformance monitor may check.
    enforces_thresholds = True

    def __init__(
        self,
        capacity: float,
        thresholds: Mapping[int, float],
        default_threshold: float = 0.0,
    ) -> None:
        super().__init__(capacity)
        for flow_id, threshold in thresholds.items():
            if threshold < 0:
                raise ConfigurationError(
                    f"threshold for flow {flow_id} must be non-negative, got {threshold}"
                )
        if default_threshold < 0:
            raise ConfigurationError(
                f"default threshold must be non-negative, got {default_threshold}"
            )
        self.thresholds = dict(thresholds)
        self.default_threshold = float(default_threshold)

    def threshold(self, flow_id: int) -> float:
        """Occupancy threshold applied to ``flow_id``."""
        return self.thresholds.get(flow_id, self.default_threshold)

    def reprovision(self, flow_id: int, threshold: float) -> None:
        """Install or change ``flow_id``'s threshold while live.

        Drain-safe: a shrinking threshold only binds future admissions;
        occupancy already above it departs normally.
        """
        if threshold < 0:
            raise ConfigurationError(
                f"threshold for flow {flow_id} must be non-negative, got {threshold}"
            )
        previous = self.threshold(flow_id)
        self.thresholds[flow_id] = threshold
        self._trace_reprovision(flow_id, threshold, previous)

    def retire(self, flow_id: int) -> None:
        """Withdraw the flow's threshold; queued packets still drain."""
        previous = self.thresholds.pop(flow_id, None)
        if previous is not None:
            self._trace_reprovision(flow_id, self.default_threshold, previous)
        super().retire(flow_id)

    def _reference_threshold(self, flow_id: int) -> float | None:
        return self.threshold(flow_id)

    def _admits(self, flow_id: int, size: float) -> bool:
        if self._total + size > self.capacity:
            return False
        return self.occupancy(flow_id) + size <= self.threshold(flow_id)
