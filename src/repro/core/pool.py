"""Per-node buffer pools for live reprovisioning.

The paper sizes thresholds once (Prop. 2, ``T_i = sigma_i + rho_i B /
R``) and footnote 5 rescales them to fully partition the buffer — but
only at configuration time.  :class:`BufferPool` keeps that accounting
*live*: the capacity ``B`` of one node is split into

* per-flow **base reservations** — the Prop.-2 thresholds of the flows
  currently admitted, *before* any footnote-5 rescale;
* **headroom** — space reclaimed from departed (retired) flows,
  immediately available to admit new ones;
* **holes** — capacity that was never reserved in the first place.

The pool invariant, checked after every transition and auditable from a
trace via :class:`~repro.obs.events.PoolEvent` (invariant RPR206 in
``repro.check``)::

    sum(reservations) + headroom + holes == capacity

Admission against the live pool is exactly the paper's FIFO region test
(eq. 9): ``B >= R * sum(sigma) / (R - sum(rho))`` is algebraically
``sum(sigma_i + rho_i B / R) <= B``, i.e. the base reservations fit the
capacity.  What reclamation adds is the *online* footnote-5 rescale:
:meth:`effective_thresholds` scales the surviving population's base
reservations up to repartition the full buffer, so a departure's freed
share is redistributed instead of sitting idle until the next rebuild.

The pool holds no packets and never touches occupancy — enforcing the
effective thresholds is the buffer manager's job (see
:meth:`repro.core.occupancy.BufferManager.reprovision`), which keeps the
migration drain-safe: a shrinking threshold only binds future
admissions, queued packets depart normally.
"""

from __future__ import annotations

from repro.core.thresholds import scale_to_partition
from repro.errors import ConfigurationError, SimulationError
from repro.obs.events import PoolEvent

__all__ = ["BufferPool"]

#: Slack for float comparisons over byte quantities; reservations are
#: sums of thresholds, so drift stays far below a byte.
_EPS = 1e-6


class BufferPool:
    """Live split of one node's buffer into reservations + headroom + holes.

    Args:
        capacity: total buffer size ``B`` in bytes.  Must be positive.
        node: node label stamped on emitted :class:`PoolEvent`\\ s.
    """

    __slots__ = (
        "capacity",
        "node",
        "reservations",
        "headroom",
        "holes",
        "_sink",
        "_clock",
    )

    def __init__(self, capacity: float, node: str = "") -> None:
        if capacity <= 0:
            raise ConfigurationError(
                f"pool capacity must be positive, got {capacity}"
            )
        self.capacity = float(capacity)
        self.node = node
        self.reservations: dict[int, float] = {}
        self.headroom = 0.0
        self.holes = self.capacity
        self._sink = None
        self._clock = None

    # -- accounting views -------------------------------------------------

    @property
    def reserved_total(self) -> float:
        """Sum of the base reservations currently held."""
        return sum(self.reservations.values())

    @property
    def available(self) -> float:
        """Unreserved capacity (holes + reclaimed headroom)."""
        return self.holes + self.headroom

    def reservation(self, flow_id: int) -> float:
        """Base reservation held for ``flow_id`` (0 when absent)."""
        return self.reservations.get(flow_id, 0.0)

    def can_reserve(self, amount: float) -> bool:
        """Would a reservation of ``amount`` bytes fit the pool now?

        This is the live form of the paper's eq.-9 buffer test: the new
        flow's base threshold must fit next to the reservations already
        held.
        """
        if amount < 0:
            raise ConfigurationError(
                f"reservation must be non-negative, got {amount}"
            )
        return amount <= self.holes + self.headroom + _EPS

    # -- transitions ------------------------------------------------------

    def reserve(self, flow_id: int, amount: float) -> None:
        """Carve ``amount`` bytes out of the pool for ``flow_id``.

        Takes holes first, then reclaimed headroom — never-reserved
        slack is spent before space that a future retirement could have
        returned to.
        """
        if flow_id in self.reservations:
            raise ConfigurationError(
                f"flow {flow_id} already holds a reservation in this pool"
            )
        if not self.can_reserve(amount):
            raise ConfigurationError(
                f"reservation of {amount} bytes for flow {flow_id} exceeds "
                f"the available pool ({self.available} of {self.capacity})"
            )
        from_holes = min(self.holes, amount)
        self.holes -= from_holes
        self.headroom -= amount - from_holes
        self.headroom = max(self.headroom, 0.0)
        self.reservations[flow_id] = float(amount)
        self._after_transition()

    def retire(self, flow_id: int) -> float:
        """Reclaim a flow's reservation into the headroom; returns it."""
        amount = self.reservations.pop(flow_id, None)
        if amount is None:
            raise ConfigurationError(
                f"flow {flow_id} holds no reservation in this pool"
            )
        self.headroom += amount
        self._after_transition()
        return amount

    def reprovision(self, flow_id: int, amount: float) -> None:
        """Resize an existing reservation in place.

        Growth is served holes-first like :meth:`reserve`; shrinkage
        returns the difference to the headroom like :meth:`retire`.
        """
        previous = self.reservations.get(flow_id)
        if previous is None:
            raise ConfigurationError(
                f"flow {flow_id} holds no reservation in this pool"
            )
        if amount < 0:
            raise ConfigurationError(
                f"reservation must be non-negative, got {amount}"
            )
        delta = amount - previous
        if delta > 0:
            if not self.can_reserve(delta):
                raise ConfigurationError(
                    f"growing flow {flow_id}'s reservation by {delta} bytes "
                    f"exceeds the available pool ({self.available})"
                )
            from_holes = min(self.holes, delta)
            self.holes -= from_holes
            self.headroom -= delta - from_holes
            self.headroom = max(self.headroom, 0.0)
        else:
            self.headroom -= delta
        self.reservations[flow_id] = float(amount)
        self._after_transition()

    def effective_thresholds(self) -> dict[int, float]:
        """Footnote-5 rescale of the surviving population's reservations.

        Base reservations are scaled up proportionally so they
        repartition the full capacity — the online analogue of
        :func:`repro.core.thresholds.compute_thresholds` with
        ``fully_partition=True``.
        """
        return scale_to_partition(self.reservations, self.capacity)

    # -- consistency ------------------------------------------------------

    def check(self) -> None:
        """Raise :class:`SimulationError` if the pool invariant broke."""
        if self.holes < -_EPS or self.headroom < -_EPS:
            raise SimulationError(
                f"pool counters went negative (holes={self.holes}, "
                f"headroom={self.headroom})"
            )
        total = self.reserved_total + self.headroom + self.holes
        if abs(total - self.capacity) > 1e-3:
            raise SimulationError(
                "pool invariant violated: reservations + headroom + holes "
                f"= {total}, capacity = {self.capacity}"
            )

    def _after_transition(self) -> None:
        self.check()
        if self._sink is not None:
            self._sink.emit(
                PoolEvent(
                    time=self._clock(),
                    reserved=self.reserved_total,
                    headroom=self.headroom,
                    holes=self.holes,
                    capacity=self.capacity,
                    flows=len(self.reservations),
                    node=self.node,
                )
            )

    # -- observability ----------------------------------------------------

    def attach_trace(self, sink, clock) -> None:
        """Emit a :class:`PoolEvent` into ``sink`` after each transition."""
        if sink is not None and clock is None:
            raise ConfigurationError("attach_trace needs a clock with its sink")
        self._sink = sink
        self._clock = clock

    def register_metrics(self, registry, **labels) -> None:
        """Expose the live split through a metrics registry."""
        registry.gauge_callback("pool.reserved", lambda: self.reserved_total, **labels)
        registry.gauge_callback("pool.headroom", lambda: self.headroom, **labels)
        registry.gauge_callback("pool.holes", lambda: self.holes, **labels)
        registry.gauge_callback(
            "pool.flows", lambda: len(self.reservations), **labels
        )
