"""Buffer management for the hybrid architecture (Section 4.2).

In the hybrid system the total buffer ``B`` is split across the ``k``
class queues in proportion to their analytical minimum requirements
(eq. 18), and each queue runs its own manager — fixed-partition or the
headroom/holes sharing scheme — over its partition ``B_i`` with per-flow
thresholds ``sigma_j + (rho_j / rho_hat_i) * B_i``.

:class:`HybridBufferManager` composes one sub-manager per class and
presents the single-manager interface the output port expects.  Because
the partitions are physically disjoint, admission in one class never
depends on occupancy in another — which is what makes the hybrid system's
guarantees per-queue applications of the single-queue results.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.occupancy import BufferManager
from repro.errors import ConfigurationError

__all__ = ["HybridBufferManager"]


class HybridBufferManager:
    """Composite manager delegating to one sub-manager per flow class.

    Args:
        class_of: mapping flow id -> class index.
        managers: one :class:`BufferManager` per class, index-aligned.
    """

    __slots__ = ("class_of", "managers", "capacity")

    #: Per-flow thresholds live in the class sub-managers; reprovision
    #: and retire delegate, so the composite honours the same contract.
    has_flow_thresholds = True

    def __init__(self, class_of: Mapping[int, int], managers: Sequence[BufferManager]):
        if not managers:
            raise ConfigurationError("hybrid manager needs at least one sub-manager")
        for flow_id, class_id in class_of.items():
            if not 0 <= class_id < len(managers):
                raise ConfigurationError(
                    f"flow {flow_id} mapped to class {class_id}, "
                    f"but only {len(managers)} managers supplied"
                )
        self.class_of = dict(class_of)
        self.managers = list(managers)
        self.capacity = sum(manager.capacity for manager in managers)

    def _manager_for(self, flow_id: int) -> BufferManager:
        class_id = self.class_of.get(flow_id)
        if class_id is None:
            raise ConfigurationError(f"flow {flow_id} not assigned to any class")
        return self.managers[class_id]

    def attach_trace(self, sink, clock, node: str = "") -> None:
        """Propagate the trace sink to every class sub-manager."""
        for manager in self.managers:
            manager.attach_trace(sink, clock, node)

    def register_metrics(self, registry, **labels) -> None:
        """Register each class partition under a ``class`` label."""
        for class_id, manager in enumerate(self.managers):
            manager.register_metrics(registry, **labels, **{"class": class_id})

    def drop_reason(self, flow_id: int, size: float) -> str:
        """Classification comes from the class manager that rejected."""
        return self._manager_for(flow_id).drop_reason(flow_id, size)

    def try_admit(self, flow_id: int, size: float) -> bool:
        """Admission is decided entirely by the flow's class manager."""
        return self._manager_for(flow_id).try_admit(flow_id, size)

    def on_depart(self, flow_id: int, size: float) -> None:
        self._manager_for(flow_id).on_depart(flow_id, size)

    def occupancy(self, flow_id: int) -> float:
        return self._manager_for(flow_id).occupancy(flow_id)

    def threshold(self, flow_id: int) -> float:
        """The threshold the flow's class manager applies to it."""
        return self._manager_for(flow_id).threshold(flow_id)

    def reprovision(self, flow_id: int, threshold: float) -> None:
        """Delegate the live threshold change to the flow's class manager.

        The class partitions are physically disjoint, so reprovisioning
        inside one class can never disturb another — the same argument
        that makes the hybrid guarantees per-queue applications of the
        single-queue results.
        """
        self._manager_for(flow_id).reprovision(flow_id, threshold)

    def retire(self, flow_id: int) -> None:
        """Withdraw the flow inside its class; the class mapping stays.

        Keeping the ``class_of`` entry is what makes retirement
        drain-safe here: packets of the retired flow still queued in the
        class partition must keep resolving to the same sub-manager
        until they depart.
        """
        self._manager_for(flow_id).retire(flow_id)

    @property
    def total_occupancy(self) -> float:
        return sum(manager.total_occupancy for manager in self.managers)

    @property
    def free_space(self) -> float:
        return self.capacity - self.total_occupancy
