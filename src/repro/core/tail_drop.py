"""Shared buffer with no per-flow management (plain tail drop).

The paper's first benchmark: "a simple work-conserving FIFO scheduler with
no buffer management ... commonly implemented in a best effort internet".
A packet is admitted whenever it fits, so aggressive flows can capture the
entire buffer and starve conformant ones — exactly the failure mode the
paper's threshold schemes eliminate.
"""

from __future__ import annotations

from repro.core.occupancy import BufferManager

__all__ = ["TailDropManager"]


class TailDropManager(BufferManager):
    """Admit iff the packet fits in the remaining buffer space."""

    __slots__ = ()

    def _admits(self, flow_id: int, size: float) -> bool:
        return self._total + size <= self.capacity
