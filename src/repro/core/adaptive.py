"""Adaptive/non-adaptive sharing (the paper's Section-5 future work).

The conclusion sketches a refinement of the sharing scheme: "one could
also envision allowing adaptive flows to share buffers with reserved
flows, while non-adaptive ones would be prevented from doing so.  This
would provide adaptive flows with greater access to available bandwidth
without impacting reservations, and without entirely shutting off
non-adaptive flows from accessing idle resources."

:class:`AdaptiveSharingManager` implements exactly that policy on top of
the headroom/holes machinery:

* flows tagged **adaptive** use the full Section-3.3 rules — holes first,
  then headroom while within reservation, holes (fairness-capped) beyond;
* flows tagged **non-adaptive** may exceed their reservation only up to a
  configurable fraction of the holes (``nonadaptive_share``), and never
  touch the headroom — with ``nonadaptive_share = 0`` they are confined
  to their thresholds, with 1 they behave like adaptive flows.

The rationale: adaptive (congestion-reacting) flows back off when their
borrowed packets are dropped later, so lending them space is safe;
non-adaptive flows would simply occupy whatever they are lent.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.shared_headroom import SharedHeadroomManager
from repro.errors import ConfigurationError

__all__ = ["AdaptiveSharingManager"]


class AdaptiveSharingManager(SharedHeadroomManager):
    """Headroom/holes sharing with per-flow adaptivity classes.

    Args:
        capacity: total buffer size in bytes.
        thresholds: per-flow reserved thresholds (as in the base scheme).
        headroom: the protected headroom cap ``H``.
        adaptive_flows: flow ids allowed full sharing access.
        nonadaptive_share: fraction of the holes non-adaptive flows may
            collectively borrow beyond their reservations (0..1).
        default_threshold: reservation for unknown flows.
    """

    __slots__ = ("adaptive_flows", "nonadaptive_share")

    def __init__(
        self,
        capacity: float,
        thresholds: Mapping[int, float],
        headroom: float,
        adaptive_flows: Iterable[int],
        nonadaptive_share: float = 0.25,
        default_threshold: float = 0.0,
    ) -> None:
        super().__init__(capacity, thresholds, headroom, default_threshold)
        if not 0.0 <= nonadaptive_share <= 1.0:
            raise ConfigurationError(
                f"nonadaptive_share must be in [0, 1], got {nonadaptive_share}"
            )
        self.adaptive_flows = frozenset(adaptive_flows)
        self.nonadaptive_share = float(nonadaptive_share)

    def is_adaptive(self, flow_id: int) -> bool:
        return flow_id in self.adaptive_flows

    def _admits(self, flow_id: int, size: float) -> bool:
        if self._within_reservation(flow_id, size):
            # Reserved traffic is always served while space remains,
            # independent of adaptivity — reservations are sacred.
            return self.holes + self.headroom >= size
        excess_after = self.occupancy(flow_id) - self.threshold(flow_id) + size
        if self.is_adaptive(flow_id):
            return size <= self.holes and excess_after <= self.holes
        allowance = self.nonadaptive_share * self.holes
        return size <= allowance and excess_after <= allowance
