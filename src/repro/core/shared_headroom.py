"""Buffer sharing with headroom and holes (Section 3.3).

The fixed-partition scheme wastes buffer whenever a flow does not use its
reservation.  The paper's sharing variant keeps the same per-flow
thresholds but lets active flows borrow unused space, while a *headroom*
of up to ``H`` bytes is held back so flows still within their reservation
always find room.  The borrowable space is called *holes*.

Bookkeeping (quotes from the paper, Section 3.3):

* Free space is split between two counters with the invariant
  ``holes + headroom + total_occupancy == B`` and ``headroom <= H``.
* Arrival for a flow **within its reservation** (occupancy + L <= T):
  "we first attempt to use buffer space from the holes ... If the space
  from the holes is insufficient, then buffer space from the reserved
  headroom is used.  If the available space is still insufficient, the
  packet is dropped."  Because holes + headroom equals the free space,
  such packets are admitted exactly when they fit — the scheme is never
  stricter than fixed partitioning for in-profile traffic.
* Arrival for a flow **beyond its reservation**: served from holes only,
  "a packet is accepted only if the amount of buffer space occupied by
  the flow minus its reserved share is less than the amount of remaining
  space in the holes" — we enforce ``occupancy - T + L <= holes`` (and
  ``L <= holes``), so the extra space a flow grabs can never exceed the
  holes that remain.  A packet that would straddle the threshold is
  handled by this path.
* Departure of length L: ``headroom += L; holes += max(headroom - H, 0);
  headroom = min(headroom, H)`` — freed space refills the headroom first.

This mirrors the Dynamic Threshold scheme of Choudhury and Hahne, with the
flow-specific acceptance rule below threshold and the headroom cap as the
paper's stated differences.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.occupancy import BufferManager
from repro.errors import ConfigurationError, SimulationError
from repro.obs.events import HeadroomEvent

__all__ = ["SharedHeadroomManager"]


class SharedHeadroomManager(BufferManager):
    """Threshold-based buffer sharing with a protected headroom.

    Args:
        capacity: total buffer size ``B`` in bytes.
        thresholds: mapping flow id -> reserved threshold ``T_i`` in bytes
            (computed exactly as in the fixed-partition case).
        headroom: the cap ``H`` in bytes on the protected headroom.
        default_threshold: reservation applied to unknown flows
            (0 = unknown flows may only use holes).
    """

    __slots__ = ("thresholds", "default_threshold", "headroom_cap", "headroom", "holes")

    DROP_REASON = "shared-buffer"

    has_flow_thresholds = True

    def __init__(
        self,
        capacity: float,
        thresholds: Mapping[int, float],
        headroom: float,
        default_threshold: float = 0.0,
    ) -> None:
        super().__init__(capacity)
        if headroom < 0:
            raise ConfigurationError(f"headroom must be non-negative, got {headroom}")
        for flow_id, threshold in thresholds.items():
            if threshold < 0:
                raise ConfigurationError(
                    f"threshold for flow {flow_id} must be non-negative, got {threshold}"
                )
        self.thresholds = dict(thresholds)
        self.default_threshold = float(default_threshold)
        self.headroom_cap = float(headroom)
        self.headroom = min(self.headroom_cap, self.capacity)
        self.holes = self.capacity - self.headroom

    def threshold(self, flow_id: int) -> float:
        """Reserved threshold applied to ``flow_id``."""
        return self.thresholds.get(flow_id, self.default_threshold)

    def reprovision(self, flow_id: int, threshold: float) -> None:
        """Install or change ``flow_id``'s reserved threshold while live.

        The holes/headroom split tracks *free space*, not reservations,
        so no counter moves: a changed threshold only re-routes future
        admissions between the privileged (within-reservation) and the
        holes-only path.  Drain-safe as in the fixed-partition case.
        """
        if threshold < 0:
            raise ConfigurationError(
                f"threshold for flow {flow_id} must be non-negative, got {threshold}"
            )
        previous = self.threshold(flow_id)
        self.thresholds[flow_id] = threshold
        self._trace_reprovision(flow_id, threshold, previous)

    def retire(self, flow_id: int) -> None:
        """Withdraw the flow's reservation; queued packets still drain."""
        previous = self.thresholds.pop(flow_id, None)
        if previous is not None:
            self._trace_reprovision(flow_id, self.default_threshold, previous)
        super().retire(flow_id)

    def _reference_threshold(self, flow_id: int) -> float | None:
        return self.threshold(flow_id)

    def register_metrics(self, registry, **labels) -> None:
        super().register_metrics(registry, **labels)
        registry.gauge_callback("buffer.headroom", lambda: self.headroom, **labels)
        registry.gauge_callback("buffer.holes", lambda: self.holes, **labels)

    def _trace_headroom(self) -> None:
        self._sink.emit(
            HeadroomEvent(
                time=self._clock(),
                headroom=self.headroom,
                holes=self.holes,
                node=self._node,
            )
        )

    def _within_reservation(self, flow_id: int, size: float) -> bool:
        return self.occupancy(flow_id) + size <= self.threshold(flow_id)

    def _admits(self, flow_id: int, size: float) -> bool:
        if self._within_reservation(flow_id, size):
            return self.holes + self.headroom >= size
        excess_after = self.occupancy(flow_id) - self.threshold(flow_id) + size
        return size <= self.holes and excess_after <= self.holes

    def _on_accept(self, flow_id: int, size: float) -> None:
        # Occupancy has already been charged, so "at or below threshold now"
        # identifies packets admitted through the privileged path: those may
        # take from holes first and the remainder from headroom.  Packets
        # that pushed the flow beyond its threshold were admitted from holes
        # only.
        if self.occupancy(flow_id) <= self.threshold(flow_id):
            from_holes = min(self.holes, size)
            self.holes -= from_holes
            self.headroom -= size - from_holes
        else:
            self.holes -= size
        self._check_counters()
        if self._sink is not None:
            self._trace_headroom()

    def _on_release(self, flow_id: int, size: float) -> None:
        self.headroom += size
        if self.headroom > self.headroom_cap:
            self.holes += self.headroom - self.headroom_cap
            self.headroom = self.headroom_cap
        self._check_counters()
        if self._sink is not None:
            self._trace_headroom()

    def _check_counters(self) -> None:
        if self.holes < -1e-6 or self.headroom < -1e-6:
            raise SimulationError(
                f"sharing counters went negative (holes={self.holes}, "
                f"headroom={self.headroom})"
            )
        expected_free = self.capacity - self._total
        if abs((self.holes + self.headroom) - expected_free) > 1e-3:
            raise SimulationError(
                "holes + headroom diverged from free space: "
                f"{self.holes} + {self.headroom} != {expected_free}"
            )
