"""Command-line entry point: regenerate the paper's figures and tables.

Usage::

    python -m repro list                 # what can be reproduced
    python -m repro figure1             # run one figure (fast mode)
    python -m repro figure4 --full      # paper-faithful sizing
    python -m repro all --out results/  # everything, archived to files
    python -m repro all --workers 4 --cache-dir results/cache

    python -m repro campaign run --spec spec.json --workers 4
    python -m repro campaign status     # cache, entries, queue state
    python -m repro campaign clear-cache

    python -m repro campaign sweep run --spec sweep.json --cache-dir d
    python -m repro campaign sweep run --spec sweep.json --owner w2 --wait
    python -m repro campaign sweep status --spec sweep.json --cache-dir d
    python -m repro campaign sweep aggregate --spec sweep.json --out agg.json

    python -m repro obs trace --spec spec.json --trace-out trace.jsonl
    python -m repro obs trace --input trace.jsonl --flow 3 --type drop
    python -m repro obs trace --input net.jsonl --node n0->n1 --kind drop
    python -m repro obs report          # summarize results/telemetry
    python -m repro obs timeline        # sim-time series over a demo run
    python -m repro obs monitor         # live analytic-bound conformance
    python -m repro obs monitor --undersized   # provoke violations

    python -m repro bench run --quick   # measure the benchmark suite
    python -m repro bench compare --baseline benchmarks/baselines
    python -m repro bench update-baseline

    python -m repro net demo            # 3-hop tandem with flow churn
    python -m repro net demo --hops 5 --seed 3 --no-churn
    python -m repro net reclaim         # live reprovisioning vs static
    python -m repro net reclaim --trace-out results/reclaim.jsonl

    python -m repro check examples/specs benchmarks/baselines
    python -m repro check --list-invariants
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys

from repro.experiments.campaign import CampaignRunner, ResultCache
from repro.experiments.campaign.cache import DEFAULT_CACHE_DIR
from repro.experiments.campaign.job import CAMPAIGN_SCHEMA
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.report import format_figure


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduce figures from 'Scalable QoS Provision Through "
            "Buffer Management' (SIGCOMM 1998)."
        ),
    )
    parser.add_argument(
        "target",
        help=(
            "figure to run (figure1..figure13), 'all', 'list', 'run' "
            "with --spec for declarative scenarios, 'campaign' with an "
            "action (run/status/clear-cache), 'obs' with an action "
            "(trace/report/timeline/monitor), 'bench' with an action "
            "(run/compare/update-baseline), or 'net' with an action "
            "(demo/reclaim)"
        ),
    )
    parser.add_argument(
        "action",
        nargs="?",
        default=None,
        help="campaign action (run, status, clear-cache, sweep), obs action "
        "(trace, report, timeline, monitor), or net action (demo, reclaim)",
    )
    parser.add_argument(
        "subaction",
        nargs="?",
        default=None,
        help="sweep verb for 'campaign sweep' (run, status, aggregate)",
    )
    parser.add_argument(
        "--spec",
        type=pathlib.Path,
        default=None,
        help="JSON scenario spec file (used with 'run' and 'campaign run') "
        "or sweep spec file ('campaign sweep ...')",
    )
    parser.add_argument(
        "--owner",
        default=None,
        help="worker id for 'campaign sweep run' claims and shards "
        "(default: <hostname>-<pid>; must be unique per worker)",
    )
    parser.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=None,
        help="seconds after which a silent claim counts as orphaned and "
        "is reaped ('campaign sweep run/status', 'campaign status'; "
        "default 60)",
    )
    parser.add_argument(
        "--wait",
        action="store_true",
        help="'campaign sweep run': keep polling until every cell is "
        "complete instead of exiting when only peer-claimed cells remain",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-faithful sweep sizing (slow); default is fast mode",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="directory to archive rendered figures into; for 'campaign "
        "sweep aggregate', the aggregate file path (default: "
        "<cache>/aggregates/<sweep-digest>.json)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for campaign execution (default: serial, "
        "or the REPRO_WORKERS environment variable)",
    )
    parser.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=None,
        help="content-addressed result cache directory (default: no cache "
        "for figures, results/cache for campaign actions; REPRO_CACHE "
        "also enables it)",
    )
    parser.add_argument(
        "--telemetry-dir",
        type=pathlib.Path,
        default=None,
        help="run-telemetry directory (default: results/telemetry for "
        "'campaign run' and 'obs report'; REPRO_TELEMETRY also enables it)",
    )
    parser.add_argument(
        "--input",
        type=pathlib.Path,
        default=None,
        help="existing JSONL trace to read ('obs trace')",
    )
    parser.add_argument(
        "--trace-out",
        type=pathlib.Path,
        default=None,
        help="where 'obs trace --spec' writes the JSONL event stream "
        "(default: results/trace.jsonl); for 'net reclaim', write one "
        "traced reclamation run here for offline RPR206 auditing",
    )
    parser.add_argument(
        "--flow",
        type=int,
        action="append",
        default=None,
        help="restrict 'obs trace' output to this flow id (repeatable)",
    )
    parser.add_argument(
        "--type",
        action="append",
        default=None,
        dest="event_type",
        help="restrict 'obs trace' output to this event kind, e.g. "
        "enqueue, drop, depart (repeatable)",
    )
    parser.add_argument(
        "--kind",
        action="append",
        default=None,
        dest="event_type",
        help="alias for --type (merged with it when both are given)",
    )
    parser.add_argument(
        "--node",
        action="append",
        default=None,
        help="restrict 'obs trace' output to events from this node label, "
        "e.g. n0->n1 (repeatable; '' selects single-port events)",
    )
    parser.add_argument(
        "--hops",
        type=int,
        default=3,
        help="tandem length for 'net demo' / 'net reclaim' / "
        "'obs timeline' / 'obs monitor' (default 3)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="root seed for 'net demo' and the obs demo runs; first of "
        "three seeds for 'net reclaim' (default 0)",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=None,
        help="sampling/sweep cadence in simulated seconds for "
        "'obs timeline' / 'obs monitor' (default 0.05)",
    )
    parser.add_argument(
        "--timeline-out",
        type=pathlib.Path,
        default=None,
        help="write the sampled timeline as JSONL (repro-timeline-v1) "
        "for 'obs timeline' / 'obs monitor'",
    )
    parser.add_argument(
        "--undersized",
        action="store_true",
        help="run the deliberately undersized tandem in 'obs monitor' "
        "(provokes conformant-drop violations)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="machine-readable JSON output for 'obs timeline' / "
        "'obs monitor'",
    )
    parser.add_argument(
        "--no-churn",
        action="store_true",
        help="disable the dynamic-flow population in 'net demo'",
    )
    parser.add_argument(
        "--since",
        type=float,
        default=None,
        help="drop trace events before this simulation time",
    )
    parser.add_argument(
        "--until",
        type=float,
        default=None,
        help="drop trace events after this simulation time",
    )
    return parser


def _build_runner(args: argparse.Namespace) -> CampaignRunner | None:
    """The runner requested by CLI flags, or None for env defaults."""
    if args.workers is None and args.cache_dir is None:
        return None
    cache = None if args.cache_dir is None else ResultCache(args.cache_dir)
    return CampaignRunner(workers=args.workers or 1, cache=cache)


def run_target(
    name: str,
    fast: bool,
    out: pathlib.Path | None,
    runner: CampaignRunner | None = None,
) -> None:
    figure = ALL_FIGURES[name](fast=fast, runner=runner)
    text = format_figure(figure)
    print(text)
    print()
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{name}.txt").write_text(text + "\n")


def _print_campaign_stats(runner: CampaignRunner | None) -> None:
    if runner is not None and runner.last_stats is not None:
        stats = runner.last_stats
        print(
            f"[campaign: {stats.submitted} jobs, {stats.unique} unique, "
            f"{stats.cache_hits} cached, {stats.executed} executed]"
        )


def _run_network_spec_file(spec, runner: CampaignRunner | None) -> None:
    from repro.experiments.report import format_table
    from repro.experiments.spec import run_network_spec

    scenario = spec.scenario
    shape = f"{len(scenario.nodes)} nodes, {len(scenario.links)} links"
    if scenario.churn is not None:
        shape += ", churn"
    print(f"{spec.name} [network: {shape}]")
    rows = []
    for seed, record in zip(spec.seeds, run_network_spec(spec, runner=runner)):
        delivered = sum(record.delivery_packets.values())
        blocking = (
            "-" if record.churn is None else f"{record.blocking_probability():.3f}"
        )
        rows.append(
            [str(seed), str(record.events_processed), str(delivered), blocking]
        )
    print(format_table(["seed", "events", "delivered pkts", "blocking"], rows))
    _print_campaign_stats(runner)
    print()


def run_spec_file(path: pathlib.Path, runner: CampaignRunner | None = None) -> None:
    from repro import units
    from repro.experiments.report import format_table
    from repro.experiments.spec import NetworkSpec, load_specs, run_spec

    for spec in load_specs(path):
        if isinstance(spec, NetworkSpec):
            _run_network_spec_file(spec, runner)
            continue
        results = run_spec(spec, runner=runner)
        rows = [[label, str(value)] for label, value in results.items()]
        print(f"{spec.name} [{spec.scheme.value}, B = {units.to_mbytes(spec.buffer_bytes):g} MB]")
        print(format_table(["metric", "mean ± 95% CI"], rows))
        _print_campaign_stats(runner)
        print()


def _campaign_cache(args: argparse.Namespace) -> ResultCache:
    return ResultCache(args.cache_dir if args.cache_dir is not None else DEFAULT_CACHE_DIR)


def _telemetry_dir(args: argparse.Namespace) -> pathlib.Path:
    from repro.obs.telemetry import DEFAULT_TELEMETRY_DIR

    return args.telemetry_dir if args.telemetry_dir is not None else DEFAULT_TELEMETRY_DIR


def _heartbeat_timeout(args: argparse.Namespace) -> float:
    from repro.experiments.sweep import DEFAULT_HEARTBEAT_TIMEOUT

    if args.heartbeat_timeout is None:
        return DEFAULT_HEARTBEAT_TIMEOUT
    return args.heartbeat_timeout


def run_campaign_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.sweep import (
        aggregate_sweep,
        default_aggregate_path,
        load_sweep,
        run_sweep_worker,
        sweep_status,
        write_aggregate,
    )

    if args.subaction not in ("run", "status", "aggregate"):
        print(
            f"unknown sweep verb {args.subaction!r}; use run, status, "
            "or aggregate",
            file=sys.stderr,
        )
        return 2
    if args.spec is None:
        print(
            f"'campaign sweep {args.subaction}' requires --spec <sweep.json>",
            file=sys.stderr,
        )
        return 2
    spec = load_sweep(args.spec)
    cache = _campaign_cache(args)
    timeout = _heartbeat_timeout(args)

    if args.subaction == "run":
        summary = run_sweep_worker(
            spec,
            cache,
            owner=args.owner,
            heartbeat_timeout=timeout,
            wait=args.wait,
            preflight=True,
            telemetry_dir=_telemetry_dir(args),
        )
        status = sweep_status(spec, cache, heartbeat_timeout=timeout)
        print(f"sweep           : {spec.name} ({spec.digest()[:16]})")
        print(f"worker          : {summary.owner}")
        print(f"executed        : {summary.executed}")
        print(f"reaped claims   : {summary.reaped}")
        print(f"passes          : {summary.passes}")
        print(f"cells           : {status.cells}")
        print(f"completed       : {status.completed}")
        print(f"outstanding     : {summary.outstanding}")
        return 0 if status.complete else 1
    if args.subaction == "status":
        status = sweep_status(spec, cache, heartbeat_timeout=timeout)
        print(f"sweep           : {spec.name} ({spec.digest()[:16]})")
        print(f"cache directory : {cache.root}")
        print(f"cells           : {status.cells}")
        print(f"completed       : {status.completed}")
        print(f"claimed         : {status.claimed}")
        print(f"orphaned claims : {status.orphaned}")
        print(f"pending         : {status.pending}")
        return 0 if status.complete else 1
    aggregate = aggregate_sweep(spec, cache)
    out = (
        args.out
        if args.out is not None
        else default_aggregate_path(cache.root, spec)
    )
    path = write_aggregate(aggregate, out)
    print(f"sweep           : {spec.name} ({spec.digest()[:16]})")
    print(f"cells           : {aggregate['cells']}")
    print(f"groups          : {len(aggregate['groups'])}")
    print(f"aggregate       : {path}")
    return 0


def run_campaign(args: argparse.Namespace) -> int:
    from repro import units

    if args.action == "sweep":
        return run_campaign_sweep(args)
    if args.action == "run":
        if args.spec is None:
            print("'campaign run' requires --spec <file.json>", file=sys.stderr)
            return 2
        runner = CampaignRunner(
            workers=args.workers or 1,
            cache=_campaign_cache(args),
            telemetry_dir=_telemetry_dir(args),
            preflight=True,
        )
        run_spec_file(args.spec, runner=runner)
        return 0
    if args.action == "status":
        from repro.experiments.sweep import scan_queue

        cache = _campaign_cache(args)
        entries = cache.entries()
        stats = cache.persisted_stats()
        queue = scan_queue(cache.root, _heartbeat_timeout(args))
        print(f"cache directory : {cache.root}")
        print(f"schema tag      : {CAMPAIGN_SCHEMA}")
        print(f"entries         : {len(entries)}")
        print(f"size            : {units.to_mbytes(cache.size_bytes()):.3f} MB")
        print(f"cached bytes    : {cache.size_bytes()}")
        print(f"claimed         : {queue.claimed}")
        print(f"orphaned claims : {queue.orphaned}")
        print(f"lifetime hits   : {stats['hits']}")
        print(f"lifetime misses : {stats['misses']}")
        print(f"lifetime stores : {stats['stores']}")
        return 0
    if args.action == "clear-cache":
        cache = _campaign_cache(args)
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.root}")
        return 0
    print(
        f"unknown campaign action {args.action!r}; use run, status, "
        "clear-cache, or sweep",
        file=sys.stderr,
    )
    return 2


def _trace_spec_scenario(spec_path: pathlib.Path, out: pathlib.Path) -> None:
    """Run the first scenario of a spec with a JSONL sink attached."""
    from repro.experiments.runner import run_scenario
    from repro.experiments.spec import jobs_for_spec, load_specs
    from repro.obs import JsonlSink

    spec = load_specs(spec_path)[0]
    job = jobs_for_spec(spec)[0]
    out.parent.mkdir(parents=True, exist_ok=True)
    with JsonlSink(out) as sink:
        run_scenario(
            job.flows, job.scheme, job.buffer_size, sink=sink, **job.scenario_kwargs()
        )


def run_obs(args: argparse.Namespace) -> int:
    import json

    from repro.obs import event_to_dict, filter_events, read_events
    from repro.obs.telemetry import CampaignReport, read_telemetry_dir

    if args.action == "trace":
        if (args.input is None) == (args.spec is None):
            print(
                "'obs trace' needs exactly one of --input <trace.jsonl> "
                "or --spec <file.json>",
                file=sys.stderr,
            )
            return 2
        if args.input is not None:
            trace_path = args.input
        else:
            trace_path = (
                args.trace_out
                if args.trace_out is not None
                else pathlib.Path("results") / "trace.jsonl"
            )
            _trace_spec_scenario(args.spec, trace_path)
            print(f"# trace written to {trace_path}", file=sys.stderr)
        events = filter_events(
            read_events(trace_path),
            flows=args.flow,
            kinds=args.event_type,
            nodes=args.node,
            since=args.since,
            until=args.until,
        )
        try:
            for event in events:
                print(json.dumps(event_to_dict(event)))
            sys.stdout.flush()
        except BrokenPipeError:
            # Downstream consumer (head, jq -n, ...) closed the pipe:
            # normal for a line-dump tool, not an error.  Re-point stdout
            # at devnull so interpreter shutdown doesn't re-raise.
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    if args.action == "report":
        directory = _telemetry_dir(args)
        entries = read_telemetry_dir(directory)
        print(f"telemetry dir   : {directory}")
        if not entries:
            print("no telemetry found; run a campaign first")
            return 0
        print(CampaignReport.from_telemetry(entries).render())
        return 0
    if args.action == "timeline":
        return run_obs_timeline(args)
    if args.action == "monitor":
        return run_obs_monitor(args)
    print(
        f"unknown obs action {args.action!r}; use trace, report, "
        "timeline, or monitor",
        file=sys.stderr,
    )
    return 2


def _obs_demo_interval(args: argparse.Namespace) -> float:
    from repro.obs.timeline import DEFAULT_INTERVAL

    return DEFAULT_INTERVAL if args.interval is None else args.interval


def _write_timeline_out(args: argparse.Namespace, timeline) -> None:
    if args.timeline_out is None:
        return
    args.timeline_out.parent.mkdir(parents=True, exist_ok=True)
    timeline.write_jsonl(args.timeline_out)
    print(f"# timeline written to {args.timeline_out}", file=sys.stderr)


def run_obs_timeline(args: argparse.Namespace) -> int:
    """Sample the reference tandem demo and render the sim-time series."""
    import json

    from repro.experiments.fabric import run_fabric
    from repro.experiments.fabric.demo import TARGET_FLOW_ID, demo_tandem
    from repro.obs.timeline import Timeline

    if args.hops < 1:
        print("'obs timeline' needs --hops >= 1", file=sys.stderr)
        return 2
    interval = _obs_demo_interval(args)
    if interval <= 0:
        print("'obs timeline' needs --interval > 0", file=sys.stderr)
        return 2
    timeline = Timeline(interval=interval, flows=(TARGET_FLOW_ID,))
    scenario = demo_tandem(
        hops=args.hops,
        seed=args.seed,
        churn=not args.no_churn,
        reclamation=not args.no_churn,
        delay_histograms=False,
    )
    result = run_fabric(scenario, timeline=timeline)
    _write_timeline_out(args, timeline)
    if args.as_json:
        print(json.dumps(timeline.summary().to_dict(), sort_keys=True))
        return 0
    print(
        f"timeline: {args.hops}-hop tandem, seed {args.seed}, "
        f"{scenario.sim_time:g} s simulated, {timeline.ticks} samples "
        f"every {interval:g} s, {result.events_processed} events"
    )
    print()
    print(timeline.render())
    return 0


def run_obs_monitor(args: argparse.Namespace) -> int:
    """Run a demo tandem under the live conformance monitor."""
    import json

    from repro.experiments.fabric import run_fabric
    from repro.experiments.fabric.demo import (
        TARGET_FLOW_ID,
        demo_tandem,
        undersized_tandem,
    )
    from repro.obs.monitor import ConformanceMonitor
    from repro.obs.timeline import Timeline

    if args.hops < 1:
        print("'obs monitor' needs --hops >= 1", file=sys.stderr)
        return 2
    interval = _obs_demo_interval(args)
    if interval <= 0:
        print("'obs monitor' needs --interval > 0", file=sys.stderr)
        return 2
    monitor = ConformanceMonitor(interval=interval)
    timeline = None
    if args.timeline_out is not None:
        timeline = Timeline(interval=interval, flows=(TARGET_FLOW_ID,))
    if args.undersized:
        scenario = undersized_tandem(hops=args.hops, seed=args.seed)
    else:
        scenario = demo_tandem(
            hops=args.hops,
            seed=args.seed,
            churn=not args.no_churn,
            reclamation=not args.no_churn,
            delay_histograms=False,
        )
    result = run_fabric(scenario, timeline=timeline, monitor=monitor)
    report = result.monitor_report
    if timeline is not None:
        _write_timeline_out(args, timeline)
    if args.as_json:
        print(json.dumps(report.to_dict(), sort_keys=True))
        return 0 if report.ok else 1
    flavour = "undersized" if args.undersized else "reference"
    print(
        f"monitor: {flavour} {args.hops}-hop tandem, seed {args.seed}, "
        f"{scenario.sim_time:g} s simulated, {result.events_processed} events"
    )
    print()
    print(report.render())
    return 0 if report.ok else 1


def run_net(args: argparse.Namespace) -> int:
    from repro.experiments.fabric import run_fabric
    from repro.experiments.fabric.demo import TARGET_FLOW_ID, demo_tandem
    from repro.experiments.report import format_table
    from repro.units import to_millis

    if args.action == "reclaim":
        return run_net_reclaim(args)
    if args.action != "demo":
        print(
            f"unknown net action {args.action!r}; use demo or reclaim",
            file=sys.stderr,
        )
        return 2
    if args.hops < 1:
        print("'net demo' needs --hops >= 1", file=sys.stderr)
        return 2
    scenario = demo_tandem(hops=args.hops, seed=args.seed, churn=not args.no_churn)
    result = run_fabric(scenario)

    print(
        f"tandem demo: {args.hops} hop(s), seed {args.seed}, "
        f"{scenario.sim_time:g} s simulated, "
        f"{result.events_processed} events"
    )
    print()
    rows = []
    for link in scenario.links:
        stats = result.links[link.label].flow_stats
        offered = sum(s.offered_packets for s in stats.values())
        dropped = sum(s.dropped_packets for s in stats.values())
        departed = sum(s.departed_packets for s in stats.values())
        target = stats.get(TARGET_FLOW_ID)
        rows.append(
            [
                link.label,
                str(offered),
                str(dropped),
                str(departed),
                f"{100.0 * dropped / offered:.2f}" if offered else "0.00",
                str(0 if target is None else target.dropped_packets),
            ]
        )
    print("per-hop drops (measurement window):")
    print(
        format_table(
            ["link", "offered", "dropped", "departed", "drop %", f"flow {TARGET_FLOW_ID} drops"],
            rows,
        )
    )
    print()

    delivered = result.delivery_collector.flows.get(TARGET_FLOW_ID)
    print(f"end-to-end, target flow {TARGET_FLOW_ID} (conformant):")
    if delivered is None or delivered.departed_packets == 0:
        print("  no packets delivered in the measurement window")
    else:
        quantiles = "  ".join(
            f"p{q:g} {to_millis(result.end_to_end_percentile(TARGET_FLOW_ID, q)):.2f} ms"
            for q in (50, 95, 99)
        )
        print(
            f"  {delivered.departed_packets} packets delivered, "
            f"mean {to_millis(delivered.mean_delay):.2f} ms, {quantiles}, "
            f"max {to_millis(delivered.delay_max):.2f} ms"
        )
    print()

    if result.churn is not None:
        report = result.churn
        print(
            f"churn: {report.arrivals} arrivals, {report.accepted} accepted, "
            f"{report.blocked} blocked "
            f"({report.blocked_bandwidth} bandwidth-limited / "
            f"{report.blocked_buffer} buffer-limited / "
            f"{report.blocked_unknown} unattributed), "
            f"blocking probability {report.blocking_probability:.3f}"
        )
        for node, reasons in sorted(report.per_node.items()):
            detail = ", ".join(
                f"{reason}: {count}" for reason, count in sorted(reasons.items())
            )
            print(f"  blocked at {node}: {detail}")
        print(
            f"  {report.departures} departed, "
            f"{report.active_at_end} still active at end"
        )
    return 0


def run_net_reclaim(args: argparse.Namespace) -> int:
    from repro.experiments.fabric import run_fabric
    from repro.experiments.fabric.demo import demo_tandem
    from repro.experiments.reclaim import run_reclaim_study
    from repro.obs import JsonlSink

    if args.hops < 1:
        print("'net reclaim' needs --hops >= 1", file=sys.stderr)
        return 2
    seeds = (args.seed, args.seed + 1, args.seed + 2)
    study = run_reclaim_study(hops=args.hops, seeds=seeds, runner=_build_runner(args))
    print(
        f"reclamation study: {args.hops}-hop tandem, "
        f"{study.sim_time:g} s per run, seeds {', '.join(map(str, seeds))}"
    )
    print()
    print(study.render())
    if args.trace_out is not None:
        # One traced reclamation run so the pool's accounting can be
        # audited offline: `repro check <trace-out>` applies RPR206.
        scenario = demo_tandem(
            hops=args.hops,
            seed=seeds[0],
            sim_time=study.sim_time,
            churn=True,
            reclamation=True,
            delay_histograms=False,
        )
        args.trace_out.parent.mkdir(parents=True, exist_ok=True)
        with JsonlSink(args.trace_out) as trace:
            run_fabric(scenario, sink=trace)
        print()
        print(f"# reclamation trace written to {args.trace_out}", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench":
        # The bench subsystem owns its argument surface (run / compare /
        # update-baseline with gate tuning); delegate before parsing, the
        # same way `repro-lint` has its own CLI.
        from repro.bench.cli import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "check":
        # Same delegation for the invariant auditor (specs/artifacts).
        from repro.check.cli import main as check_main

        return check_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.target == "campaign":
        return run_campaign(args)
    if args.target == "obs":
        return run_obs(args)
    if args.target == "net":
        return run_net(args)
    if args.target == "run":
        if args.spec is None:
            print("the 'run' target requires --spec <file.json>", file=sys.stderr)
            return 2
        run_spec_file(args.spec, runner=_build_runner(args))
        return 0
    if args.target == "list":
        for name, fn in ALL_FIGURES.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:10s} {doc}")
        return 0
    if args.target == "all":
        runner = _build_runner(args)
        for name in ALL_FIGURES:
            run_target(name, fast=not args.full, out=args.out, runner=runner)
        return 0
    if args.target not in ALL_FIGURES:
        print(f"unknown target {args.target!r}; try 'list'", file=sys.stderr)
        return 2
    run_target(args.target, fast=not args.full, out=args.out, runner=_build_runner(args))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
