"""Command-line entry point: regenerate the paper's figures and tables.

Usage::

    python -m repro list                 # what can be reproduced
    python -m repro figure1             # run one figure (fast mode)
    python -m repro figure4 --full      # paper-faithful sizing
    python -m repro all --out results/  # everything, archived to files
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.experiments.figures import ALL_FIGURES
from repro.experiments.report import format_figure


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduce figures from 'Scalable QoS Provision Through "
            "Buffer Management' (SIGCOMM 1998)."
        ),
    )
    parser.add_argument(
        "target",
        help=(
            "figure to run (figure1..figure13), 'all', 'list', or 'run' "
            "with --spec for declarative scenarios"
        ),
    )
    parser.add_argument(
        "--spec",
        type=pathlib.Path,
        default=None,
        help="JSON scenario spec file (used with the 'run' target)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-faithful sweep sizing (slow); default is fast mode",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="directory to archive rendered figures into",
    )
    return parser


def run_target(name: str, fast: bool, out: pathlib.Path | None) -> None:
    figure = ALL_FIGURES[name](fast=fast)
    text = format_figure(figure)
    print(text)
    print()
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{name}.txt").write_text(text + "\n")


def run_spec_file(path: pathlib.Path) -> None:
    from repro import units
    from repro.experiments.report import format_table
    from repro.experiments.spec import load_specs, run_spec

    for spec in load_specs(path):
        results = run_spec(spec)
        rows = [[label, str(value)] for label, value in results.items()]
        print(f"{spec.name} [{spec.scheme.value}, B = {units.to_mbytes(spec.buffer_bytes):g} MB]")
        print(format_table(["metric", "mean ± 95% CI"], rows))
        print()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.target == "run":
        if args.spec is None:
            print("the 'run' target requires --spec <file.json>", file=sys.stderr)
            return 2
        run_spec_file(args.spec)
        return 0
    if args.target == "list":
        for name, fn in ALL_FIGURES.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:10s} {doc}")
        return 0
    if args.target == "all":
        for name in ALL_FIGURES:
            run_target(name, fast=not args.full, out=args.out)
        return 0
    if args.target not in ALL_FIGURES:
        print(f"unknown target {args.target!r}; try 'list'", file=sys.stderr)
        return 2
    run_target(args.target, fast=not args.full, out=args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
