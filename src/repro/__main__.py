"""Command-line entry point: regenerate the paper's figures and tables.

Usage::

    python -m repro list                 # what can be reproduced
    python -m repro figure1             # run one figure (fast mode)
    python -m repro figure4 --full      # paper-faithful sizing
    python -m repro all --out results/  # everything, archived to files
    python -m repro all --workers 4 --cache-dir results/cache

    python -m repro campaign run --spec spec.json --workers 4
    python -m repro campaign status     # cache location, entries, size
    python -m repro campaign clear-cache
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.experiments.campaign import CampaignRunner, ResultCache
from repro.experiments.campaign.cache import DEFAULT_CACHE_DIR
from repro.experiments.campaign.job import CAMPAIGN_SCHEMA
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.report import format_figure


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduce figures from 'Scalable QoS Provision Through "
            "Buffer Management' (SIGCOMM 1998)."
        ),
    )
    parser.add_argument(
        "target",
        help=(
            "figure to run (figure1..figure13), 'all', 'list', 'run' "
            "with --spec for declarative scenarios, or 'campaign' with "
            "an action (run/status/clear-cache)"
        ),
    )
    parser.add_argument(
        "action",
        nargs="?",
        default=None,
        help="campaign action: run, status, or clear-cache",
    )
    parser.add_argument(
        "--spec",
        type=pathlib.Path,
        default=None,
        help="JSON scenario spec file (used with 'run' and 'campaign run')",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-faithful sweep sizing (slow); default is fast mode",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="directory to archive rendered figures into",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for campaign execution (default: serial, "
        "or the REPRO_WORKERS environment variable)",
    )
    parser.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=None,
        help="content-addressed result cache directory (default: no cache "
        "for figures, results/cache for campaign actions; REPRO_CACHE "
        "also enables it)",
    )
    return parser


def _build_runner(args: argparse.Namespace) -> CampaignRunner | None:
    """The runner requested by CLI flags, or None for env defaults."""
    if args.workers is None and args.cache_dir is None:
        return None
    cache = None if args.cache_dir is None else ResultCache(args.cache_dir)
    return CampaignRunner(workers=args.workers or 1, cache=cache)


def run_target(
    name: str,
    fast: bool,
    out: pathlib.Path | None,
    runner: CampaignRunner | None = None,
) -> None:
    figure = ALL_FIGURES[name](fast=fast, runner=runner)
    text = format_figure(figure)
    print(text)
    print()
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{name}.txt").write_text(text + "\n")


def run_spec_file(path: pathlib.Path, runner: CampaignRunner | None = None) -> None:
    from repro import units
    from repro.experiments.report import format_table
    from repro.experiments.spec import load_specs, run_spec

    for spec in load_specs(path):
        results = run_spec(spec, runner=runner)
        rows = [[label, str(value)] for label, value in results.items()]
        print(f"{spec.name} [{spec.scheme.value}, B = {units.to_mbytes(spec.buffer_bytes):g} MB]")
        print(format_table(["metric", "mean ± 95% CI"], rows))
        if runner is not None and runner.last_stats is not None:
            stats = runner.last_stats
            print(
                f"[campaign: {stats.submitted} jobs, {stats.unique} unique, "
                f"{stats.cache_hits} cached, {stats.executed} executed]"
            )
        print()


def _campaign_cache(args: argparse.Namespace) -> ResultCache:
    return ResultCache(args.cache_dir if args.cache_dir is not None else DEFAULT_CACHE_DIR)


def run_campaign(args: argparse.Namespace) -> int:
    from repro import units

    if args.action == "run":
        if args.spec is None:
            print("'campaign run' requires --spec <file.json>", file=sys.stderr)
            return 2
        runner = CampaignRunner(
            workers=args.workers or 1, cache=_campaign_cache(args)
        )
        run_spec_file(args.spec, runner=runner)
        return 0
    if args.action == "status":
        cache = _campaign_cache(args)
        entries = cache.entries()
        print(f"cache directory : {cache.root}")
        print(f"schema tag      : {CAMPAIGN_SCHEMA}")
        print(f"entries         : {len(entries)}")
        print(f"size            : {units.to_mbytes(cache.size_bytes()):.3f} MB")
        return 0
    if args.action == "clear-cache":
        cache = _campaign_cache(args)
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.root}")
        return 0
    print(
        f"unknown campaign action {args.action!r}; use run, status, or clear-cache",
        file=sys.stderr,
    )
    return 2


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.target == "campaign":
        return run_campaign(args)
    if args.target == "run":
        if args.spec is None:
            print("the 'run' target requires --spec <file.json>", file=sys.stderr)
            return 2
        run_spec_file(args.spec, runner=_build_runner(args))
        return 0
    if args.target == "list":
        for name, fn in ALL_FIGURES.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:10s} {doc}")
        return 0
    if args.target == "all":
        runner = _build_runner(args)
        for name in ALL_FIGURES:
            run_target(name, fast=not args.full, out=args.out, runner=runner)
        return 0
    if args.target not in ALL_FIGURES:
        print(f"unknown target {args.target!r}; try 'list'", file=sys.stderr)
        return 2
    run_target(args.target, fast=not args.full, out=args.out, runner=_build_runner(args))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
