"""``python -m repro.check`` — the invariant auditor CLI."""

import sys

from repro.check.cli import main

if __name__ == "__main__":
    sys.exit(main())
