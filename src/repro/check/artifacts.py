"""Schema-version audits of on-disk artifacts (RPR205).

Every artifact family the repo commits or caches carries a ``schema``
version tag written by its producer; readers reject mismatches at use
time.  This module checks the committed files *ahead* of use, so a
schema bump that forgets to regenerate baselines/goldens/caches fails
CI at the lint gate rather than deep inside a campaign:

* bench baselines (``BENCH_*.json``) — :data:`repro.bench.baseline.BENCH_SCHEMA`,
  including the integrity digest over the payload;
* campaign cache records — :data:`repro.experiments.campaign.job.CAMPAIGN_SCHEMA`
  / :data:`repro.experiments.campaign.network.NETWORK_SCHEMA`;
* equivalence goldens — the ``repro-equivalence-v1`` tag the golden test
  asserts;
* JSONL trace files — the :data:`repro.obs.events.TRACE_SCHEMA` header,
  plus capacity conservation of any pool snapshots they carry (RPR206);
* JSONL telemetry files — :data:`repro.obs.telemetry.TELEMETRY_SCHEMA`
  per line;
* JSONL timeline exports — the :data:`repro.obs.timeline.TIMELINE_SCHEMA`
  header written by :meth:`repro.obs.timeline.Timeline.write_jsonl`;
* sweep specs / worker shards / aggregates — the
  :mod:`repro.experiments.sweep` family
  (``repro-sweep-spec-v1`` round-trips through the DSL loader,
  ``repro-sweep-shard-v1`` is checked per line, and a
  ``repro-sweep-v1`` aggregate must carry the digest of its embedded
  spec);
* work-queue claim files (``<digest>.claim``) — the
  :data:`repro.experiments.sweep.queue.CLAIM_SCHEMA` payload, whose
  ``digest`` field must match the file name.

Tags are matched by family (the part before the ``-v<N>`` suffix), so a
stale ``repro-bench-v0`` is reported as *drift* against the current
``repro-bench-v1`` rather than as an unknown artifact.
"""

from __future__ import annotations

import json
import pathlib

from repro.bench.baseline import BENCH_SCHEMA, BenchBaseline
from repro.errors import ConfigurationError
from repro.experiments.campaign.job import CAMPAIGN_SCHEMA
from repro.experiments.campaign.network import NETWORK_SCHEMA
from repro.experiments.sweep.aggregate import AGGREGATE_SCHEMA, SHARD_SCHEMA
from repro.experiments.sweep.queue import CLAIM_SCHEMA
from repro.experiments.sweep.spec import SWEEP_SPEC_SCHEMA, SweepSpec
from repro.lint.findings import Finding
from repro.obs.events import TRACE_SCHEMA
from repro.obs.telemetry import TELEMETRY_SCHEMA
from repro.obs.timeline import TIMELINE_SCHEMA

__all__ = ["GOLDENS_SCHEMA", "KNOWN_SCHEMAS", "check_artifact_file", "schema_family"]

#: The tag tests/test_equivalence.py pins for the committed goldens.
GOLDENS_SCHEMA = "repro-equivalence-v1"

#: family -> the tag current producers write.
KNOWN_SCHEMAS: dict[str, str] = {
    "repro-bench": BENCH_SCHEMA,
    "repro-campaign": CAMPAIGN_SCHEMA,
    "repro-campaign-net": NETWORK_SCHEMA,
    "repro-equivalence": GOLDENS_SCHEMA,
    "repro-trace": TRACE_SCHEMA,
    "repro-telemetry": TELEMETRY_SCHEMA,
    "repro-timeline": TIMELINE_SCHEMA,
    "repro-sweep": AGGREGATE_SCHEMA,
    "repro-sweep-spec": SWEEP_SPEC_SCHEMA,
    "repro-sweep-shard": SHARD_SCHEMA,
    "repro-claim": CLAIM_SCHEMA,
}

#: JSONL families whose every line carries (and must agree on) the tag;
#: other JSONL artifacts only tag their header line.
_PER_LINE_FAMILIES = frozenset({"repro-telemetry", "repro-sweep-shard"})


def schema_family(tag: str) -> str:
    """``repro-bench-v1`` -> ``repro-bench`` ('' when not versioned)."""
    family, sep, version = tag.rpartition("-v")
    if not sep or not version.isdigit():
        return ""
    return family


def _check_tag(tag, path: str, line: int = 1) -> list[Finding]:
    """Compare one schema tag against the current producer's tag."""
    if not isinstance(tag, str) or not tag:
        return [
            Finding(
                "RPR205",
                "artifact has no usable 'schema' tag; every committed "
                "artifact must declare its schema version",
                path,
                line,
            )
        ]
    family = schema_family(tag)
    expected = KNOWN_SCHEMAS.get(family)
    if expected is None:
        return [
            Finding(
                "RPR205",
                f"unknown artifact schema family {tag!r}; known: "
                + ", ".join(sorted(KNOWN_SCHEMAS.values())),
                path,
                line,
            )
        ]
    if tag != expected:
        return [
            Finding(
                "RPR205",
                f"schema drift: artifact declares {tag!r} but current "
                f"producers write {expected!r}; regenerate the artifact "
                "(or bump it) before relying on it",
                path,
                line,
            )
        ]
    return []


def _check_bench_baseline(path: pathlib.Path) -> list[Finding]:
    """Full integrity check through the baseline loader."""
    try:
        BenchBaseline.load(path)
    except ConfigurationError as exc:
        return [Finding("RPR205", f"bench baseline rejected: {exc}", str(path), 1)]
    return []


def _check_sweep_spec(path: pathlib.Path, raw: dict) -> list[Finding]:
    """A committed sweep spec must round-trip through the DSL loader."""
    try:
        SweepSpec.from_dict(raw)
    except ConfigurationError as exc:
        return [Finding("RPR205", f"sweep spec rejected: {exc}", str(path), 1)]
    return []


def _check_sweep_aggregate(path: pathlib.Path, raw: dict) -> list[Finding]:
    """An aggregate must carry a valid spec whose digest it is keyed by."""
    embedded = raw.get("sweep")
    if not isinstance(embedded, dict):
        return [
            Finding(
                "RPR205",
                "sweep aggregate lacks its embedded sweep spec object",
                str(path),
                1,
            )
        ]
    try:
        spec = SweepSpec.from_dict(embedded)
    except ConfigurationError as exc:
        return [
            Finding(
                "RPR205",
                f"sweep aggregate embeds an invalid spec: {exc}",
                str(path),
                1,
            )
        ]
    declared = raw.get("sweep_digest")
    if declared != spec.digest():
        return [
            Finding(
                "RPR205",
                f"sweep aggregate digest mismatch: declares {declared!r} "
                f"but the embedded spec hashes to {spec.digest()!r}",
                str(path),
                1,
            )
        ]
    return []


def _check_json_artifact(path: pathlib.Path, raw: dict) -> list[Finding]:
    tag = raw.get("schema")
    findings = _check_tag(tag, str(path))
    if findings:
        return findings
    if tag == BENCH_SCHEMA:
        findings.extend(_check_bench_baseline(path))
    elif tag == SWEEP_SPEC_SCHEMA:
        findings.extend(_check_sweep_spec(path, raw))
    elif tag == AGGREGATE_SCHEMA:
        findings.extend(_check_sweep_aggregate(path, raw))
    return findings


def _check_jsonl_artifact(path: pathlib.Path, text: str) -> list[Finding]:
    """Trace files validate the header line; telemetry every line."""
    findings: list[Finding] = []
    first_tag: str | None = None
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            findings.append(
                Finding("RPR205", f"unparsable JSONL line: {exc}", str(path), number)
            )
            break
        if not isinstance(entry, dict):
            findings.append(
                Finding("RPR205", "JSONL line is not an object", str(path), number)
            )
            break
        tag = entry.get("schema")
        if first_tag is None:
            if tag is None:
                findings.append(
                    Finding(
                        "RPR205",
                        "JSONL artifact does not start with a schema-tagged "
                        "header/entry",
                        str(path),
                        number,
                    )
                )
                break
            findings.extend(_check_tag(tag, str(path), number))
            first_tag = tag if isinstance(tag, str) else ""
            if findings:
                break
            if schema_family(first_tag) == "repro-trace":
                # Trace bodies carry one event per line; pool snapshots
                # in them are auditable for conservation (RPR206).
                findings.extend(_check_trace_pool_lines(path, text, number))
                break
            if schema_family(first_tag) not in _PER_LINE_FAMILIES:
                break  # other artifacts only tag the header line
        elif tag is not None and tag != first_tag:
            findings.append(
                Finding(
                    "RPR205",
                    f"inconsistent schema tags within one artifact: "
                    f"{first_tag!r} then {tag!r}",
                    str(path),
                    number,
                )
            )
            break
    return findings


#: Conservation tolerance in bytes; matches BufferPool.check().
_POOL_BALANCE_TOL = 1e-3
#: Component non-negativity slack; matches the pool's epsilon.
_POOL_COMPONENT_TOL = 1e-6


def _check_trace_pool_lines(
    path: pathlib.Path, text: str, header_line: int
) -> list[Finding]:
    """RPR206: every pool snapshot in a trace must conserve capacity.

    A :class:`~repro.obs.events.PoolEvent` is the pool's accounting at
    one transition; ``reserved + headroom + holes`` must equal the
    capacity ``B`` and no component may be negative.  Lines that are not
    pool events (or do not parse) are skipped — the schema audit above
    already vouched for the header, and trace bodies are free-form
    event streams.
    """
    findings: list[Finding] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if number <= header_line or not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not isinstance(entry, dict) or entry.get("kind") != "pool":
            continue
        try:
            reserved = float(entry["reserved"])
            headroom = float(entry["headroom"])
            holes = float(entry["holes"])
            capacity = float(entry["capacity"])
            flows = int(entry["flows"])
        except (KeyError, TypeError, ValueError) as exc:
            findings.append(
                Finding(
                    "RPR206",
                    f"malformed pool event: {exc!r}",
                    str(path),
                    number,
                )
            )
            continue
        for label, value in (
            ("reserved", reserved),
            ("headroom", headroom),
            ("holes", holes),
        ):
            if value < -_POOL_COMPONENT_TOL:
                findings.append(
                    Finding(
                        "RPR206",
                        f"pool {label} is negative ({value!r}) at "
                        f"t={entry.get('time')}",
                        str(path),
                        number,
                    )
                )
        if flows < 0:
            findings.append(
                Finding(
                    "RPR206",
                    f"pool flow count is negative ({flows}) at "
                    f"t={entry.get('time')}",
                    str(path),
                    number,
                )
            )
        imbalance = reserved + headroom + holes - capacity
        if abs(imbalance) > _POOL_BALANCE_TOL:
            findings.append(
                Finding(
                    "RPR206",
                    f"pool does not conserve capacity at "
                    f"t={entry.get('time')}: reserved {reserved!r} + "
                    f"headroom {headroom!r} + holes {holes!r} deviates "
                    f"from B={capacity!r} by {imbalance!r} bytes",
                    str(path),
                    number,
                )
            )
    return findings


def _check_claim_artifact(path: pathlib.Path, text: str) -> list[Finding]:
    """A live claim file: current schema, digest matching the file name."""
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as exc:
        return [Finding("RPR205", f"not valid JSON: {exc}", str(path), 1)]
    if not isinstance(raw, dict):
        return [
            Finding("RPR205", "claim file is not a JSON object", str(path), 1)
        ]
    findings = _check_tag(raw.get("schema"), str(path))
    if findings:
        return findings
    declared = raw.get("digest")
    expected = path.name[: -len(".claim")]
    if declared != expected:
        findings.append(
            Finding(
                "RPR205",
                f"claim digest mismatch: file is named {expected[:16]}... "
                f"but the payload claims {str(declared)[:16]}...",
                str(path),
                1,
            )
        )
    return findings


def check_artifact_file(path: str | pathlib.Path) -> list[Finding]:
    """Audit one artifact file; [] when its schema tags are current.

    ``.jsonl`` files are treated as trace/telemetry/shard streams,
    ``.claim`` files as work-queue claims; ``.json`` files must be
    objects carrying a top-level ``schema`` tag.
    """
    file_path = pathlib.Path(path)
    try:
        text = file_path.read_text(encoding="utf-8")
    except OSError as exc:
        return [Finding("RPR205", f"cannot read artifact: {exc}", str(path), 1)]
    if file_path.suffix == ".claim":
        return _check_claim_artifact(file_path, text)
    if file_path.suffix == ".jsonl":
        return _check_jsonl_artifact(file_path, text)
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as exc:
        return [Finding("RPR205", f"not valid JSON: {exc}", str(path), 1)]
    if not isinstance(raw, dict):
        return [
            Finding(
                "RPR205",
                "artifact must be a JSON object with a 'schema' tag",
                str(path),
                1,
            )
        ]
    return _check_json_artifact(file_path, raw)
