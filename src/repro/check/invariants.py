"""The buffer-invariant auditor: semantic checks without simulation.

The paper's guarantee — conformant flows stay lossless whenever their
thresholds fit the shared buffer (Section 2) — rests on invariants the
fabric only enforces *while running*: per-node threshold sums, link
capacity over reserved rates, connected routes, feasible churn admission
regions.  This module verifies them statically, over a
:class:`~repro.experiments.fabric.NetworkScenario` or a raw spec file,
mirroring the exact math :mod:`repro.experiments.fabric.build` applies
at run time (burst inflation via
:func:`~repro.net.topology.per_hop_sigma`, region selection via the
scheme family, eqs. 5-9 of the paper).

Invariant findings reuse :class:`repro.lint.findings.Finding` with
``RPR2##`` codes and a severity:

* scenarios **with churn** must satisfy the full admission region — the
  fabric raises :class:`~repro.errors.ConfigurationError` otherwise, so
  violations are ``error`` severity;
* scenarios **without churn** get ``warning`` severity, and only the
  conformant subpopulation is booked: overloading a buffer with
  non-conformant traffic is the paper's own experimental method, but a
  conformant population outside the region silently voids the lossless
  guarantee the experiment claims to demonstrate.
"""

from __future__ import annotations

import json
import pathlib

from repro.analysis.admission import AdmissionControl, FIFOAdmission, Rejection, WFQAdmission
from repro.errors import ConfigurationError
from repro.experiments.fabric.build import _CHURN_SCHEMES
from repro.experiments.fabric.scenario import ChurnSpec, NetworkScenario
from repro.lint.findings import Finding
from repro.net.topology import per_hop_sigma

__all__ = [
    "INVARIANT_CATALOG",
    "check_scenario",
    "check_scenario_dict",
    "check_spec_entry",
    "check_spec_file",
]

#: code -> (name, one-line description), the ``--list-invariants`` catalog.
INVARIANT_CATALOG: dict[str, tuple[str, str]] = {
    "RPR201": (
        "buffer-region",
        "per-flow threshold/burst sums must fit the node buffer "
        "(buffer-limited admission, eqs. 6/8-9)",
    ),
    "RPR202": (
        "link-capacity",
        "reserved token rates must not exceed the link rate "
        "(bandwidth-limited admission, eqs. 5/7)",
    ),
    "RPR203": (
        "scenario-structure",
        "scenario/spec files must construct: known nodes and links, "
        "connected routes, positive rates, well-formed workloads",
    ),
    "RPR204": (
        "churn-feasibility",
        "churn hops must run FIFO-family schemes and leave a residual "
        "region where at least one template/route pair is admissible",
    ),
    "RPR205": (
        "artifact-schema",
        "cache/baseline/golden/trace artifacts must carry the current "
        "*_SCHEMA version tags",
    ),
    "RPR206": (
        "pool-consistency",
        "traced buffer pools must conserve capacity at every transition: "
        "reserved + headroom + holes == B, all components non-negative",
    ),
}


def _admission_for(
    scheme, mode: str, rate: float, buffer_size: float
) -> AdmissionControl:
    """Mirror of the fabric's region selection (build._admission_for)."""
    if mode == "fifo":
        return FIFOAdmission(rate, buffer_size)
    if mode == "wfq":
        return WFQAdmission(rate, buffer_size)
    if scheme in _CHURN_SCHEMES:
        return FIFOAdmission(rate, buffer_size)
    return WFQAdmission(rate, buffer_size)


def _hop_sigmas(scenario: NetworkScenario) -> dict[int, dict[tuple[str, str], float]]:
    """Inflated burst envelope per flow per hop, exactly as the fabric
    computes it before sizing thresholds (build._run_network)."""
    link_delay = {
        (link.src, link.dst): scenario.node(link.src).buffer_size / link.rate
        for link in scenario.links
    }
    sigmas: dict[int, dict[tuple[str, str], float]] = {}
    for routed in scenario.flows:
        hops = list(zip(routed.route, routed.route[1:]))
        values = per_hop_sigma(
            routed.spec.bucket,
            routed.spec.token_rate,
            [link_delay[hop] for hop in hops],
        )
        sigmas[routed.spec.flow_id] = dict(zip(hops, values))
    return sigmas


def check_scenario(
    scenario: NetworkScenario, path: str = "<scenario>", name: str = ""
) -> list[Finding]:
    """Audit one constructed scenario; returns RPR201/202/204 findings.

    Structural validity (RPR203) is enforced by the constructors; use
    :func:`check_scenario_dict` to audit raw data through the same gate.
    """
    findings: list[Finding] = []
    prefix = f"spec {name!r}: " if name else ""
    has_churn = scenario.churn is not None
    severity = "error" if has_churn else "warning"
    mode = scenario.churn.admission if has_churn else "auto"
    hop_sigmas = _hop_sigmas(scenario)

    regions: dict[tuple[str, str], AdmissionControl] = {}
    for link in scenario.links:
        node = scenario.node(link.src)
        regions[(link.src, link.dst)] = _admission_for(
            node.scheme, mode, link.rate, node.buffer_size
        )

    # Book the statics hop by hop: with churn this mirrors the fabric's
    # pre-booking (which raises on failure); without churn only the
    # conformant flows carry a guarantee worth auditing.
    booked_clean = True
    for routed in scenario.flows:
        if not has_churn and not routed.spec.conformant:
            continue
        for key, sigma in hop_sigmas[routed.spec.flow_id].items():
            region = regions[key]
            decision = region.admit(sigma, routed.spec.token_rate)
            if decision:
                continue
            booked_clean = False
            label = f"{key[0]}->{key[1]}"
            if decision.reason is Rejection.BANDWIDTH_LIMITED:
                findings.append(
                    Finding(
                        "RPR202",
                        f"{prefix}flow {routed.spec.flow_id} does not fit "
                        f"link {label}: reserved rates would reach "
                        f"{region.rho_total + routed.spec.token_rate:.0f} "
                        f"of {region.link_rate:.0f} bytes/s (eq. 5/7)",
                        path,
                        1,
                        severity=severity,
                    )
                )
            else:
                findings.append(
                    Finding(
                        "RPR201",
                        f"{prefix}flow {routed.spec.flow_id} does not fit "
                        f"the buffer at link {label}: burst sum "
                        f"{region.sigma_total + sigma:.0f} bytes needs more "
                        f"than the {region.buffer_size:.0f}-byte buffer "
                        "under its admission region (eq. 6/8-9)",
                        path,
                        1,
                        severity=severity,
                    )
                )

    if has_churn:
        findings.extend(
            _check_churn(scenario, scenario.churn, regions, booked_clean, path, prefix)
        )
    return findings


def _check_churn(
    scenario: NetworkScenario,
    churn: ChurnSpec,
    regions: dict[tuple[str, str], AdmissionControl],
    booked_clean: bool,
    path: str,
    prefix: str,
) -> list[Finding]:
    """RPR204: scheme family at churn hops and residual-region feasibility."""
    findings: list[Finding] = []
    churn_nodes = {name for route in churn.routes for name in route[:-1]}
    schemes_ok = True
    for node_name in sorted(churn_nodes):
        node = scenario.node(node_name)
        if node.scheme not in _CHURN_SCHEMES:
            schemes_ok = False
            findings.append(
                Finding(
                    "RPR204",
                    f"{prefix}churn requires a FIFO-family scheme at every "
                    f"hop; node {node_name} runs {node.scheme.name} whose "
                    "scheduler cannot accept dynamically arriving flows",
                    path,
                    1,
                )
            )
    if not booked_clean or not schemes_ok:
        # The fabric raises before churn starts; feasibility over a
        # partially booked or mis-schemed region would be noise.
        return findings

    link_delay = {
        (link.src, link.dst): scenario.node(link.src).buffer_size / link.rate
        for link in scenario.links
    }
    admissible_pairs = 0
    for template in churn.templates:
        for route in churn.routes:
            hops = list(zip(route, route[1:]))
            sigmas = per_hop_sigma(
                template.bucket,
                template.token_rate,
                [link_delay[hop] for hop in hops],
            )
            if all(
                regions[hop].check(sigma, template.token_rate)
                for hop, sigma in zip(hops, sigmas)
            ):
                admissible_pairs += 1
    if admissible_pairs == 0:
        findings.append(
            Finding(
                "RPR204",
                f"{prefix}churn admission region is infeasible: after "
                "booking the static flows, no template/route pair fits at "
                "every hop — every dynamic arrival would be blocked",
                path,
                1,
            )
        )
    return findings


def check_scenario_dict(raw, path: str = "<scenario>", name: str = "") -> list[Finding]:
    """Audit raw scenario data: construction errors become RPR203."""
    prefix = f"spec {name!r}: " if name else ""
    try:
        scenario = NetworkScenario.from_dict(raw)
    except ConfigurationError as exc:
        return [Finding("RPR203", f"{prefix}{exc}", path, 1)]
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        return [
            Finding("RPR203", f"{prefix}malformed scenario: {exc!r}", path, 1)
        ]
    return check_scenario(scenario, path, name)


def check_spec_entry(raw: dict, path: str, index: int = 0) -> list[Finding]:
    """Audit one spec-file entry (single-port or network form)."""
    # Imported here: the spec module pulls in the campaign runner, which
    # the lint/check import path must not load eagerly.
    from repro.experiments.spec import NetworkSpec, ScenarioSpec

    label = str(raw.get("name", f"entry {index}")) if isinstance(raw, dict) else f"entry {index}"
    if not isinstance(raw, dict):
        return [
            Finding(
                "RPR203",
                f"spec entry {index} must be a JSON object, got "
                f"{type(raw).__name__}",
                path,
                1,
            )
        ]
    try:
        if "network" in raw:
            spec = NetworkSpec.from_dict(raw)
            scenario = spec.scenario
        else:
            single = ScenarioSpec.from_dict(raw)
            scenario = NetworkScenario.single_node(
                single.flows,
                single.scheme,
                single.buffer_bytes,
                link_rate=single.link_rate,
                sim_time=single.sim_time,
                headroom=single.headroom,
                groups=single.groups,
            )
    except ConfigurationError as exc:
        return [Finding("RPR203", f"spec {label!r}: {exc}", path, 1)]
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        return [
            Finding("RPR203", f"spec {label!r}: malformed entry: {exc!r}", path, 1)
        ]
    return check_scenario(scenario, path, label)


def check_spec_file(path: str | pathlib.Path) -> list[Finding]:
    """Audit a JSON spec file (one spec object or a list of them)."""
    file_path = str(path)
    try:
        raw = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        return [Finding("RPR203", f"cannot read spec file: {exc}", file_path, 1)]
    except json.JSONDecodeError as exc:
        return [Finding("RPR203", f"not valid JSON: {exc}", file_path, 1)]
    entries = raw if isinstance(raw, list) else [raw]
    if not entries:
        return [Finding("RPR203", "spec file contains no entries", file_path, 1)]
    findings: list[Finding] = []
    for index, entry in enumerate(entries):
        findings.extend(check_spec_entry(entry, file_path, index))
    return findings
