"""Cross-module lint rules powered by the project indexer.

These register with the :mod:`repro.lint` engine like any other rule but
run over the whole program at once (:class:`~repro.lint.registry.ProjectRule`):

* **RPR107** — RNG lineage: every ``numpy`` Generator/SeedSequence must
  descend from a seeded root (no argument-less ``default_rng()`` /
  ``SeedSequence()``), no module-level generator streams, no legacy
  global seeding, and no single stream handed to two components — give
  each consumer its own ``spawn()`` child instead.
* **RPR108** — trace-event registration: every class carrying a ``kind``
  tag and every event class passed to ``.emit(...)`` must appear in the
  ``EVENT_TYPES`` registry that defines the ``TRACE_SCHEMA`` vocabulary;
  an unregistered event serializes to a trace readers reject.
* **RPR109** — hot-loop time accumulation: repeated ``+=``/``-=`` on a
  simulation-time variable inside a loop in the hot-path packages
  accumulates float error packet by packet; derive times from a base
  value and a multiplication instead.

RPR107/108 need cross-module name resolution, so they only see what the
current pass parsed: linting a subtree without ``repro.obs`` simply skips
the registration check rather than guessing.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.check.project import ModuleInfo, ProjectContext
from repro.lint.findings import Finding
from repro.lint.registry import LintContext, ProjectRule, Rule, register
from repro.lint.rules import SimTimeRule, _dotted_name

__all__ = ["RngLineageRule", "TraceEventRegistryRule", "TimeAccumulationRule"]


def _finding(rule_id: str, message: str, mod: ModuleInfo, node: ast.AST) -> Finding:
    return Finding(
        rule_id,
        message,
        mod.path,
        getattr(node, "lineno", 1),
        getattr(node, "col_offset", 0),
    )


def _shallow_walk(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root``'s body without descending into nested scopes."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


@register
class RngLineageRule(ProjectRule):
    """RPR107: every Generator descends from a seeded root, one per consumer."""

    id = "RPR107"
    name = "rng-lineage"
    description = (
        "numpy Generators/SeedSequences must be seeded (no OS-entropy "
        "roots), never module-level, and never shared across components "
        "— spawn() a child stream per consumer"
    )

    _FACTORIES = frozenset(
        {
            "numpy.random.default_rng",
            "numpy.random.Generator",
            "numpy.random.SeedSequence",
        }
    )
    _GLOBAL_SEED = "numpy.random.seed"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for mod in project.modules.values():
            if not mod.is_library:
                continue
            yield from self._check_module(project, mod)

    def _check_module(
        self, project: ProjectContext, mod: ModuleInfo
    ) -> Iterator[Finding]:
        factory_calls: dict[int, str] = {}
        for node in mod.ctx.select(ast.Call):
            canon = project.canonical_name(mod, _dotted_name(node.func))
            if canon in self._FACTORIES:
                factory_calls[id(node)] = canon
                if not node.args and not node.keywords:
                    leaf = canon.rsplit(".", maxsplit=1)[-1]
                    yield _finding(
                        self.id,
                        f"unseeded {leaf}() draws its root from OS entropy; "
                        "every stream must descend from a seeded "
                        "SeedSequence via spawn()",
                        mod,
                        node,
                    )
            elif canon == self._GLOBAL_SEED:
                yield _finding(
                    self.id,
                    "legacy numpy.random.seed() mutates the process-global "
                    "stream; use seeded Generator objects passed in "
                    "explicitly",
                    mod,
                    node,
                )
        # Module-level streams are process-global state even when seeded.
        for stmt in mod.ctx.tree.body:
            value = getattr(stmt, "value", None)
            if (
                isinstance(stmt, (ast.Assign, ast.AnnAssign))
                and isinstance(value, ast.Call)
                and id(value) in factory_calls
            ):
                yield _finding(
                    self.id,
                    "module-level RNG stream is shared global state; "
                    "construct generators inside the component that owns "
                    "them, from a spawned child sequence",
                    mod,
                    stmt,
                )
        for func in mod.ctx.select(ast.FunctionDef, ast.AsyncFunctionDef):
            yield from self._check_aliasing(mod, func, factory_calls)

    def _check_aliasing(
        self, mod: ModuleInfo, func: ast.AST, factory_calls: dict[int, str]
    ) -> Iterator[Finding]:
        """One stream handed to two component constructors is aliasing."""
        stream_names: set[str] = set()
        args = getattr(func, "args", None)
        if args is not None:
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                annotation = arg.annotation
                if annotation is not None and _dotted_name(annotation).rsplit(
                    ".", maxsplit=1
                )[-1] == "Generator":
                    stream_names.add(arg.arg)
        body_nodes = list(_shallow_walk(func))
        for node in body_nodes:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
                and id(node.value) in factory_calls
            ):
                stream_names.add(node.targets[0].id)
        if not stream_names:
            return
        handed_to: dict[str, list[ast.Call]] = {}
        for node in body_nodes:
            if not isinstance(node, ast.Call):
                continue
            callee_leaf = _dotted_name(node.func).rsplit(".", maxsplit=1)[-1]
            if not callee_leaf or not callee_leaf[0].isupper():
                continue  # only component constructors count as consumers
            passed = {
                value.id
                for value in [*node.args, *[kw.value for kw in node.keywords]]
                if isinstance(value, ast.Name) and value.id in stream_names
            }
            for name in passed:
                handed_to.setdefault(name, []).append(node)
        for name, sites in handed_to.items():
            if len(sites) < 2:
                continue
            sites.sort(key=lambda call: (call.lineno, call.col_offset))
            for site in sites[1:]:
                yield _finding(
                    self.id,
                    f"Generator stream {name!r} is passed to multiple "
                    "components; aliased streams correlate their draws — "
                    "spawn() a child per consumer",
                    mod,
                    site,
                )


@register
class TraceEventRegistryRule(ProjectRule):
    """RPR108: every emitted ``kind``-tagged event is in EVENT_TYPES."""

    id = "RPR108"
    name = "trace-event-registry"
    description = (
        "every event class carrying a kind tag and every class passed to "
        ".emit() must be registered in EVENT_TYPES (the TRACE_SCHEMA "
        "vocabulary)"
    )

    _REGISTRY_NAME = "EVENT_TYPES"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        registries = self._find_registries(project)
        if not registries:
            return  # the vocabulary module was not part of this pass
        registered: set[str] = set()
        for _mod, names, _node in registries:
            registered.update(names)
        for mod, _names, node in registries:
            yield from self._check_registry_module(mod, registered, node)
        for mod in project.modules.values():
            if not mod.is_library:
                continue
            yield from self._check_emit_sites(project, mod, registered)

    def _find_registries(
        self, project: ProjectContext
    ) -> list[tuple[ModuleInfo, list[str], ast.AST]]:
        registries = []
        for mod in project.modules.values():
            for stmt in mod.ctx.tree.body:
                target = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target = stmt.targets[0]
                elif isinstance(stmt, ast.AnnAssign):
                    target = stmt.target
                if not (isinstance(target, ast.Name) and target.id == self._REGISTRY_NAME):
                    continue
                value = getattr(stmt, "value", None)
                names = self._registered_names(value)
                if names is not None:
                    registries.append((mod, names, stmt))
        return registries

    @staticmethod
    def _registered_names(value: ast.AST | None) -> list[str] | None:
        """Class names out of ``{cls.kind: cls for cls in (A, B, ...)}``."""
        if not isinstance(value, ast.DictComp) or not value.generators:
            return None
        iterable = value.generators[0].iter
        if not isinstance(iterable, (ast.Tuple, ast.List)):
            return None
        names = []
        for element in iterable.elts:
            if isinstance(element, ast.Name):
                names.append(element.id)
        return names

    @staticmethod
    def _has_kind_tag(node: ast.ClassDef) -> bool:
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                if stmt.target.id == "kind" and stmt.value is not None:
                    return True
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == "kind":
                        return True
        return False

    def _check_registry_module(
        self, mod: ModuleInfo, registered: set[str], registry_node: ast.AST
    ) -> Iterator[Finding]:
        for node in mod.ctx.select(ast.ClassDef):
            if self._has_kind_tag(node) and node.name not in registered:
                yield _finding(
                    self.id,
                    f"event class {node.name} carries a kind tag but is "
                    "not registered in EVENT_TYPES; traces containing it "
                    "cannot be read back",
                    mod,
                    node,
                )

    def _check_emit_sites(
        self, project: ProjectContext, mod: ModuleInfo, registered: set[str]
    ) -> Iterator[Finding]:
        for node in mod.ctx.select(ast.Call):
            if (
                not isinstance(node.func, ast.Attribute)
                or node.func.attr != "emit"
                or len(node.args) != 1
                or not isinstance(node.args[0], ast.Call)
            ):
                continue
            inner = node.args[0]
            dotted = _dotted_name(inner.func)
            if not dotted:
                continue
            cls = project.resolve_class(mod, dotted)
            if cls is None or not self._has_kind_tag(cls):
                continue
            if cls.name not in registered:
                yield _finding(
                    self.id,
                    f"emit() of event class {cls.name} which is missing "
                    "from EVENT_TYPES; register it so the trace schema "
                    "stays complete",
                    mod,
                    node,
                )


@register
class TimeAccumulationRule(Rule):
    """RPR109: no float accumulation of simulation time inside hot loops."""

    id = "RPR109"
    name = "time-accumulation"
    description = (
        "no +=/-= on simulation-time variables inside loops in hot-path "
        "packages; accumulated float steps drift — derive times from a "
        "base value instead"
    )

    #: Packages whose loops run once per packet.
    _HOT_DIRS = (
        ("repro", "sim"),
        ("repro", "core"),
        ("repro", "sched"),
        ("repro", "traffic"),
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if not self._in_hot_scope(ctx.path):
            return
        seen: set[int] = set()
        for loop in ctx.select(ast.For, ast.While):
            for node in ast.walk(loop):
                if id(node) in seen or not isinstance(node, ast.AugAssign):
                    continue
                if not isinstance(node.op, (ast.Add, ast.Sub)):
                    continue
                name = _dotted_name(node.target).rsplit(".", maxsplit=1)[-1]
                if name and SimTimeRule._TIME_NAME_RE.search(name):
                    seen.add(id(node))
                    yield ctx.finding(
                        self.id,
                        f"simulation time {name!r} accumulated with "
                        f"{'+=' if isinstance(node.op, ast.Add) else '-='} "
                        "inside a loop; float error grows per iteration — "
                        "compute it as base + k * step instead",
                        node,
                    )

    @classmethod
    def _in_hot_scope(cls, path: str) -> bool:
        parts = tuple(part for part in path.replace("\\", "/").split("/") if part)
        return any(
            parts[i : i + 2] == scoped
            for scoped in cls._HOT_DIRS
            for i in range(len(parts) - 1)
        )
