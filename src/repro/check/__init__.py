"""repro.check — whole-program static analysis and the invariant auditor.

Two layers:

* **Layer 1** (:mod:`repro.check.project`, :mod:`repro.check.program_rules`)
  upgrades :mod:`repro.lint` to a whole-program pass: a project indexer
  (module symbol tables + import graph over one shared parse per file)
  powering the cross-module rules RPR107 (RNG lineage), RPR108
  (trace-event registration) and RPR109 (hot-loop time accumulation).
  These register themselves with the lint engine and run as part of any
  ``repro-lint`` invocation.

* **Layer 2** (:mod:`repro.check.invariants`, :mod:`repro.check.artifacts`,
  :mod:`repro.check.cli`) is the buffer-invariant auditor: a semantic
  checker over scenario/spec files and on-disk artifacts that verifies —
  without running the engine — that threshold sums fit buffers, link
  capacities cover reserved rates, routes are connected, churn admission
  regions are feasible, and artifacts carry current ``*_SCHEMA`` tags.
  Exposed as ``repro check`` / ``repro-check`` and as the campaign
  runner's pre-flight.

This ``__init__`` stays import-light on purpose: the lint engine imports
:mod:`repro.check.program_rules` at startup, and the invariant layer's
heavier imports (fabric, admission math) must not ride along.
"""

from __future__ import annotations

__all__ = [
    "check_paths",
    "check_scenario",
    "check_scenario_dict",
    "check_spec_file",
    "check_artifact_file",
    "INVARIANT_CATALOG",
]


def __getattr__(name: str):
    if name in (
        "check_scenario",
        "check_scenario_dict",
        "check_spec_file",
        "INVARIANT_CATALOG",
    ):
        from repro.check import invariants

        return getattr(invariants, name)
    if name == "check_artifact_file":
        from repro.check.artifacts import check_artifact_file

        return check_artifact_file
    if name == "check_paths":
        from repro.check.cli import check_paths

        return check_paths
    raise AttributeError(f"module 'repro.check' has no attribute {name!r}")
