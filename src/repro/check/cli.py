"""Command-line interface for the invariant auditor.

Usage::

    python -m repro check examples/specs benchmarks/baselines
    python -m repro.check --format json tests/data/equivalence_goldens.json
    repro-check --strict examples/specs
    repro-check --list-invariants

Target classification:

* ``*.jsonl`` files are trace/telemetry/shard artifacts;
* ``*.claim`` files are work-queue claims;
* ``*.json`` objects with a ``schema`` tag are artifacts;
* ``*.json`` objects/lists shaped like specs (a ``name`` plus a
  ``scheme`` or ``network`` key) are audited as scenario specs;
* anything else named explicitly is an RPR203 finding; unrecognized
  files found while recursing a directory are skipped silently.

Exit codes (same contract as ``repro-lint``, relied on by CI):

* **0** — no error-severity findings (warnings alone stay 0 unless
  ``--strict`` promotes them);
* **1** — at least one failing finding;
* **2** — usage error: no paths, or a path that does not exist.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Sequence

from repro.check.artifacts import check_artifact_file
from repro.check.invariants import INVARIANT_CATALOG, check_spec_file
from repro.lint.findings import Finding, LintUsageError
from repro.lint.reporters import render_json, render_text

__all__ = [
    "main",
    "build_parser",
    "check_paths",
    "failing",
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_ERROR",
]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2

_SPEC_KEYS = ("scheme", "network")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description=(
            "Buffer-invariant auditor for the repro simulator: verifies "
            "threshold/buffer feasibility, link capacity, route "
            "structure, churn admission regions, and artifact schema "
            "versions — without running the engine."
        ),
        epilog="exit codes: 0 clean, 1 findings, 2 usage error",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="spec/artifact files or directories (directories recurse "
        "into *.json, *.jsonl, and *.claim)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warning-severity findings as failures",
    )
    parser.add_argument(
        "--list-invariants",
        action="store_true",
        help="print the invariant catalog and exit",
    )
    return parser


def _list_invariants() -> str:
    lines = []
    for code in sorted(INVARIANT_CATALOG):
        name, description = INVARIANT_CATALOG[code]
        lines.append(f"{code} {name}: {description}")
    return "\n".join(lines)


def _classify(path: pathlib.Path) -> str:
    """'artifact', 'spec', or 'unknown' for one JSON/JSONL/claim file."""
    if path.suffix in (".jsonl", ".claim"):
        return "artifact"
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        # Let the spec checker produce the RPR203 finding with detail.
        return "spec"
    if isinstance(raw, dict):
        if "schema" in raw:
            return "artifact"
        if "name" in raw and any(key in raw for key in _SPEC_KEYS):
            return "spec"
        return "unknown"
    if isinstance(raw, list):
        if all(
            isinstance(entry, dict)
            and "name" in entry
            and any(key in entry for key in _SPEC_KEYS)
            for entry in raw
        ) and raw:
            return "spec"
        return "unknown"
    return "unknown"


def _discover(paths: Sequence[str]) -> list[tuple[pathlib.Path, bool]]:
    """(file, named_explicitly) pairs for every checkable target."""
    targets: dict[pathlib.Path, bool] = {}
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            for pattern in ("*.json", "*.jsonl", "*.claim"):
                for found in sorted(path.rglob(pattern)):
                    targets.setdefault(found, False)
        elif path.is_file():
            targets[path] = True
        else:
            raise LintUsageError(f"no such file or directory: {raw}")
    return sorted(targets.items())


def check_paths(paths: Sequence[str]) -> list[Finding]:
    """Audit files and directories; the library entry point behind main().

    Raises:
        LintUsageError: a path does not exist or nothing checkable found.
    """
    targets = _discover(paths)
    if not targets:
        raise LintUsageError(
            f"no spec or artifact files found under: {', '.join(paths)}"
        )
    findings: list[Finding] = []
    for path, explicit in targets:
        kind = _classify(path)
        if kind == "artifact":
            findings.extend(check_artifact_file(path))
        elif kind == "spec":
            findings.extend(check_spec_file(path))
        elif explicit:
            findings.append(
                Finding(
                    "RPR203",
                    "unrecognized file: neither a scenario/spec object "
                    "nor a schema-tagged artifact",
                    str(path),
                    1,
                )
            )
    findings.sort(key=Finding.sort_key)
    return findings


def failing(findings: Sequence[Finding], strict: bool = False) -> list[Finding]:
    """The findings that count toward a nonzero exit code."""
    return [
        finding
        for finding in findings
        if finding.severity == "error" or strict
    ]


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    try:
        options = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors and 0 on --help; pass through.
        return int(exc.code or 0)
    if options.list_invariants:
        print(_list_invariants())
        return EXIT_CLEAN
    if not options.paths:
        parser.print_usage(sys.stderr)
        print("repro-check: error: no paths given", file=sys.stderr)
        return EXIT_ERROR
    try:
        findings = check_paths(options.paths)
    except LintUsageError as exc:
        print(f"repro-check: error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    if options.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return EXIT_FINDINGS if failing(findings, options.strict) else EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
