"""Project indexer: module symbol tables and the import graph.

Turns the per-file :class:`~repro.lint.registry.LintContext` objects the
lint engine already holds (one parse per file, shared node index) into a
whole-program view: each file becomes a :class:`ModuleInfo` carrying its
dotted module name, top-level symbols, and import bindings; the
:class:`ProjectContext` resolves names *across* modules — through
``import numpy as np`` aliases and package ``__init__`` re-export chains
alike.  Everything here is pure AST: nothing is imported or executed, so
indexing a broken or heavyweight module costs only a parse.
"""

from __future__ import annotations

import ast
from typing import Iterable, Sequence

__all__ = ["ModuleInfo", "ProjectContext", "build_project", "module_name_for"]

#: Re-export chains longer than this are treated as unresolvable.
_MAX_HOPS = 8


def module_name_for(path: str) -> str:
    """Best-effort dotted module name for a file path.

    ``src/repro/obs/events.py`` → ``repro.obs.events``;
    ``src/repro/obs/__init__.py`` → ``repro.obs``.  Paths outside a
    ``src`` root fall back to the segment starting at ``repro`` (so
    snippet paths used in tests resolve too), else to the whole
    relative path.
    """
    normalized = path.replace("\\", "/")
    parts = [part for part in normalized.split("/") if part and part != "."]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    elif "repro" in parts:
        parts = parts[parts.index("repro"):]
    return ".".join(parts)


class ModuleInfo:
    """One parsed module: symbols and import bindings, no execution."""

    __slots__ = ("name", "ctx", "is_package", "imports", "from_imports", "symbols")

    def __init__(self, name: str, ctx, is_package: bool) -> None:
        self.name = name
        self.ctx = ctx
        self.is_package = is_package
        #: local binding -> imported module ("np" -> "numpy").
        self.imports: dict[str, str] = {}
        #: local binding -> (source module, original name).
        self.from_imports: dict[str, tuple[str, str]] = {}
        #: top-level name -> defining AST node.
        self.symbols: dict[str, ast.AST] = {}
        self._index(ctx.tree)

    @property
    def path(self) -> str:
        return self.ctx.path

    @property
    def is_library(self) -> bool:
        return self.ctx.is_library

    def _index(self, tree: ast.Module) -> None:
        for stmt in tree.body:
            self._index_statement(stmt)

    def _index_statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.asname:
                    self.imports[alias.asname] = alias.name
                else:
                    head = alias.name.partition(".")[0]
                    self.imports[head] = head
        elif isinstance(stmt, ast.ImportFrom):
            source = self._resolve_from_module(stmt)
            if source is None:
                return
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                self.from_imports[alias.asname or alias.name] = (source, alias.name)
        elif isinstance(stmt, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            self.symbols[stmt.name] = stmt
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.symbols[target.id] = stmt
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name):
                self.symbols[stmt.target.id] = stmt
        elif isinstance(stmt, (ast.If, ast.Try)):
            # Index conditional tops (TYPE_CHECKING blocks, optional deps).
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.stmt):
                    self._index_statement(sub)

    def _resolve_from_module(self, stmt: ast.ImportFrom) -> str | None:
        if stmt.level == 0:
            return stmt.module
        # Relative import: resolve against this module's package.
        container = self.name if self.is_package else self.name.rpartition(".")[0]
        parts = container.split(".") if container else []
        drop = stmt.level - 1
        if drop > len(parts):
            return None
        if drop:
            parts = parts[:-drop]
        if stmt.module:
            parts.extend(stmt.module.split("."))
        return ".".join(parts) if parts else None


class ProjectContext:
    """The whole parsed program: modules, symbols, cross-module lookup."""

    __slots__ = ("files", "modules", "_by_name")

    def __init__(self, files: Sequence) -> None:
        self.files = list(files)
        #: file path -> ModuleInfo, aligned with ``files``.
        self.modules: dict[str, ModuleInfo] = {}
        self._by_name: dict[str, ModuleInfo] = {}
        for ctx in self.files:
            name = module_name_for(ctx.path)
            is_package = ctx.path.replace("\\", "/").endswith("/__init__.py")
            info = ModuleInfo(name, ctx, is_package)
            self.modules[ctx.path] = info
            self._by_name[name] = info

    def module(self, name: str) -> ModuleInfo | None:
        """Look up a module by dotted name (None when outside the project)."""
        return self._by_name.get(name)

    def canonical_name(self, mod: ModuleInfo, dotted: str) -> str:
        """Fully-qualified form of a dotted name as seen from ``mod``.

        ``np.random.default_rng`` with ``import numpy as np`` becomes
        ``numpy.random.default_rng``; a bare name imported through a
        project re-export chain is followed to its defining module.
        Unknown heads come back unchanged (builtins, locals).
        """
        for _ in range(_MAX_HOPS):
            head, _sep, rest = dotted.partition(".")
            if head in mod.imports:
                base = mod.imports[head]
                return f"{base}.{rest}" if rest else base
            if head in mod.from_imports:
                source, original = mod.from_imports[head]
                target = self._by_name.get(source)
                if target is not None and not rest and original != head:
                    mod, dotted = target, original
                    continue
                if target is not None and not rest:
                    # Same-name re-export: hop only if the target rebinds it.
                    if original in target.from_imports or original in target.imports:
                        mod, dotted = target, original
                        continue
                base = f"{source}.{original}"
                return f"{base}.{rest}" if rest else base
            if head in mod.symbols:
                return f"{mod.name}.{dotted}"
            return dotted
        return dotted

    def resolve_symbol(self, mod: ModuleInfo, name: str) -> tuple[ModuleInfo, ast.AST] | None:
        """Find the defining (module, node) for a bare name, following
        ``from M import name`` chains through package re-exports."""
        for _ in range(_MAX_HOPS):
            node = mod.symbols.get(name)
            if node is not None:
                return mod, node
            if name in mod.from_imports:
                source, original = mod.from_imports[name]
                target = self._by_name.get(source)
                if target is None:
                    return None
                mod, name = target, original
                continue
            return None
        return None

    def resolve_class(self, mod: ModuleInfo, dotted: str) -> ast.ClassDef | None:
        """Resolve a (possibly one-hop dotted) name to a ClassDef."""
        parts = dotted.split(".")
        if len(parts) == 1:
            resolved = self.resolve_symbol(mod, parts[0])
        elif len(parts) == 2:
            head, leaf = parts
            if head in mod.imports:
                target_name = mod.imports[head]
            elif head in mod.from_imports:
                source, original = mod.from_imports[head]
                target_name = f"{source}.{original}"
            else:
                return None
            target = self._by_name.get(target_name)
            if target is None:
                return None
            resolved = self.resolve_symbol(target, leaf)
        else:
            return None
        if resolved is None:
            return None
        _, node = resolved
        return node if isinstance(node, ast.ClassDef) else None


def build_project(contexts: Iterable) -> ProjectContext:
    """Assemble the whole-program view from parsed per-file contexts."""
    return ProjectContext(list(contexts))
