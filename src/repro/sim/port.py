"""Output port: buffer manager + scheduler + transmission link.

The port is the meeting point of the paper's two mechanisms:

* on packet arrival it consults the **buffer manager** (admission), and
* when the link is free it asks the **scheduler** for the next packet and
  models its transmission time ``size / rate``.

Any object with ``try_admit`` / ``on_depart`` works as a manager (both
:class:`repro.core.occupancy.BufferManager` subclasses and the composite
:class:`repro.core.hybrid.HybridBufferManager`), and any
:class:`repro.sched.base.Scheduler` works as a scheduler, so the four
scheme combinations of Section 3 — and the hybrid system of Section 4 —
are all instances of this one class.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigurationError, SimulationError
from repro.metrics.collector import StatsCollector
from repro.obs.events import DepartEvent, DropEvent
from repro.sim.engine import Simulator
from repro.sim.packet import Packet

if TYPE_CHECKING:  # imported lazily to avoid a sim <-> sched import cycle
    from repro.sched.base import Scheduler

__all__ = ["OutputPort"]


class OutputPort:
    """A rate-``R`` output link fed through a managed buffer.

    Args:
        sim: the simulation engine.
        rate: link rate in bytes/second.
        scheduler: service order for admitted packets.
        manager: buffer-admission policy.
        collector: optional statistics sink.
        downstream: optional next hop with a ``receive(packet)`` method;
            transmitted packets are handed to it, which is how multi-node
            topologies (:mod:`repro.net`) are chained.
        recycle: return packets to the :class:`Packet` freelist once the
            port is done with them (on drop, and after transmission when
            there is no downstream hop).  Only safe when nothing outside
            the port retains packet references — the closed
            ``run_scenario`` pipeline qualifies; callers that inspect
            packets afterwards (tests, custom topologies) must not enable
            it.  Combining ``recycle=True`` with a ``downstream`` hop is
            refused outright: a recycled packet would be released while
            the next node still holds it, corrupting the freelist.
        label: node/link label stamped on emitted trace events ('' for
            single-port runs; :mod:`repro.net` uses ``"src->dst"``).
    """

    __slots__ = (
        "sim",
        "rate",
        "scheduler",
        "manager",
        "collector",
        "downstream",
        "recycle",
        "label",
        "busy",
        "_in_service",
        "admitted_packets",
        "dropped_packets",
        "transmitted_packets",
        "_sink",
    )

    def __init__(
        self,
        sim: Simulator,
        rate: float,
        scheduler: "Scheduler",
        manager,
        collector: StatsCollector | None = None,
        downstream=None,
        recycle: bool = False,
        label: str = "",
    ) -> None:
        if rate <= 0:
            raise ConfigurationError(f"link rate must be positive, got {rate}")
        if recycle and downstream is not None:
            raise ConfigurationError(
                "recycle=True is incompatible with a downstream hop: a "
                "transmitted packet would be handed to the next node while "
                "dropped packets of the same flow are released mid-path; "
                "let the terminal delivery sink release packets instead"
            )
        self.sim = sim
        self.rate = float(rate)
        self.scheduler = scheduler
        self.manager = manager
        self.collector = collector
        self.downstream = downstream
        self.recycle = recycle
        self.label = label
        self.busy = False
        self._in_service: Packet | None = None
        self.admitted_packets = 0
        self.dropped_packets = 0
        self.transmitted_packets = 0
        self._sink = None

    def attach_trace(self, sink) -> None:
        """Wire a :class:`~repro.obs.sink.TraceSink` through the whole port.

        The port fans the sink out to the engine (heap compactions), the
        scheduler (enqueues), and the manager (threshold crossings,
        headroom) so one call traces every layer.  Pass ``None`` to
        detach everywhere.
        """
        self._sink = sink
        clock = None if sink is None else (lambda: self.sim.now)
        self.sim.attach_trace(sink)
        self.scheduler.attach_trace(sink, clock, self.label)
        if hasattr(self.manager, "attach_trace"):
            self.manager.attach_trace(sink, clock, self.label)

    def register_metrics(self, registry, engine: bool = True, **labels) -> None:
        """Expose port counters (and sub-component gauges) in ``registry``.

        ``engine=False`` skips the shared engine gauges — multi-port
        topologies register the engine once and each port under its own
        labels (see :meth:`repro.net.topology.Network.register_metrics`).
        """
        registry.gauge_callback(
            "port.admitted_packets", lambda: self.admitted_packets, **labels
        )
        registry.gauge_callback(
            "port.dropped_packets", lambda: self.dropped_packets, **labels
        )
        registry.gauge_callback(
            "port.transmitted_packets", lambda: self.transmitted_packets, **labels
        )
        registry.gauge_callback(
            "port.backlog_packets", lambda: self.backlog_packets, **labels
        )
        if engine:
            self.sim.register_metrics(registry, **labels)
        if hasattr(self.manager, "register_metrics"):
            self.manager.register_metrics(registry, **labels)

    def _drop_reason(self, packet: Packet) -> str:
        reason = getattr(self.manager, "drop_reason", None)
        if reason is None:
            return "policy"
        return reason(packet.flow_id, packet.size)

    def receive(self, packet: Packet) -> bool:
        """Handle an arriving packet; returns True if admitted."""
        now = self.sim.now
        if self.collector is not None:
            self.collector.on_offered(packet.flow_id, packet.size, now)
        if not self.manager.try_admit(packet.flow_id, packet.size):
            self.dropped_packets += 1
            if self.collector is not None:
                self.collector.on_drop(packet.flow_id, packet.size, now)
            if self._sink is not None:
                self._sink.emit(
                    DropEvent(
                        time=now,
                        flow_id=packet.flow_id,
                        size=packet.size,
                        reason=self._drop_reason(packet),
                        node=self.label,
                    )
                )
            if self.recycle:
                packet.release()
            return False
        packet.enqueued = now
        self.admitted_packets += 1
        self.scheduler.enqueue(packet)
        if not self.busy:
            self._start_transmission()
        return True

    def _start_transmission(self) -> None:
        packet = self.scheduler.dequeue()
        if packet is None:
            self.busy = False
            self._in_service = None
            return
        self.busy = True
        self._in_service = packet
        self.sim.schedule_fast(
            packet.size / self.rate, self._finish_transmission, packet
        )

    def _finish_transmission(self, packet: Packet) -> None:
        now = self.sim.now
        if packet.enqueued is None:
            # Every serviced packet was admitted through receive(), which
            # stamps `enqueued`; a missing timestamp means the packet
            # bypassed admission and the delay accounting is meaningless.
            raise SimulationError(
                f"packet {packet!r} finished service without an enqueue "
                "timestamp; it never passed through receive()"
            )
        self.manager.on_depart(packet.flow_id, packet.size)
        self.transmitted_packets += 1
        if self.collector is not None or self._sink is not None:
            delay = now - packet.enqueued
            if self.collector is not None:
                self.collector.on_depart(packet.flow_id, packet.size, delay, now)
            if self._sink is not None:
                self._sink.emit(
                    DepartEvent(
                        time=now,
                        flow_id=packet.flow_id,
                        size=packet.size,
                        delay=delay,
                        node=self.label,
                    )
                )
        if self.downstream is not None:
            self.downstream.receive(packet)
        elif self.recycle:
            packet.release()
        self._start_transmission()

    @property
    def backlog_packets(self) -> int:
        """Packets in the buffer, including the one in service."""
        return len(self.scheduler) + (1 if self.busy else 0)
