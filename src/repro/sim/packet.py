"""Packet representation.

Packets are plain slotted objects; millions of them are created per
experiment so construction cost matters more than convenience methods.
A bounded module-level freelist lets closed pipelines (one port, no
downstream retention) recycle packet objects instead of allocating:
:meth:`Packet.acquire` pops from the pool and :meth:`Packet.release`
returns to it.  Recycled packets are fully re-initialised — including a
fresh ``seq`` from the shared counter — so a recycling run is
byte-identical to an allocating one.
"""

from __future__ import annotations

import itertools

__all__ = ["Packet"]

_packet_ids = itertools.count()

#: Recycled packets awaiting reuse.  Bounded so that a pathological
#: burst of drops cannot pin unbounded memory in the pool.
_freelist: list["Packet"] = []
_FREELIST_MAX = 4096

#: ``seq`` sentinel marking a packet as sitting in the freelist; makes
#: :meth:`Packet.release` idempotent (a double release would otherwise
#: hand the same object out twice).
_RELEASED = -1


class Packet:
    """A single packet travelling from a source to an output port.

    Attributes:
        flow_id: integer id of the owning flow.
        size: length in bytes.
        created: simulation time at which the source emitted the packet.
        enqueued: time the packet was admitted to the port buffer
            (set by the port; ``None`` until then).
        seq: globally unique monotonically increasing id, used for stable
            tie-breaking in schedulers.
    """

    __slots__ = ("flow_id", "size", "created", "enqueued", "seq")

    def __init__(self, flow_id: int, size: float, created: float):
        self.flow_id = flow_id
        self.size = size
        self.created = created
        self.enqueued: float | None = None
        self.seq = next(_packet_ids)

    @classmethod
    def acquire(cls, flow_id: int, size: float, created: float) -> "Packet":
        """A packet from the freelist (or a fresh one when it is empty).

        Identical to calling the constructor — same field values, same
        ``seq`` allocation order — except the object may be recycled.
        Sources should use this in their emission paths; it is safe
        everywhere because a pool miss simply allocates.
        """
        if _freelist:
            packet = _freelist.pop()
            packet.flow_id = flow_id
            packet.size = size
            packet.created = created
            packet.enqueued = None
            packet.seq = next(_packet_ids)
            return packet
        return cls(flow_id, size, created)

    def release(self) -> None:
        """Return this packet to the freelist.  Idempotent.

        Only the owner of the *last* live reference may call this — for
        a port, that means dropped packets and packets that finished
        transmission with no downstream hop.  After release the object
        may be handed out again with entirely different field values.
        """
        if self.seq == _RELEASED:
            return
        if len(_freelist) < _FREELIST_MAX:
            self.seq = _RELEASED
            _freelist.append(self)

    def __repr__(self) -> str:
        return f"Packet(flow={self.flow_id}, size={self.size}, t={self.created:.6f})"
