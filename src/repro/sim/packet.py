"""Packet representation.

Packets are plain slotted objects; millions of them are created per
experiment so construction cost matters more than convenience methods.
"""

from __future__ import annotations

import itertools

__all__ = ["Packet"]

_packet_ids = itertools.count()


class Packet:
    """A single packet travelling from a source to an output port.

    Attributes:
        flow_id: integer id of the owning flow.
        size: length in bytes.
        created: simulation time at which the source emitted the packet.
        enqueued: time the packet was admitted to the port buffer
            (set by the port; ``None`` until then).
        seq: globally unique monotonically increasing id, used for stable
            tie-breaking in schedulers.
    """

    __slots__ = ("flow_id", "size", "created", "enqueued", "seq")

    def __init__(self, flow_id: int, size: float, created: float):
        self.flow_id = flow_id
        self.size = size
        self.created = created
        self.enqueued: float | None = None
        self.seq = next(_packet_ids)

    def __repr__(self) -> str:
        return f"Packet(flow={self.flow_id}, size={self.size}, t={self.created:.6f})"
