"""Discrete-event simulation engine.

A deliberately small, fast core: the :class:`Simulator` owns the clock,
the shared sequence counter and the scheduling API, and delegates event
*storage* to a pluggable :class:`~repro.sim.equeue.EventQueue` backend.
Entries are ``(time, sequence, callback, args, handle)`` tuples: the
sequence number breaks ties so that events scheduled for the same
instant fire in scheduling order, which makes runs deterministic for a
given seed — whichever backend holds them.  The ``handle`` slot is an
:class:`Event` for cancellable events and ``None`` for events scheduled
through the :meth:`Simulator.schedule_fast` hot path — the per-packet
traffic of a simulation never cancels, so it never pays for the
allocation of a cancellation handle.

Two backends ship (see :mod:`repro.sim.equeue`): the default lazy-delete
binary heap, and an opt-in calendar queue that wins by integer factors
on large, churning pending populations.  Select one with
``Simulator(equeue="calendar")`` or the ``REPRO_EQUEUE`` environment
variable; both produce byte-identical measurement records.

Components (sources, shapers, ports) hold a reference to the
:class:`Simulator` and schedule their own callbacks; there is no global
registry.  The engine knows nothing about packets or networking.
"""

from __future__ import annotations

from math import inf
from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.equeue import EventQueue, resolve_equeue

__all__ = ["Event", "Simulator"]


class Event:
    """Handle for a scheduled callback.

    Returned by :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at`;
    the only supported operation is :meth:`cancel`.  Cancelled events stay
    queued but are skipped when reached (lazy deletion); the backend
    purges them wholesale once they dominate the pending population.
    Events scheduled via :meth:`Simulator.schedule_fast` have no handle
    and cannot be cancelled.
    """

    __slots__ = ("time", "fn", "args", "cancelled", "fired", "_sim")

    def __init__(
        self, time: float, fn: Callable[..., Any], args: tuple, sim: "Simulator | None" = None
    ):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing. Idempotent.

        Cancelling an event that has already fired is a no-op: the entry
        left the queue when it fired, so counting it as cancelled-pending
        would leak phantom weight into the compaction trigger (teardown
        code routinely cancels timers without knowing whether they beat
        it to the clock).
        """
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancelled()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"Event(t={self.time:.6f}, fn={name}, {state})"


class Simulator:
    """Event loop with a monotonically advancing clock.

    Usage::

        sim = Simulator()                      # default binary heap
        sim = Simulator(equeue="calendar")     # calendar-queue backend
        sim.schedule(1.0, callback, arg1, arg2)
        sim.run(until=10.0)

    ``equeue`` accepts a backend name (``"heap"``/``"calendar"``), a
    ready :class:`~repro.sim.equeue.EventQueue` instance, or ``None`` to
    consult ``REPRO_EQUEUE`` and default to the heap.

    Hot paths that never cancel (per-packet emissions, transmission
    completions) should use :meth:`schedule_fast`, which skips the
    :class:`Event` handle allocation entirely.
    """

    __slots__ = (
        "now",
        "_equeue",
        "_push",
        "_seq",
        "_events_processed",
        "_sink",
    )

    #: Smallest pending population worth compacting; below this lazy
    #: deletion is cheaper than a rebuild.  (Kept here for backward
    #: compatibility; the authoritative constant lives in
    #: :data:`repro.sim.equeue.COMPACT_MIN_PENDING`.)
    COMPACT_MIN_HEAP = 64

    def __init__(self, equeue: "str | EventQueue | None" = None) -> None:
        self.now: float = 0.0
        self._equeue = resolve_equeue(equeue)
        self._equeue.bind(self)
        self._push = self._equeue.raw_push()
        self._seq: int = 0
        self._events_processed: int = 0
        self._sink = None

    @property
    def equeue(self) -> EventQueue:
        """The live event-queue backend (counters, tuning knobs)."""
        return self._equeue

    @property
    def equeue_backend(self) -> str:
        """Registry name of the active backend (``"heap"``/``"calendar"``)."""
        return self._equeue.backend

    @property
    def events_processed(self) -> int:
        """Number of events that have fired (cancelled ones excluded)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued, including cancelled ones."""
        return len(self._equeue)

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying queue slots."""
        return self._equeue.cancelled_pending

    @property
    def compactions(self) -> int:
        """Times the queue was rebuilt to purge cancelled events."""
        return self._equeue.compactions

    def attach_trace(self, sink) -> None:
        """Emit engine events (compactions, bucket resizes) into ``sink``.

        Pass ``None`` to detach.  Untraced simulators pay a single
        ``is not None`` check per housekeeping action and nothing per
        event.
        """
        self._sink = sink

    def register_metrics(self, registry, **labels) -> None:
        """Expose the engine's counters through a metrics registry.

        Callback gauges sample the live attributes at snapshot time, so
        the event loop keeps its plain-int hot path.  ``sim.equeue``
        reports the backend as its registry index (0 = heap,
        1 = calendar — the order of
        :data:`repro.sim.equeue.EQUEUE_BACKENDS`); backend-specific
        gauges (calendar bucket width/resizes) register alongside.
        """
        from repro.sim.equeue import EQUEUE_BACKENDS

        equeue = self._equeue
        backend_index = float(list(EQUEUE_BACKENDS).index(equeue.backend))
        registry.gauge_callback(
            "sim.events_processed", lambda: self._events_processed, **labels
        )
        registry.gauge_callback("sim.pending", lambda: len(equeue), **labels)
        registry.gauge_callback(
            "sim.cancelled_pending", lambda: equeue.cancelled_pending, **labels
        )
        registry.gauge_callback("sim.compactions", lambda: equeue.compactions, **labels)
        registry.gauge_callback("sim.now", lambda: self.now, **labels)
        registry.gauge_callback("sim.equeue", lambda: backend_index, **labels)
        equeue.register_metrics(registry, **labels)

    def _note_cancelled(self) -> None:
        """Bookkeeping hook called by :meth:`Event.cancel`.

        Cancel-heavy workloads (shapers, adaptive managers) would
        otherwise grow the queue without bound: lazily-deleted events are
        only reclaimed when their time is reached.  The backend compacts
        once more than half of a non-trivial population is dead weight.
        """
        self._equeue.note_cancelled()

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self.now}"
            )
        event = Event(time, fn, args, self)
        self._seq += 1
        self._push((time, self._seq, fn, args, event))
        return event

    def schedule_fast(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` ``delay`` seconds from now, uncancellably.

        The hot-path twin of :meth:`schedule`: no :class:`Event` handle is
        allocated, so the caller gets nothing back and the event cannot be
        cancelled.  Firing order relative to :meth:`schedule` is identical
        (one shared sequence counter), which keeps runs byte-identical
        whichever entry point a component uses.
        """
        time = self.now + delay
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self.now}"
            )
        self._seq += 1
        self._push((time, self._seq, fn, args, None))

    def step(self) -> bool:
        """Fire the next pending event.

        Returns ``False`` when the queue is empty, ``True`` otherwise.
        """
        entry = self._equeue.pop_live()
        if entry is None:
            return False
        event = entry[4]
        if event is not None:
            event.fired = True
        self.now = entry[0]
        self._events_processed += 1
        entry[2](*entry[3])
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run the event loop.

        Args:
            until: stop once the clock would pass this time; the clock is
                left at ``until`` so measurement windows have an exact end.
                ``None`` runs until the queue drains.
            max_events: optional safety valve for tests; raises
                :class:`SimulationError` when exceeded.

        The loop consumes each entry exactly once.  An entry beyond
        ``until`` is left queued under its original ``(time, seq)`` key,
        so firing order across resumed runs is unchanged — as are the
        ``cancelled_pending``/``compactions`` counters, which live on the
        backend and are never reset by an overshoot.  Handle-free entries
        (:meth:`schedule_fast`) skip the cancelled-event branch entirely.
        """
        stop = inf if until is None else until
        limit = inf if max_events is None else max_events
        self._equeue.drain(self, stop, limit, max_events)
        if until is not None and self.now < until:
            self.now = until
