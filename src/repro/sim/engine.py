"""Discrete-event simulation engine.

A deliberately small, fast core: a binary heap of ``(time, sequence,
callback, args, handle)`` entries.  The sequence number breaks ties so
that events scheduled for the same instant fire in scheduling order,
which makes runs deterministic for a given seed.  The ``handle`` slot is
an :class:`Event` for cancellable events and ``None`` for events
scheduled through the :meth:`Simulator.schedule_fast` hot path — the
per-packet traffic of a simulation never cancels, so it never pays for
the allocation of a cancellation handle.

Components (sources, shapers, ports) hold a reference to the
:class:`Simulator` and schedule their own callbacks; there is no global
registry.  The engine knows nothing about packets or networking.
"""

from __future__ import annotations

import heapq
from math import inf
from typing import Any, Callable

from repro.errors import SimulationError
from repro.obs.events import HeapCompactEvent

__all__ = ["Event", "Simulator"]


class Event:
    """Handle for a scheduled callback.

    Returned by :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at`;
    the only supported operation is :meth:`cancel`.  Cancelled events stay
    in the heap but are skipped when popped (lazy deletion); the simulator
    purges them wholesale once they dominate the heap (see
    :meth:`Simulator._compact`).  Events scheduled via
    :meth:`Simulator.schedule_fast` have no handle and cannot be
    cancelled.
    """

    __slots__ = ("time", "fn", "args", "cancelled", "_sim")

    def __init__(
        self, time: float, fn: Callable[..., Any], args: tuple, sim: "Simulator | None" = None
    ):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing. Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancelled()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"Event(t={self.time:.6f}, fn={name}, {state})"


class Simulator:
    """Event loop with a monotonically advancing clock.

    Usage::

        sim = Simulator()
        sim.schedule(1.0, callback, arg1, arg2)
        sim.run(until=10.0)

    Hot paths that never cancel (per-packet emissions, transmission
    completions) should use :meth:`schedule_fast`, which skips the
    :class:`Event` handle allocation entirely.
    """

    __slots__ = (
        "now",
        "_heap",
        "_seq",
        "_events_processed",
        "_cancelled",
        "_compactions",
        "_sink",
    )

    #: Smallest heap worth compacting; below this lazy deletion is cheaper
    #: than a rebuild.
    COMPACT_MIN_HEAP = 64

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple] = []
        self._seq: int = 0
        self._events_processed: int = 0
        self._cancelled: int = 0
        self._compactions: int = 0
        self._sink = None

    @property
    def events_processed(self) -> int:
        """Number of events that have fired (cancelled ones excluded)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still in the heap, including cancelled ones."""
        return len(self._heap)

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap slots."""
        return self._cancelled

    @property
    def compactions(self) -> int:
        """Times the heap was rebuilt to purge cancelled events."""
        return self._compactions

    def attach_trace(self, sink) -> None:
        """Emit engine events (heap compactions) into ``sink``.

        Pass ``None`` to detach.  Untraced simulators pay a single
        ``is not None`` check per compaction and nothing per event.
        """
        self._sink = sink

    def register_metrics(self, registry, **labels) -> None:
        """Expose the engine's counters through a metrics registry.

        Callback gauges sample the live attributes at snapshot time, so
        the event loop keeps its plain-int hot path.
        """
        registry.gauge_callback(
            "sim.events_processed", lambda: self._events_processed, **labels
        )
        registry.gauge_callback("sim.pending", lambda: len(self._heap), **labels)
        registry.gauge_callback(
            "sim.cancelled_pending", lambda: self._cancelled, **labels
        )
        registry.gauge_callback("sim.compactions", lambda: self._compactions, **labels)
        registry.gauge_callback("sim.now", lambda: self.now, **labels)

    def _note_cancelled(self) -> None:
        """Bookkeeping hook called by :meth:`Event.cancel`.

        Cancel-heavy workloads (shapers, adaptive managers) would otherwise
        grow the heap without bound: lazily-deleted events are only
        reclaimed when their time is reached.  Once more than half of a
        non-trivial heap is dead weight, rebuilding it is O(live) and wins
        immediately.
        """
        self._cancelled += 1
        heap_size = len(self._heap)
        if heap_size >= self.COMPACT_MIN_HEAP and self._cancelled * 2 > heap_size:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify the survivors.

        The ``(time, seq)`` keys of live entries are untouched, so firing
        order is exactly what lazy deletion would have produced.  The list
        is rebuilt in place: ``run``/``step`` hold a local alias to it and
        a cancel can arrive from a callback mid-loop.
        """
        before = len(self._heap)
        self._heap[:] = [
            entry for entry in self._heap
            if entry[4] is None or not entry[4].cancelled
        ]
        heapq.heapify(self._heap)
        self._cancelled = 0
        self._compactions += 1
        if self._sink is not None:
            self._sink.emit(
                HeapCompactEvent(
                    time=self.now,
                    removed=before - len(self._heap),
                    remaining=len(self._heap),
                )
            )

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self.now}"
            )
        event = Event(time, fn, args, self)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, fn, args, event))
        return event

    def schedule_fast(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` ``delay`` seconds from now, uncancellably.

        The hot-path twin of :meth:`schedule`: no :class:`Event` handle is
        allocated, so the caller gets nothing back and the event cannot be
        cancelled.  Firing order relative to :meth:`schedule` is identical
        (one shared sequence counter), which keeps runs byte-identical
        whichever entry point a component uses.
        """
        time = self.now + delay
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self.now}"
            )
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, fn, args, None))

    def _pop_live(self) -> tuple | None:
        """Pop heap entries until a live one is found.

        Shared drain used by :meth:`step` and the :meth:`run` slow path:
        cancelled entries are discarded (rebalancing the
        ``cancelled_pending`` counter) and the first live entry is
        returned un-fired, or ``None`` when the heap empties.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            event = entry[4]
            if event is not None and event.cancelled:
                if self._cancelled:
                    self._cancelled -= 1
                continue
            return entry
        return None

    def step(self) -> bool:
        """Fire the next pending event.

        Returns ``False`` when the heap is empty, ``True`` otherwise.
        """
        entry = self._pop_live()
        if entry is None:
            return False
        self.now = entry[0]
        self._events_processed += 1
        entry[2](*entry[3])
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run the event loop.

        Args:
            until: stop once the clock would pass this time; the clock is
                left at ``until`` so measurement windows have an exact end.
                ``None`` runs until the heap drains.
            max_events: optional safety valve for tests; raises
                :class:`SimulationError` when exceeded.

        The loop pops each entry exactly once.  An entry beyond ``until``
        (at most one per call) is pushed back with its original
        ``(time, seq)`` key, so firing order across resumed runs is
        unchanged.  Handle-free entries (:meth:`schedule_fast`) skip the
        cancelled-event branch entirely.
        """
        heap = self._heap
        heappop = heapq.heappop
        stop = inf if until is None else until
        limit = inf if max_events is None else max_events
        fired = 0
        while heap:
            entry = heappop(heap)
            event = entry[4]
            if event is not None and event.cancelled:
                if self._cancelled:
                    self._cancelled -= 1
                continue
            time = entry[0]
            if time > stop:
                heapq.heappush(heap, entry)
                break
            self.now = time
            self._events_processed += 1
            entry[2](*entry[3])
            fired += 1
            if fired > limit:
                raise SimulationError(f"exceeded max_events={max_events}")
        if until is not None and self.now < until:
            self.now = until
