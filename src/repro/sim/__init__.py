"""Discrete-event simulation substrate: engine, packets, output port."""

from repro.sim.engine import Event, Simulator
from repro.sim.packet import Packet
from repro.sim.port import OutputPort

__all__ = ["Event", "Simulator", "Packet", "OutputPort"]
